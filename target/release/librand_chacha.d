/root/repo/target/release/librand_chacha.rlib: /root/repo/crates/rand/src/lib.rs /root/repo/crates/rand_chacha/src/lib.rs
