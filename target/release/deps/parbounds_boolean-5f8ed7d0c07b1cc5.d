/root/repo/target/release/deps/parbounds_boolean-5f8ed7d0c07b1cc5.d: crates/boolean/src/lib.rs crates/boolean/src/certificate.rs crates/boolean/src/families.rs crates/boolean/src/function.rs crates/boolean/src/poly.rs

/root/repo/target/release/deps/libparbounds_boolean-5f8ed7d0c07b1cc5.rlib: crates/boolean/src/lib.rs crates/boolean/src/certificate.rs crates/boolean/src/families.rs crates/boolean/src/function.rs crates/boolean/src/poly.rs

/root/repo/target/release/deps/libparbounds_boolean-5f8ed7d0c07b1cc5.rmeta: crates/boolean/src/lib.rs crates/boolean/src/certificate.rs crates/boolean/src/families.rs crates/boolean/src/function.rs crates/boolean/src/poly.rs

crates/boolean/src/lib.rs:
crates/boolean/src/certificate.rs:
crates/boolean/src/families.rs:
crates/boolean/src/function.rs:
crates/boolean/src/poly.rs:
