/root/repo/target/release/deps/table_ablations-c70fbdc47f06c1c0.d: crates/bench/src/bin/table_ablations.rs

/root/repo/target/release/deps/table_ablations-c70fbdc47f06c1c0: crates/bench/src/bin/table_ablations.rs

crates/bench/src/bin/table_ablations.rs:
