/root/repo/target/release/deps/parbounds_adversary-ec6d92fbc3e78906.d: crates/adversary/src/lib.rs crates/adversary/src/degree_audit.rs crates/adversary/src/goodness.rs crates/adversary/src/or_adversary.rs crates/adversary/src/or_refine.rs crates/adversary/src/random_adversary.rs crates/adversary/src/traces.rs crates/adversary/src/yao.rs

/root/repo/target/release/deps/libparbounds_adversary-ec6d92fbc3e78906.rlib: crates/adversary/src/lib.rs crates/adversary/src/degree_audit.rs crates/adversary/src/goodness.rs crates/adversary/src/or_adversary.rs crates/adversary/src/or_refine.rs crates/adversary/src/random_adversary.rs crates/adversary/src/traces.rs crates/adversary/src/yao.rs

/root/repo/target/release/deps/libparbounds_adversary-ec6d92fbc3e78906.rmeta: crates/adversary/src/lib.rs crates/adversary/src/degree_audit.rs crates/adversary/src/goodness.rs crates/adversary/src/or_adversary.rs crates/adversary/src/or_refine.rs crates/adversary/src/random_adversary.rs crates/adversary/src/traces.rs crates/adversary/src/yao.rs

crates/adversary/src/lib.rs:
crates/adversary/src/degree_audit.rs:
crates/adversary/src/goodness.rs:
crates/adversary/src/or_adversary.rs:
crates/adversary/src/or_refine.rs:
crates/adversary/src/random_adversary.rs:
crates/adversary/src/traces.rs:
crates/adversary/src/yao.rs:
