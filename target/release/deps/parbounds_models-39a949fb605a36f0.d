/root/repo/target/release/deps/parbounds_models-39a949fb605a36f0.d: crates/models/src/lib.rs crates/models/src/bsp.rs crates/models/src/contract.rs crates/models/src/cost.rs crates/models/src/error.rs crates/models/src/faults.rs crates/models/src/gsm.rs crates/models/src/qsm.rs crates/models/src/shared.rs crates/models/src/work.rs

/root/repo/target/release/deps/libparbounds_models-39a949fb605a36f0.rlib: crates/models/src/lib.rs crates/models/src/bsp.rs crates/models/src/contract.rs crates/models/src/cost.rs crates/models/src/error.rs crates/models/src/faults.rs crates/models/src/gsm.rs crates/models/src/qsm.rs crates/models/src/shared.rs crates/models/src/work.rs

/root/repo/target/release/deps/libparbounds_models-39a949fb605a36f0.rmeta: crates/models/src/lib.rs crates/models/src/bsp.rs crates/models/src/contract.rs crates/models/src/cost.rs crates/models/src/error.rs crates/models/src/faults.rs crates/models/src/gsm.rs crates/models/src/qsm.rs crates/models/src/shared.rs crates/models/src/work.rs

crates/models/src/lib.rs:
crates/models/src/bsp.rs:
crates/models/src/contract.rs:
crates/models/src/cost.rs:
crates/models/src/error.rs:
crates/models/src/faults.rs:
crates/models/src/gsm.rs:
crates/models/src/qsm.rs:
crates/models/src/shared.rs:
crates/models/src/work.rs:
