/root/repo/target/release/deps/make_report-fc8c7c6c1db32562.d: crates/bench/src/bin/make_report.rs

/root/repo/target/release/deps/make_report-fc8c7c6c1db32562: crates/bench/src/bin/make_report.rs

crates/bench/src/bin/make_report.rs:
