/root/repo/target/release/deps/parbounds-91c3e76e8cf8fd84.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/release/deps/parbounds-91c3e76e8cf8fd84: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
