/root/repo/target/release/deps/table_audits-7816309b2a41add3.d: crates/bench/src/bin/table_audits.rs

/root/repo/target/release/deps/table_audits-7816309b2a41add3: crates/bench/src/bin/table_audits.rs

crates/bench/src/bin/table_audits.rs:
