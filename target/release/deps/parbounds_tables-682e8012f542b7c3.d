/root/repo/target/release/deps/parbounds_tables-682e8012f542b7c3.d: crates/tables/src/lib.rs crates/tables/src/cells.rs crates/tables/src/gd.rs crates/tables/src/mapping.rs crates/tables/src/math.rs crates/tables/src/render.rs crates/tables/src/upper.rs

/root/repo/target/release/deps/libparbounds_tables-682e8012f542b7c3.rlib: crates/tables/src/lib.rs crates/tables/src/cells.rs crates/tables/src/gd.rs crates/tables/src/mapping.rs crates/tables/src/math.rs crates/tables/src/render.rs crates/tables/src/upper.rs

/root/repo/target/release/deps/libparbounds_tables-682e8012f542b7c3.rmeta: crates/tables/src/lib.rs crates/tables/src/cells.rs crates/tables/src/gd.rs crates/tables/src/mapping.rs crates/tables/src/math.rs crates/tables/src/render.rs crates/tables/src/upper.rs

crates/tables/src/lib.rs:
crates/tables/src/cells.rs:
crates/tables/src/gd.rs:
crates/tables/src/mapping.rs:
crates/tables/src/math.rs:
crates/tables/src/render.rs:
crates/tables/src/upper.rs:
