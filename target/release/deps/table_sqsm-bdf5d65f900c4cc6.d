/root/repo/target/release/deps/table_sqsm-bdf5d65f900c4cc6.d: crates/bench/src/bin/table_sqsm.rs

/root/repo/target/release/deps/table_sqsm-bdf5d65f900c4cc6: crates/bench/src/bin/table_sqsm.rs

crates/bench/src/bin/table_sqsm.rs:
