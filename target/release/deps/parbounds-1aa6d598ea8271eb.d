/root/repo/target/release/deps/parbounds-1aa6d598ea8271eb.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/report.rs crates/core/src/robustness.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libparbounds-1aa6d598ea8271eb.rlib: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/report.rs crates/core/src/robustness.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libparbounds-1aa6d598ea8271eb.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/report.rs crates/core/src/robustness.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/report.rs:
crates/core/src/robustness.rs:
crates/core/src/sweep.rs:
