/root/repo/target/release/deps/table_related-3db9a7a3c4e8e74b.d: crates/bench/src/bin/table_related.rs

/root/repo/target/release/deps/table_related-3db9a7a3c4e8e74b: crates/bench/src/bin/table_related.rs

crates/bench/src/bin/table_related.rs:
