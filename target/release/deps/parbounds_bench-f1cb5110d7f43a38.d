/root/repo/target/release/deps/parbounds_bench-f1cb5110d7f43a38.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libparbounds_bench-f1cb5110d7f43a38.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libparbounds_bench-f1cb5110d7f43a38.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
