/root/repo/target/release/deps/table_bsp-1e5228249b1d98da.d: crates/bench/src/bin/table_bsp.rs

/root/repo/target/release/deps/table_bsp-1e5228249b1d98da: crates/bench/src/bin/table_bsp.rs

crates/bench/src/bin/table_bsp.rs:
