/root/repo/target/release/deps/table_qsm-ed15e4305e3ca27c.d: crates/bench/src/bin/table_qsm.rs

/root/repo/target/release/deps/table_qsm-ed15e4305e3ca27c: crates/bench/src/bin/table_qsm.rs

crates/bench/src/bin/table_qsm.rs:
