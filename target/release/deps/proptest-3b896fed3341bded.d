/root/repo/target/release/deps/proptest-3b896fed3341bded.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3b896fed3341bded.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3b896fed3341bded.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
