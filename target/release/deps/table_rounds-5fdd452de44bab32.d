/root/repo/target/release/deps/table_rounds-5fdd452de44bab32.d: crates/bench/src/bin/table_rounds.rs

/root/repo/target/release/deps/table_rounds-5fdd452de44bab32: crates/bench/src/bin/table_rounds.rs

crates/bench/src/bin/table_rounds.rs:
