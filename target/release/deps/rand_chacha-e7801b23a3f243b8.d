/root/repo/target/release/deps/rand_chacha-e7801b23a3f243b8.d: crates/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-e7801b23a3f243b8.rlib: crates/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-e7801b23a3f243b8.rmeta: crates/rand_chacha/src/lib.rs

crates/rand_chacha/src/lib.rs:
