/root/repo/target/release/libproptest.rlib: /root/repo/crates/proptest/src/lib.rs /root/repo/crates/rand/src/lib.rs /root/repo/crates/rand_chacha/src/lib.rs
