/root/repo/target/debug/examples/compaction_pipeline-65399b84e5dd025d.d: crates/core/../../examples/compaction_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libcompaction_pipeline-65399b84e5dd025d.rmeta: crates/core/../../examples/compaction_pipeline.rs Cargo.toml

crates/core/../../examples/compaction_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
