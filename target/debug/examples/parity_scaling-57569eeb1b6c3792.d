/root/repo/target/debug/examples/parity_scaling-57569eeb1b6c3792.d: crates/core/../../examples/parity_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libparity_scaling-57569eeb1b6c3792.rmeta: crates/core/../../examples/parity_scaling.rs Cargo.toml

crates/core/../../examples/parity_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
