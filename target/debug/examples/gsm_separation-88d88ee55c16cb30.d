/root/repo/target/debug/examples/gsm_separation-88d88ee55c16cb30.d: crates/core/../../examples/gsm_separation.rs Cargo.toml

/root/repo/target/debug/examples/libgsm_separation-88d88ee55c16cb30.rmeta: crates/core/../../examples/gsm_separation.rs Cargo.toml

crates/core/../../examples/gsm_separation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
