/root/repo/target/debug/examples/compaction_pipeline-3795bb7405353af9.d: crates/core/../../examples/compaction_pipeline.rs

/root/repo/target/debug/examples/compaction_pipeline-3795bb7405353af9: crates/core/../../examples/compaction_pipeline.rs

crates/core/../../examples/compaction_pipeline.rs:
