/root/repo/target/debug/examples/gsm_separation-70da708a84afea94.d: crates/core/../../examples/gsm_separation.rs

/root/repo/target/debug/examples/gsm_separation-70da708a84afea94: crates/core/../../examples/gsm_separation.rs

crates/core/../../examples/gsm_separation.rs:
