/root/repo/target/debug/examples/quickstart-fb40815aaa092aa3.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-fb40815aaa092aa3.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
