/root/repo/target/debug/examples/adversary_demo-cd10d859df68f543.d: crates/core/../../examples/adversary_demo.rs

/root/repo/target/debug/examples/adversary_demo-cd10d859df68f543: crates/core/../../examples/adversary_demo.rs

crates/core/../../examples/adversary_demo.rs:
