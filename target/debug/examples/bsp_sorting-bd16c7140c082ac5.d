/root/repo/target/debug/examples/bsp_sorting-bd16c7140c082ac5.d: crates/core/../../examples/bsp_sorting.rs Cargo.toml

/root/repo/target/debug/examples/libbsp_sorting-bd16c7140c082ac5.rmeta: crates/core/../../examples/bsp_sorting.rs Cargo.toml

crates/core/../../examples/bsp_sorting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
