/root/repo/target/debug/examples/bsp_sorting-9f2f0151b4397218.d: crates/core/../../examples/bsp_sorting.rs

/root/repo/target/debug/examples/bsp_sorting-9f2f0151b4397218: crates/core/../../examples/bsp_sorting.rs

crates/core/../../examples/bsp_sorting.rs:
