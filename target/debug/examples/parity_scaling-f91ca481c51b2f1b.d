/root/repo/target/debug/examples/parity_scaling-f91ca481c51b2f1b.d: crates/core/../../examples/parity_scaling.rs

/root/repo/target/debug/examples/parity_scaling-f91ca481c51b2f1b: crates/core/../../examples/parity_scaling.rs

crates/core/../../examples/parity_scaling.rs:
