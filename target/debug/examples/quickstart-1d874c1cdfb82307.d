/root/repo/target/debug/examples/quickstart-1d874c1cdfb82307.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1d874c1cdfb82307: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
