/root/repo/target/debug/examples/adversary_demo-d2841d76941b961b.d: crates/core/../../examples/adversary_demo.rs Cargo.toml

/root/repo/target/debug/examples/libadversary_demo-d2841d76941b961b.rmeta: crates/core/../../examples/adversary_demo.rs Cargo.toml

crates/core/../../examples/adversary_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
