/root/repo/target/debug/deps/parbounds_boolean-fc3c30d5ac0992b5.d: crates/boolean/src/lib.rs crates/boolean/src/certificate.rs crates/boolean/src/families.rs crates/boolean/src/function.rs crates/boolean/src/poly.rs

/root/repo/target/debug/deps/libparbounds_boolean-fc3c30d5ac0992b5.rlib: crates/boolean/src/lib.rs crates/boolean/src/certificate.rs crates/boolean/src/families.rs crates/boolean/src/function.rs crates/boolean/src/poly.rs

/root/repo/target/debug/deps/libparbounds_boolean-fc3c30d5ac0992b5.rmeta: crates/boolean/src/lib.rs crates/boolean/src/certificate.rs crates/boolean/src/families.rs crates/boolean/src/function.rs crates/boolean/src/poly.rs

crates/boolean/src/lib.rs:
crates/boolean/src/certificate.rs:
crates/boolean/src/families.rs:
crates/boolean/src/function.rs:
crates/boolean/src/poly.rs:
