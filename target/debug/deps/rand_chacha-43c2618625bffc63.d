/root/repo/target/debug/deps/rand_chacha-43c2618625bffc63.d: crates/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-43c2618625bffc63.rmeta: crates/rand_chacha/src/lib.rs Cargo.toml

crates/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
