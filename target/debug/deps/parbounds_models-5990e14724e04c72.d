/root/repo/target/debug/deps/parbounds_models-5990e14724e04c72.d: crates/models/src/lib.rs crates/models/src/bsp.rs crates/models/src/contract.rs crates/models/src/cost.rs crates/models/src/error.rs crates/models/src/faults.rs crates/models/src/gsm.rs crates/models/src/qsm.rs crates/models/src/shared.rs crates/models/src/work.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds_models-5990e14724e04c72.rmeta: crates/models/src/lib.rs crates/models/src/bsp.rs crates/models/src/contract.rs crates/models/src/cost.rs crates/models/src/error.rs crates/models/src/faults.rs crates/models/src/gsm.rs crates/models/src/qsm.rs crates/models/src/shared.rs crates/models/src/work.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/bsp.rs:
crates/models/src/contract.rs:
crates/models/src/cost.rs:
crates/models/src/error.rs:
crates/models/src/faults.rs:
crates/models/src/gsm.rs:
crates/models/src/qsm.rs:
crates/models/src/shared.rs:
crates/models/src/work.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
