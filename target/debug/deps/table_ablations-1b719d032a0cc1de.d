/root/repo/target/debug/deps/table_ablations-1b719d032a0cc1de.d: crates/bench/src/bin/table_ablations.rs

/root/repo/target/debug/deps/table_ablations-1b719d032a0cc1de: crates/bench/src/bin/table_ablations.rs

crates/bench/src/bin/table_ablations.rs:
