/root/repo/target/debug/deps/table_rounds-eefc2c3070933c8d.d: crates/bench/src/bin/table_rounds.rs Cargo.toml

/root/repo/target/debug/deps/libtable_rounds-eefc2c3070933c8d.rmeta: crates/bench/src/bin/table_rounds.rs Cargo.toml

crates/bench/src/bin/table_rounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
