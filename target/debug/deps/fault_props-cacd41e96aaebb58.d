/root/repo/target/debug/deps/fault_props-cacd41e96aaebb58.d: crates/algorithms/tests/fault_props.rs Cargo.toml

/root/repo/target/debug/deps/libfault_props-cacd41e96aaebb58.rmeta: crates/algorithms/tests/fault_props.rs Cargo.toml

crates/algorithms/tests/fault_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
