/root/repo/target/debug/deps/table_sqsm-ada95caf0d205088.d: crates/bench/src/bin/table_sqsm.rs

/root/repo/target/debug/deps/table_sqsm-ada95caf0d205088: crates/bench/src/bin/table_sqsm.rs

crates/bench/src/bin/table_sqsm.rs:
