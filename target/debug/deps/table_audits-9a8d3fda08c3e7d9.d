/root/repo/target/debug/deps/table_audits-9a8d3fda08c3e7d9.d: crates/bench/src/bin/table_audits.rs Cargo.toml

/root/repo/target/debug/deps/libtable_audits-9a8d3fda08c3e7d9.rmeta: crates/bench/src/bin/table_audits.rs Cargo.toml

crates/bench/src/bin/table_audits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
