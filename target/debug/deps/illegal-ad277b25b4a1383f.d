/root/repo/target/debug/deps/illegal-ad277b25b4a1383f.d: crates/models/tests/illegal.rs Cargo.toml

/root/repo/target/debug/deps/libillegal-ad277b25b4a1383f.rmeta: crates/models/tests/illegal.rs Cargo.toml

crates/models/tests/illegal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
