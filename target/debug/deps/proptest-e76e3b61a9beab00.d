/root/repo/target/debug/deps/proptest-e76e3b61a9beab00.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-e76e3b61a9beab00.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
