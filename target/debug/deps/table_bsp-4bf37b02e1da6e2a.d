/root/repo/target/debug/deps/table_bsp-4bf37b02e1da6e2a.d: crates/bench/src/bin/table_bsp.rs

/root/repo/target/debug/deps/table_bsp-4bf37b02e1da6e2a: crates/bench/src/bin/table_bsp.rs

crates/bench/src/bin/table_bsp.rs:
