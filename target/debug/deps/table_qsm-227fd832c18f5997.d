/root/repo/target/debug/deps/table_qsm-227fd832c18f5997.d: crates/bench/src/bin/table_qsm.rs

/root/repo/target/debug/deps/table_qsm-227fd832c18f5997: crates/bench/src/bin/table_qsm.rs

crates/bench/src/bin/table_qsm.rs:
