/root/repo/target/debug/deps/cross_model-718a3efcb4db228f.d: crates/core/../../tests/cross_model.rs

/root/repo/target/debug/deps/cross_model-718a3efcb4db228f: crates/core/../../tests/cross_model.rs

crates/core/../../tests/cross_model.rs:
