/root/repo/target/debug/deps/illegal-5a7ff584d795aeab.d: crates/models/tests/illegal.rs

/root/repo/target/debug/deps/illegal-5a7ff584d795aeab: crates/models/tests/illegal.rs

crates/models/tests/illegal.rs:
