/root/repo/target/debug/deps/parbounds_algo-5bc2237a4bfd6a40.d: crates/algorithms/src/lib.rs crates/algorithms/src/balance.rs crates/algorithms/src/broadcast.rs crates/algorithms/src/bsp_algos.rs crates/algorithms/src/emulation.rs crates/algorithms/src/gsm_algos.rs crates/algorithms/src/lac.rs crates/algorithms/src/list_rank.rs crates/algorithms/src/or_tree.rs crates/algorithms/src/padded_sort.rs crates/algorithms/src/parity.rs crates/algorithms/src/prefix.rs crates/algorithms/src/reduce.rs crates/algorithms/src/reductions.rs crates/algorithms/src/rounds.rs crates/algorithms/src/util.rs crates/algorithms/src/workloads.rs

/root/repo/target/debug/deps/parbounds_algo-5bc2237a4bfd6a40: crates/algorithms/src/lib.rs crates/algorithms/src/balance.rs crates/algorithms/src/broadcast.rs crates/algorithms/src/bsp_algos.rs crates/algorithms/src/emulation.rs crates/algorithms/src/gsm_algos.rs crates/algorithms/src/lac.rs crates/algorithms/src/list_rank.rs crates/algorithms/src/or_tree.rs crates/algorithms/src/padded_sort.rs crates/algorithms/src/parity.rs crates/algorithms/src/prefix.rs crates/algorithms/src/reduce.rs crates/algorithms/src/reductions.rs crates/algorithms/src/rounds.rs crates/algorithms/src/util.rs crates/algorithms/src/workloads.rs

crates/algorithms/src/lib.rs:
crates/algorithms/src/balance.rs:
crates/algorithms/src/broadcast.rs:
crates/algorithms/src/bsp_algos.rs:
crates/algorithms/src/emulation.rs:
crates/algorithms/src/gsm_algos.rs:
crates/algorithms/src/lac.rs:
crates/algorithms/src/list_rank.rs:
crates/algorithms/src/or_tree.rs:
crates/algorithms/src/padded_sort.rs:
crates/algorithms/src/parity.rs:
crates/algorithms/src/prefix.rs:
crates/algorithms/src/reduce.rs:
crates/algorithms/src/reductions.rs:
crates/algorithms/src/rounds.rs:
crates/algorithms/src/util.rs:
crates/algorithms/src/workloads.rs:
