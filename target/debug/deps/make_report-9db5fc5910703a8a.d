/root/repo/target/debug/deps/make_report-9db5fc5910703a8a.d: crates/bench/src/bin/make_report.rs Cargo.toml

/root/repo/target/debug/deps/libmake_report-9db5fc5910703a8a.rmeta: crates/bench/src/bin/make_report.rs Cargo.toml

crates/bench/src/bin/make_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
