/root/repo/target/debug/deps/work_laws-8e6e36003591df3e.d: crates/core/../../tests/work_laws.rs

/root/repo/target/debug/deps/work_laws-8e6e36003591df3e: crates/core/../../tests/work_laws.rs

crates/core/../../tests/work_laws.rs:
