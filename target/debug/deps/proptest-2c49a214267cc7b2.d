/root/repo/target/debug/deps/proptest-2c49a214267cc7b2.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-2c49a214267cc7b2.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
