/root/repo/target/debug/deps/prop-b493ab26cd1d1ea9.d: crates/tables/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-b493ab26cd1d1ea9.rmeta: crates/tables/tests/prop.rs Cargo.toml

crates/tables/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
