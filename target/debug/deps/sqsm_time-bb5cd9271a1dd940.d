/root/repo/target/debug/deps/sqsm_time-bb5cd9271a1dd940.d: crates/bench/benches/sqsm_time.rs Cargo.toml

/root/repo/target/debug/deps/libsqsm_time-bb5cd9271a1dd940.rmeta: crates/bench/benches/sqsm_time.rs Cargo.toml

crates/bench/benches/sqsm_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
