/root/repo/target/debug/deps/stress-4fd9f2b99448116f.d: crates/models/tests/stress.rs

/root/repo/target/debug/deps/stress-4fd9f2b99448116f: crates/models/tests/stress.rs

crates/models/tests/stress.rs:
