/root/repo/target/debug/deps/table_related-498f85b6bda03d4b.d: crates/bench/src/bin/table_related.rs Cargo.toml

/root/repo/target/debug/deps/libtable_related-498f85b6bda03d4b.rmeta: crates/bench/src/bin/table_related.rs Cargo.toml

crates/bench/src/bin/table_related.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
