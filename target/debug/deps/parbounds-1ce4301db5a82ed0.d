/root/repo/target/debug/deps/parbounds-1ce4301db5a82ed0.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/parbounds-1ce4301db5a82ed0: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
