/root/repo/target/debug/deps/stress-c58f575b42d9f97b.d: crates/models/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-c58f575b42d9f97b.rmeta: crates/models/tests/stress.rs Cargo.toml

crates/models/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
