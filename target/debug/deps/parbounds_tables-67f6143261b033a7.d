/root/repo/target/debug/deps/parbounds_tables-67f6143261b033a7.d: crates/tables/src/lib.rs crates/tables/src/cells.rs crates/tables/src/gd.rs crates/tables/src/mapping.rs crates/tables/src/math.rs crates/tables/src/render.rs crates/tables/src/upper.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds_tables-67f6143261b033a7.rmeta: crates/tables/src/lib.rs crates/tables/src/cells.rs crates/tables/src/gd.rs crates/tables/src/mapping.rs crates/tables/src/math.rs crates/tables/src/render.rs crates/tables/src/upper.rs Cargo.toml

crates/tables/src/lib.rs:
crates/tables/src/cells.rs:
crates/tables/src/gd.rs:
crates/tables/src/mapping.rs:
crates/tables/src/math.rs:
crates/tables/src/render.rs:
crates/tables/src/upper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
