/root/repo/target/debug/deps/prop-51b8f51ce0138076.d: crates/boolean/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-51b8f51ce0138076.rmeta: crates/boolean/tests/prop.rs Cargo.toml

crates/boolean/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
