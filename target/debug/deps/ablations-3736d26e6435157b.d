/root/repo/target/debug/deps/ablations-3736d26e6435157b.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-3736d26e6435157b.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
