/root/repo/target/debug/deps/table_related-3ce10bc17ba0bca6.d: crates/bench/src/bin/table_related.rs

/root/repo/target/debug/deps/table_related-3ce10bc17ba0bca6: crates/bench/src/bin/table_related.rs

crates/bench/src/bin/table_related.rs:
