/root/repo/target/debug/deps/rounds-199052994d828f96.d: crates/bench/benches/rounds.rs Cargo.toml

/root/repo/target/debug/deps/librounds-199052994d828f96.rmeta: crates/bench/benches/rounds.rs Cargo.toml

crates/bench/benches/rounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
