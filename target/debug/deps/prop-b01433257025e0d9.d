/root/repo/target/debug/deps/prop-b01433257025e0d9.d: crates/models/tests/prop.rs

/root/repo/target/debug/deps/prop-b01433257025e0d9: crates/models/tests/prop.rs

crates/models/tests/prop.rs:
