/root/repo/target/debug/deps/table_rounds-6b449f5ce4b5a06c.d: crates/bench/src/bin/table_rounds.rs Cargo.toml

/root/repo/target/debug/deps/libtable_rounds-6b449f5ce4b5a06c.rmeta: crates/bench/src/bin/table_rounds.rs Cargo.toml

crates/bench/src/bin/table_rounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
