/root/repo/target/debug/deps/make_report-53e72eb16d47179e.d: crates/bench/src/bin/make_report.rs

/root/repo/target/debug/deps/make_report-53e72eb16d47179e: crates/bench/src/bin/make_report.rs

crates/bench/src/bin/make_report.rs:
