/root/repo/target/debug/deps/bsp_time-543f2fc446fbe883.d: crates/bench/benches/bsp_time.rs Cargo.toml

/root/repo/target/debug/deps/libbsp_time-543f2fc446fbe883.rmeta: crates/bench/benches/bsp_time.rs Cargo.toml

crates/bench/benches/bsp_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
