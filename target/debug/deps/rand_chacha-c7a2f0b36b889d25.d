/root/repo/target/debug/deps/rand_chacha-c7a2f0b36b889d25.d: crates/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-c7a2f0b36b889d25.rlib: crates/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-c7a2f0b36b889d25.rmeta: crates/rand_chacha/src/lib.rs

crates/rand_chacha/src/lib.rs:
