/root/repo/target/debug/deps/proptest-daea7250f510ba8d.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-daea7250f510ba8d: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
