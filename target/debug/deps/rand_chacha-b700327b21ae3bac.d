/root/repo/target/debug/deps/rand_chacha-b700327b21ae3bac.d: crates/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-b700327b21ae3bac.rmeta: crates/rand_chacha/src/lib.rs Cargo.toml

crates/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
