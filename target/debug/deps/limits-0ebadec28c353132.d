/root/repo/target/debug/deps/limits-0ebadec28c353132.d: crates/models/tests/limits.rs Cargo.toml

/root/repo/target/debug/deps/liblimits-0ebadec28c353132.rmeta: crates/models/tests/limits.rs Cargo.toml

crates/models/tests/limits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
