/root/repo/target/debug/deps/parbounds_tables-8c87fc9aecaa6792.d: crates/tables/src/lib.rs crates/tables/src/cells.rs crates/tables/src/gd.rs crates/tables/src/mapping.rs crates/tables/src/math.rs crates/tables/src/render.rs crates/tables/src/upper.rs

/root/repo/target/debug/deps/parbounds_tables-8c87fc9aecaa6792: crates/tables/src/lib.rs crates/tables/src/cells.rs crates/tables/src/gd.rs crates/tables/src/mapping.rs crates/tables/src/math.rs crates/tables/src/render.rs crates/tables/src/upper.rs

crates/tables/src/lib.rs:
crates/tables/src/cells.rs:
crates/tables/src/gd.rs:
crates/tables/src/mapping.rs:
crates/tables/src/math.rs:
crates/tables/src/render.rs:
crates/tables/src/upper.rs:
