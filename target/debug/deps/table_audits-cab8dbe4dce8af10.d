/root/repo/target/debug/deps/table_audits-cab8dbe4dce8af10.d: crates/bench/src/bin/table_audits.rs Cargo.toml

/root/repo/target/debug/deps/libtable_audits-cab8dbe4dce8af10.rmeta: crates/bench/src/bin/table_audits.rs Cargo.toml

crates/bench/src/bin/table_audits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
