/root/repo/target/debug/deps/prop-4edf1b8535501d72.d: crates/algorithms/tests/prop.rs

/root/repo/target/debug/deps/prop-4edf1b8535501d72: crates/algorithms/tests/prop.rs

crates/algorithms/tests/prop.rs:
