/root/repo/target/debug/deps/rand_chacha-4e60596c2b5e71b0.d: crates/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-4e60596c2b5e71b0: crates/rand_chacha/src/lib.rs

crates/rand_chacha/src/lib.rs:
