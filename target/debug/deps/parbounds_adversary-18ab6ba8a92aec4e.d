/root/repo/target/debug/deps/parbounds_adversary-18ab6ba8a92aec4e.d: crates/adversary/src/lib.rs crates/adversary/src/degree_audit.rs crates/adversary/src/goodness.rs crates/adversary/src/or_adversary.rs crates/adversary/src/or_refine.rs crates/adversary/src/random_adversary.rs crates/adversary/src/traces.rs crates/adversary/src/yao.rs

/root/repo/target/debug/deps/libparbounds_adversary-18ab6ba8a92aec4e.rlib: crates/adversary/src/lib.rs crates/adversary/src/degree_audit.rs crates/adversary/src/goodness.rs crates/adversary/src/or_adversary.rs crates/adversary/src/or_refine.rs crates/adversary/src/random_adversary.rs crates/adversary/src/traces.rs crates/adversary/src/yao.rs

/root/repo/target/debug/deps/libparbounds_adversary-18ab6ba8a92aec4e.rmeta: crates/adversary/src/lib.rs crates/adversary/src/degree_audit.rs crates/adversary/src/goodness.rs crates/adversary/src/or_adversary.rs crates/adversary/src/or_refine.rs crates/adversary/src/random_adversary.rs crates/adversary/src/traces.rs crates/adversary/src/yao.rs

crates/adversary/src/lib.rs:
crates/adversary/src/degree_audit.rs:
crates/adversary/src/goodness.rs:
crates/adversary/src/or_adversary.rs:
crates/adversary/src/or_refine.rs:
crates/adversary/src/random_adversary.rs:
crates/adversary/src/traces.rs:
crates/adversary/src/yao.rs:
