/root/repo/target/debug/deps/parbounds_tables-ae86e3f103e51a0b.d: crates/tables/src/lib.rs crates/tables/src/cells.rs crates/tables/src/gd.rs crates/tables/src/mapping.rs crates/tables/src/math.rs crates/tables/src/render.rs crates/tables/src/upper.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds_tables-ae86e3f103e51a0b.rmeta: crates/tables/src/lib.rs crates/tables/src/cells.rs crates/tables/src/gd.rs crates/tables/src/mapping.rs crates/tables/src/math.rs crates/tables/src/render.rs crates/tables/src/upper.rs Cargo.toml

crates/tables/src/lib.rs:
crates/tables/src/cells.rs:
crates/tables/src/gd.rs:
crates/tables/src/mapping.rs:
crates/tables/src/math.rs:
crates/tables/src/render.rs:
crates/tables/src/upper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
