/root/repo/target/debug/deps/parbounds-e1723c1294d1470e.d: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds-e1723c1294d1470e.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
