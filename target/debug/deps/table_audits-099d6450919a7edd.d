/root/repo/target/debug/deps/table_audits-099d6450919a7edd.d: crates/bench/src/bin/table_audits.rs

/root/repo/target/debug/deps/table_audits-099d6450919a7edd: crates/bench/src/bin/table_audits.rs

crates/bench/src/bin/table_audits.rs:
