/root/repo/target/debug/deps/cross_model-e7e2149e2dd4dd4d.d: crates/core/../../tests/cross_model.rs Cargo.toml

/root/repo/target/debug/deps/libcross_model-e7e2149e2dd4dd4d.rmeta: crates/core/../../tests/cross_model.rs Cargo.toml

crates/core/../../tests/cross_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
