/root/repo/target/debug/deps/parbounds_boolean-51ac8664a368e518.d: crates/boolean/src/lib.rs crates/boolean/src/certificate.rs crates/boolean/src/families.rs crates/boolean/src/function.rs crates/boolean/src/poly.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds_boolean-51ac8664a368e518.rmeta: crates/boolean/src/lib.rs crates/boolean/src/certificate.rs crates/boolean/src/families.rs crates/boolean/src/function.rs crates/boolean/src/poly.rs Cargo.toml

crates/boolean/src/lib.rs:
crates/boolean/src/certificate.rs:
crates/boolean/src/families.rs:
crates/boolean/src/function.rs:
crates/boolean/src/poly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
