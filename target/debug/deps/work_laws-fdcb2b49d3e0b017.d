/root/repo/target/debug/deps/work_laws-fdcb2b49d3e0b017.d: crates/core/../../tests/work_laws.rs Cargo.toml

/root/repo/target/debug/deps/libwork_laws-fdcb2b49d3e0b017.rmeta: crates/core/../../tests/work_laws.rs Cargo.toml

crates/core/../../tests/work_laws.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
