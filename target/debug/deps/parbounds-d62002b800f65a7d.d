/root/repo/target/debug/deps/parbounds-d62002b800f65a7d.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/report.rs crates/core/src/robustness.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libparbounds-d62002b800f65a7d.rlib: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/report.rs crates/core/src/robustness.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libparbounds-d62002b800f65a7d.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/report.rs crates/core/src/robustness.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/report.rs:
crates/core/src/robustness.rs:
crates/core/src/sweep.rs:
