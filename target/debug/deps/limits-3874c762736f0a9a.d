/root/repo/target/debug/deps/limits-3874c762736f0a9a.d: crates/models/tests/limits.rs

/root/repo/target/debug/deps/limits-3874c762736f0a9a: crates/models/tests/limits.rs

crates/models/tests/limits.rs:
