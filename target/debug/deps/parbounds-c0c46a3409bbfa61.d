/root/repo/target/debug/deps/parbounds-c0c46a3409bbfa61.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/report.rs crates/core/src/robustness.rs crates/core/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds-c0c46a3409bbfa61.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/report.rs crates/core/src/robustness.rs crates/core/src/sweep.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/report.rs:
crates/core/src/robustness.rs:
crates/core/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
