/root/repo/target/debug/deps/parbounds-b127ce7ef5ba590c.d: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds-b127ce7ef5ba590c.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
