/root/repo/target/debug/deps/parbounds_boolean-5785c9cbc650c435.d: crates/boolean/src/lib.rs crates/boolean/src/certificate.rs crates/boolean/src/families.rs crates/boolean/src/function.rs crates/boolean/src/poly.rs

/root/repo/target/debug/deps/parbounds_boolean-5785c9cbc650c435: crates/boolean/src/lib.rs crates/boolean/src/certificate.rs crates/boolean/src/families.rs crates/boolean/src/function.rs crates/boolean/src/poly.rs

crates/boolean/src/lib.rs:
crates/boolean/src/certificate.rs:
crates/boolean/src/families.rs:
crates/boolean/src/function.rs:
crates/boolean/src/poly.rs:
