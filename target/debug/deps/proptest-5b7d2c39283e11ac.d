/root/repo/target/debug/deps/proptest-5b7d2c39283e11ac.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-5b7d2c39283e11ac.rlib: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-5b7d2c39283e11ac.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
