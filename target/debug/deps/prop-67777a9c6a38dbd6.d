/root/repo/target/debug/deps/prop-67777a9c6a38dbd6.d: crates/tables/tests/prop.rs

/root/repo/target/debug/deps/prop-67777a9c6a38dbd6: crates/tables/tests/prop.rs

crates/tables/tests/prop.rs:
