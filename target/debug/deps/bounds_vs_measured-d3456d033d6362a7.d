/root/repo/target/debug/deps/bounds_vs_measured-d3456d033d6362a7.d: crates/core/../../tests/bounds_vs_measured.rs Cargo.toml

/root/repo/target/debug/deps/libbounds_vs_measured-d3456d033d6362a7.rmeta: crates/core/../../tests/bounds_vs_measured.rs Cargo.toml

crates/core/../../tests/bounds_vs_measured.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
