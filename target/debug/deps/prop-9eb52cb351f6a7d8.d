/root/repo/target/debug/deps/prop-9eb52cb351f6a7d8.d: crates/models/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-9eb52cb351f6a7d8.rmeta: crates/models/tests/prop.rs Cargo.toml

crates/models/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
