/root/repo/target/debug/deps/prop-d6380d12904f801c.d: crates/algorithms/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-d6380d12904f801c.rmeta: crates/algorithms/tests/prop.rs Cargo.toml

crates/algorithms/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
