/root/repo/target/debug/deps/parbounds_bench-563a4f112d4198e5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libparbounds_bench-563a4f112d4198e5.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libparbounds_bench-563a4f112d4198e5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
