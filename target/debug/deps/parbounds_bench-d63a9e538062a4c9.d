/root/repo/target/debug/deps/parbounds_bench-d63a9e538062a4c9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/parbounds_bench-d63a9e538062a4c9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
