/root/repo/target/debug/deps/parbounds_bench-973474ff3f52fdc7.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds_bench-973474ff3f52fdc7.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
