/root/repo/target/debug/deps/table_qsm-e87ef9b3223ad340.d: crates/bench/src/bin/table_qsm.rs Cargo.toml

/root/repo/target/debug/deps/libtable_qsm-e87ef9b3223ad340.rmeta: crates/bench/src/bin/table_qsm.rs Cargo.toml

crates/bench/src/bin/table_qsm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
