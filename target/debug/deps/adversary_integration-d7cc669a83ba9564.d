/root/repo/target/debug/deps/adversary_integration-d7cc669a83ba9564.d: crates/core/../../tests/adversary_integration.rs

/root/repo/target/debug/deps/adversary_integration-d7cc669a83ba9564: crates/core/../../tests/adversary_integration.rs

crates/core/../../tests/adversary_integration.rs:
