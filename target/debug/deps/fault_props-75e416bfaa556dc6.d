/root/repo/target/debug/deps/fault_props-75e416bfaa556dc6.d: crates/algorithms/tests/fault_props.rs

/root/repo/target/debug/deps/fault_props-75e416bfaa556dc6: crates/algorithms/tests/fault_props.rs

crates/algorithms/tests/fault_props.rs:
