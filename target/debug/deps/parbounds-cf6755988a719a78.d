/root/repo/target/debug/deps/parbounds-cf6755988a719a78.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/report.rs crates/core/src/robustness.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/parbounds-cf6755988a719a78: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/report.rs crates/core/src/robustness.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/report.rs:
crates/core/src/robustness.rs:
crates/core/src/sweep.rs:
