/root/repo/target/debug/deps/parbounds_tables-22f794ed930d0dbf.d: crates/tables/src/lib.rs crates/tables/src/cells.rs crates/tables/src/gd.rs crates/tables/src/mapping.rs crates/tables/src/math.rs crates/tables/src/render.rs crates/tables/src/upper.rs

/root/repo/target/debug/deps/libparbounds_tables-22f794ed930d0dbf.rlib: crates/tables/src/lib.rs crates/tables/src/cells.rs crates/tables/src/gd.rs crates/tables/src/mapping.rs crates/tables/src/math.rs crates/tables/src/render.rs crates/tables/src/upper.rs

/root/repo/target/debug/deps/libparbounds_tables-22f794ed930d0dbf.rmeta: crates/tables/src/lib.rs crates/tables/src/cells.rs crates/tables/src/gd.rs crates/tables/src/mapping.rs crates/tables/src/math.rs crates/tables/src/render.rs crates/tables/src/upper.rs

crates/tables/src/lib.rs:
crates/tables/src/cells.rs:
crates/tables/src/gd.rs:
crates/tables/src/mapping.rs:
crates/tables/src/math.rs:
crates/tables/src/render.rs:
crates/tables/src/upper.rs:
