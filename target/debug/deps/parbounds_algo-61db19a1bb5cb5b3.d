/root/repo/target/debug/deps/parbounds_algo-61db19a1bb5cb5b3.d: crates/algorithms/src/lib.rs crates/algorithms/src/balance.rs crates/algorithms/src/broadcast.rs crates/algorithms/src/bsp_algos.rs crates/algorithms/src/emulation.rs crates/algorithms/src/gsm_algos.rs crates/algorithms/src/lac.rs crates/algorithms/src/list_rank.rs crates/algorithms/src/or_tree.rs crates/algorithms/src/padded_sort.rs crates/algorithms/src/parity.rs crates/algorithms/src/prefix.rs crates/algorithms/src/reduce.rs crates/algorithms/src/reductions.rs crates/algorithms/src/rounds.rs crates/algorithms/src/util.rs crates/algorithms/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds_algo-61db19a1bb5cb5b3.rmeta: crates/algorithms/src/lib.rs crates/algorithms/src/balance.rs crates/algorithms/src/broadcast.rs crates/algorithms/src/bsp_algos.rs crates/algorithms/src/emulation.rs crates/algorithms/src/gsm_algos.rs crates/algorithms/src/lac.rs crates/algorithms/src/list_rank.rs crates/algorithms/src/or_tree.rs crates/algorithms/src/padded_sort.rs crates/algorithms/src/parity.rs crates/algorithms/src/prefix.rs crates/algorithms/src/reduce.rs crates/algorithms/src/reductions.rs crates/algorithms/src/rounds.rs crates/algorithms/src/util.rs crates/algorithms/src/workloads.rs Cargo.toml

crates/algorithms/src/lib.rs:
crates/algorithms/src/balance.rs:
crates/algorithms/src/broadcast.rs:
crates/algorithms/src/bsp_algos.rs:
crates/algorithms/src/emulation.rs:
crates/algorithms/src/gsm_algos.rs:
crates/algorithms/src/lac.rs:
crates/algorithms/src/list_rank.rs:
crates/algorithms/src/or_tree.rs:
crates/algorithms/src/padded_sort.rs:
crates/algorithms/src/parity.rs:
crates/algorithms/src/prefix.rs:
crates/algorithms/src/reduce.rs:
crates/algorithms/src/reductions.rs:
crates/algorithms/src/rounds.rs:
crates/algorithms/src/util.rs:
crates/algorithms/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
