/root/repo/target/debug/deps/integration-c5f21a433ca11531.d: crates/core/../../tests/integration.rs

/root/repo/target/debug/deps/integration-c5f21a433ca11531: crates/core/../../tests/integration.rs

crates/core/../../tests/integration.rs:
