/root/repo/target/debug/deps/prop_bsp-356317575581fb79.d: crates/models/tests/prop_bsp.rs Cargo.toml

/root/repo/target/debug/deps/libprop_bsp-356317575581fb79.rmeta: crates/models/tests/prop_bsp.rs Cargo.toml

crates/models/tests/prop_bsp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
