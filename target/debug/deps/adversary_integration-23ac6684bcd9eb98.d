/root/repo/target/debug/deps/adversary_integration-23ac6684bcd9eb98.d: crates/core/../../tests/adversary_integration.rs Cargo.toml

/root/repo/target/debug/deps/libadversary_integration-23ac6684bcd9eb98.rmeta: crates/core/../../tests/adversary_integration.rs Cargo.toml

crates/core/../../tests/adversary_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
