/root/repo/target/debug/deps/table_qsm-8cba97cab9d322ca.d: crates/bench/src/bin/table_qsm.rs Cargo.toml

/root/repo/target/debug/deps/libtable_qsm-8cba97cab9d322ca.rmeta: crates/bench/src/bin/table_qsm.rs Cargo.toml

crates/bench/src/bin/table_qsm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
