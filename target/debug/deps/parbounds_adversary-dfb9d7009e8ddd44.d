/root/repo/target/debug/deps/parbounds_adversary-dfb9d7009e8ddd44.d: crates/adversary/src/lib.rs crates/adversary/src/degree_audit.rs crates/adversary/src/goodness.rs crates/adversary/src/or_adversary.rs crates/adversary/src/or_refine.rs crates/adversary/src/random_adversary.rs crates/adversary/src/traces.rs crates/adversary/src/yao.rs

/root/repo/target/debug/deps/parbounds_adversary-dfb9d7009e8ddd44: crates/adversary/src/lib.rs crates/adversary/src/degree_audit.rs crates/adversary/src/goodness.rs crates/adversary/src/or_adversary.rs crates/adversary/src/or_refine.rs crates/adversary/src/random_adversary.rs crates/adversary/src/traces.rs crates/adversary/src/yao.rs

crates/adversary/src/lib.rs:
crates/adversary/src/degree_audit.rs:
crates/adversary/src/goodness.rs:
crates/adversary/src/or_adversary.rs:
crates/adversary/src/or_refine.rs:
crates/adversary/src/random_adversary.rs:
crates/adversary/src/traces.rs:
crates/adversary/src/yao.rs:
