/root/repo/target/debug/deps/table_related-8bd98bcc7df76629.d: crates/bench/src/bin/table_related.rs Cargo.toml

/root/repo/target/debug/deps/libtable_related-8bd98bcc7df76629.rmeta: crates/bench/src/bin/table_related.rs Cargo.toml

crates/bench/src/bin/table_related.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
