/root/repo/target/debug/deps/prop-ce873037d66fbda6.d: crates/adversary/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-ce873037d66fbda6.rmeta: crates/adversary/tests/prop.rs Cargo.toml

crates/adversary/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
