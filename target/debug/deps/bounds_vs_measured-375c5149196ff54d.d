/root/repo/target/debug/deps/bounds_vs_measured-375c5149196ff54d.d: crates/core/../../tests/bounds_vs_measured.rs

/root/repo/target/debug/deps/bounds_vs_measured-375c5149196ff54d: crates/core/../../tests/bounds_vs_measured.rs

crates/core/../../tests/bounds_vs_measured.rs:
