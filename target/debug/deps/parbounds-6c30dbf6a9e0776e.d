/root/repo/target/debug/deps/parbounds-6c30dbf6a9e0776e.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/report.rs crates/core/src/robustness.rs crates/core/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds-6c30dbf6a9e0776e.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/report.rs crates/core/src/robustness.rs crates/core/src/sweep.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/report.rs:
crates/core/src/robustness.rs:
crates/core/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
