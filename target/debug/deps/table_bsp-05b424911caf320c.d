/root/repo/target/debug/deps/table_bsp-05b424911caf320c.d: crates/bench/src/bin/table_bsp.rs Cargo.toml

/root/repo/target/debug/deps/libtable_bsp-05b424911caf320c.rmeta: crates/bench/src/bin/table_bsp.rs Cargo.toml

crates/bench/src/bin/table_bsp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
