/root/repo/target/debug/deps/parbounds_adversary-5429a288400c6d01.d: crates/adversary/src/lib.rs crates/adversary/src/degree_audit.rs crates/adversary/src/goodness.rs crates/adversary/src/or_adversary.rs crates/adversary/src/or_refine.rs crates/adversary/src/random_adversary.rs crates/adversary/src/traces.rs crates/adversary/src/yao.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds_adversary-5429a288400c6d01.rmeta: crates/adversary/src/lib.rs crates/adversary/src/degree_audit.rs crates/adversary/src/goodness.rs crates/adversary/src/or_adversary.rs crates/adversary/src/or_refine.rs crates/adversary/src/random_adversary.rs crates/adversary/src/traces.rs crates/adversary/src/yao.rs Cargo.toml

crates/adversary/src/lib.rs:
crates/adversary/src/degree_audit.rs:
crates/adversary/src/goodness.rs:
crates/adversary/src/or_adversary.rs:
crates/adversary/src/or_refine.rs:
crates/adversary/src/random_adversary.rs:
crates/adversary/src/traces.rs:
crates/adversary/src/yao.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
