/root/repo/target/debug/deps/table_sqsm-4bb36e81ba224c5e.d: crates/bench/src/bin/table_sqsm.rs Cargo.toml

/root/repo/target/debug/deps/libtable_sqsm-4bb36e81ba224c5e.rmeta: crates/bench/src/bin/table_sqsm.rs Cargo.toml

crates/bench/src/bin/table_sqsm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
