/root/repo/target/debug/deps/prop-99c674ac7d18e582.d: crates/adversary/tests/prop.rs

/root/repo/target/debug/deps/prop-99c674ac7d18e582: crates/adversary/tests/prop.rs

crates/adversary/tests/prop.rs:
