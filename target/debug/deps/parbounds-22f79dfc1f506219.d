/root/repo/target/debug/deps/parbounds-22f79dfc1f506219.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/parbounds-22f79dfc1f506219: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
