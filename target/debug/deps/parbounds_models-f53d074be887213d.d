/root/repo/target/debug/deps/parbounds_models-f53d074be887213d.d: crates/models/src/lib.rs crates/models/src/bsp.rs crates/models/src/cost.rs crates/models/src/error.rs crates/models/src/faults.rs crates/models/src/gsm.rs crates/models/src/qsm.rs crates/models/src/shared.rs crates/models/src/work.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds_models-f53d074be887213d.rmeta: crates/models/src/lib.rs crates/models/src/bsp.rs crates/models/src/cost.rs crates/models/src/error.rs crates/models/src/faults.rs crates/models/src/gsm.rs crates/models/src/qsm.rs crates/models/src/shared.rs crates/models/src/work.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/bsp.rs:
crates/models/src/cost.rs:
crates/models/src/error.rs:
crates/models/src/faults.rs:
crates/models/src/gsm.rs:
crates/models/src/qsm.rs:
crates/models/src/shared.rs:
crates/models/src/work.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
