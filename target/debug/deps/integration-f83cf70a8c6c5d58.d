/root/repo/target/debug/deps/integration-f83cf70a8c6c5d58.d: crates/core/../../tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-f83cf70a8c6c5d58.rmeta: crates/core/../../tests/integration.rs Cargo.toml

crates/core/../../tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
