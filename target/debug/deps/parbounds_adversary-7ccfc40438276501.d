/root/repo/target/debug/deps/parbounds_adversary-7ccfc40438276501.d: crates/adversary/src/lib.rs crates/adversary/src/degree_audit.rs crates/adversary/src/goodness.rs crates/adversary/src/or_adversary.rs crates/adversary/src/or_refine.rs crates/adversary/src/random_adversary.rs crates/adversary/src/traces.rs crates/adversary/src/yao.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds_adversary-7ccfc40438276501.rmeta: crates/adversary/src/lib.rs crates/adversary/src/degree_audit.rs crates/adversary/src/goodness.rs crates/adversary/src/or_adversary.rs crates/adversary/src/or_refine.rs crates/adversary/src/random_adversary.rs crates/adversary/src/traces.rs crates/adversary/src/yao.rs Cargo.toml

crates/adversary/src/lib.rs:
crates/adversary/src/degree_audit.rs:
crates/adversary/src/goodness.rs:
crates/adversary/src/or_adversary.rs:
crates/adversary/src/or_refine.rs:
crates/adversary/src/random_adversary.rs:
crates/adversary/src/traces.rs:
crates/adversary/src/yao.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
