/root/repo/target/debug/deps/table_ablations-4aeb4c6fa6f22334.d: crates/bench/src/bin/table_ablations.rs Cargo.toml

/root/repo/target/debug/deps/libtable_ablations-4aeb4c6fa6f22334.rmeta: crates/bench/src/bin/table_ablations.rs Cargo.toml

crates/bench/src/bin/table_ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
