/root/repo/target/debug/deps/parbounds_models-3fb2463ef9fc8ebd.d: crates/models/src/lib.rs crates/models/src/bsp.rs crates/models/src/contract.rs crates/models/src/cost.rs crates/models/src/error.rs crates/models/src/faults.rs crates/models/src/gsm.rs crates/models/src/qsm.rs crates/models/src/shared.rs crates/models/src/work.rs

/root/repo/target/debug/deps/parbounds_models-3fb2463ef9fc8ebd: crates/models/src/lib.rs crates/models/src/bsp.rs crates/models/src/contract.rs crates/models/src/cost.rs crates/models/src/error.rs crates/models/src/faults.rs crates/models/src/gsm.rs crates/models/src/qsm.rs crates/models/src/shared.rs crates/models/src/work.rs

crates/models/src/lib.rs:
crates/models/src/bsp.rs:
crates/models/src/contract.rs:
crates/models/src/cost.rs:
crates/models/src/error.rs:
crates/models/src/faults.rs:
crates/models/src/gsm.rs:
crates/models/src/qsm.rs:
crates/models/src/shared.rs:
crates/models/src/work.rs:
