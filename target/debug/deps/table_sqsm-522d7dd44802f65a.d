/root/repo/target/debug/deps/table_sqsm-522d7dd44802f65a.d: crates/bench/src/bin/table_sqsm.rs Cargo.toml

/root/repo/target/debug/deps/libtable_sqsm-522d7dd44802f65a.rmeta: crates/bench/src/bin/table_sqsm.rs Cargo.toml

crates/bench/src/bin/table_sqsm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
