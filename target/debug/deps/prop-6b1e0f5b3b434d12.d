/root/repo/target/debug/deps/prop-6b1e0f5b3b434d12.d: crates/boolean/tests/prop.rs

/root/repo/target/debug/deps/prop-6b1e0f5b3b434d12: crates/boolean/tests/prop.rs

crates/boolean/tests/prop.rs:
