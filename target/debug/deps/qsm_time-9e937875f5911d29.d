/root/repo/target/debug/deps/qsm_time-9e937875f5911d29.d: crates/bench/benches/qsm_time.rs Cargo.toml

/root/repo/target/debug/deps/libqsm_time-9e937875f5911d29.rmeta: crates/bench/benches/qsm_time.rs Cargo.toml

crates/bench/benches/qsm_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
