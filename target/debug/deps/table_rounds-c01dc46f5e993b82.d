/root/repo/target/debug/deps/table_rounds-c01dc46f5e993b82.d: crates/bench/src/bin/table_rounds.rs

/root/repo/target/debug/deps/table_rounds-c01dc46f5e993b82: crates/bench/src/bin/table_rounds.rs

crates/bench/src/bin/table_rounds.rs:
