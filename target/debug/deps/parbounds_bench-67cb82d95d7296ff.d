/root/repo/target/debug/deps/parbounds_bench-67cb82d95d7296ff.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparbounds_bench-67cb82d95d7296ff.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
