/root/repo/target/debug/deps/table_ablations-195c2f7a4fd9197f.d: crates/bench/src/bin/table_ablations.rs Cargo.toml

/root/repo/target/debug/deps/libtable_ablations-195c2f7a4fd9197f.rmeta: crates/bench/src/bin/table_ablations.rs Cargo.toml

crates/bench/src/bin/table_ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
