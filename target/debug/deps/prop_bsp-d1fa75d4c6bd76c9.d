/root/repo/target/debug/deps/prop_bsp-d1fa75d4c6bd76c9.d: crates/models/tests/prop_bsp.rs

/root/repo/target/debug/deps/prop_bsp-d1fa75d4c6bd76c9: crates/models/tests/prop_bsp.rs

crates/models/tests/prop_bsp.rs:
