//! End-to-end integration: every table-row generator produces coherent
//! rows, and the full Section 6 pipeline (CLB through all three reductions)
//! holds together across crates.

use parbounds::algo::reductions::{
    clb_via_lac, clb_via_load_balance, clb_via_padded_sort, parity_via_list_ranking,
};
use parbounds::algo::workloads::{self, ClbInstance};
use parbounds::models::QsmMachine;
use parbounds::tables::{Model, Problem};
use parbounds::{bsp_time_row, qsm_time_row, qsm_unit_cr_parity, rounds_row, sqsm_time_row};

#[test]
fn all_time_rows_generate_and_order_sanely() {
    for problem in [Problem::Parity, Problem::Or, Problem::Lac] {
        let q = qsm_time_row(problem, 1 << 10, 4, 1).unwrap();
        let s = sqsm_time_row(problem, 1 << 10, 4, 1).unwrap();
        let b = bsp_time_row(problem, 1 << 10, 2, 16, 32, 1).unwrap();
        for row in [&q, &s, &b] {
            assert!(row.det_lb.is_finite() && row.det_lb > 0.0, "{row:?}");
            assert!(row.rand_lb.is_finite() && row.rand_lb > 0.0, "{row:?}");
            assert!(row.upper_formula.is_finite(), "{row:?}");
            if let Some(m) = row.measured {
                assert!(m > 0.0);
            }
        }
        // The randomized lower bound never exceeds the deterministic one
        // by more than small-n noise for Parity/OR.
        if problem != Problem::Lac {
            assert!(q.rand_lb <= q.det_lb * 2.0, "{q:?}");
        }
    }
}

#[test]
fn rounds_rows_cover_all_nine_cells() {
    let (n, g, l, p) = (1 << 12, 2, 8, 1 << 9);
    let mut measured_cells = 0;
    for problem in [Problem::Parity, Problem::Or, Problem::Lac] {
        for model in [Model::Qsm, Model::SQsm, Model::Bsp] {
            let row = rounds_row(problem, model, n, g, l, p, 3).unwrap();
            assert!(row.lower.is_finite() && row.lower > 0.0);
            assert!(row.upper_formula >= 1.0);
            if row.measured.is_some() {
                measured_cells += 1;
            }
        }
    }
    // All cells except BSP-LAC have a measured rounds algorithm.
    assert_eq!(measured_cells, 8);
}

#[test]
fn unit_cr_parity_row_is_near_theta() {
    for g in [4u64, 16] {
        let (measured, theta) = qsm_unit_cr_parity(1 << 10, g, 7).unwrap();
        let ratio = measured / theta;
        assert!((1.0..=10.0).contains(&ratio), "g={g}: ratio {ratio}");
    }
}

#[test]
fn clb_pipeline_three_ways() {
    let machine = QsmMachine::qsm(2);
    let inst = ClbInstance::generate(1024, 32, 9);
    let color = 3;
    let a = clb_via_load_balance(&machine, &inst, 64, color)
        .unwrap()
        .unwrap();
    assert!(inst.verify_solution(color, &a.dest));
    if let Some(b) = clb_via_lac(&machine, &inst, color, 5).unwrap() {
        assert!(inst.verify_solution(color, &b.dest));
        assert_eq!(b.dest.len(), a.dest.len());
    }
    let c = clb_via_padded_sort(&machine, &inst, color, 5)
        .unwrap()
        .unwrap();
    assert!(inst.verify_solution(color, &c.dest));
}

#[test]
fn parity_reduction_agrees_with_direct_algorithms() {
    let machine = QsmMachine::qsm(4);
    for n in [16usize, 257, 1024] {
        let bits = workloads::random_bits(n, n as u64);
        let direct = parbounds::algo::reduce::parity_read_tree(&machine, &bits, 2)
            .unwrap()
            .value;
        let via_list = parity_via_list_ranking(&machine, &bits).unwrap().value;
        assert_eq!(direct, via_list, "n={n}");
    }
}

#[test]
fn workloads_are_deterministic_across_calls() {
    assert_eq!(
        workloads::random_bits(100, 5),
        workloads::random_bits(100, 5)
    );
    assert_eq!(
        workloads::uniform_values(50, 5),
        workloads::uniform_values(50, 5)
    );
    assert_eq!(
        workloads::sparse_items(64, 8, 5),
        workloads::sparse_items(64, 8, 5)
    );
    let a = ClbInstance::generate(32, 2, 5);
    let b = ClbInstance::generate(32, 2, 5);
    assert_eq!(a.colors, b.colors);
}
