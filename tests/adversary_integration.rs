//! Lower-bound machinery against the *real* algorithm implementations:
//! degree audits of parity programs, the OR adversary run against the
//! simulator-backed OR algorithms, and trace-ensemble invariants on tree
//! programs (the Lemma 5.1 growth shapes).

use parbounds::adversary::{
    audit_parity_program, or_success_rate, Entity, GsmRefine, OrDistribution, TraceEnsemble,
    UniformBits,
};
use parbounds::algo::or_tree;
use parbounds::boolean::{families, poly};
use parbounds::models::{GsmEnv, GsmFnProgram, GsmMachine, GsmProgram, QsmMachine, Status, Word};

/// Fan-in-2 GSM tree parity used throughout (pids are internal nodes).
fn tree_parity(r: usize) -> (impl GsmProgram<Proc = ()> + use<>, usize) {
    let mut nodes = Vec::new();
    let mut bases = vec![0usize];
    let (mut width, mut next, mut level, mut out) = (r, r, 1usize, 0usize);
    while width > 1 {
        let w2 = width.div_ceil(2);
        bases.push(next);
        out = next;
        for j in 0..w2 {
            nodes.push((level, j, width));
        }
        next += w2;
        width = w2;
        level += 1;
    }
    let prog = GsmFnProgram::new(
        nodes.len().max(1),
        move |_| (),
        move |pid, _, env: &mut GsmEnv<'_>| {
            let (level, j, prev_width) = nodes[pid];
            let read_phase = 2 * (level - 1);
            match env.phase() {
                t if t < read_phase => Status::Active,
                t if t == read_phase => {
                    env.read(bases[level - 1] + 2 * j);
                    if 2 * j + 1 < prev_width {
                        env.read(bases[level - 1] + 2 * j + 1);
                    }
                    Status::Active
                }
                _ => {
                    let x: Word = env
                        .delivered()
                        .iter()
                        .map(|(_, c)| c.iter().fold(0, |a, &b| a ^ (b & 1)))
                        .fold(0, |a, b| a ^ b);
                    env.write(bases[level] + j, x);
                    Status::Done
                }
            }
        },
    );
    (prog, out)
}

#[test]
fn degree_audit_passes_for_verified_parity_across_gsm_parameters() {
    for r in [4usize, 6, 9] {
        for (alpha, beta, gamma) in [(1u64, 1u64, 1u64), (2, 1, 1), (1, 3, 1)] {
            let m = GsmMachine::new(alpha, beta, gamma);
            let (_, out) = tree_parity(r);
            let report = audit_parity_program(&m, || tree_parity(r).0, out, r).unwrap();
            assert!(report.correct, "r={r} α={alpha} β={beta}");
            assert!(report.worst.supports_degree(r));
            assert!(report.worst.satisfies_time_bound(r));
        }
    }
}

#[test]
fn deg_parity_underlies_the_audit() {
    // The audit's premise — deg(Parity_r) = r — verified through the
    // boolean crate for the sizes the audits run at.
    for r in 1..=10 {
        assert_eq!(poly::degree(&families::parity(r)), r);
    }
}

#[test]
fn know_sets_grow_like_lemma_5_1_on_tree_programs() {
    // In a fan-in-2 tree, a level-l node's trace depends on exactly its 2^l
    // subtree leaves: |Know| doubles per level — well inside the k_t
    // recurrence of Lemma 5.1.
    let r = 8;
    let m = GsmMachine::new(1, 1, 1);
    let ens = TraceEnsemble::build(&m, || tree_parity(r).0, r).unwrap();
    // Processor 0 is the first level-1 node: it reads leaves 0 and 1 in
    // phase 0, so from t = 1 onward it knows exactly {x0, x1}.
    assert_eq!(ens.know(Entity::Proc(0), 1).count_ones(), 2);
    // The root (last processor) eventually knows everything.
    let root = Entity::Proc(6); // widths 8->4->2->1: procs 0..3,4..5,6
    let t = ens.num_phases();
    assert_eq!(ens.know(root, t), 0xff);
    // Lemma 5.1-style cap: every entity's Know at time t is within the
    // fan-in^t envelope.
    for v in ens.entities() {
        for t in 1..=ens.num_phases() {
            let know = ens.know(v, t).count_ones();
            assert!(know <= 1 << t.div_ceil(2).min(8), "{v:?} t={t} know={know}");
        }
    }
}

#[test]
fn aff_cell_counts_stay_bounded_on_trees() {
    let r = 8;
    let m = GsmMachine::new(1, 1, 1);
    let ens = TraceEnsemble::build(&m, || tree_parity(r).0, r).unwrap();
    let t = ens.num_phases();
    for i in 0..r {
        // An input affects its leaf cell plus its root-path internal cells:
        // at most 1 + log2(r) cells.
        let aff = ens.aff_cell(i, t).len();
        assert!(aff <= 1 + 3, "input {i}: {aff} cells");
        // And its root-path processors: at most log2(r).
        assert!(ens.aff_proc(i, t).len() <= 3);
    }
}

#[test]
fn or_adversary_vs_simulator_backed_algorithms() {
    // The honest write-combining OR *run on the QSM simulator* answers the
    // adversary's samples perfectly; an input-truncating variant collapses.
    let n = 512;
    let dist = OrDistribution::new(n, 2, 1);
    let machine = QsmMachine::qsm(4);

    let honest = |input: &[Word]| or_tree::or_write_tree(&machine, input, 4).unwrap().value;
    assert_eq!(or_success_rate(honest, &dist, 300, 1), 1.0);

    let truncated = |input: &[Word]| {
        or_tree::or_write_tree(&machine, &input[..8], 4)
            .unwrap()
            .value
    };
    let rate = or_success_rate(truncated, &dist, 300, 2);
    assert!(rate < 0.9, "rate {rate}");
}

#[test]
fn gsm_refine_budget_matches_lemma_5_3_flavour() {
    // REFINE fixes only certificate-sized input sets per call: across a
    // whole GENERATE run on the tree program it must fix at most r inputs
    // (they are never unfixed) and stay refinable throughout.
    use parbounds::adversary::generate;
    use rand::SeedableRng;
    let r = 8;
    let m = GsmMachine::new(1, 1, 1);
    let mut refiner = GsmRefine::build(&m, || tree_parity(r).0, r).unwrap();
    let dist = UniformBits(r);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let (trajectory, _) = generate(&mut refiner, &dist, 6, &mut rng);
    for (_, f) in &trajectory {
        assert!(f.iter().filter(|v| v.is_some()).count() <= r);
    }
    // Step bounds are the true per-phase big-step counts: for the fan-in-2
    // tree every phase needs at most 2 big-steps on GSM(1,1).
    let ts: Vec<u64> = trajectory.iter().map(|&(t, _)| t).collect();
    for w in ts.windows(2) {
        assert!(w[1] - w[0] <= 2, "step bound jumped by {}", w[1] - w[0]);
    }
}
