//! Bounds vs measurements, swept: for every Table 1 time row, the measured
//! cost of our Section 8 algorithm must (a) dominate the matching lower
//! bound and (b) track the upper-bound formula with a flat ratio — the
//! "shape holds" criterion of EXPERIMENTS.md.

use parbounds::tables::Problem;
use parbounds::{bsp_time_row, qsm_time_row, sqsm_time_row, TableRow};

fn shape_ratios(rows: &[TableRow]) -> Vec<f64> {
    rows.iter().map(|r| r.shape_ratio().unwrap()).collect()
}

/// Max/min of the ratio column: flat sweeps stay below a small constant.
fn flatness(ratios: &[f64]) -> f64 {
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    max / min
}

#[test]
fn qsm_parity_and_or_shapes_are_flat() {
    for problem in [Problem::Parity, Problem::Or] {
        let mut rows = Vec::new();
        for n in [1usize << 8, 1 << 10, 1 << 12, 1 << 14] {
            for g in [2u64, 4, 8, 16] {
                rows.push(qsm_time_row(problem, n, g, 1).unwrap());
            }
        }
        for row in &rows {
            assert!(row.measured_respects_lower_bound(false, 1.0), "{row:?}");
        }
        let f = flatness(&shape_ratios(&rows));
        assert!(f <= 3.0, "{problem:?}: ratio spread {f}");
    }
}

#[test]
fn sqsm_parity_theta_is_exactly_three_g_per_level() {
    // The Θ(g·log n) row: our binary tree costs exactly 3g per level, so
    // measured / (g·log n) is exactly 3 at powers of two.
    for n in [1usize << 8, 1 << 12] {
        for g in [2u64, 16] {
            let row = sqsm_time_row(Problem::Parity, n, g, 1).unwrap();
            assert_eq!(
                row.measured.unwrap(),
                3.0 * row.upper_formula,
                "n={n} g={g}"
            );
        }
    }
}

#[test]
fn lac_measured_sits_between_rand_lb_and_log_factor_of_ub() {
    // Our dart thrower is the simple variant: it tracks O(g·log(n)) in the
    // worst case but empirically lands near the UB formula; it must always
    // dominate the randomized LB.
    for n in [1usize << 10, 1 << 14] {
        for g in [2u64, 8] {
            for row in [
                qsm_time_row(Problem::Lac, n, g, 2).unwrap(),
                sqsm_time_row(Problem::Lac, n, g, 2).unwrap(),
            ] {
                assert!(row.measured_respects_lower_bound(true, 1.0), "{row:?}");
                let ratio = row.shape_ratio().unwrap();
                assert!(ratio <= 16.0, "{row:?}: ratio {ratio}");
            }
        }
    }
}

#[test]
fn bsp_parity_shape_is_flat_across_p_and_l() {
    let mut rows = Vec::new();
    for n in [1usize << 10, 1 << 14] {
        for &(g, l) in &[(2u64, 8u64), (2, 32), (4, 64)] {
            for p in [16usize, 64, 256] {
                rows.push(bsp_time_row(Problem::Parity, n, g, l, p, 3).unwrap());
            }
        }
    }
    for row in &rows {
        assert!(row.measured_respects_lower_bound(false, 2.0), "{row:?}");
    }
    let f = flatness(&shape_ratios(&rows));
    assert!(f <= 4.0, "ratio spread {f}");
}

#[test]
fn crossover_write_tree_beats_read_tree_only_on_qsm() {
    // The structural crossover of sub-tables 1 vs 2: fan-in g write
    // combining wins on the QSM and loses on the s-QSM.
    use parbounds::algo::{or_tree, reduce};
    use parbounds::models::QsmMachine;
    let n = 1 << 12;
    let g = 16u64;
    let bits = vec![1i64; n];
    let q_wide = or_tree::or_write_tree(&QsmMachine::qsm(g), &bits, g as usize).unwrap();
    let q_read = reduce::or_read_tree(&QsmMachine::qsm(g), &bits, 2).unwrap();
    assert!(q_wide.run.time() < q_read.run.time());
    let s_wide = or_tree::or_write_tree(&QsmMachine::sqsm(g), &bits, g as usize).unwrap();
    let s_narrow = or_tree::or_write_tree(&QsmMachine::sqsm(g), &bits, 2).unwrap();
    assert!(s_narrow.run.time() < s_wide.run.time());
}

#[test]
fn growing_g_separates_qsm_from_sqsm_parity() {
    // Parity UB: QSM O(g log n/log log g) vs s-QSM Θ(g log n): the measured
    // gap must widen with g.
    let n = 1 << 12;
    let gap = |g: u64| {
        let q = qsm_time_row(Problem::Parity, n, g, 4)
            .unwrap()
            .measured
            .unwrap();
        let s = sqsm_time_row(Problem::Parity, n, g, 4)
            .unwrap()
            .measured
            .unwrap();
        s / q
    };
    assert!(gap(64) > gap(4), "gap(64)={} gap(4)={}", gap(64), gap(4));
}
