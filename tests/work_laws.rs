//! The Section 2.3 work/rounds laws applied to the real algorithms: the
//! rounds-respecting implementations are near-linear-work, and every
//! round-respecting ledger obeys the `work ≤ O(r·g·n)` bound.

use parbounds::algo::{lac, prefix, rounds, util::ReduceOp, workloads};
use parbounds::models::work::{
    is_linear_work_qsm, linear_work_implies_rounds, rounds_work_bound_bsp, rounds_work_bound_qsm,
};
use parbounds::models::{BspMachine, QsmMachine};

#[test]
fn prefix_sums_work_obeys_the_rounds_law() {
    for (n, p) in [(1usize << 12, 64u64), (1 << 14, 1 << 10)] {
        for g in [1u64, 4] {
            let machine = QsmMachine::qsm(g);
            let input = workloads::random_bits(n, 3);
            let out =
                prefix::prefix_in_rounds(&machine, &input, p as usize, ReduceOp::Sum).unwrap();
            // Law (ii): r rounds ⇒ work ≤ slack·r·g·n.
            assert_eq!(
                rounds_work_bound_qsm(&out.run.ledger, p, n as u64, g, 2),
                Some(true),
                "n={n} p={p} g={g}"
            );
            // Law (i) holds on every ledger by arithmetic; assert anyway.
            assert!(linear_work_implies_rounds(
                &out.run.ledger,
                p,
                n as u64,
                g,
                2
            ));
        }
    }
}

#[test]
fn reductions_with_few_rounds_are_near_linear_work() {
    // With n/p large the rounds count is O(1) and the reduction is
    // linear-work up to that constant.
    let n = 1 << 14;
    let p = 64u64; // n/p = 256 -> 2 + 2·ceil(log_256 64) = 4 rounds
    let g = 2;
    let machine = QsmMachine::qsm(g);
    let input = workloads::random_bits(n, 5);
    let out = rounds::reduce_in_rounds(&machine, &input, p as usize, ReduceOp::Xor).unwrap();
    let r = out.run.ledger.num_phases() as u64;
    assert!(r <= 4, "rounds {r}");
    // work ≤ r·(slack·g·n): near-linear for constant r.
    assert!(is_linear_work_qsm(&out.run.ledger, p, n as u64, g, 2 * r));
}

#[test]
fn lac_prefix_work_bound() {
    let n = 1 << 12;
    let p = 256u64;
    let g = 2;
    let machine = QsmMachine::qsm(g);
    let items = workloads::sparse_items(n, n / 8, 7);
    let out = lac::lac_prefix(&machine, &items, p as usize).unwrap();
    assert!(out.verify(&items));
    assert_eq!(
        rounds_work_bound_qsm(&out.run.ledger, p, n as u64, g, 2),
        Some(true)
    );
}

#[test]
fn bsp_reduction_work_bound_includes_latency() {
    let n = 1 << 12;
    let (p, g, l) = (64usize, 2u64, 16u64);
    let machine = BspMachine::new(p, g, l).unwrap();
    let bits = workloads::random_bits(n, 9);
    let out =
        parbounds::algo::bsp_algos::bsp_reduce(&machine, &bits, n / p, ReduceOp::Xor).unwrap();
    assert_eq!(
        rounds_work_bound_bsp(&out.ledger, p as u64, n as u64, g, l, 2),
        Some(true)
    );
}

#[test]
fn non_rounds_algorithms_can_exceed_linear_work() {
    // The unlimited-processor pattern-helper parity is emphatically NOT
    // linear-work (it spends Θ(n·2^k) processors): the work law separates
    // the "fast" regime from the "efficient" regime, exactly the tension
    // Section 2.3 sets up.
    let n = 1 << 10;
    let g = 4;
    let machine = QsmMachine::qsm(g);
    let bits = workloads::random_bits(n, 1);
    let out = parbounds::algo::parity::parity_pattern_helper(&machine, &bits, 3).unwrap();
    // Processor count ~ 2n·2^3; work = procs · time >> g·n.
    let procs = 2 * n as u64 * 8;
    assert!(!is_linear_work_qsm(&out.run.ledger, procs, n as u64, g, 4));
}
