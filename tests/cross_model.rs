//! Cross-model coherence: the same logical problem solved on every model
//! gives identical answers, and the models' cost rules order the way the
//! paper's Claim 2.1 hierarchy says they must.

use parbounds::algo::{bsp_algos, lac, or_tree, parity, reduce, util::ReduceOp, workloads};
use parbounds::models::{BspMachine, GsmMachine, QsmMachine};

#[test]
fn parity_agrees_across_all_models_and_algorithms() {
    for n in [32usize, 500, 2048] {
        let bits = workloads::random_bits(n, n as u64 * 7 + 1);
        let expected = bits.iter().sum::<i64>() % 2;

        let qsm = QsmMachine::qsm(8);
        assert_eq!(
            reduce::parity_read_tree(&qsm, &bits, 2).unwrap().value,
            expected
        );
        assert_eq!(
            reduce::parity_read_tree(&qsm, &bits, 5).unwrap().value,
            expected
        );
        assert_eq!(
            parity::parity_pattern_helper(&qsm, &bits, 3).unwrap().value,
            expected
        );

        let ucr = QsmMachine::qsm_unit_cr(8);
        assert_eq!(
            parity::parity_pattern_helper(&ucr, &bits, 4).unwrap().value,
            expected
        );

        let sqsm = QsmMachine::sqsm(8);
        assert_eq!(
            reduce::parity_read_tree(&sqsm, &bits, 2).unwrap().value,
            expected
        );

        let bsp = BspMachine::new(8, 2, 16).unwrap();
        assert_eq!(bsp_algos::bsp_parity(&bsp, &bits).unwrap().value, expected);
    }
}

#[test]
fn or_agrees_across_models() {
    for witness in [None, Some(0usize), Some(777), Some(2047)] {
        let n = 2048;
        let mut bits = vec![0i64; n];
        if let Some(w) = witness {
            bits[w] = 1;
        }
        let expected = i64::from(witness.is_some());
        let qsm = QsmMachine::qsm(4);
        assert_eq!(
            or_tree::or_write_tree(&qsm, &bits, 4).unwrap().value,
            expected
        );
        let bsp = BspMachine::new(16, 2, 8).unwrap();
        assert_eq!(bsp_algos::bsp_or(&bsp, &bits).unwrap().value, expected);
    }
}

#[test]
fn lac_agrees_between_shared_memory_and_bsp() {
    let n = 1024;
    let h = 128;
    let items = workloads::sparse_items(n, h, 4);
    let qsm = QsmMachine::qsm(2);
    let shm = lac::lac_dart(&qsm, &items, h, 9).unwrap();
    assert!(shm.verify(&items));
    let bsp = BspMachine::new(16, 2, 8).unwrap();
    let msg = bsp_algos::bsp_lac_dart(&bsp, &items, h, 9).unwrap();
    assert!(msg.verify(&items));
    // Identical seeds produce the identical placement: the two dart
    // implementations share the hash schedule.
    let shm_placed: Vec<(usize, usize)> = shm
        .dest()
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != 0)
        .map(|(s, &v)| (s, (v - 1) as usize))
        .collect();
    assert_eq!(shm_placed.len(), msg.placed.len());
}

#[test]
fn sqsm_never_charges_less_than_qsm_for_the_same_program() {
    // s-QSM cost = max(m_op, g·m_rw, g·κ) >= QSM cost = max(m_op, g·m_rw, κ)
    // phase by phase; check on a contention-heavy algorithm.
    let n = 512;
    let bits = vec![1i64; n];
    for g in [2u64, 8] {
        let q = or_tree::or_write_tree(&QsmMachine::qsm(g), &bits, 8).unwrap();
        let s = or_tree::or_write_tree(&QsmMachine::sqsm(g), &bits, 8).unwrap();
        assert!(s.run.time() >= q.run.time(), "g={g}");
    }
}

#[test]
fn qrqw_is_the_g1_special_case() {
    let n = 256;
    let bits = workloads::random_bits(n, 11);
    let a = reduce::parity_read_tree(&QsmMachine::qrqw(), &bits, 2).unwrap();
    let b = reduce::parity_read_tree(&QsmMachine::qsm(1), &bits, 2).unwrap();
    assert_eq!(a.value, b.value);
    assert_eq!(a.run.time(), b.run.time());
}

#[test]
fn gsm_strong_queuing_is_stronger_than_qsm_arbitrary_write() {
    // On the GSM all concurrent writes merge; the same "everyone writes to
    // one cell" pattern that loses information on the QSM preserves it all
    // on the GSM — the reason lower bounds are proved there (Section 2.2).
    use parbounds::models::{GsmEnv, GsmFnProgram, PhaseEnv, Status, Word};

    let n = 8;
    let gsm_prog = GsmFnProgram::new(
        n,
        |_| (),
        |pid, _, env: &mut GsmEnv<'_>| {
            env.write(100, pid as Word);
            Status::Done
        },
    );
    let gsm = GsmMachine::new(1, 1, 1);
    let res = gsm.run(&gsm_prog, &[]).unwrap();
    assert_eq!(res.memory.get(100).len(), n); // all information arrived

    let qsm_prog = parbounds::models::FnProgram::new(
        n,
        |_| (),
        |pid, _, env: &mut PhaseEnv<'_>| {
            env.write(100, pid as Word);
            Status::Done
        },
    );
    let qsm = QsmMachine::qsm(1);
    let res = qsm.run(&qsm_prog, &[]).unwrap();
    // Only one writer survived arbitration.
    assert!((0..n as Word).contains(&res.memory.get(100)));
}

#[test]
fn reduce_ops_agree_between_shared_memory_and_bsp() {
    let input: Vec<i64> = (0..300).map(|i| (i * 13 + 5) % 17).collect();
    let qsm = QsmMachine::qsm(2);
    let bsp = BspMachine::new(8, 2, 8).unwrap();
    for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Or, ReduceOp::Xor] {
        let a = reduce::tree_reduce(&qsm, &input, 4, op).unwrap().value;
        let b = bsp_algos::bsp_reduce(&bsp, &input, 4, op).unwrap().value;
        assert_eq!(a, b, "{op:?}");
    }
}

#[test]
fn sorting_agrees_across_all_three_sorters() {
    use parbounds::algo::bsp_algos::{bsp_padded_sort, bsp_sort_sample};
    use parbounds::algo::padded_sort::qsm_sort;
    let n = 700;
    let values = workloads::uniform_values(n, 21);
    let mut expect = values.clone();
    expect.sort_unstable();

    let qsm = QsmMachine::qsm(2);
    let (sorted, _) = qsm_sort(&qsm, &values, 64, 4).unwrap();
    assert_eq!(sorted, expect);

    let bsp = BspMachine::new(8, 2, 8).unwrap();
    let padded = bsp_padded_sort(&bsp, &values).unwrap();
    assert_eq!(padded.values(), expect);

    let sampled = bsp_sort_sample(&bsp, &values, 8).unwrap();
    assert_eq!(sampled.concat(), expect);
}

#[test]
fn parity_via_sorting_agrees_on_both_models() {
    use parbounds::algo::reductions::{parity_via_sorting_bsp, parity_via_sorting_qsm};
    let bits = workloads::random_bits(256, 31);
    let expected = bits.iter().sum::<i64>() % 2;
    let qsm = QsmMachine::qsm(2);
    let (p_qsm, _) = parity_via_sorting_qsm(&qsm, &bits).unwrap();
    assert_eq!(p_qsm, expected);
    let bsp = BspMachine::new(4, 2, 8).unwrap();
    let (p_bsp, _) = parity_via_sorting_bsp(&bsp, &bits).unwrap();
    assert_eq!(p_bsp, expected);
}

#[test]
fn accelerated_and_plain_lac_agree_on_placement_validity() {
    use parbounds::algo::lac::{lac_dart, lac_dart_accel};
    let n = 2048;
    let h = 256;
    let items = workloads::sparse_items(n, h, 13);
    for machine in [QsmMachine::qsm(2), QsmMachine::sqsm(4)] {
        let plain = lac_dart(&machine, &items, h, 5).unwrap();
        let accel = lac_dart_accel(&machine, &items, h, 5).unwrap();
        assert!(plain.verify(&items));
        assert!(accel.verify(&items));
        // Accelerated uses no more (usually fewer) dart rounds.
        assert!(accel.run.phases() <= plain.run.phases() + 2);
    }
}
