#!/usr/bin/env bash
# Tier-1 verification pipeline. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

# Model-conformance gate: every Section 8 family must come out of the
# analyzer clean (zero lints, determinism verified, contracts satisfied),
# and the deliberately racy fixture must be flagged (exit 1).
target/release/parbounds lint --all
if target/release/parbounds lint --family racy-fixture >/dev/null; then
    echo "ci: racy fixture was NOT flagged by 'parbounds lint'" >&2
    exit 1
fi

# Static-analysis gate: every IR-lifted family's pre-execution ledger
# prediction must match the measured ledger cell for cell, with a granted
# race-freedom certificate (exit 1 on any divergence), and the racy plan
# fixture must be refused a certificate (exit 1 from the analyzer).
target/release/parbounds analyze --static --all
if target/release/parbounds analyze --static --family racy-plan >/dev/null; then
    echo "ci: racy plan was NOT flagged by 'parbounds analyze --static'" >&2
    exit 1
fi

# Plan-compilation gate: every Section 8 family must be eligible for the
# straight-line compiled schedule (the analyzer prints per-family
# eligibility and exits 1 on any compile-ineligible family), and the racy
# fixture is the inverse witness — it must exit nonzero AND the output
# must name the compile-ineligible rule with the blocking node.
target/release/parbounds analyze --static --all --compiled
if target/release/parbounds analyze --static --family racy-plan --compiled >/dev/null; then
    echo "ci: racy plan was NOT refused under 'analyze --static --compiled'" >&2
    exit 1
fi
(target/release/parbounds analyze --static --family racy-plan --compiled || true) \
    | grep "compile-ineligible" >/dev/null || {
    echo "ci: compile-ineligible lint output missing the rule name" >&2
    exit 1
}

# Symbolic-conformance gate: every covered family's Θ-normal-form ledger
# must be Θ-equivalent to its Table 1 row, the Claim 2.1/2.2 model
# mappings must hold symbolically, and the symbolic ledgers must evaluate
# bit-identically to the numeric predictor on the CI grid (exit 1 on any
# inequivalence, regression, claim failure, or cell-level divergence).
# Inverse check: the deliberately padded write tree derives Θ(g·log n) —
# strictly dominating its Table 1 row Θ(g·log n / log g) — and must trip
# the bound-regression lint (exit 1 from the analyzer).
target/release/parbounds analyze --symbolic --all
if target/release/parbounds analyze --symbolic --family or-write-tree-padded >/dev/null; then
    echo "ci: padded plan did NOT trip bound-regression under '--symbolic'" >&2
    exit 1
fi

# Audit-conformance gate: the memoized symbolic adversary must agree with
# the enumerative 2^r goodness checker field for field wherever the
# enumeration is feasible (exit 1 on any mismatch), every registered
# family's budget-respecting refinement trajectory must stay t-good at
# n = 4096 with no lower bound exceeding its Table 1 upper (exit 1 on a
# violation verdict), and the fixed-seed Monte-Carlo adversary must
# witness root-trace sensitivity at the Know-completion time. Inverse
# check: the padded fixture is swept symbolically but deliberately has no
# lower-bound audit, so the audit-gap lint must exit nonzero and name it.
target/release/parbounds audit --symbolic --differential --max-r 6
target/release/parbounds audit --symbolic --all --n 4096
target/release/parbounds audit --symbolic --mc --family parity-read-tree \
    --n 4096 --seed 42 --samples 16 >/dev/null
if target/release/parbounds audit --symbolic --lint-gap >/dev/null; then
    echo "ci: audit-gap lint did NOT flag the unaudited padded fixture" >&2
    exit 1
fi
(target/release/parbounds audit --symbolic --lint-gap || true) | grep "audit-gap" >/dev/null || {
    echo "ci: audit-gap lint output missing the 'audit-gap' rule name" >&2
    exit 1
}

# Parallel-execution gate: the differential suites must hold with the
# intra-phase executor at explicit thread counts AND with Parallelism::Auto
# resolving through PARBOUNDS_THREADS — the same knob --threads sets. The
# suites sweep Fixed{1,2,4,7} internally; the env sweep below additionally
# pins the Auto path at 1 and 4 workers.
for threads in 1 4; do
    PARBOUNDS_THREADS=$threads cargo test --release -q \
        -p parbounds-models --test fastpath_equiv >/dev/null
    PARBOUNDS_THREADS=$threads cargo test --release -q \
        -p parbounds-ir --test batch_equiv >/dev/null
    PARBOUNDS_THREADS=$threads cargo test --release -q \
        -p parbounds-ir --test compiled_equiv >/dev/null
done

# Execution fast-path gate: the reduced hot-path grid (now including the
# compiled straight-line schedules, whose three-way equality —
# compiled == interpreted == reference — is part of all_equal) must
# produce bit-identical results on every path, and every thread-scaling
# point must match its single-threaded baseline (the binary exits 1 on
# any divergence). Timing batches each point until the timed region is
# long enough to measure, so microsecond points are no longer pure noise;
# the smoke floor of 0.5x is a coarse tripwire against a real dense-path
# regression (the strict >= 1.0x "dense never loses" floor and the
# compiled >= 1.5x geomean are enforced on the committed full run in
# BENCH_PR9.json, where reps = 3 makes them stable). The 4-worker scaling
# floor self-skips ONLY on hosts with < 4 threads (more simulator workers
# than cores cannot beat wall-clock); on >= 4-thread hosts it binds and
# must pass.
cargo run --release -q -p parbounds-bench --bin table_hotpath -- \
    --smoke --check-floor 0.5 --check-scaling 1.8 \
    --out target/bench_smoke.json >/dev/null

# Service soak gate: ~10 seconds of chaos against the in-process oracle
# service at a fixed seed — seeded fault injection (malformed frames,
# disconnects, deadline trips, duplicate storms, a budget-exhausting
# tenant) with the robustness invariants enforced: zero panics, every
# degraded answer a valid static ledger, cache-consistent full answers,
# monotone cumulative hit rate, bounded cache, no latency past 2x the
# deadline budget. Exits 1 on any violation; the JSON report continues
# the BENCH_PR4/PR5 perf trajectory.
cargo run --release -q -p parbounds-cli -- soak --smoke --out BENCH_PR6.json
