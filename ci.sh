#!/usr/bin/env bash
# Tier-1 verification pipeline. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

# Model-conformance gate: every Section 8 family must come out of the
# analyzer clean (zero lints, determinism verified, contracts satisfied),
# and the deliberately racy fixture must be flagged (exit 1).
target/release/parbounds lint --all
if target/release/parbounds lint --family racy-fixture >/dev/null; then
    echo "ci: racy fixture was NOT flagged by 'parbounds lint'" >&2
    exit 1
fi
