#!/usr/bin/env bash
# Tier-1 verification pipeline. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy -- -D warnings
