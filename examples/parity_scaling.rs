//! Parity scaling study: the four Parity upper-bound constructions swept
//! over `n` and `g`, printing measured simulator time against the paper's
//! formulas — the executable version of the Parity rows of sub-tables 1–3.
//!
//! ```text
//! cargo run --release -p parbounds --example parity_scaling
//! ```

use parbounds::algo::{bsp_algos, parity, reduce, workloads};
use parbounds::models::{BspMachine, QsmMachine};
use parbounds::tables::math::{lg, lglg};

fn main() {
    println!("Parity on all models: measured time / claimed formula (flat = shape holds)\n");
    println!(
        "{:>8} {:>4} | {:>28} | {:>28} | {:>24} | {:>26}",
        "n",
        "g",
        "QSM helper  t/(g·lgn/lglg g)",
        "unit-CR helper  t/(g·lgn/lg g)",
        "s-QSM tree  t/(g·lg n)",
        "BSP fan-in L/g  t/(L·lgq/lg(L/g))"
    );
    println!("{}", "-".repeat(135));
    for n in [1usize << 8, 1 << 10, 1 << 12, 1 << 14] {
        for g in [4u64, 16, 64] {
            let bits = workloads::random_bits(n, n as u64 ^ g);
            let expected = bits.iter().sum::<i64>() % 2;
            let nf = n as f64;
            let gf = g as f64;

            let qsm = QsmMachine::qsm(g);
            let k = parity::parity_helper_default_k(&qsm);
            let helper = parity::parity_pattern_helper(&qsm, &bits, k).unwrap();
            assert_eq!(helper.value, expected);
            let r1 = helper.run.time() as f64 / (gf * lg(nf) / lglg(gf));

            let ucr = QsmMachine::qsm_unit_cr(g);
            let k = parity::parity_helper_default_k(&ucr);
            let fast = parity::parity_pattern_helper(&ucr, &bits, k).unwrap();
            assert_eq!(fast.value, expected);
            let r2 = fast.run.time() as f64 / (gf * lg(nf) / lg(gf));

            let sqsm = QsmMachine::sqsm(g);
            let tree = reduce::parity_read_tree(&sqsm, &bits, 2).unwrap();
            assert_eq!(tree.value, expected);
            let r3 = tree.run.time() as f64 / (gf * lg(nf));

            let (l, p) = (8 * g, 64usize.min(n));
            let bsp = BspMachine::new(p, g, l).unwrap();
            let bspout = bsp_algos::bsp_parity(&bsp, &bits).unwrap();
            assert_eq!(bspout.value, expected);
            let q = (n.min(p)) as f64;
            let r4 = bspout.time() as f64 / ((l as f64) * lg(q) / lg((l / g) as f64));

            println!(
                "{:>8} {:>4} | {:>28.2} | {:>28.2} | {:>24.2} | {:>26.2}",
                n, g, r1, r2, r3, r4
            );
        }
    }
    println!("\nEach ratio column stays (near-)constant across the sweep: the measured");
    println!("costs realize the paper's asymptotic shapes, including the log g vs");
    println!("log log g separation between the plain and unit-concurrent-read QSM.");
}
