//! Quickstart: run one algorithm on each model simulator and compare its
//! measured cost against the paper's Table 1 bounds.
//!
//! ```text
//! cargo run --release -p parbounds --example quickstart
//! ```

use parbounds::algo::{bsp_algos, or_tree, parity, reduce, workloads};
use parbounds::models::{BspMachine, QsmMachine};
use parbounds::tables::{best_lower_bound, upper_bound_time, Metric, Mode, Model, Params, Problem};

fn main() {
    let n = 1 << 12;
    let g = 8u64;
    let bits = workloads::random_bits(n, 42);
    let truth_parity = bits.iter().sum::<i64>() % 2;
    let truth_or = i64::from(bits.iter().any(|&b| b != 0));

    println!("parbounds quickstart — n = {n}, g = {g}\n");

    // --- QSM: pattern-helper Parity (Section 8's depth-2 circuit emulation).
    let qsm = QsmMachine::qsm(g);
    let k = parity::parity_helper_default_k(&qsm);
    let out = parity::parity_pattern_helper(&qsm, &bits, k).unwrap();
    assert_eq!(out.value, truth_parity);
    let pr = Params::qsm(n as f64, g as f64);
    println!(
        "QSM   Parity (helper, k={k}):   time {:6}   LB {:7.1}   UB formula {:7.1}",
        out.run.time(),
        best_lower_bound(
            Problem::Parity,
            Model::Qsm,
            Mode::Deterministic,
            Metric::Time,
            &pr
        )
        .unwrap(),
        upper_bound_time(Problem::Parity, Model::Qsm, &pr).unwrap(),
    );

    // --- QSM: write-combining OR tree with fan-in g.
    let out = or_tree::or_write_tree(&qsm, &bits, g as usize).unwrap();
    assert_eq!(out.value, truth_or);
    println!(
        "QSM   OR (write tree, k=g):     time {:6}   LB {:7.1}   UB formula {:7.1}",
        out.run.time(),
        best_lower_bound(
            Problem::Or,
            Model::Qsm,
            Mode::Deterministic,
            Metric::Time,
            &pr
        )
        .unwrap(),
        upper_bound_time(Problem::Or, Model::Qsm, &pr).unwrap(),
    );

    // --- s-QSM: the tight Θ(g·log n) binary-tree Parity.
    let sqsm = QsmMachine::sqsm(g);
    let out = reduce::parity_read_tree(&sqsm, &bits, 2).unwrap();
    assert_eq!(out.value, truth_parity);
    println!(
        "s-QSM Parity (binary tree):     time {:6}   Θ formula {:6.1}   ratio {:.2}",
        out.run.time(),
        upper_bound_time(Problem::Parity, Model::SQsm, &pr).unwrap(),
        out.run.time() as f64 / upper_bound_time(Problem::Parity, Model::SQsm, &pr).unwrap(),
    );

    // --- BSP: fan-in L/g reduction.
    let (l, p) = (64u64, 64usize);
    let bsp = BspMachine::new(p, g, l).unwrap();
    let out = bsp_algos::bsp_parity(&bsp, &bits).unwrap();
    assert_eq!(out.value, truth_parity);
    let pr = Params::bsp(n as f64, g as f64, l as f64, p as f64);
    println!(
        "BSP   Parity (fan-in L/g):      time {:6}   LB {:7.1}   UB formula {:7.1}   ({} supersteps)",
        out.time(),
        best_lower_bound(Problem::Parity, Model::Bsp, Mode::Deterministic, Metric::Time, &pr)
            .unwrap(),
        upper_bound_time(Problem::Parity, Model::Bsp, &pr).unwrap(),
        out.supersteps(),
    );

    println!("\nEvery measured time sits between the lower bound and a small constant");
    println!("times the Section 8 upper-bound formula — the paper's Table 1, live.");
}
