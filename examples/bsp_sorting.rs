//! BSP sorting and the Parity-to-sorting reduction: the deterministic
//! odd-even transposition sorter vs the O(1)-superstep sample sorter, plus
//! parity computed *through* sorting (the size-preserving reduction that
//! transfers the Parity lower bounds of Table 1 to sorting).
//!
//! ```text
//! cargo run --release -p parbounds --example bsp_sorting
//! ```

use parbounds::algo::bsp_algos::{bsp_sort_odd_even, bsp_sort_sample};
use parbounds::algo::reductions::parity_via_sorting_bsp;
use parbounds::algo::workloads;
use parbounds::models::BspMachine;

fn main() {
    let n = 1 << 13;
    let values = workloads::uniform_values(n, 3);

    println!("BSP sorting, n = {n}:");
    println!(
        "{:>4} {:>4} {:>4} | {:>12} {:>10} | {:>12} {:>10}",
        "p", "g", "L", "odd-even t", "steps", "sample t", "steps"
    );
    println!("{}", "-".repeat(70));
    for &(p, g, l) in &[(4usize, 2u64, 8u64), (8, 2, 8), (16, 2, 32), (32, 4, 64)] {
        let machine = BspMachine::new(p, g, l).unwrap();
        let oe = bsp_sort_odd_even(&machine, &values).unwrap();
        assert!(oe.verify(&values));
        let ss = bsp_sort_sample(&machine, &values, 16).unwrap();
        assert!(ss.verify(&values));
        println!(
            "{:>4} {:>4} {:>4} | {:>12} {:>10} | {:>12} {:>10}",
            p,
            g,
            l,
            oe.ledger.total_time(),
            oe.ledger.num_phases(),
            ss.ledger.total_time(),
            ss.ledger.num_phases(),
        );
    }
    println!("\nSample sort runs in 4 supersteps regardless of p (an O(1)-rounds");
    println!("computation); odd-even transposition pays p supersteps.");

    // --- Parity through sorting.
    let bits = workloads::random_bits(4096, 9);
    let expected = bits.iter().sum::<i64>() % 2;
    let machine = BspMachine::new(8, 2, 16).unwrap();
    let (parity, ledgers) = parity_via_sorting_bsp(&machine, &bits).unwrap();
    assert_eq!(parity, expected);
    println!(
        "\nParity via sorting: sorted 4096 bits ({} supersteps), then recovered the",
        ledgers[0].num_phases()
    );
    println!(
        "count of ones with {} extra superstep(s) — a size-preserving reduction, so",
        ledgers[1].num_phases()
    );
    println!("every Parity lower bound in Table 1 is also a sorting lower bound.");
}
