//! The lower-bound machinery, live: the Theorem 3.1 degree auditor on an
//! exhaustively verified Parity program, the Section 5 Random Adversary
//! refining inputs against a real GSM execution, the Section 7 OR
//! distribution defeating bounded-information algorithms, and a Yao's
//! theorem check.
//!
//! ```text
//! cargo run --release -p parbounds --example adversary_demo
//! ```

use parbounds::adversary::{
    audit_parity_program, check_yao_sampled, generate, or_success_rate, parity_probe_game,
    probe_k_or, DegreeAudit, GsmRefine, OrDistribution, UniformBits,
};
use parbounds::models::{GsmEnv, GsmFnProgram, GsmMachine, Status, Word};
use rand::SeedableRng;

/// Fan-in-2 GSM parity over r bits (pids = internal tree nodes).
fn tree_parity(r: usize) -> (impl parbounds::models::GsmProgram<Proc = ()> + use<>, usize) {
    let mut nodes = Vec::new();
    let mut bases = vec![0usize];
    let (mut width, mut next, mut level, mut out) = (r, r, 1usize, 0usize);
    while width > 1 {
        let w2 = width.div_ceil(2);
        bases.push(next);
        out = next;
        for j in 0..w2 {
            nodes.push((level, j, width));
        }
        next += w2;
        width = w2;
        level += 1;
    }
    let prog = GsmFnProgram::new(
        nodes.len().max(1),
        move |_| (),
        move |pid, _, env: &mut GsmEnv<'_>| {
            let (level, j, prev_width) = nodes[pid];
            let read_phase = 2 * (level - 1);
            match env.phase() {
                t if t < read_phase => Status::Active,
                t if t == read_phase => {
                    env.read(bases[level - 1] + 2 * j);
                    if 2 * j + 1 < prev_width {
                        env.read(bases[level - 1] + 2 * j + 1);
                    }
                    Status::Active
                }
                _ => {
                    let x: Word = env
                        .delivered()
                        .iter()
                        .map(|(_, c)| c.iter().fold(0, |a, &b| a ^ (b & 1)))
                        .fold(0, |a, b| a ^ b);
                    env.write(bases[level] + j, x);
                    Status::Done
                }
            }
        },
    );
    (prog, out)
}

fn main() {
    // --- Theorem 3.1 degree audit.
    let r = 8;
    let machine = GsmMachine::new(1, 2, 1);
    let (_, out) = tree_parity(r);
    let report = audit_parity_program(&machine, || tree_parity(r).0, out, r).unwrap();
    println!("Degree audit (Theorem 3.1) on tree parity, r = {r}, GSM(1,2,1):");
    println!("  correct on all 2^{r} inputs : {}", report.correct);
    println!(
        "  degree cap log2(b_l) = {:.2} >= log2(r) = {:.2} : {}",
        report.worst.final_log2_cap(),
        (r as f64).log2(),
        report.worst.supports_degree(r)
    );
    println!(
        "  measured worst time {} >= Theorem 3.1 value {:.2}",
        report.max_time,
        DegreeAudit::theorem_3_1_bound(machine.mu(), r)
    );

    // --- Section 5 Random Adversary against a real GSM program.
    let r = 8;
    let m11 = GsmMachine::new(1, 1, 1);
    let mut refiner = GsmRefine::build(&m11, || tree_parity(r).0, r).unwrap();
    let dist = UniformBits(r);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    let (trajectory, final_input) = generate(&mut refiner, &dist, 4, &mut rng);
    println!("\nRandom Adversary (Section 5) vs tree parity, r = {r}:");
    for (t, f) in &trajectory {
        let fixed = f.iter().filter(|v| v.is_some()).count();
        println!("  after step bound t = {t}: {fixed}/{r} inputs fixed by RANDOMSET");
    }
    println!("  completed input map: {final_input:#010b} (drawn from the uniform distribution)");

    // --- Section 7 OR adversary.
    let n = 1 << 12;
    let d = OrDistribution::new(n, 2, 1);
    println!(
        "\nOR adversary (Section 7), n = {n}, {} mixture components:",
        d.num_components()
    );
    let honest = |input: &[Word]| Word::from(input.iter().any(|&b| b != 0));
    println!(
        "  honest OR          success {:.3}",
        or_success_rate(honest, &d, 3000, 1)
    );
    println!(
        "  probe 8 inputs     success {:.3}",
        or_success_rate(probe_k_or(8), &d, 3000, 2)
    );
    println!(
        "  constant 0         success {:.3}",
        or_success_rate(|_| 0, &d, 3000, 3)
    );

    // --- Yao's theorem.
    let game = parity_probe_game(5, 3);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
    let (s1, s2) = check_yao_sampled(&game, 300, &mut rng);
    println!("\nYao's theorem (Theorem 2.1) on the probe-3-of-5 parity game:");
    println!("  best sampled randomized worst-case success S1 = {s1:.3}");
    println!("  best deterministic distributional success  S2 = {s2:.3}  (S1 <= S2 ✓)");
}
