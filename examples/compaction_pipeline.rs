//! The Section 6 problem family end-to-end: a Chromatic Load Balancing
//! instance solved three ways — through Load Balancing, through LAC, and
//! through Padded Sort — exactly the three reductions of Theorem 6.1, with
//! every solution verified against the CLB contract.
//!
//! ```text
//! cargo run --release -p parbounds --example compaction_pipeline
//! ```

use parbounds::algo::reductions::{clb_via_lac, clb_via_load_balance, clb_via_padded_sort};
use parbounds::algo::workloads::ClbInstance;
use parbounds::algo::{lac, workloads};
use parbounds::models::QsmMachine;

fn main() {
    let machine = QsmMachine::qsm(4);

    // --- A raw LAC run first: n cells, h items, O(h) destination.
    let (n, h) = (1 << 12, 1 << 9);
    let items = workloads::sparse_items(n, h, 7);
    let out = lac::lac_dart(&machine, &items, h, 99).unwrap();
    assert!(out.verify(&items));
    println!(
        "LAC: {h} items from {n} cells into {} slots in {} phases, time {}, max contention {}",
        out.out_size,
        out.run.phases(),
        out.run.time(),
        out.run.ledger.max_contention()
    );

    // Deterministic exact compaction for comparison (computes in rounds).
    let p = 256;
    let exact = lac::lac_prefix(&machine, &items, p).unwrap();
    assert!(exact.verify(&items));
    println!(
        "     prefix-sums exact compaction with p={p}: {} rounds, time {}",
        exact.run.phases(),
        exact.run.time()
    );

    // --- Theorem 6.1: one CLB instance, three solvers.
    println!("\nChromatic Load Balancing (n groups of 4m objects, 8m colors):");
    let inst = ClbInstance::generate(2048, 32, 5);
    let color = 17;
    println!(
        "  instance: n={} m={} | color {} has {} groups = {} objects",
        inst.n,
        inst.m,
        color,
        inst.color_count(color),
        inst.object_count(color)
    );

    let sol = clb_via_load_balance(&machine, &inst, 128, color)
        .unwrap()
        .expect("balanced regime");
    assert!(inst.verify_solution(sol.color, &sol.dest));
    println!(
        "  via Load Balancing : {} objects placed, model time {}",
        sol.dest.len(),
        sol.time
    );

    let sol = clb_via_lac(&machine, &inst, color, 11)
        .unwrap()
        .expect("embedding fits");
    assert!(inst.verify_solution(sol.color, &sol.dest));
    println!(
        "  via LAC            : {} objects placed, model time {}",
        sol.dest.len(),
        sol.time
    );

    let sol = clb_via_padded_sort(&machine, &inst, color, 13)
        .unwrap()
        .expect("no bucket overflow");
    assert!(inst.verify_solution(sol.color, &sol.dest));
    println!(
        "  via Padded Sort    : {} objects placed, model time {}",
        sol.dest.len(),
        sol.time
    );

    println!(
        "\nAll three solvers satisfied the CLB contract — the executable content of the\n\
         Theorem 6.1 reductions that transfer the CLB lower bound to all three problems."
    );
}
