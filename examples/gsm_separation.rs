//! The GSM/QSM separation, measured — why the paper proves its lower
//! bounds on the GSM (Section 2.2): the strong-queuing rule merges all
//! concurrent writes, so information gathering that costs `g·k` on a QSM
//! costs one big-step on the GSM. The fan-in-β GSM tree meets the
//! Theorem 3.1 GSM lower bound `Ω(μ·log(n/γ)/log μ)` exactly, while the
//! best QSM parity algorithm pays an extra `log g / log log g` factor.
//!
//! ```text
//! cargo run --release -p parbounds --example gsm_separation
//! ```

use parbounds::algo::{gsm_algos, parity, workloads};
use parbounds::models::{GsmMachine, QsmMachine};
use parbounds::tables::mapping;

fn main() {
    println!("Parity: GSM(1, β=g, γ=1) strong-queuing tree vs QSM(g) pattern helpers\n");
    println!(
        "{:>8} {:>4} | {:>10} {:>14} {:>8} | {:>10} {:>8} | {:>10}",
        "n", "g", "GSM time", "GSM Thm3.1 LB", "ratio", "QSM time", "ratio", "QSM/GSM"
    );
    println!("{}", "-".repeat(100));
    for n in [1usize << 8, 1 << 10, 1 << 12, 1 << 14] {
        for g in [4u64, 16, 64] {
            let bits = workloads::random_bits(n, n as u64 ^ g);
            let expected = bits.iter().sum::<i64>() % 2;

            let gsm = GsmMachine::new(1, g, 1);
            let gsm_out = gsm_algos::gsm_parity(&gsm, &bits).unwrap();
            assert_eq!(gsm_out.value, expected);
            // Theorem 3.1 on the GSM: Ω(μ·log(n/γ)/log μ) with μ = β = g.
            let gsm_lb = mapping::gsm_parity_det_time(n as f64, 1.0, g as f64, 1.0);

            let qsm = QsmMachine::qsm(g);
            let k = parity::parity_helper_default_k(&qsm);
            let qsm_out = parity::parity_pattern_helper(&qsm, &bits, k).unwrap();
            assert_eq!(qsm_out.value, expected);
            let qsm_formula = g as f64 * (n as f64).log2() / (g as f64).log2().log2().max(1.0);

            println!(
                "{:>8} {:>4} | {:>10} {:>14.1} {:>8.2} | {:>10} {:>8.2} | {:>10.2}",
                n,
                g,
                gsm_out.run.time(),
                gsm_lb,
                gsm_out.run.time() as f64 / gsm_lb,
                qsm_out.run.time(),
                qsm_out.run.time() as f64 / qsm_formula,
                qsm_out.run.time() as f64 / gsm_out.run.time() as f64,
            );
        }
    }
    println!();
    println!("Readings:");
    println!(" * GSM ratio column is a flat small constant — the Theorem 3.1 GSM bound");
    println!("   is TIGHT on the GSM itself (the strong-queuing tree achieves it).");
    println!(" * QSM ratio column is flat against g·log n/log log g — the paper's QSM");
    println!("   upper bound shape.");
    println!(" * The QSM/GSM column shows the extra log g/log log g factor the QSM pays");
    println!("   (≈3x over this sweep; it widens slowly, as log g/log log g does).");
    println!("   That gap is the power the lower-bound model holds over the machine");
    println!("   models, and why Claim 2.1 only transfers bounds downward.");
}
