//! Property test for deadline cancellation (the service-level guarantee):
//! a run cancelled at a *random* phase boundary leaves no partial state
//! observable through the cache, and re-running the same plan uncancelled
//! yields the reference answer bit for bit.

use parbounds_analyze::{ir_family_plan, predict_ledger, IR_FAMILIES};
use parbounds_ir::execute_plan;
use parbounds_serve::{Answer, PlanSource, QueryKind, Request, Server, ServerConfig};
use proptest::prelude::*;

fn run_request(id: u64, family: &str, n: usize, seed: u64) -> Request {
    Request {
        id,
        tenant: "prop".to_string(),
        kind: QueryKind::Run,
        deadline_ms: None,
        trip_at_phase: None,
        plan: PlanSource::Family {
            name: family.to_string(),
            n,
            seed,
        },
        input: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cancel at a random phase, then retry uncancelled: the cancelled
    /// attempt is invisible (cache holds nothing, retry recomputes) and
    /// the retry equals the direct library execution exactly.
    #[test]
    fn cancelled_run_is_invisible_and_retry_is_bit_identical(
        family_idx in 0usize..7,
        n in 8usize..200,
        seed in any::<u64>(),
        phase in 0usize..64,
    ) {
        let family = IR_FAMILIES[family_idx];
        let (_, plan, input) = ir_family_plan(family, n, seed)?;
        let num_phases = plan.num_phases();
        let reference = execute_plan(&plan, &input)?;
        let key = run_request(0, family, n, seed).cache_key(&plan, &input);

        let server = Server::start(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });

        // 1. The cancelled attempt.
        let mut cancelled = run_request(1, family, n, seed);
        cancelled.trip_at_phase = Some(phase % num_phases.max(1));
        let resp = server.submit(cancelled);
        prop_assert!(resp.degraded, "trip inside the run must degrade");
        match resp.result {
            Ok(Answer::Ledger { ledger }) => {
                // Degraded answers are still *valid* static ledgers.
                prop_assert_eq!(ledger, predict_ledger(&plan)?);
            }
            other => prop_assert!(false, "degraded answer must be a ledger: {:?}", other),
        }
        prop_assert!(
            !server.oracle().cache_contains(key),
            "cancelled run left partial state in the cache"
        );

        // 2. The uncancelled retry: a fresh computation, equal to the
        // reference run in ledger and output.
        let resp = server.submit(run_request(2, family, n, seed));
        prop_assert!(!resp.cached, "retry must not hit a phantom cache entry");
        prop_assert!(!resp.degraded);
        match resp.result {
            Ok(Answer::Run { ledger, output }) => {
                prop_assert_eq!(ledger, reference.ledger);
                prop_assert_eq!(output, reference.output);
            }
            other => prop_assert!(false, "retry must be a full run: {:?}", other),
        }

        // 3. And now the answer *is* cached: a third ask coalesces.
        let resp = server.submit(run_request(3, family, n, seed));
        prop_assert!(resp.cached);
    }
}
