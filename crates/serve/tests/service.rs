//! End-to-end service tests: correctness of every query kind, the
//! single-flight acceptance criterion, backpressure shedding, tenant
//! budgets, graceful degradation, and connection-level fault tolerance.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use parbounds_analyze::{certify_writes, ir_family_plan, predict_ledger};
use parbounds_ir::execute_plan;
use parbounds_serve::{
    Answer, ErrorCode, OracleConfig, PlanSource, QueryKind, Request, Response, Server, ServerConfig,
};

fn small_server() -> Server {
    Server::start(ServerConfig {
        workers: 4,
        queue_cap: 64,
        ..ServerConfig::default()
    })
}

fn family_request(id: u64, kind: QueryKind, name: &str, n: usize, seed: u64) -> Request {
    Request {
        id,
        tenant: "test".to_string(),
        kind,
        deadline_ms: None,
        trip_at_phase: None,
        plan: PlanSource::Family {
            name: name.to_string(),
            n,
            seed,
        },
        input: None,
    }
}

#[test]
fn every_query_kind_matches_the_library_answer() {
    let server = small_server();
    let (_, plan, input) = ir_family_plan("prefix-sweep", 64, 5).unwrap();
    let reference = execute_plan(&plan, &input).unwrap();
    let predicted = predict_ledger(&plan).unwrap();

    let resp = server.submit(family_request(1, QueryKind::Static, "prefix-sweep", 64, 5));
    assert_eq!(resp.id, 1);
    match resp.result.unwrap() {
        Answer::Ledger { ledger } => assert_eq!(ledger, predicted),
        other => panic!("expected ledger, got {other:?}"),
    }

    let resp = server.submit(family_request(2, QueryKind::Run, "prefix-sweep", 64, 5));
    match resp.result.unwrap() {
        Answer::Run { ledger, output } => {
            assert_eq!(ledger, reference.ledger);
            assert_eq!(output, reference.output);
        }
        other => panic!("expected run, got {other:?}"),
    }

    let resp = server.submit(family_request(3, QueryKind::Compare, "prefix-sweep", 64, 5));
    match resp.result.unwrap() {
        Answer::Compare {
            predicted: p,
            measured,
            matches,
            ..
        } => {
            assert!(matches, "static analyzer tracks the simulator");
            assert_eq!(p, predicted);
            assert_eq!(measured, reference.ledger);
        }
        other => panic!("expected compare, got {other:?}"),
    }

    let resp = server.submit(family_request(4, QueryKind::Certify, "prefix-sweep", 64, 5));
    match resp.result.unwrap() {
        Answer::Certificate { race_free, .. } => {
            assert_eq!(race_free, certify_writes(&plan).unwrap().is_race_free());
        }
        other => panic!("expected certificate, got {other:?}"),
    }

    // The racy fixture is refused a certificate and its lint report is
    // non-empty.
    let resp = server.submit(family_request(5, QueryKind::Certify, "racy-plan", 8, 0));
    match resp.result.unwrap() {
        Answer::Certificate {
            race_free,
            witnesses,
            ..
        } => {
            assert!(!race_free);
            assert!(witnesses > 0);
        }
        other => panic!("expected certificate, got {other:?}"),
    }
    let resp = server.submit(family_request(6, QueryKind::Lint, "racy-plan", 8, 0));
    match resp.result.unwrap() {
        Answer::Lint { diagnostics } => assert!(!diagnostics.is_empty()),
        other => panic!("expected lint, got {other:?}"),
    }
}

/// Acceptance criterion: N identical concurrent submissions perform
/// exactly one analysis; the rest coalesce on the single flight.
#[test]
fn identical_concurrent_submissions_single_flight() {
    const N: usize = 8;
    let server = Arc::new(small_server());
    let barrier = Arc::new(Barrier::new(N));
    let handles: Vec<_> = (0..N)
        .map(|i| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                server.submit(family_request(
                    i as u64,
                    QueryKind::Compare,
                    "scatter-gather",
                    512,
                    9,
                ))
            })
        })
        .collect();
    let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    assert_eq!(
        server.oracle().analyses_performed(),
        1,
        "exactly one analysis for {N} identical concurrent submissions"
    );
    let uncached = responses.iter().filter(|r| !r.cached).count();
    assert_eq!(uncached, 1, "exactly one leader");
    let first = responses[0].result.as_ref().unwrap();
    for r in &responses {
        assert_eq!(r.result.as_ref().unwrap(), first, "all answers identical");
        assert!(!r.degraded);
    }
    let stats = server.oracle().cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits as usize, N - 1);
}

/// Backpressure: with one worker pinned on a large run and a 2-deep
/// admission queue, a simultaneous burst of 8 is mostly shed with the
/// typed `overloaded` error carrying the retry hint.
#[test]
fn burst_beyond_queue_cap_is_shed_with_retry_hint() {
    const N: usize = 8;
    let server = Arc::new(Server::start(ServerConfig {
        workers: 1,
        queue_cap: 2,
        retry_after_ms: 15,
        ..ServerConfig::default()
    }));
    let barrier = Arc::new(Barrier::new(N));
    let handles: Vec<_> = (0..N)
        .map(|i| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                // Distinct seeds: no cache coalescing, every request is
                // real work.
                server.submit(family_request(
                    i as u64,
                    QueryKind::Run,
                    "prefix-sweep",
                    16_384,
                    i as u64,
                ))
            })
        })
        .collect();
    let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let shed: Vec<_> = responses
        .iter()
        .filter_map(|r| r.result.as_ref().err())
        .collect();
    let ok = responses.iter().filter(|r| r.result.is_ok()).count();
    // 1 in the worker + 2 queued can succeed; at worst the worker had not
    // yet popped the first job, so at least N - 3 = 5 shed, at least 2 ok.
    assert!(
        shed.len() >= N - 3,
        "expected >= {} shed, got {shed:?}",
        N - 3
    );
    assert!(ok >= 2, "admitted requests still answered, got {ok}");
    for err in shed {
        assert_eq!(err.code, ErrorCode::Overloaded);
        assert_eq!(err.retry_after_ms, Some(15), "retry hint present");
    }
}

/// Tenant budgets: measured kinds are refused once the predicted spend
/// overdraws; static kinds are never charged.
#[test]
fn budget_exhaustion_is_typed_and_scoped_to_measured_kinds() {
    let server = Server::start(ServerConfig {
        workers: 2,
        oracle: OracleConfig {
            tenant_budget: 1,
            ..OracleConfig::default()
        },
        ..ServerConfig::default()
    });
    let resp = server.submit(family_request(1, QueryKind::Run, "or-write-tree", 64, 0));
    let err = resp.result.unwrap_err();
    assert_eq!(err.code, ErrorCode::BudgetExhausted);
    assert!(err.message.contains("budget"), "message: {}", err.message);

    // The same tenant can still afford static analysis.
    let resp = server.submit(family_request(2, QueryKind::Static, "or-write-tree", 64, 0));
    assert!(resp.result.is_ok(), "statics are not budget-charged");
    assert_eq!(server.oracle().tenant_spent("test"), 0);
}

/// Graceful degradation: a measured run cancelled mid-flight answers with
/// the static ledger, flagged degraded, and pollutes nothing — the next
/// identical request computes the full answer from scratch.
#[test]
fn cancelled_run_degrades_to_static_and_leaves_no_state() {
    let server = small_server();
    let mut req = family_request(1, QueryKind::Run, "broadcast", 256, 3);
    req.trip_at_phase = Some(0);
    let resp = server.submit(req);
    assert!(resp.degraded, "deadline-tripped run must degrade");
    assert!(!resp.cached);
    let (_, plan, input) = ir_family_plan("broadcast", 256, 3).unwrap();
    match resp.result.unwrap() {
        Answer::Ledger { ledger } => {
            assert_eq!(
                ledger,
                predict_ledger(&plan).unwrap(),
                "degraded answer is the valid static ledger"
            );
        }
        other => panic!("degraded answer must be a ledger, got {other:?}"),
    }

    // No partial state: the cancelled run cached nothing, so the retry is
    // a fresh computation that yields the reference answer.
    let key = family_request(0, QueryKind::Run, "broadcast", 256, 3).cache_key(&plan, &input);
    assert!(
        !server.oracle().cache_contains(key),
        "cancelled run left an entry in the cache"
    );
    let resp = server.submit(family_request(2, QueryKind::Run, "broadcast", 256, 3));
    assert!(!resp.cached && !resp.degraded);
    let reference = execute_plan(&plan, &input).unwrap();
    match resp.result.unwrap() {
        Answer::Run { ledger, output } => {
            assert_eq!(ledger, reference.ledger);
            assert_eq!(output, reference.output);
        }
        other => panic!("expected run, got {other:?}"),
    }
}

/// A deadline so tight it trips during static prediction fails typed (no
/// degradation is possible without a static answer in hand).
#[test]
fn static_kind_deadline_is_a_typed_error() {
    let server = small_server();
    let mut req = family_request(1, QueryKind::Static, "or-write-tree", 64, 0);
    req.trip_at_phase = Some(0);
    let resp = server.submit(req);
    assert_eq!(resp.result.unwrap_err().code, ErrorCode::DeadlineExceeded);
}

/// The connection loop survives malformed frames: garbage, oversized and
/// non-JSON lines get typed `bad_request` responses and the next valid
/// frame on the same connection is answered normally.
#[test]
fn malformed_frames_do_not_kill_the_connection() {
    let server = Server::start(ServerConfig {
        workers: 2,
        max_frame_bytes: 512,
        ..ServerConfig::default()
    });
    let valid = family_request(7, QueryKind::Static, "or-write-tree", 32, 0)
        .to_json()
        .render();
    let oversized = format!("{{\"pad\":\"{}\"}}", "x".repeat(600));
    let input =
        format!("this is not json\n{oversized}\n{{\"id\":3,\"kind\":\"static\"}}\n{valid}\n");
    let mut out = Vec::new();
    server.serve_connection(input.as_bytes(), &mut out);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "one response per frame: {text}");

    let parse =
        |line: &str| Response::from_json(&parbounds_serve::json::parse(line).unwrap()).unwrap();
    assert_eq!(
        parse(lines[0]).result.unwrap_err().code,
        ErrorCode::BadRequest
    );
    assert_eq!(
        parse(lines[1]).result.unwrap_err().code,
        ErrorCode::BadRequest
    );
    let missing_plan = parse(lines[2]);
    assert_eq!(missing_plan.id, 3, "id echoed even for bad requests");
    assert_eq!(missing_plan.result.unwrap_err().code, ErrorCode::BadRequest);
    let ok = parse(lines[3]);
    assert_eq!(ok.id, 7);
    assert!(
        ok.result.is_ok(),
        "connection still serves after bad frames"
    );
}

/// Queue wait counts against the deadline: a request admitted with an
/// already-zero deadline degrades rather than running anyway.
#[test]
fn zero_deadline_run_degrades() {
    let server = small_server();
    let mut req = family_request(1, QueryKind::Run, "bsp-reduce", 128, 2);
    req.deadline_ms = Some(0);
    // Tolerate scheduling: a 0ms deadline must never produce a measured
    // answer, only a degraded static one (or, pathologically, a typed
    // deadline error if even prediction was cancelled — with_deadline(0)
    // trips immediately only for the measured phase here).
    let resp = server.submit(req);
    match &resp.result {
        Ok(Answer::Ledger { .. }) => assert!(resp.degraded),
        Ok(other) => panic!("0ms deadline produced a measured answer: {other:?}"),
        Err(e) => assert_eq!(e.code, ErrorCode::DeadlineExceeded),
    }
    thread::sleep(Duration::from_millis(1));
}

#[test]
fn symbolic_queries_answer_on_the_cached_static_path() {
    let server = small_server();

    // A clean family: Θ-equivalent to its Table 1 row, anchored at the
    // suite point against the numeric prediction.
    let resp = server.submit(family_request(
        1,
        QueryKind::Symbolic,
        "or-write-tree",
        64,
        1,
    ));
    assert!(!resp.cached);
    match resp.result.unwrap() {
        Answer::Symbolic {
            family,
            derived,
            fixture,
            equivalent,
            regression,
            matches,
            total,
        } => {
            assert_eq!(family, "or-write-tree");
            assert_eq!(derived, fixture);
            assert!(equivalent && !regression && matches);
            let (_, plan, _) = ir_family_plan("or-write-tree", 64, 1).unwrap();
            assert_eq!(total, predict_ledger(&plan).unwrap().total_time());
        }
        other => panic!("expected symbolic, got {other:?}"),
    }

    // Input-independent ⇒ the repeat is served from the cache.
    let resp = server.submit(family_request(
        2,
        QueryKind::Symbolic,
        "or-write-tree",
        64,
        1,
    ));
    assert!(resp.cached, "symbolic answers are permanently cacheable");

    // The padded fixture reports its regression rather than erroring.
    let resp = server.submit(family_request(
        3,
        QueryKind::Symbolic,
        "or-write-tree-padded",
        64,
        1,
    ));
    match resp.result.unwrap() {
        Answer::Symbolic {
            equivalent,
            regression,
            matches,
            ..
        } => {
            assert!(regression && !equivalent);
            assert!(matches, "padded ledger still evaluates exactly");
        }
        other => panic!("expected symbolic, got {other:?}"),
    }

    // Inline plans cannot name a family derivation: typed bad request.
    let (_, plan, _) = ir_family_plan("or-write-tree", 64, 1).unwrap();
    let mut req = family_request(4, QueryKind::Symbolic, "or-write-tree", 64, 1);
    req.plan = PlanSource::Inline(plan);
    let err = server.submit(req).result.unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest);
}

#[test]
fn audit_queries_pair_bounds_and_cache_like_symbolic() {
    let server = small_server();

    let resp = server.submit(family_request(
        1,
        QueryKind::Audit,
        "parity-read-tree",
        512,
        1,
    ));
    assert!(!resp.cached);
    match resp.result.unwrap() {
        Answer::Audit {
            family,
            size,
            fan,
            steps,
            all_good,
            lower,
            upper,
            verdict,
            ..
        } => {
            assert_eq!(family, "parity-read-tree");
            assert_eq!(size, 512);
            assert_eq!(fan, 2);
            assert!(steps > 0);
            assert!(all_good, "trajectory must be t-good at n = 512");
            assert_eq!(lower, upper, "parity audit is tight against Table 1");
            assert_eq!(verdict, "tight");
        }
        other => panic!("expected audit, got {other:?}"),
    }

    // Deterministic and input-independent ⇒ served from the cache.
    let resp = server.submit(family_request(
        2,
        QueryKind::Audit,
        "parity-read-tree",
        512,
        1,
    ));
    assert!(resp.cached, "audit answers are permanently cacheable");

    // The padded fixture has no audit: typed bad request, and the swept
    // family name is surfaced for the audit-gap lint to act on.
    let err = server
        .submit(family_request(
            3,
            QueryKind::Audit,
            "or-write-tree-padded",
            64,
            1,
        ))
        .result
        .unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest);
    assert!(
        err.message.contains("no lower-bound audit"),
        "{}",
        err.message
    );

    // Inline plans cannot name a family audit: typed bad request.
    let (_, plan, _) = ir_family_plan("or-write-tree", 64, 1).unwrap();
    let mut req = family_request(4, QueryKind::Audit, "or-write-tree", 64, 1);
    req.plan = PlanSource::Inline(plan);
    let err = server.submit(req).result.unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest);
}
