//! The serving shell: bounded worker pool, admission queue, backpressure
//! and the line-delimited connection loop.
//!
//! Admission is a bounded FIFO. Once the queue holds `queue_cap` pending
//! requests, further submissions are shed immediately with the typed
//! `overloaded` error and a `retry_after_ms` hint — the queue never grows
//! without bound and a slow worker pool cannot wedge accepting threads.
//! Worker sizing reuses the models' [`Parallelism`] resolution, so the
//! same `PARBOUNDS_THREADS` knob that bounds intra-phase simulation
//! parallelism bounds the service.
//!
//! Time spent queued counts against a request's deadline: the worker
//! shrinks `deadline_ms` by the queue wait before handling, so a request
//! that waited out its whole deadline in the queue degrades (measured
//! kinds) or fails typed (static kinds) instead of running anyway.

use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use parbounds_models::Parallelism;

use crate::json;
use crate::oracle::{Oracle, OracleConfig};
use crate::wire::{ErrorCode, Request, Response};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads; 0 resolves via [`Parallelism::Auto`]
    /// (`PARBOUNDS_THREADS`, then host parallelism).
    pub workers: usize,
    /// Pending requests admitted before shedding load.
    pub queue_cap: usize,
    /// The `retry_after_ms` hint attached to shed requests.
    pub retry_after_ms: u64,
    /// Largest request frame (bytes) a connection accepts.
    pub max_frame_bytes: usize,
    /// Oracle knobs.
    pub oracle: OracleConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_cap: 64,
            retry_after_ms: 25,
            max_frame_bytes: 4 << 20,
            oracle: OracleConfig::default(),
        }
    }
}

struct Job {
    req: Request,
    admitted: Instant,
    reply: mpsc::Sender<Response>,
}

struct QueueState {
    jobs: std::collections::VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    oracle: Oracle,
    queue: Mutex<QueueState>,
    cv: Condvar,
    cfg: ServerConfig,
}

/// The running service: an oracle behind a bounded worker pool.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("cfg", &self.shared.cfg)
            .finish()
    }
}

impl Server {
    /// Starts the worker pool.
    pub fn start(cfg: ServerConfig) -> Self {
        let workers = if cfg.workers == 0 {
            // `workers(usize::MAX)` leaves Auto's host-resolution
            // unclamped; the simulated-processor clamp is irrelevant here.
            Parallelism::Auto.workers(usize::MAX)
        } else {
            cfg.workers
        }
        .max(1);
        let shared = Arc::new(Shared {
            oracle: Oracle::new(cfg.oracle),
            queue: Mutex::new(QueueState {
                jobs: std::collections::VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            cfg,
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Server {
            shared,
            workers: handles,
        }
    }

    /// The oracle, for stats inspection in tests and the soak harness.
    pub fn oracle(&self) -> &Oracle {
        &self.shared.oracle
    }

    /// The config the server was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.cfg
    }

    /// Submits one request and blocks for its response. Sheds immediately
    /// with the typed `overloaded` error when the admission queue is full.
    pub fn submit(&self, req: Request) -> Response {
        let id = req.id;
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("queue lock poisoned");
            if queue.shutdown {
                return Response::error(id, ErrorCode::Io, "server shutting down");
            }
            if queue.jobs.len() >= self.shared.cfg.queue_cap {
                return Response::overloaded(id, self.shared.cfg.retry_after_ms);
            }
            queue.jobs.push_back(Job {
                req,
                admitted: Instant::now(),
                reply: tx,
            });
        }
        self.shared.cv.notify_one();
        rx.recv()
            .unwrap_or_else(|_| Response::error(id, ErrorCode::Io, "worker dropped the request"))
    }

    /// Serves one line-delimited JSON connection until EOF. Malformed
    /// frames get a typed `bad_request` response and the connection stays
    /// up; a write failure (client went away mid-request) ends the loop
    /// quietly. This is the same loop for TCP connections and stdio.
    pub fn serve_connection<R: BufRead, W: Write>(&self, reader: R, mut writer: W) {
        for line in reader.split(b'\n') {
            let Ok(raw) = line else {
                return; // read error: client is gone
            };
            let response = self.frame_response(&raw);
            let mut text = response.to_json().render();
            text.push('\n');
            if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
                return; // mid-request disconnect
            }
        }
    }

    /// Parses and handles one raw frame; every failure mode is a typed
    /// response, never a panic or a dropped connection.
    fn frame_response(&self, raw: &[u8]) -> Response {
        if raw.len() > self.shared.cfg.max_frame_bytes {
            return Response::error(
                0,
                ErrorCode::BadRequest,
                format!(
                    "frame of {} bytes exceeds the {}-byte cap",
                    raw.len(),
                    self.shared.cfg.max_frame_bytes
                ),
            );
        }
        let Ok(text) = std::str::from_utf8(raw) else {
            return Response::error(0, ErrorCode::BadRequest, "frame is not utf-8");
        };
        if text.trim().is_empty() {
            return Response::error(0, ErrorCode::BadRequest, "empty frame");
        }
        let parsed = match json::parse(text) {
            Ok(v) => v,
            Err(e) => return Response::error(0, ErrorCode::BadRequest, format!("bad json: {e}")),
        };
        let req = match Request::from_json(&parsed) {
            Ok(r) => r,
            Err(e) => {
                let id = parsed.get("id").and_then(json::Json::as_u64).unwrap_or(0);
                return Response::error(id, ErrorCode::BadRequest, format!("bad request: {e}"));
            }
        };
        self.submit(req)
    }

    /// Accept loop: serves every TCP connection on `listener`, one thread
    /// per connection, until the process exits.
    pub fn serve_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        for stream in listener.incoming() {
            let stream = stream?;
            let server = Arc::clone(self);
            thread::spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(s) => std::io::BufReader::new(s),
                    Err(_) => return,
                };
                server.serve_connection(reader, stream);
            });
        }
        Ok(())
    }

    /// Stops the workers after the queue drains of already-admitted jobs.
    pub fn shutdown(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue lock poisoned");
            queue.shutdown = true;
        }
        self.shared.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.cv.wait(queue).expect("queue lock poisoned");
            }
        };
        let mut req = job.req;
        // Queue wait counts against the request's deadline.
        if let Some(ms) = req.deadline_ms {
            let waited = job.admitted.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
            req.deadline_ms = Some(ms.saturating_sub(waited));
        }
        let response = shared.oracle.handle(&req);
        // A disconnected submitter (client gave up) is fine; drop the
        // response on the floor and move on.
        let _ = job.reply.send(response);
    }
}
