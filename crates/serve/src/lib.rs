//! # parbounds-serve
//!
//! A hardened, multi-tenant *cost-oracle service* over the SPAA'98
//! simulators: long-lived clients submit [PhaseIR plans](parbounds_ir) —
//! inline or by §8 family name — over line-delimited JSON (TCP or stdio)
//! and receive static cost ledgers, lint reports, race certificates, or
//! measured-run comparisons.
//!
//! The robustness envelope, end to end:
//!
//! * **Deadlines** — every request carries (or inherits) a deadline; the
//!   simulators and the static analyzer check a shared
//!   [`CancelToken`](parbounds_models::CancelToken) at each phase
//!   boundary, so cancellation is cooperative, prompt, and leaves no
//!   partial state.
//! * **Budgets** — measured runs charge their tenant the statically
//!   predicted model time up front; overdraw is refused with the models'
//!   own `CostBudgetExceeded`.
//! * **Backpressure** — a bounded worker pool behind a bounded admission
//!   queue; overflow is shed immediately with a typed `overloaded` error
//!   and a `retry_after_ms` hint.
//! * **Caching** — answers are content-addressed by `(kind, plan, input)`
//!   with single-flight deduplication: N identical concurrent requests
//!   perform exactly one analysis.
//! * **Degradation** — a measured run that exceeds its deadline falls
//!   back to the static-analysis ledger, flagged `degraded: true`.
//!
//! The crate is std-only and speaks a hand-rolled integer-only JSON
//! ([`json`]); the chaos/soak harness driving it lives in
//! `parbounds-bench` (`parbounds soak`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod cache;
pub mod json;
pub mod oracle;
pub mod server;
pub mod wire;

pub use cache::{CacheSnapshot, OracleCache};
pub use oracle::{Oracle, OracleConfig};
pub use server::{Server, ServerConfig};
pub use wire::{
    plan_from_json, plan_to_json, Answer, ErrorCode, PlanSource, QueryKind, Request, Response,
    WireError,
};
