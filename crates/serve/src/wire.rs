//! The line-delimited JSON wire protocol: typed requests, typed
//! responses, and a complete [`PhasePlan`] codec.
//!
//! One request or response per line. A request names a tenant, a query
//! kind, a deadline, and a plan — either inline (the full PhasePlan
//! encoding) or by §8 family name. Responses carry either a typed answer
//! or a typed error; `cached` and `degraded` flags tell the client how
//! the answer was produced.

use parbounds_ir::{
    CombineOp, CompStep, Guard, InitRule, ModelKind, MsgStep, OutputDecl, PhasePlan, PlanBody,
    ProcPhase, SendSpec, SharedPhase, Update, ValueRule, WriteSpec,
};
use parbounds_models::{CostLedger, PhaseCost, Word};

use crate::json::{fnv1a, Json};

/// What the client wants the oracle to do with the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Fold the plan through the model's cost formula without executing.
    Static,
    /// Run the static lint table.
    Lint,
    /// Certify race-freedom by static write-set disjointness.
    Certify,
    /// Execute the plan on the cost-exact simulator.
    Run,
    /// Predict, execute, and report whether the ledgers agree.
    Compare,
    /// Derive the family's Θ-normal-form symbolic ledger, compare it
    /// against its Table 1 row, and anchor the algebra by evaluating at
    /// the suite point. Family plans only (the derivation is per family,
    /// not per inline schedule); input-independent, so permanently
    /// cacheable.
    Symbolic,
    /// Run the family's adversary lower-bound audit: walk the
    /// budget-respecting refinement trajectory with the memoized
    /// `Know`/`AffProc`/`AffCell` analysis, check every step t-good, and
    /// pair the Know-completion lower bound with the Table 1 upper
    /// fixture. Family plans only; input-independent and deterministic,
    /// so permanently cacheable.
    Audit,
}

impl QueryKind {
    /// Wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Static => "static",
            QueryKind::Lint => "lint",
            QueryKind::Certify => "certify",
            QueryKind::Run => "run",
            QueryKind::Compare => "compare",
            QueryKind::Symbolic => "symbolic",
            QueryKind::Audit => "audit",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "static" => QueryKind::Static,
            "lint" => QueryKind::Lint,
            "certify" => QueryKind::Certify,
            "run" => QueryKind::Run,
            "compare" => QueryKind::Compare,
            "symbolic" => QueryKind::Symbolic,
            "audit" => QueryKind::Audit,
            _ => return None,
        })
    }

    /// True for the kinds that execute the plan on a simulator (and are
    /// therefore subject to tenant budgets and degradation).
    pub fn is_measured(self) -> bool {
        matches!(self, QueryKind::Run | QueryKind::Compare)
    }
}

/// Where the plan comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanSource {
    /// A full inline plan.
    Inline(PhasePlan),
    /// A named §8 family built server-side at size `n` with seed `seed`.
    Family {
        /// Family name (see `parbounds analyze --list`).
        name: String,
        /// Problem size (floored to 8 server-side).
        n: usize,
        /// Input seed.
        seed: u64,
    },
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Tenant name for budget accounting.
    pub tenant: String,
    /// What to compute.
    pub kind: QueryKind,
    /// Per-request deadline in milliseconds; `None` uses the server
    /// default.
    pub deadline_ms: Option<u64>,
    /// Deterministic cancellation for tests and chaos injection: trip the
    /// run's [`CancelToken`](parbounds_models::CancelToken) at this phase
    /// boundary instead of arming a wall-clock deadline.
    pub trip_at_phase: Option<usize>,
    /// The plan.
    pub plan: PlanSource,
    /// Input words; defaults to the family's canonical input (family
    /// plans) or all-zeros (inline plans).
    pub input: Option<Vec<Word>>,
}

/// One lint finding on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiag {
    /// "warning" or "error".
    pub severity: String,
    /// Rule name (the `Rule` variant, rendered).
    pub rule: String,
    /// Human-readable message.
    pub message: String,
}

/// A successful oracle answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// A static cost ledger. Also the shape of every degraded answer: when
    /// a measured run exceeds its deadline the service falls back to this.
    Ledger {
        /// The predicted ledger.
        ledger: CostLedger,
    },
    /// Static lint findings.
    Lint {
        /// The findings, in rule-table order.
        diagnostics: Vec<WireDiag>,
    },
    /// A race-freedom certificate (or its refusal).
    Certificate {
        /// Whether the plan was certified race-free.
        race_free: bool,
        /// Phases certified.
        phases: usize,
        /// Number of `(phase, cell)` witnesses when refused.
        witnesses: usize,
    },
    /// A measured execution.
    Run {
        /// The measured ledger.
        ledger: CostLedger,
        /// The plan's declared output.
        output: Vec<Word>,
    },
    /// Prediction next to measurement.
    Compare {
        /// Ledger derived without executing.
        predicted: CostLedger,
        /// Ledger the simulator measured.
        measured: CostLedger,
        /// Whether they agree cell for cell.
        matches: bool,
        /// The plan's declared output.
        output: Vec<Word>,
    },
    /// The family's symbolic ledger in Θ-normal form, checked against its
    /// Table 1 row and anchored at the suite point.
    Symbolic {
        /// Family name the derivation covers.
        family: String,
        /// Θ-normal form derived from the symbolic ledger.
        derived: String,
        /// The family's Table 1 row in Θ-normal form.
        fixture: String,
        /// Derived ≡Θ fixture.
        equivalent: bool,
        /// Derived strictly dominates the fixture (bound regression).
        regression: bool,
        /// Symbolic total evaluated at the request's suite point equals
        /// the numeric prediction cell for cell.
        matches: bool,
        /// The evaluated symbolic total at that point.
        total: u64,
    },
    /// The family's adversary lower-bound audit: trajectory facts plus
    /// the Θ-normal-form lower bound paired with its Table 1 upper.
    Audit {
        /// Family name the audit covers.
        family: String,
        /// Audited size (`n` on shared models, `p` on the BSP).
        size: u64,
        /// Tree fan-in used.
        fan: u64,
        /// Refinement steps whose t-goodness was checked.
        steps: usize,
        /// Steps clamped by the `r_t` fixing budget.
        clamped: usize,
        /// Every checked step satisfied the §5.2 conditions.
        all_good: bool,
        /// Audited lower bound in Θ-normal form.
        lower: String,
        /// Table 1 upper bound in Θ-normal form.
        upper: String,
        /// Pairing verdict (`tight`, `consistent`, `violation`).
        verdict: String,
    },
}

/// Typed error codes a response can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Unparsable frame, unknown family, or an invalid plan.
    BadRequest,
    /// The request's deadline elapsed before an answer was produced (and
    /// no static fallback was available).
    DeadlineExceeded,
    /// The admission queue is full; retry after the hinted delay.
    Overloaded,
    /// The tenant's cost budget cannot cover the request's predicted cost.
    BudgetExhausted,
    /// The plan violates a model rule of Section 2.
    ModelRule,
    /// An I/O failure in the request path.
    Io,
}

impl ErrorCode {
    /// Wire name of the code.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::BudgetExhausted => "budget_exhausted",
            ErrorCode::ModelRule => "model_rule",
            ErrorCode::Io => "io",
        }
    }
}

/// A typed wire error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Backpressure hint, set only for [`ErrorCode::Overloaded`].
    pub retry_after_ms: Option<u64>,
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's correlation id (0 when the frame was unparsable).
    pub id: u64,
    /// The answer or the typed error.
    pub result: Result<Answer, WireError>,
    /// True when the answer was served from the content-addressed cache.
    pub cached: bool,
    /// True when a measured run exceeded its deadline and the service
    /// fell back to the static-analysis answer.
    pub degraded: bool,
}

impl Response {
    /// An error response with no successful answer.
    pub fn error(id: u64, code: ErrorCode, message: impl Into<String>) -> Self {
        Response {
            id,
            result: Err(WireError {
                code,
                message: message.into(),
                retry_after_ms: None,
            }),
            cached: false,
            degraded: false,
        }
    }

    /// The typed `Overloaded` shed-load response.
    pub fn overloaded(id: u64, retry_after_ms: u64) -> Self {
        Response {
            id,
            result: Err(WireError {
                code: ErrorCode::Overloaded,
                message: "admission queue full".to_string(),
                retry_after_ms: Some(retry_after_ms),
            }),
            cached: false,
            degraded: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------------

impl Request {
    /// Encodes the request as a wire object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::Num(i128::from(self.id))),
            ("tenant".to_string(), Json::Str(self.tenant.clone())),
            ("kind".to_string(), Json::Str(self.kind.name().to_string())),
        ];
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), Json::Num(i128::from(ms))));
        }
        if let Some(p) = self.trip_at_phase {
            fields.push(("trip_at_phase".to_string(), Json::Num(p as i128)));
        }
        match &self.plan {
            PlanSource::Inline(plan) => fields.push(("plan".to_string(), plan_to_json(plan))),
            PlanSource::Family { name, n, seed } => fields.push((
                "family".to_string(),
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(name.clone())),
                    ("n".to_string(), Json::Num(*n as i128)),
                    ("seed".to_string(), Json::Num(i128::from(*seed))),
                ]),
            )),
        }
        if let Some(input) = &self.input {
            fields.push(("input".to_string(), words_to_json(input)));
        }
        Json::Obj(fields)
    }

    /// Decodes a request from a parsed wire object.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let id = v.get("id").and_then(Json::as_u64).ok_or("missing 'id'")?;
        let tenant = v
            .get("tenant")
            .and_then(Json::as_str)
            .unwrap_or("anonymous")
            .to_string();
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .and_then(QueryKind::from_name)
            .ok_or("missing or unknown 'kind'")?;
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(ms) => Some(ms.as_u64().ok_or("'deadline_ms' must be a u64")?),
        };
        let trip_at_phase = match v.get("trip_at_phase") {
            None | Some(Json::Null) => None,
            Some(p) => Some(p.as_usize().ok_or("'trip_at_phase' must be a usize")?),
        };
        let plan = match (v.get("plan"), v.get("family")) {
            (Some(p), None) => PlanSource::Inline(plan_from_json(p)?),
            (None, Some(f)) => PlanSource::Family {
                name: f
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("family missing 'name'")?
                    .to_string(),
                n: f.get("n").and_then(Json::as_usize).unwrap_or(64),
                seed: f.get("seed").and_then(Json::as_u64).unwrap_or(0),
            },
            (Some(_), Some(_)) => return Err("give 'plan' or 'family', not both".to_string()),
            (None, None) => return Err("missing 'plan' or 'family'".to_string()),
        };
        let input = match v.get("input") {
            None | Some(Json::Null) => None,
            Some(arr) => Some(words_from_json(arr)?),
        };
        Ok(Request {
            id,
            tenant,
            kind,
            deadline_ms,
            trip_at_phase,
            plan,
            input,
        })
    }

    /// The request's content address: FNV-1a over the canonical rendering
    /// of `(kind, plan, input)`. Tenant, id and deadline are deliberately
    /// excluded — two tenants asking the same question share the answer.
    pub fn cache_key(&self, resolved_plan: &PhasePlan, resolved_input: &[Word]) -> u64 {
        let keyed = Json::Obj(vec![
            ("kind".to_string(), Json::Str(self.kind.name().to_string())),
            ("plan".to_string(), plan_to_json(resolved_plan)),
            ("input".to_string(), words_to_json(resolved_input)),
        ]);
        fnv1a(keyed.render().as_bytes())
    }
}

// ---------------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------------

fn ledger_to_json(ledger: &CostLedger) -> Json {
    Json::Obj(vec![
        (
            "total_time".to_string(),
            Json::Num(i128::from(ledger.total_time())),
        ),
        (
            "phases".to_string(),
            Json::Arr(
                ledger
                    .phases()
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("m_op".to_string(), Json::Num(i128::from(p.m_op))),
                            ("m_rw".to_string(), Json::Num(i128::from(p.m_rw))),
                            ("kappa".to_string(), Json::Num(i128::from(p.kappa))),
                            ("cost".to_string(), Json::Num(i128::from(p.cost))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn ledger_from_json(v: &Json) -> Result<CostLedger, String> {
    let mut ledger = CostLedger::new();
    for p in v
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or("ledger missing 'phases'")?
    {
        ledger.push(PhaseCost {
            m_op: p.get("m_op").and_then(Json::as_u64).ok_or("bad m_op")?,
            m_rw: p.get("m_rw").and_then(Json::as_u64).ok_or("bad m_rw")?,
            kappa: p.get("kappa").and_then(Json::as_u64).ok_or("bad kappa")?,
            cost: p.get("cost").and_then(Json::as_u64).ok_or("bad cost")?,
        });
    }
    Ok(ledger)
}

fn words_to_json(words: &[Word]) -> Json {
    Json::Arr(words.iter().map(|&w| Json::Num(i128::from(w))).collect())
}

fn words_from_json(v: &Json) -> Result<Vec<Word>, String> {
    v.as_arr()
        .ok_or("expected an array of words")?
        .iter()
        .map(|w| w.as_i64().ok_or("word out of range".to_string()))
        .collect()
}

impl Answer {
    /// Encodes the answer as a wire object.
    pub fn to_json(&self) -> Json {
        match self {
            Answer::Ledger { ledger } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("ledger".to_string())),
                ("ledger".to_string(), ledger_to_json(ledger)),
            ]),
            Answer::Lint { diagnostics } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("lint".to_string())),
                (
                    "diagnostics".to_string(),
                    Json::Arr(
                        diagnostics
                            .iter()
                            .map(|d| {
                                Json::Obj(vec![
                                    ("severity".to_string(), Json::Str(d.severity.clone())),
                                    ("rule".to_string(), Json::Str(d.rule.clone())),
                                    ("message".to_string(), Json::Str(d.message.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Answer::Certificate {
                race_free,
                phases,
                witnesses,
            } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("certificate".to_string())),
                ("race_free".to_string(), Json::Bool(*race_free)),
                ("phases".to_string(), Json::Num(*phases as i128)),
                ("witnesses".to_string(), Json::Num(*witnesses as i128)),
            ]),
            Answer::Run { ledger, output } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("run".to_string())),
                ("ledger".to_string(), ledger_to_json(ledger)),
                ("output".to_string(), words_to_json(output)),
            ]),
            Answer::Compare {
                predicted,
                measured,
                matches,
                output,
            } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("compare".to_string())),
                ("predicted".to_string(), ledger_to_json(predicted)),
                ("measured".to_string(), ledger_to_json(measured)),
                ("matches".to_string(), Json::Bool(*matches)),
                ("output".to_string(), words_to_json(output)),
            ]),
            Answer::Symbolic {
                family,
                derived,
                fixture,
                equivalent,
                regression,
                matches,
                total,
            } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("symbolic".to_string())),
                ("family".to_string(), Json::Str(family.clone())),
                ("derived".to_string(), Json::Str(derived.clone())),
                ("fixture".to_string(), Json::Str(fixture.clone())),
                ("equivalent".to_string(), Json::Bool(*equivalent)),
                ("regression".to_string(), Json::Bool(*regression)),
                ("matches".to_string(), Json::Bool(*matches)),
                ("total".to_string(), Json::Num(i128::from(*total))),
            ]),
            Answer::Audit {
                family,
                size,
                fan,
                steps,
                clamped,
                all_good,
                lower,
                upper,
                verdict,
            } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("audit".to_string())),
                ("family".to_string(), Json::Str(family.clone())),
                ("size".to_string(), Json::Num(i128::from(*size))),
                ("fan".to_string(), Json::Num(i128::from(*fan))),
                ("steps".to_string(), Json::Num(*steps as i128)),
                ("clamped".to_string(), Json::Num(*clamped as i128)),
                ("all_good".to_string(), Json::Bool(*all_good)),
                ("lower".to_string(), Json::Str(lower.clone())),
                ("upper".to_string(), Json::Str(upper.clone())),
                ("verdict".to_string(), Json::Str(verdict.clone())),
            ]),
        }
    }

    /// Decodes an answer from a wire object.
    pub fn from_json(v: &Json) -> Result<Answer, String> {
        match v.get("kind").and_then(Json::as_str) {
            Some("ledger") => Ok(Answer::Ledger {
                ledger: ledger_from_json(v.get("ledger").ok_or("missing 'ledger'")?)?,
            }),
            Some("lint") => Ok(Answer::Lint {
                diagnostics: v
                    .get("diagnostics")
                    .and_then(Json::as_arr)
                    .ok_or("missing 'diagnostics'")?
                    .iter()
                    .map(|d| {
                        Ok(WireDiag {
                            severity: d
                                .get("severity")
                                .and_then(Json::as_str)
                                .ok_or("bad diag")?
                                .to_string(),
                            rule: d
                                .get("rule")
                                .and_then(Json::as_str)
                                .ok_or("bad diag")?
                                .to_string(),
                            message: d
                                .get("message")
                                .and_then(Json::as_str)
                                .ok_or("bad diag")?
                                .to_string(),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            }),
            Some("certificate") => Ok(Answer::Certificate {
                race_free: v
                    .get("race_free")
                    .and_then(Json::as_bool)
                    .ok_or("bad certificate")?,
                phases: v
                    .get("phases")
                    .and_then(Json::as_usize)
                    .ok_or("bad certificate")?,
                witnesses: v
                    .get("witnesses")
                    .and_then(Json::as_usize)
                    .ok_or("bad certificate")?,
            }),
            Some("run") => Ok(Answer::Run {
                ledger: ledger_from_json(v.get("ledger").ok_or("missing 'ledger'")?)?,
                output: words_from_json(v.get("output").ok_or("missing 'output'")?)?,
            }),
            Some("compare") => Ok(Answer::Compare {
                predicted: ledger_from_json(v.get("predicted").ok_or("missing 'predicted'")?)?,
                measured: ledger_from_json(v.get("measured").ok_or("missing 'measured'")?)?,
                matches: v
                    .get("matches")
                    .and_then(Json::as_bool)
                    .ok_or("bad 'matches'")?,
                output: words_from_json(v.get("output").ok_or("missing 'output'")?)?,
            }),
            Some("symbolic") => Ok(Answer::Symbolic {
                family: v
                    .get("family")
                    .and_then(Json::as_str)
                    .ok_or("missing 'family'")?
                    .to_string(),
                derived: v
                    .get("derived")
                    .and_then(Json::as_str)
                    .ok_or("missing 'derived'")?
                    .to_string(),
                fixture: v
                    .get("fixture")
                    .and_then(Json::as_str)
                    .ok_or("missing 'fixture'")?
                    .to_string(),
                equivalent: v
                    .get("equivalent")
                    .and_then(Json::as_bool)
                    .ok_or("bad 'equivalent'")?,
                regression: v
                    .get("regression")
                    .and_then(Json::as_bool)
                    .ok_or("bad 'regression'")?,
                matches: v
                    .get("matches")
                    .and_then(Json::as_bool)
                    .ok_or("bad 'matches'")?,
                total: v.get("total").and_then(Json::as_u64).ok_or("bad 'total'")?,
            }),
            Some("audit") => {
                let s = |k: &str| {
                    v.get(k)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or(format!("missing '{k}'"))
                };
                Ok(Answer::Audit {
                    family: s("family")?,
                    size: v.get("size").and_then(Json::as_u64).ok_or("bad 'size'")?,
                    fan: v.get("fan").and_then(Json::as_u64).ok_or("bad 'fan'")?,
                    steps: v
                        .get("steps")
                        .and_then(Json::as_usize)
                        .ok_or("bad 'steps'")?,
                    clamped: v
                        .get("clamped")
                        .and_then(Json::as_usize)
                        .ok_or("bad 'clamped'")?,
                    all_good: v
                        .get("all_good")
                        .and_then(Json::as_bool)
                        .ok_or("bad 'all_good'")?,
                    lower: s("lower")?,
                    upper: s("upper")?,
                    verdict: s("verdict")?,
                })
            }
            _ => Err("unknown answer kind".to_string()),
        }
    }
}

impl Response {
    /// Encodes the response as a wire object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::Num(i128::from(self.id))),
            ("ok".to_string(), Json::Bool(self.result.is_ok())),
            ("cached".to_string(), Json::Bool(self.cached)),
            ("degraded".to_string(), Json::Bool(self.degraded)),
        ];
        match &self.result {
            Ok(answer) => fields.push(("answer".to_string(), answer.to_json())),
            Err(err) => {
                let mut e = vec![
                    ("code".to_string(), Json::Str(err.code.name().to_string())),
                    ("message".to_string(), Json::Str(err.message.clone())),
                ];
                if let Some(ms) = err.retry_after_ms {
                    e.push(("retry_after_ms".to_string(), Json::Num(i128::from(ms))));
                }
                fields.push(("error".to_string(), Json::Obj(e)));
            }
        }
        Json::Obj(fields)
    }

    /// Decodes a response from a wire object.
    pub fn from_json(v: &Json) -> Result<Response, String> {
        let id = v.get("id").and_then(Json::as_u64).ok_or("missing 'id'")?;
        let ok = v.get("ok").and_then(Json::as_bool).ok_or("missing 'ok'")?;
        let cached = v.get("cached").and_then(Json::as_bool).unwrap_or(false);
        let degraded = v.get("degraded").and_then(Json::as_bool).unwrap_or(false);
        let result = if ok {
            Ok(Answer::from_json(
                v.get("answer").ok_or("ok response missing 'answer'")?,
            )?)
        } else {
            let e = v.get("error").ok_or("error response missing 'error'")?;
            let code = match e.get("code").and_then(Json::as_str) {
                Some("bad_request") => ErrorCode::BadRequest,
                Some("deadline_exceeded") => ErrorCode::DeadlineExceeded,
                Some("overloaded") => ErrorCode::Overloaded,
                Some("budget_exhausted") => ErrorCode::BudgetExhausted,
                Some("model_rule") => ErrorCode::ModelRule,
                Some("io") => ErrorCode::Io,
                _ => return Err("unknown error code".to_string()),
            };
            Err(WireError {
                code,
                message: e
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                retry_after_ms: e.get("retry_after_ms").and_then(Json::as_u64),
            })
        };
        Ok(Response {
            id,
            result,
            cached,
            degraded,
        })
    }
}

// ---------------------------------------------------------------------------
// PhasePlan codec
// ---------------------------------------------------------------------------

fn op_to_json(op: CombineOp) -> Json {
    Json::Str(
        match op {
            CombineOp::Sum => "sum",
            CombineOp::Or => "or",
            CombineOp::Xor => "xor",
            CombineOp::Max => "max",
        }
        .to_string(),
    )
}

fn op_from_json(v: &Json) -> Result<CombineOp, String> {
    match v.as_str() {
        Some("sum") => Ok(CombineOp::Sum),
        Some("or") => Ok(CombineOp::Or),
        Some("xor") => Ok(CombineOp::Xor),
        Some("max") => Ok(CombineOp::Max),
        _ => Err("unknown combine op".to_string()),
    }
}

fn update_to_json(u: Update) -> Json {
    match u {
        Update::Keep => Json::Obj(vec![("kind".to_string(), Json::Str("keep".to_string()))]),
        Update::Load => Json::Obj(vec![("kind".to_string(), Json::Str("load".to_string()))]),
        Update::Fold(op) => Json::Obj(vec![
            ("kind".to_string(), Json::Str("fold".to_string())),
            ("op".to_string(), op_to_json(op)),
        ]),
        Update::Accum(op) => Json::Obj(vec![
            ("kind".to_string(), Json::Str("accum".to_string())),
            ("op".to_string(), op_to_json(op)),
        ]),
    }
}

fn update_from_json(v: &Json) -> Result<Update, String> {
    match v.get("kind").and_then(Json::as_str) {
        Some("keep") => Ok(Update::Keep),
        Some("load") => Ok(Update::Load),
        Some("fold") => Ok(Update::Fold(op_from_json(
            v.get("op").ok_or("fold missing 'op'")?,
        )?)),
        Some("accum") => Ok(Update::Accum(op_from_json(
            v.get("op").ok_or("accum missing 'op'")?,
        )?)),
        _ => Err("unknown update kind".to_string()),
    }
}

fn value_to_json(v: ValueRule) -> Json {
    match v {
        ValueRule::Const(w) => Json::Obj(vec![
            ("kind".to_string(), Json::Str("const".to_string())),
            ("v".to_string(), Json::Num(i128::from(w))),
        ]),
        ValueRule::Reg(i) => Json::Obj(vec![
            ("kind".to_string(), Json::Str("reg".to_string())),
            ("i".to_string(), Json::Num(i as i128)),
        ]),
        ValueRule::FoldRegs(op) => Json::Obj(vec![
            ("kind".to_string(), Json::Str("fold_regs".to_string())),
            ("op".to_string(), op_to_json(op)),
        ]),
    }
}

fn value_from_json(v: &Json) -> Result<ValueRule, String> {
    match v.get("kind").and_then(Json::as_str) {
        Some("const") => Ok(ValueRule::Const(
            v.get("v")
                .and_then(Json::as_i64)
                .ok_or("const missing 'v'")?,
        )),
        Some("reg") => Ok(ValueRule::Reg(
            v.get("i")
                .and_then(Json::as_usize)
                .ok_or("reg missing 'i'")?,
        )),
        Some("fold_regs") => Ok(ValueRule::FoldRegs(op_from_json(
            v.get("op").ok_or("fold_regs missing 'op'")?,
        )?)),
        _ => Err("unknown value rule".to_string()),
    }
}

fn usizes_to_json(xs: &[usize]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x as i128)).collect())
}

fn usizes_from_json(v: &Json) -> Result<Vec<usize>, String> {
    v.as_arr()
        .ok_or("expected an array of indices")?
        .iter()
        .map(|x| x.as_usize().ok_or("index out of range".to_string()))
        .collect()
}

/// Encodes a plan as its canonical wire object.
pub fn plan_to_json(plan: &PhasePlan) -> Json {
    let model = match plan.model {
        ModelKind::Qsm { g } => Json::Obj(vec![
            ("kind".to_string(), Json::Str("qsm".to_string())),
            ("g".to_string(), Json::Num(i128::from(g))),
        ]),
        ModelKind::SQsm { g } => Json::Obj(vec![
            ("kind".to_string(), Json::Str("sqsm".to_string())),
            ("g".to_string(), Json::Num(i128::from(g))),
        ]),
        ModelKind::QsmUnitCr { g } => Json::Obj(vec![
            ("kind".to_string(), Json::Str("qsm_unit_cr".to_string())),
            ("g".to_string(), Json::Num(i128::from(g))),
        ]),
        ModelKind::Bsp { p, g, l } => Json::Obj(vec![
            ("kind".to_string(), Json::Str("bsp".to_string())),
            ("p".to_string(), Json::Num(p as i128)),
            ("g".to_string(), Json::Num(i128::from(g))),
            ("l".to_string(), Json::Num(i128::from(l))),
        ]),
        ModelKind::Gsm { alpha, beta, gamma } => Json::Obj(vec![
            ("kind".to_string(), Json::Str("gsm".to_string())),
            ("alpha".to_string(), Json::Num(i128::from(alpha))),
            ("beta".to_string(), Json::Num(i128::from(beta))),
            ("gamma".to_string(), Json::Num(i128::from(gamma))),
        ]),
    };
    let output = match plan.output {
        OutputDecl::Region { base, len } => Json::Obj(vec![
            ("kind".to_string(), Json::Str("region".to_string())),
            ("base".to_string(), Json::Num(base as i128)),
            ("len".to_string(), Json::Num(len as i128)),
        ]),
        OutputDecl::ComponentState => Json::Obj(vec![(
            "kind".to_string(),
            Json::Str("component_state".to_string()),
        )]),
    };
    let body = match &plan.body {
        PlanBody::Shared(phases) => Json::Obj(vec![
            ("kind".to_string(), Json::Str("shared".to_string())),
            (
                "phases".to_string(),
                Json::Arr(
                    phases
                        .iter()
                        .map(|phase| {
                            Json::Obj(vec![
                                ("label".to_string(), Json::Str(phase.label.clone())),
                                ("finish".to_string(), usizes_to_json(&phase.finish)),
                                (
                                    "procs".to_string(),
                                    Json::Arr(phase.procs.iter().map(proc_to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        PlanBody::Msg { init, steps } => {
            let init_json = match init {
                InitRule::Const(w) => Json::Obj(vec![
                    ("kind".to_string(), Json::Str("const".to_string())),
                    ("v".to_string(), Json::Num(i128::from(*w))),
                ]),
                InitRule::FoldLocal(op) => Json::Obj(vec![
                    ("kind".to_string(), Json::Str("fold_local".to_string())),
                    ("op".to_string(), op_to_json(*op)),
                ]),
            };
            Json::Obj(vec![
                ("kind".to_string(), Json::Str("msg".to_string())),
                ("init".to_string(), init_json),
                (
                    "steps".to_string(),
                    Json::Arr(
                        steps
                            .iter()
                            .map(|step| {
                                Json::Obj(vec![
                                    ("label".to_string(), Json::Str(step.label.clone())),
                                    ("finish".to_string(), usizes_to_json(&step.finish)),
                                    (
                                        "comps".to_string(),
                                        Json::Arr(step.comps.iter().map(comp_to_json).collect()),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        }
    };
    Json::Obj(vec![
        ("family".to_string(), Json::Str(plan.family.clone())),
        ("model".to_string(), model),
        ("procs".to_string(), Json::Num(plan.procs as i128)),
        (
            "input_cells".to_string(),
            Json::Num(plan.input_cells as i128),
        ),
        (
            "contention_bound".to_string(),
            match plan.contention_bound {
                Some(b) => Json::Num(i128::from(b)),
                None => Json::Null,
            },
        ),
        ("output".to_string(), output),
        ("body".to_string(), body),
    ])
}

fn proc_to_json(e: &ProcPhase) -> Json {
    Json::Obj(vec![
        ("pid".to_string(), Json::Num(e.pid as i128)),
        ("update".to_string(), update_to_json(e.update)),
        (
            "guard".to_string(),
            Json::Str(
                match e.guard {
                    Guard::Always => "always",
                    Guard::NonZero => "non_zero",
                }
                .to_string(),
            ),
        ),
        ("reads".to_string(), usizes_to_json(&e.reads)),
        (
            "writes".to_string(),
            Json::Arr(
                e.writes
                    .iter()
                    .map(|w| {
                        Json::Obj(vec![
                            ("addr".to_string(), Json::Num(w.addr as i128)),
                            ("value".to_string(), value_to_json(w.value)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("local_ops".to_string(), Json::Num(i128::from(e.local_ops))),
    ])
}

fn comp_to_json(e: &CompStep) -> Json {
    Json::Obj(vec![
        ("pid".to_string(), Json::Num(e.pid as i128)),
        ("update".to_string(), update_to_json(e.update)),
        (
            "sends".to_string(),
            Json::Arr(
                e.sends
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("dest".to_string(), Json::Num(s.dest as i128)),
                            ("tag".to_string(), Json::Num(i128::from(s.tag))),
                            ("value".to_string(), value_to_json(s.value)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("local_ops".to_string(), Json::Num(i128::from(e.local_ops))),
    ])
}

/// Decodes a plan from its wire object. The caller still runs
/// [`PhasePlan::validate`]; this only checks structure.
pub fn plan_from_json(v: &Json) -> Result<PhasePlan, String> {
    let m = v.get("model").ok_or("plan missing 'model'")?;
    let model = match m.get("kind").and_then(Json::as_str) {
        Some("qsm") => ModelKind::Qsm {
            g: m.get("g").and_then(Json::as_u64).ok_or("qsm missing 'g'")?,
        },
        Some("sqsm") => ModelKind::SQsm {
            g: m.get("g")
                .and_then(Json::as_u64)
                .ok_or("sqsm missing 'g'")?,
        },
        Some("qsm_unit_cr") => ModelKind::QsmUnitCr {
            g: m.get("g")
                .and_then(Json::as_u64)
                .ok_or("qsm_unit_cr missing 'g'")?,
        },
        Some("bsp") => ModelKind::Bsp {
            p: m.get("p")
                .and_then(Json::as_usize)
                .ok_or("bsp missing 'p'")?,
            g: m.get("g").and_then(Json::as_u64).ok_or("bsp missing 'g'")?,
            l: m.get("l").and_then(Json::as_u64).ok_or("bsp missing 'l'")?,
        },
        Some("gsm") => ModelKind::Gsm {
            alpha: m
                .get("alpha")
                .and_then(Json::as_u64)
                .ok_or("gsm missing 'alpha'")?,
            beta: m
                .get("beta")
                .and_then(Json::as_u64)
                .ok_or("gsm missing 'beta'")?,
            gamma: m
                .get("gamma")
                .and_then(Json::as_u64)
                .ok_or("gsm missing 'gamma'")?,
        },
        _ => return Err("unknown model kind".to_string()),
    };
    let o = v.get("output").ok_or("plan missing 'output'")?;
    let output = match o.get("kind").and_then(Json::as_str) {
        Some("region") => OutputDecl::Region {
            base: o
                .get("base")
                .and_then(Json::as_usize)
                .ok_or("region missing 'base'")?,
            len: o
                .get("len")
                .and_then(Json::as_usize)
                .ok_or("region missing 'len'")?,
        },
        Some("component_state") => OutputDecl::ComponentState,
        _ => return Err("unknown output kind".to_string()),
    };
    let b = v.get("body").ok_or("plan missing 'body'")?;
    let body = match b.get("kind").and_then(Json::as_str) {
        Some("shared") => {
            let mut phases = Vec::new();
            for p in b
                .get("phases")
                .and_then(Json::as_arr)
                .ok_or("shared body missing 'phases'")?
            {
                let mut phase =
                    SharedPhase::new(p.get("label").and_then(Json::as_str).unwrap_or_default());
                phase.finish = usizes_from_json(p.get("finish").ok_or("phase missing 'finish'")?)?;
                for e in p
                    .get("procs")
                    .and_then(Json::as_arr)
                    .ok_or("phase missing 'procs'")?
                {
                    phase.procs.push(proc_from_json(e)?);
                }
                phases.push(phase);
            }
            PlanBody::Shared(phases)
        }
        Some("msg") => {
            let i = b.get("init").ok_or("msg body missing 'init'")?;
            let init = match i.get("kind").and_then(Json::as_str) {
                Some("const") => InitRule::Const(
                    i.get("v")
                        .and_then(Json::as_i64)
                        .ok_or("init missing 'v'")?,
                ),
                Some("fold_local") => {
                    InitRule::FoldLocal(op_from_json(i.get("op").ok_or("init missing 'op'")?)?)
                }
                _ => return Err("unknown init rule".to_string()),
            };
            let mut steps = Vec::new();
            for s in b
                .get("steps")
                .and_then(Json::as_arr)
                .ok_or("msg body missing 'steps'")?
            {
                let mut step =
                    MsgStep::new(s.get("label").and_then(Json::as_str).unwrap_or_default());
                step.finish = usizes_from_json(s.get("finish").ok_or("step missing 'finish'")?)?;
                for e in s
                    .get("comps")
                    .and_then(Json::as_arr)
                    .ok_or("step missing 'comps'")?
                {
                    step.comps.push(comp_from_json(e)?);
                }
                steps.push(step);
            }
            PlanBody::Msg { init, steps }
        }
        _ => return Err("unknown body kind".to_string()),
    };
    Ok(PhasePlan {
        family: v
            .get("family")
            .and_then(Json::as_str)
            .unwrap_or("inline")
            .to_string(),
        model,
        procs: v
            .get("procs")
            .and_then(Json::as_usize)
            .ok_or("plan missing 'procs'")?,
        input_cells: v
            .get("input_cells")
            .and_then(Json::as_usize)
            .ok_or("plan missing 'input_cells'")?,
        contention_bound: match v.get("contention_bound") {
            None | Some(Json::Null) => None,
            Some(b) => Some(b.as_u64().ok_or("bad 'contention_bound'")?),
        },
        output,
        body,
    })
}

fn proc_from_json(e: &Json) -> Result<ProcPhase, String> {
    let mut p = ProcPhase::idle(
        e.get("pid")
            .and_then(Json::as_usize)
            .ok_or("proc missing 'pid'")?,
    );
    p.update = update_from_json(e.get("update").ok_or("proc missing 'update'")?)?;
    p.guard = match e.get("guard").and_then(Json::as_str) {
        Some("always") => Guard::Always,
        Some("non_zero") => Guard::NonZero,
        _ => return Err("unknown guard".to_string()),
    };
    p.reads = usizes_from_json(e.get("reads").ok_or("proc missing 'reads'")?)?;
    for w in e
        .get("writes")
        .and_then(Json::as_arr)
        .ok_or("proc missing 'writes'")?
    {
        p.writes.push(WriteSpec {
            addr: w
                .get("addr")
                .and_then(Json::as_usize)
                .ok_or("write missing 'addr'")?,
            value: value_from_json(w.get("value").ok_or("write missing 'value'")?)?,
        });
    }
    p.local_ops = e
        .get("local_ops")
        .and_then(Json::as_u64)
        .ok_or("proc missing 'local_ops'")?;
    Ok(p)
}

fn comp_from_json(e: &Json) -> Result<CompStep, String> {
    let mut c = CompStep::idle(
        e.get("pid")
            .and_then(Json::as_usize)
            .ok_or("comp missing 'pid'")?,
    );
    c.update = update_from_json(e.get("update").ok_or("comp missing 'update'")?)?;
    for s in e
        .get("sends")
        .and_then(Json::as_arr)
        .ok_or("comp missing 'sends'")?
    {
        c.sends.push(SendSpec {
            dest: s
                .get("dest")
                .and_then(Json::as_usize)
                .ok_or("send missing 'dest'")?,
            tag: s
                .get("tag")
                .and_then(Json::as_i64)
                .ok_or("send missing 'tag'")?,
            value: value_from_json(s.get("value").ok_or("send missing 'value'")?)?,
        });
    }
    c.local_ops = e
        .get("local_ops")
        .and_then(Json::as_u64)
        .ok_or("comp missing 'local_ops'")?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use parbounds_analyze::ir_family_plan;
    use parbounds_analyze::statics::IR_FAMILIES;

    #[test]
    fn plan_codec_round_trips_every_family() {
        for family in IR_FAMILIES.iter().chain(std::iter::once(&"racy-plan")) {
            let (_, plan, _) = ir_family_plan(family, 64, 7).unwrap();
            let encoded = plan_to_json(&plan).render();
            let decoded = plan_from_json(&parse(&encoded).unwrap()).unwrap();
            assert_eq!(plan, decoded, "round trip for {family}");
        }
    }

    #[test]
    fn request_codec_round_trips() {
        let (_, plan, input) = ir_family_plan("broadcast", 32, 3).unwrap();
        let req = Request {
            id: 42,
            tenant: "acme".to_string(),
            kind: QueryKind::Compare,
            deadline_ms: Some(250),
            trip_at_phase: None,
            plan: PlanSource::Inline(plan),
            input: Some(input),
        };
        let text = req.to_json().render();
        let back = Request::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn cache_key_ignores_tenant_and_id() {
        let (_, plan, input) = ir_family_plan("or-write-tree", 32, 1).unwrap();
        let mut a = Request {
            id: 1,
            tenant: "a".to_string(),
            kind: QueryKind::Static,
            deadline_ms: Some(10),
            trip_at_phase: None,
            plan: PlanSource::Inline(plan.clone()),
            input: None,
        };
        let mut b = a.clone();
        b.id = 999;
        b.tenant = "b".to_string();
        b.deadline_ms = None;
        assert_eq!(a.cache_key(&plan, &input), b.cache_key(&plan, &input));
        a.kind = QueryKind::Run;
        assert_ne!(a.cache_key(&plan, &input), b.cache_key(&plan, &input));
    }

    #[test]
    fn response_codec_round_trips_answers_and_errors() {
        let mut ledger = CostLedger::new();
        ledger.push(PhaseCost {
            m_op: 3,
            m_rw: 1,
            kappa: 2,
            cost: 8,
        });
        let ok = Response {
            id: 5,
            result: Ok(Answer::Run {
                ledger,
                output: vec![1, -2, 3],
            }),
            cached: true,
            degraded: false,
        };
        let back = Response::from_json(&parse(&ok.to_json().render()).unwrap()).unwrap();
        assert_eq!(ok, back);

        let err = Response::overloaded(9, 15);
        let back = Response::from_json(&parse(&err.to_json().render()).unwrap()).unwrap();
        assert_eq!(err, back);
        assert_eq!(
            back.result.unwrap_err().retry_after_ms,
            Some(15),
            "retry hint survives the wire"
        );
    }

    #[test]
    fn symbolic_codec_round_trips_unicode_normal_forms() {
        assert_eq!(QueryKind::from_name("symbolic"), Some(QueryKind::Symbolic));
        assert!(!QueryKind::Symbolic.is_measured());
        let resp = Response {
            id: 7,
            result: Ok(Answer::Symbolic {
                family: "or-write-tree".to_string(),
                derived: "Θ(g·log n/(log g))".to_string(),
                fixture: "Θ(g·log n/(log g))".to_string(),
                equivalent: true,
                regression: false,
                matches: true,
                total: 64,
            }),
            cached: false,
            degraded: false,
        };
        let back = Response::from_json(&parse(&resp.to_json().render()).unwrap()).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn audit_codec_round_trips_and_stays_unmeasured() {
        assert_eq!(QueryKind::from_name("audit"), Some(QueryKind::Audit));
        assert!(
            !QueryKind::Audit.is_measured(),
            "audits are static analyses: no tenant budget charge"
        );
        let resp = Response {
            id: 11,
            result: Ok(Answer::Audit {
                family: "parity-read-tree".to_string(),
                size: 4096,
                fan: 2,
                steps: 24,
                clamped: 1,
                all_good: true,
                lower: "Θ(g·log n)".to_string(),
                upper: "Θ(g·log n)".to_string(),
                verdict: "tight".to_string(),
            }),
            cached: true,
            degraded: false,
        };
        let back = Response::from_json(&parse(&resp.to_json().render()).unwrap()).unwrap();
        assert_eq!(resp, back);
    }
}
