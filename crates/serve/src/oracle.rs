//! The cost oracle: resolves, analyzes and executes one request.
//!
//! The oracle is the pure request→response core the server's worker pool
//! calls. It owns the single-flight cache and the tenant budgets, and
//! implements the degradation state machine:
//!
//! ```text
//! resolve plan ──bad──▶ bad_request
//!   │ok
//! predict ledger (static, fresh token)
//!   │
//! measured kind? ──yes──▶ charge tenant budget ──over──▶ budget_exhausted
//!   │no                       │ok
//! cache lookup (single-flight)│
//!   │lead                     │
//! compute under deadline token│execute under deadline token
//!   │                         ├─ ok ───────▶ answer (cached for next time)
//!   │                         └─ deadline ─▶ static ledger, degraded: true
//! ```
//!
//! Errors are never cached; degraded answers are never cached (a later,
//! less-loaded request should get the chance to produce the full answer).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use parbounds_analyze::{certify_writes, ir_family_plan, lint_plan, predict_ledger_with};
use parbounds_ir::{
    compile_plan, execute_compiled_cancellable, execute_plan_cancellable, CompileOutcome,
    CompiledPlan, PhasePlan,
};
use parbounds_models::{CancelToken, ModelError, Word};

use crate::budget::TenantBudgets;
use crate::cache::{CacheSnapshot, Lease, OracleCache};
use crate::json::fnv1a;
use crate::wire::{
    plan_to_json, Answer, ErrorCode, PlanSource, QueryKind, Request, Response, WireDiag, WireError,
};

/// Bounded FIFO cache of compiled plans, keyed by the plan's content
/// address alone (no input, kind, or tenant): the answer cache dedups
/// identical questions, but the *schedule* is reusable across different
/// inputs and across `run`/`compare` kinds, so the one-shot `ir::compile`
/// lowering is paid once per distinct plan. Ineligible plans are cached
/// as `None` so the eligibility scan is not repeated per request either.
#[derive(Debug)]
struct CompiledCache {
    cap: usize,
    inner: Mutex<CompiledCacheInner>,
}

#[derive(Debug, Default)]
struct CompiledCacheInner {
    map: HashMap<u64, Option<Arc<CompiledPlan>>>,
    fifo: VecDeque<u64>,
}

impl CompiledCache {
    fn new(cap: usize) -> Self {
        CompiledCache {
            cap: cap.max(1),
            inner: Mutex::new(CompiledCacheInner::default()),
        }
    }

    /// Number of distinct plans currently cached (compiled or ineligible).
    fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("compiled cache lock poisoned")
            .map
            .len()
    }

    /// Returns the cached compilation of `plan`, compiling on miss.
    /// `None` means the plan is compile-ineligible and callers should use
    /// the checked interpreter.
    fn get_or_compile(&self, plan: &PhasePlan) -> Result<Option<Arc<CompiledPlan>>, ModelError> {
        let key = fnv1a(plan_to_json(plan).render().as_bytes());
        if let Some(hit) = self
            .inner
            .lock()
            .expect("compiled cache lock poisoned")
            .map
            .get(&key)
        {
            return Ok(hit.clone());
        }
        // Compile outside the lock: lowering is pure and idempotent, so a
        // racing duplicate costs one redundant compile, never a stall.
        let compiled = match compile_plan(plan)? {
            CompileOutcome::Compiled(cp) => Some(Arc::new(cp)),
            CompileOutcome::Ineligible(_) => None,
        };
        let mut st = self.inner.lock().expect("compiled cache lock poisoned");
        // A racing duplicate may have landed the entry first; keep theirs
        // so the cached Arc identity is stable.
        if let Some(hit) = st.map.get(&key) {
            return Ok(hit.clone());
        }
        if st.fifo.len() >= self.cap {
            if let Some(old) = st.fifo.pop_front() {
                st.map.remove(&old);
            }
        }
        st.fifo.push_back(key);
        st.map.insert(key, compiled.clone());
        Ok(compiled)
    }
}

/// Oracle tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Ready answers the content-addressed cache retains.
    pub cache_cap: usize,
    /// Deadline applied when a request names none.
    pub default_deadline: Duration,
    /// Predicted-model-time budget per tenant.
    pub tenant_budget: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            cache_cap: 1024,
            default_deadline: Duration::from_millis(2_000),
            tenant_budget: u64::MAX,
        }
    }
}

/// The request→response core shared by every worker.
#[derive(Debug)]
pub struct Oracle {
    cache: OracleCache,
    compiled: CompiledCache,
    budgets: TenantBudgets,
    cfg: OracleConfig,
    analyses: AtomicU64,
    degraded: AtomicU64,
}

impl Oracle {
    /// Builds an oracle from its config.
    pub fn new(cfg: OracleConfig) -> Self {
        Oracle {
            cache: OracleCache::new(cfg.cache_cap),
            compiled: CompiledCache::new(cfg.cache_cap),
            budgets: TenantBudgets::new(cfg.tenant_budget),
            cfg,
            analyses: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    /// Number of distinct plans whose compilation (or ineligibility) is
    /// currently cached.
    pub fn compiled_plans_cached(&self) -> usize {
        self.compiled.len()
    }

    /// Executes `plan` on `input` through the per-plan compiled cache:
    /// eligible plans replay their straight-line schedule (lowered once
    /// per distinct plan, reused across inputs and query kinds),
    /// ineligible ones take the checked interpreter. Both paths are
    /// bit-identical, so answers and the answer cache are unaffected.
    fn execute_cached(
        &self,
        plan: &PhasePlan,
        input: &[Word],
        token: &CancelToken,
    ) -> Result<parbounds_ir::PlanRun, ModelError> {
        match self.compiled.get_or_compile(plan)? {
            Some(cp) => execute_compiled_cancellable(plan, &cp, input, token),
            None => execute_plan_cancellable(plan, input, token),
        }
    }

    /// Number of answers actually computed (cache leaders), the
    /// observable the single-flight tests assert on.
    pub fn analyses_performed(&self) -> u64 {
        self.analyses.load(Ordering::Relaxed)
    }

    /// Number of degraded (static-fallback) answers served.
    pub fn degraded_served(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheSnapshot {
        self.cache.stats()
    }

    /// Predicted cost charged to `tenant` so far.
    pub fn tenant_spent(&self, tenant: &str) -> u64 {
        self.budgets.spent(tenant)
    }

    /// True when the content address `key` currently has a cached answer
    /// (used by the cancellation tests to prove cancelled runs leave no
    /// partial state behind).
    pub fn cache_contains(&self, key: u64) -> bool {
        self.cache.contains(key)
    }

    /// Handles one request end to end. Never panics on malformed input —
    /// every failure mode maps to a typed error or a degraded answer.
    pub fn handle(&self, req: &Request) -> Response {
        match self.try_handle(req) {
            Ok(resp) => resp,
            Err(err) => Response {
                id: req.id,
                result: Err(wire_error(&err)),
                cached: false,
                degraded: false,
            },
        }
    }

    fn try_handle(&self, req: &Request) -> Result<Response, ModelError> {
        // 1. Resolve the plan and input.
        let (plan, input) = self.resolve(req)?;
        plan.validate()?;

        // 2. The static prediction, under a fresh token: it doubles as the
        //    budget gatekeeper and the degraded answer, so it must not be
        //    poisoned by an already-tripped request deadline. It is cheap
        //    (no execution), but a hostile million-phase plan is still
        //    bounded by the server default deadline.
        let predicted = predict_ledger_with(
            &plan,
            &CancelToken::with_deadline(self.cfg.default_deadline),
        )?;

        // 3. Measured kinds charge the tenant the predicted model time up
        //    front; refusal is the models' own CostBudgetExceeded.
        if req.kind.is_measured() {
            self.budgets
                .try_charge(&req.tenant, predicted.total_time())?;
        }

        // 4. Single-flight cache.
        let key = req.cache_key(&plan, &input);
        match self.cache.get_or_begin(key) {
            Lease::Hit(answer) => Ok(Response {
                id: req.id,
                result: Ok((*answer).clone()),
                cached: true,
                degraded: false,
            }),
            Lease::Lead => {
                let token = self.request_token(req);
                self.analyses.fetch_add(1, Ordering::Relaxed);
                match self.compute(req, &plan, &input, &predicted, &token) {
                    Ok(answer) => {
                        let answer = Arc::new(answer);
                        self.cache.fulfill(key, Arc::clone(&answer));
                        Ok(Response {
                            id: req.id,
                            result: Ok((*answer).clone()),
                            cached: false,
                            degraded: false,
                        })
                    }
                    Err(ModelError::DeadlineExceeded { .. }) if req.kind.is_measured() => {
                        // Graceful degradation: the measured run blew its
                        // deadline, but the static ledger is already in
                        // hand. Not cached — the next request should get a
                        // chance at the full answer.
                        self.cache.abandon(key);
                        self.degraded.fetch_add(1, Ordering::Relaxed);
                        Ok(Response {
                            id: req.id,
                            result: Ok(Answer::Ledger { ledger: predicted }),
                            cached: false,
                            degraded: true,
                        })
                    }
                    Err(err) => {
                        self.cache.abandon(key);
                        Err(err)
                    }
                }
            }
        }
    }

    /// Builds the cancellation token governing the measured/analyzed part
    /// of a request: a deterministic phase trip when the request asks for
    /// one (tests, chaos), otherwise the wall-clock deadline.
    fn request_token(&self, req: &Request) -> CancelToken {
        if let Some(phase) = req.trip_at_phase {
            CancelToken::tripping_at_phase(phase)
        } else {
            let ms = req.deadline_ms.map(Duration::from_millis);
            CancelToken::with_deadline(ms.unwrap_or(self.cfg.default_deadline))
        }
    }

    fn resolve(&self, req: &Request) -> Result<(PhasePlan, Vec<Word>), ModelError> {
        match &req.plan {
            PlanSource::Inline(plan) => {
                let input = req
                    .input
                    .clone()
                    .unwrap_or_else(|| vec![0; plan.input_cells]);
                Ok((plan.clone(), input))
            }
            PlanSource::Family { name, n, seed } => {
                let (_, plan, canonical) = ir_family_plan(name, *n, *seed)?;
                Ok((plan, req.input.clone().unwrap_or(canonical)))
            }
        }
    }

    fn compute(
        &self,
        req: &Request,
        plan: &PhasePlan,
        input: &[Word],
        predicted: &parbounds_models::CostLedger,
        token: &CancelToken,
    ) -> Result<Answer, ModelError> {
        match req.kind {
            QueryKind::Static => Ok(Answer::Ledger {
                // Re-fold under the request token so an explicit phase
                // trip or tight deadline is honoured deterministically.
                ledger: predict_ledger_with(plan, token)?,
            }),
            QueryKind::Lint => Ok(Answer::Lint {
                diagnostics: lint_plan(plan)?
                    .into_iter()
                    .map(|d| WireDiag {
                        severity: format!("{:?}", d.severity).to_lowercase(),
                        rule: format!("{:?}", d.rule),
                        message: d.message,
                    })
                    .collect(),
            }),
            QueryKind::Certify => {
                let cert = certify_writes(plan)?;
                let witnesses = match &cert {
                    parbounds_analyze::WriteCertificate::Racy { witnesses } => witnesses.len(),
                    parbounds_analyze::WriteCertificate::RaceFree { .. } => 0,
                };
                Ok(Answer::Certificate {
                    race_free: cert.is_race_free(),
                    phases: plan.num_phases(),
                    witnesses,
                })
            }
            QueryKind::Run => {
                let run = self.execute_cached(plan, input, token)?;
                Ok(Answer::Run {
                    ledger: run.ledger,
                    output: run.output,
                })
            }
            QueryKind::Compare => {
                let run = self.execute_cached(plan, input, token)?;
                let matches = *predicted == run.ledger;
                Ok(Answer::Compare {
                    predicted: predicted.clone(),
                    measured: run.ledger,
                    matches,
                    output: run.output,
                })
            }
            QueryKind::Symbolic => {
                // Per-family derivation: only family plans name one. The
                // suite point mirrors what `resolve` instantiated, so the
                // evaluated symbolic ledger must equal `predicted` cell
                // for cell.
                let PlanSource::Family { name, n, .. } = &req.plan else {
                    return Err(ModelError::BadConfig(
                        "symbolic queries require a family plan source (the \
                         Θ-derivation is per family, not per inline schedule)"
                            .into(),
                    ));
                };
                let conf = parbounds_analyze::check_family(name)?;
                let pt = parbounds_analyze::symbolic::suite_point(name, *n);
                let ledger = parbounds_analyze::predict_ledger_symbolic(name)?;
                let evaluated = ledger
                    .eval_ledger(pt)
                    .map_err(|e| ModelError::BadConfig(format!("symbolic eval of {name}: {e}")))?;
                Ok(Answer::Symbolic {
                    family: conf.family.to_string(),
                    derived: conf.derived.to_string(),
                    fixture: conf.fixture.to_string(),
                    equivalent: conf.equivalent,
                    regression: conf.regression,
                    matches: evaluated == *predicted,
                    total: evaluated.total_time(),
                })
            }
            QueryKind::Audit => {
                // The adversary audit is per family and input-independent,
                // like the symbolic derivation; the resolved plan/input are
                // unused beyond admission costing.
                let PlanSource::Family { name, n, .. } = &req.plan else {
                    return Err(ModelError::BadConfig(
                        "audit queries require a family plan source (the \
                         lower-bound audit is per family, not per inline schedule)"
                            .into(),
                    ));
                };
                let o = parbounds_adversary::audit_family(name, *n)?;
                Ok(Answer::Audit {
                    family: o.family.to_string(),
                    size: o.size,
                    fan: o.fan,
                    steps: o.steps_checked,
                    clamped: o.budget_clamped,
                    all_good: o.all_good,
                    lower: o.lower_theta.to_string(),
                    upper: o.upper_theta.to_string(),
                    verdict: o.verdict.name().to_string(),
                })
            }
        }
    }
}

/// Maps a [`ModelError`] to its typed wire error.
pub fn wire_error(err: &ModelError) -> WireError {
    let code = match err {
        ModelError::BadConfig(_) => ErrorCode::BadRequest,
        ModelError::CostBudgetExceeded { .. } => ErrorCode::BudgetExhausted,
        ModelError::DeadlineExceeded { .. } => ErrorCode::DeadlineExceeded,
        ModelError::Io(_) => ErrorCode::Io,
        _ => ErrorCode::ModelRule,
    };
    WireError {
        code,
        message: err.to_string(),
        retry_after_ms: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_ir::{dart_round, execute_plan, prefix_sweep, CombineOp, ModelKind, ValueRule};

    fn sweep_plan(n: usize) -> PhasePlan {
        prefix_sweep(n, 4, CombineOp::Sum, ModelKind::Qsm { g: 2 })
    }

    #[test]
    fn compiled_cache_reuses_one_lowering_per_plan() {
        let oracle = Oracle::new(OracleConfig::default());
        let token = CancelToken::with_deadline(Duration::from_secs(10));
        let plan = sweep_plan(64);
        for seed in 0..3 {
            let input: Vec<Word> = (0..64).map(|x: Word| x ^ seed).collect();
            let got = oracle.execute_cached(&plan, &input, &token).unwrap();
            assert_eq!(got, execute_plan(&plan, &input).unwrap());
        }
        assert_eq!(
            oracle.compiled_plans_cached(),
            1,
            "three runs of one plan must share one compilation"
        );
    }

    #[test]
    fn compiled_cache_caches_ineligibility_and_falls_back() {
        let oracle = Oracle::new(OracleConfig::default());
        let token = CancelToken::with_deadline(Duration::from_secs(10));
        let targets: Vec<(usize, ValueRule)> = (0..4)
            .map(|pid| (0usize, ValueRule::Const(pid as Word + 1)))
            .collect();
        let racy = dart_round(&targets, ModelKind::Qsm { g: 8 });
        let input: Vec<Word> = Vec::new();
        let got = oracle.execute_cached(&racy, &input, &token).unwrap();
        assert_eq!(got, execute_plan(&racy, &input).unwrap());
        // The racy plan is compile-ineligible; its verdict is cached so the
        // eligibility scan runs once, and repeats stay on the interpreter.
        assert_eq!(oracle.compiled_plans_cached(), 1);
        oracle.execute_cached(&racy, &input, &token).unwrap();
        assert_eq!(oracle.compiled_plans_cached(), 1);
    }

    #[test]
    fn compiled_cache_is_bounded_fifo() {
        let cache = CompiledCache::new(2);
        for n in [8usize, 16, 32, 64] {
            cache.get_or_compile(&sweep_plan(n)).unwrap();
            assert!(cache.len() <= 2);
        }
        // Oldest entries were evicted; the newest survives.
        let key = fnv1a(plan_to_json(&sweep_plan(64)).render().as_bytes());
        assert!(cache
            .inner
            .lock()
            .expect("compiled cache lock poisoned")
            .map
            .contains_key(&key));
    }
}
