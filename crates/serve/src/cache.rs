//! Content-addressed response cache with single-flight deduplication.
//!
//! The cache maps a request's content address (FNV-1a over the canonical
//! `(kind, plan, input)` encoding) to its answer. Concurrent requests for
//! the same key coalesce: exactly one caller becomes the *leader* and
//! computes; the rest block on a condvar and receive the leader's answer.
//! A leader that fails *abandons* the slot — errors are never cached, and
//! one of the waiters is promoted to leader so a transient failure cannot
//! wedge the key forever.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::wire::Answer;

/// What [`OracleCache::get_or_begin`] hands back.
#[derive(Debug)]
pub enum Lease {
    /// The answer was already cached (or a leader just produced it).
    Hit(Arc<Answer>),
    /// The caller is the leader for this key: it must compute the answer
    /// and then call [`OracleCache::fulfill`] or [`OracleCache::abandon`]
    /// — exactly one of the two, or waiters block until promoted by an
    /// abandon.
    Lead,
}

enum Slot {
    /// A leader is computing the answer.
    InFlight,
    /// The answer, ready to clone out.
    Ready(Arc<Answer>),
}

struct CacheState {
    slots: HashMap<u64, Slot>,
    /// Ready keys in insertion order, for FIFO eviction.
    order: VecDeque<u64>,
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Answers served from the cache (including single-flight waiters).
    pub hits: u64,
    /// Requests that had to compute (leaders).
    pub misses: u64,
    /// Hits that waited for an in-flight leader rather than finding a
    /// ready entry.
    pub coalesced: u64,
    /// Ready entries evicted to stay under the capacity cap.
    pub evictions: u64,
    /// Ready entries currently resident.
    pub entries: usize,
}

impl CacheSnapshot {
    /// Hit rate over all lookups, in [0, 1]; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The single-flight content-addressed cache.
pub struct OracleCache {
    state: Mutex<CacheState>,
    cv: Condvar,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for OracleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleCache")
            .field("cap", &self.cap)
            .field("stats", &self.stats())
            .finish()
    }
}

impl OracleCache {
    /// A cache holding at most `cap` ready answers (at least 1).
    pub fn new(cap: usize) -> Self {
        OracleCache {
            state: Mutex::new(CacheState {
                slots: HashMap::new(),
                order: VecDeque::new(),
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`. Returns [`Lease::Hit`] with the answer, possibly
    /// after blocking behind an in-flight leader; returns [`Lease::Lead`]
    /// when the caller must compute.
    pub fn get_or_begin(&self, key: u64) -> Lease {
        let mut waited = false;
        let mut state = self.state.lock().expect("cache lock poisoned");
        loop {
            match state.slots.get(&key) {
                Some(Slot::Ready(answer)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if waited {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    return Lease::Hit(Arc::clone(answer));
                }
                Some(Slot::InFlight) => {
                    waited = true;
                    state = self.cv.wait(state).expect("cache lock poisoned");
                }
                None => {
                    state.slots.insert(key, Slot::InFlight);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Lease::Lead;
                }
            }
        }
    }

    /// Publishes the leader's answer and wakes every waiter. Evicts the
    /// oldest ready entries beyond the capacity cap.
    pub fn fulfill(&self, key: u64, answer: Arc<Answer>) {
        let mut state = self.state.lock().expect("cache lock poisoned");
        state.slots.insert(key, Slot::Ready(answer));
        state.order.push_back(key);
        while state.order.len() > self.cap {
            if let Some(old) = state.order.pop_front() {
                // Only ready slots sit in `order`; an in-flight reinsert
                // under the same key would have replaced the ready slot,
                // which fulfill never does, so this remove is safe.
                if matches!(state.slots.get(&old), Some(Slot::Ready(_))) {
                    state.slots.remove(&old);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        drop(state);
        self.cv.notify_all();
    }

    /// Drops the leader's in-flight slot without publishing anything:
    /// failed computations are never cached. Waiters wake and race to
    /// become the next leader.
    pub fn abandon(&self, key: u64) {
        let mut state = self.state.lock().expect("cache lock poisoned");
        if matches!(state.slots.get(&key), Some(Slot::InFlight)) {
            state.slots.remove(&key);
        }
        drop(state);
        self.cv.notify_all();
    }

    /// True when `key` has a ready (published) entry right now.
    pub fn contains(&self, key: u64) -> bool {
        let state = self.state.lock().expect("cache lock poisoned");
        matches!(state.slots.get(&key), Some(Slot::Ready(_)))
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheSnapshot {
        let entries = {
            let state = self.state.lock().expect("cache lock poisoned");
            state
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready(_)))
                .count()
        };
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::CostLedger;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    fn dummy_answer() -> Arc<Answer> {
        Arc::new(Answer::Ledger {
            ledger: CostLedger::new(),
        })
    }

    #[test]
    fn leader_computes_once_waiters_coalesce() {
        let cache = Arc::new(OracleCache::new(8));
        let computed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computed = Arc::clone(&computed);
            handles.push(thread::spawn(move || match cache.get_or_begin(7) {
                Lease::Hit(_) => {}
                Lease::Lead => {
                    computed.fetch_add(1, Ordering::SeqCst);
                    thread::sleep(std::time::Duration::from_millis(20));
                    cache.fulfill(7, dummy_answer());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(computed.load(Ordering::SeqCst), 1, "single flight");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn abandon_promotes_a_waiter() {
        let cache = Arc::new(OracleCache::new(8));
        assert!(matches!(cache.get_or_begin(3), Lease::Lead));
        let waiter = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.get_or_begin(3))
        };
        thread::sleep(std::time::Duration::from_millis(20));
        cache.abandon(3);
        // The waiter must be promoted to leader, not deadlock.
        assert!(matches!(waiter.join().unwrap(), Lease::Lead));
        assert!(!cache.contains(3), "abandoned slot leaves no entry");
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let cache = OracleCache::new(2);
        for key in 0..5u64 {
            assert!(matches!(cache.get_or_begin(key), Lease::Lead));
            cache.fulfill(key, dummy_answer());
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2, "capacity respected");
        assert_eq!(stats.evictions, 3);
        assert!(!cache.contains(0) && !cache.contains(1) && !cache.contains(2));
        assert!(cache.contains(3) && cache.contains(4));
    }
}
