//! Minimal hand-rolled JSON: the wire format of the cost-oracle service.
//!
//! The workspace is offline and std-only, so the service cannot lean on
//! `serde`; this module implements exactly the JSON subset the wire
//! protocol needs. Numbers are integers only (`i128` internally, wide
//! enough for both [`Word`](parbounds_models::Word) values and `u64`
//! costs with no rounding); the parser enforces a nesting-depth cap so a
//! hostile frame cannot blow the stack.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Legitimate plans nest about
/// seven levels deep; anything past this cap is a hostile or corrupt
/// frame.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value (integer-only numbers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the wire format never uses floats).
    Num(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so rendering is canonical.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is a number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative number in range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) => usize::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text (no whitespace). Object
    /// field order is preserved, so equal values render identically —
    /// which is what makes the rendering usable as a content-address.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte 0x{other:02x} at offset {}",
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (the wire format is integer-only)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<i128>()
            .map(Json::Num)
            .map_err(|_| format!("unparsable number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // the byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "non-utf8 string")?;
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// FNV-1a 64-bit hash of a byte string — the service's content address
/// for plan/input pairs. Deterministic across runs and platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let text = r#"{"id":7,"neg":-3,"ok":true,"s":"a\"b\\c\nd","arr":[1,[2,{"x":null}]]}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("neg").and_then(Json::as_i64), Some(-3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\nd"));
        let again = parse(&v.render()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_hostile_frames() {
        assert!(parse("{\"a\":1}garbage").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("\"unterminated").is_err());
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn numbers_cover_word_and_cost_ranges() {
        let v = parse(&format!("[{},{}]", i64::MIN, u64::MAX)).unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0].as_i64(), Some(i64::MIN));
        assert_eq!(items[1].as_u64(), Some(u64::MAX));
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
