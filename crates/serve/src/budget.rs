//! Per-tenant cost budgets.
//!
//! Measured runs are the expensive oracle queries, so admission charges
//! each tenant the *statically predicted* model time of the plan before
//! executing it — the same ledger the degraded path serves, computed in
//! microseconds. A tenant whose cumulative predicted spend would exceed
//! its budget is refused with the models' own
//! [`ModelError::CostBudgetExceeded`], the same error a
//! [`FaultPlan`](parbounds_models::FaultPlan) cost cap raises inside a
//! simulator.

use std::collections::HashMap;
use std::sync::Mutex;

use parbounds_models::{ModelError, Result};

/// Tracks predicted-cost spend per tenant against a uniform budget.
#[derive(Debug)]
pub struct TenantBudgets {
    budget: u64,
    spent: Mutex<HashMap<String, u64>>,
}

impl TenantBudgets {
    /// Budgets every tenant `budget` units of predicted model time.
    pub fn new(budget: u64) -> Self {
        TenantBudgets {
            budget,
            spent: Mutex::new(HashMap::new()),
        }
    }

    /// Atomically charges `cost` to `tenant`. On success returns the
    /// budget remaining after the charge; when the charge would overdraw,
    /// nothing is charged and [`ModelError::CostBudgetExceeded`] reports
    /// the budget and the spend the request would have reached.
    pub fn try_charge(&self, tenant: &str, cost: u64) -> Result<u64> {
        let mut spent = self.spent.lock().expect("budget lock poisoned");
        let entry = spent.entry(tenant.to_string()).or_insert(0);
        let would_be = entry.saturating_add(cost);
        if would_be > self.budget {
            return Err(ModelError::CostBudgetExceeded {
                budget: self.budget,
                cost: would_be,
            });
        }
        *entry = would_be;
        Ok(self.budget - would_be)
    }

    /// Total predicted cost charged to `tenant` so far.
    pub fn spent(&self, tenant: &str) -> u64 {
        self.spent
            .lock()
            .expect("budget lock poisoned")
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_are_isolated_per_tenant_and_refused_at_the_line() {
        let budgets = TenantBudgets::new(100);
        assert_eq!(budgets.try_charge("a", 60).unwrap(), 40);
        assert_eq!(budgets.try_charge("b", 90).unwrap(), 10);
        // The refusal carries the models' own typed error, and does not
        // charge.
        match budgets.try_charge("a", 50) {
            Err(ModelError::CostBudgetExceeded { budget, cost }) => {
                assert_eq!(budget, 100);
                assert_eq!(cost, 110);
            }
            other => panic!("expected CostBudgetExceeded, got {other:?}"),
        }
        assert_eq!(budgets.spent("a"), 60);
        assert_eq!(budgets.try_charge("a", 40).unwrap(), 0);
    }
}
