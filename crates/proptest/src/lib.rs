//! Offline drop-in replacement for the subset of `proptest` this workspace
//! uses: the [`Strategy`] trait, numeric-range / tuple / collection /
//! option strategies, [`any`], the [`ProptestConfig`] knob, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate, deliberate for an offline vendored
//! shim:
//! * no shrinking — a failing case reports its deterministic case index
//!   instead of a minimized input;
//! * generation is seeded from a hash of the test's module path and name,
//!   so every run of a given test binary replays identical cases;
//! * `?` inside a `proptest!` body converts any `std::error::Error` into a
//!   test failure, as with the real crate's `TestCaseError`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The generator handed to strategies. Deterministic per test.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// A generator seeded from a test's fully qualified name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test path gives a stable per-test stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// How a test case fails without panicking: returned by `?` inside a
/// [`proptest!`] body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> Self {
        TestCaseError(e.to_string())
    }
}

/// Number of cases to run per property (the only knob this shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases generated per `#[test]` inside [`proptest!`].
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "whole domain" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The `prop::` namespace mirrored from the real crate.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<S::Value>`, `None` with probability 1/2.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen::<bool>() {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// Makes a strategy for optional values.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Mirrors the real crate's `prop::` re-export inside the prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// inside the block becomes a normal test that replays `cases`
/// deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __test_path = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::TestRng::for_test(__test_path);
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        },
                    ),
                );
                match __outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest {}: case {}/{} returned error: {}",
                        stringify!($name), __case + 1, __cfg.cases, e
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest {}: failing case index {} (replay is deterministic)",
                            stringify!($name), __case
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, u64)> {
        (1u64..100, 1u64..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(x in 3usize..17, (a, b) in arb_pair()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..100).contains(&a) && (1..100).contains(&b));
        }

        /// Vec sizes honour exact and ranged SizeRange forms.
        #[test]
        fn vec_sizes(v in prop::collection::vec(any::<bool>(), 8),
                     w in prop::collection::vec(0i64..5, 2..6)) {
            prop_assert_eq!(v.len(), 8);
            prop_assert!(w.len() >= 2 && w.len() < 6);
            prop_assert!(w.iter().all(|&x| (0..5).contains(&x)));
        }

        /// prop_map transforms and option::of emits both arms.
        #[test]
        fn map_and_option(n in (0u32..10).prop_map(|x| x * 2),
                          o in prop::option::of(any::<bool>())) {
            prop_assert!(n % 2 == 0 && n < 20);
            prop_assert!(o.is_none() || o.is_some());
        }

        /// `?` on a std error converts into a test-case error.
        #[test]
        fn question_mark_converts(s in 0u32..10) {
            let parsed: i32 = format!("{s}").parse()?;
            prop_assert_eq!(parsed as u32, s);
        }
    }

    #[test]
    fn deterministic_between_runs() {
        let mut a = crate::TestRng::for_test("x::y");
        let mut b = crate::TestRng::for_test("x::y");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
