//! The unique integer polynomial representation of boolean functions
//! (Fact 2.1, due to Smolensky) and the degree `deg(f)`.
//!
//! Every `f ∈ B_n` can be written uniquely as `f = Σ_S α_S(f) · m_S` where
//! `m_S = Π_{i∈S} x_i` and the `α_S` are integers. The coefficients are the
//! Möbius transform of the truth table over the subset lattice:
//! `α_S = Σ_{T ⊆ S} (−1)^{|S|−|T|} f(1_T)`. The degree of `f` is the size of
//! the largest `S` with `α_S ≠ 0`; it is the quantity the degree-growth
//! lower-bound arguments of Theorems 3.1 and 7.2 track.

use crate::function::BoolFn;

/// The integer multilinear polynomial of a boolean function.
///
/// `coeffs[s]` is `α_S` for the monomial whose variable set is the bitmask
/// `s` (so `coeffs[0]` is the constant term).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntPoly {
    n: usize,
    coeffs: Vec<i64>,
}

impl IntPoly {
    /// Computes the unique integer polynomial representation of `f`
    /// (Fact 2.1) via an in-place Möbius transform over the subset lattice.
    pub fn of(f: &BoolFn) -> Self {
        let n = f.arity();
        let mut coeffs: Vec<i64> = f.table().iter().map(|&b| i64::from(b)).collect();
        // Möbius transform: for each variable, subtract the "variable off"
        // half from the "variable on" half.
        for i in 0..n {
            let bit = 1usize << i;
            for s in 0..coeffs.len() {
                if s & bit != 0 {
                    coeffs[s] -= coeffs[s ^ bit];
                }
            }
        }
        IntPoly { n, coeffs }
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.n
    }

    /// Coefficient `α_S` for the monomial with variable-set bitmask `s`.
    pub fn coeff(&self, s: u32) -> i64 {
        self.coeffs[s as usize]
    }

    /// All coefficients, indexed by variable-set bitmask.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// `deg(f)`: the largest `|S|` with `α_S ≠ 0`; 0 for constants
    /// (including the identically-zero function).
    pub fn degree(&self) -> usize {
        self.coeffs
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(s, _)| s.count_ones() as usize)
            .max()
            .unwrap_or(0)
    }

    /// Number of monomials with non-zero coefficient (sparsity).
    pub fn num_monomials(&self) -> usize {
        self.coeffs.iter().filter(|&&c| c != 0).count()
    }

    /// Evaluates the polynomial at assignment bitmask `a`:
    /// `Σ_{S ⊆ supp(a)} α_S` (the zeta transform at `a`).
    pub fn eval(&self, a: u32) -> i64 {
        // Enumerate subsets of `a`.
        let a = a as usize;
        let mut sum = self.coeffs[0];
        if a != 0 {
            let mut s = a;
            loop {
                sum += self.coeffs[s];
                s = (s - 1) & a;
                if s == 0 {
                    break;
                }
            }
        }
        sum
    }

    /// Reconstructs the boolean function (inverse transform); useful to
    /// verify the representation is exact.
    pub fn to_bool_fn(&self) -> BoolFn {
        BoolFn::from_fn(self.n, |a| {
            let v = self.eval(a);
            debug_assert!(
                v == 0 || v == 1,
                "polynomial of a boolean fn must evaluate 0/1"
            );
            v == 1
        })
    }
}

/// `deg(f)` — convenience wrapper over [`IntPoly::of`].
pub fn degree(f: &BoolFn) -> usize {
    IntPoly::of(f).degree()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn parity_polynomial_has_full_degree_and_alternating_coeffs() {
        // parity(x,y) = x + y - 2xy.
        let p = IntPoly::of(&families::parity(2));
        assert_eq!(p.coeff(0b00), 0);
        assert_eq!(p.coeff(0b01), 1);
        assert_eq!(p.coeff(0b10), 1);
        assert_eq!(p.coeff(0b11), -2);
        assert_eq!(p.degree(), 2);
        // In general alpha_S = (-2)^{|S|-1} for nonempty S.
        let p = IntPoly::of(&families::parity(4));
        for s in 1u32..16 {
            let k = s.count_ones() as i64;
            assert_eq!(p.coeff(s), -((-2i64).pow(k as u32)) / 2, "coeff of {s:04b}");
        }
    }

    #[test]
    fn or_polynomial_is_inclusion_exclusion() {
        // OR(x,y) = x + y - xy.
        let p = IntPoly::of(&families::or(2));
        assert_eq!(p.coeff(0b01), 1);
        assert_eq!(p.coeff(0b10), 1);
        assert_eq!(p.coeff(0b11), -1);
        // alpha_S = (-1)^{|S|+1} for nonempty S.
        let p = IntPoly::of(&families::or(5));
        for s in 1u32..32 {
            let k = s.count_ones();
            assert_eq!(p.coeff(s), if k % 2 == 1 { 1 } else { -1 });
        }
    }

    #[test]
    fn and_polynomial_is_single_monomial() {
        let p = IntPoly::of(&families::and(6));
        assert_eq!(p.num_monomials(), 1);
        assert_eq!(p.coeff(0b111111), 1);
        assert_eq!(p.degree(), 6);
    }

    #[test]
    fn fundamental_degrees() {
        // deg(parity_n) = n and deg(OR_n) = n: the facts the Parity and OR
        // lower bounds (Theorems 3.1, 7.2) rest on.
        for n in 1..=8 {
            assert_eq!(degree(&families::parity(n)), n, "deg(parity_{n})");
            assert_eq!(degree(&families::or(n)), n, "deg(or_{n})");
            assert_eq!(degree(&families::and(n)), n, "deg(and_{n})");
        }
        assert_eq!(degree(&families::constant(5, false)), 0);
        assert_eq!(degree(&families::constant(5, true)), 0);
        assert_eq!(degree(&families::dictator(5, 3)), 1);
    }

    #[test]
    fn roundtrip_reconstructs_function() {
        for n in 0..=6 {
            let f = families::majority(n | 1); // odd arity
            let p = IntPoly::of(&f);
            assert_eq!(p.to_bool_fn(), f);
        }
        // Also an "arbitrary" function.
        let f = crate::BoolFn::from_fn(5, |a| a.wrapping_mul(2654435761).wrapping_add(a) & 8 != 0);
        assert_eq!(IntPoly::of(&f).to_bool_fn(), f);
    }

    #[test]
    fn eval_agrees_with_truth_table() {
        let f = families::threshold(5, 3);
        let p = IntPoly::of(&f);
        for a in 0..32 {
            assert_eq!(p.eval(a), i64::from(f.eval(a)));
        }
    }

    #[test]
    fn fact_2_2_degree_laws_hold_exhaustively_for_small_n() {
        // Fact 2.2: deg(f∧g) <= deg f + deg g, deg(not f) = deg f,
        // deg(f∨g) <= deg f + deg g, and restriction cannot raise degree.
        let n = 3;
        let fns: Vec<crate::BoolFn> = (0..(1u32 << (1 << n)))
            .step_by(17) // sample the 256 functions sparsely but fixed
            .map(|code| crate::BoolFn::from_fn(n, |a| code >> a & 1 == 1))
            .collect();
        for f in &fns {
            let df = degree(f);
            assert_eq!(degree(&f.not()), df, "deg(not f) = deg f");
            for v in 0..n {
                for val in [false, true] {
                    assert!(degree(&f.restrict(v, val)) <= df);
                }
            }
            for g in &fns {
                let dg = degree(g);
                assert!(degree(&f.and(g)) <= df + dg);
                assert!(degree(&f.or(g)) <= df + dg);
            }
        }
    }
}
