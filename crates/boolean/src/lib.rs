//! # parbounds-boolean
//!
//! The boolean-function algebra underlying the lower-bound proofs of
//! MacKenzie & Ramachandran (SPAA 1998), Sections 2.5 and 3:
//!
//! * [`BoolFn`] — dense truth-table representation with the operations the
//!   proofs use (pointwise ∧/∨/¬/⊕, restriction, sensitivity);
//! * [`IntPoly`] — the unique integer polynomial representation of Fact 2.1
//!   (Smolensky), computed by a Möbius transform, and the degree `deg(f)`;
//! * [`certificate_complexity`] — Nisan's certificate complexity `C(f)` and
//!   the Fact 2.3 check `C(f) ≤ deg(f)^4`;
//! * [`families`] — Parity, OR and friends.
//!
//! These are the quantities tracked by the degree-growth lower bounds
//! (Theorems 3.1 and 7.2) and the Random Adversary (Claim 5.2); the
//! `parbounds-adversary` crate consumes them.
//!
//! ```
//! use parbounds_boolean::{families, poly};
//!
//! // deg(Parity_n) = n: the fact the Theorem 3.1 lower bound rests on.
//! assert_eq!(poly::degree(&families::parity(6)), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certificate;
pub mod families;
mod function;
pub mod poly;

pub use certificate::{
    block_sensitivity, block_sensitivity_at, certificate_at, certificate_complexity,
    certificate_set_at,
};
pub use function::{BoolFn, MAX_VARS};
pub use poly::{degree, IntPoly};
