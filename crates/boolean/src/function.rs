//! Boolean functions as explicit truth tables.
//!
//! The lower-bound proofs of the paper (Sections 2.5, 3, 7) reason about
//! boolean functions `f : {0,1}^n -> {0,1}` through their unique integer
//! polynomial representation (Fact 2.1) and derived quantities — the degree
//! `deg(f)` and Nisan's certificate complexity `C(f)`. This module provides
//! the concrete function representation those computations run on.
//!
//! Inputs `a ∈ {0,1}^n` are encoded as `u32` bitmasks: bit `i` of the mask
//! is the value of variable `x_i`.

/// Maximum supported arity. Truth tables are dense (`2^n` entries), so this
/// is a guard against accidental exponential blowups, not a model limit.
pub const MAX_VARS: usize = 24;

/// A boolean function on `n` variables, stored as a dense truth table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BoolFn {
    n: usize,
    /// `table[a]` = f(a) for each assignment bitmask `a < 2^n`.
    table: Vec<bool>,
}

impl BoolFn {
    /// Builds a function from an explicit truth table of length `2^n`.
    ///
    /// # Panics
    /// Panics if the table length is not a power of two `2^n` with
    /// `n <= MAX_VARS`.
    pub fn from_table(table: Vec<bool>) -> Self {
        let len = table.len();
        assert!(
            len.is_power_of_two(),
            "truth table length {len} is not a power of two"
        );
        let n = len.trailing_zeros() as usize;
        assert!(n <= MAX_VARS, "arity {n} exceeds MAX_VARS = {MAX_VARS}");
        BoolFn { n, table }
    }

    /// Builds a function by evaluating `eval` on every assignment.
    pub fn from_fn(n: usize, eval: impl Fn(u32) -> bool) -> Self {
        assert!(n <= MAX_VARS, "arity {n} exceeds MAX_VARS = {MAX_VARS}");
        BoolFn {
            n,
            table: (0..1u32 << n).map(eval).collect(),
        }
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.n
    }

    /// Number of assignments, `2^n`.
    pub fn domain_size(&self) -> usize {
        self.table.len()
    }

    /// Evaluates the function on assignment bitmask `a`.
    pub fn eval(&self, a: u32) -> bool {
        self.table[a as usize]
    }

    /// The truth table, indexed by assignment bitmask.
    pub fn table(&self) -> &[bool] {
        &self.table
    }

    /// Number of satisfying assignments.
    pub fn count_ones(&self) -> usize {
        self.table.iter().filter(|&&b| b).count()
    }

    /// Is this function constant?
    pub fn is_constant(&self) -> bool {
        self.table.iter().all(|&b| b == self.table[0])
    }

    /// Pointwise AND (`f ∧ g`). Panics if arities differ.
    pub fn and(&self, other: &BoolFn) -> BoolFn {
        self.zip(other, |a, b| a && b)
    }

    /// Pointwise OR (`f ∨ g`). Panics if arities differ.
    pub fn or(&self, other: &BoolFn) -> BoolFn {
        self.zip(other, |a, b| a || b)
    }

    /// Pointwise XOR. Panics if arities differ.
    pub fn xor(&self, other: &BoolFn) -> BoolFn {
        self.zip(other, |a, b| a ^ b)
    }

    /// Complement (`f̄`).
    pub fn not(&self) -> BoolFn {
        BoolFn {
            n: self.n,
            table: self.table.iter().map(|&b| !b).collect(),
        }
    }

    fn zip(&self, other: &BoolFn, op: impl Fn(bool, bool) -> bool) -> BoolFn {
        assert_eq!(self.n, other.n, "arity mismatch: {} vs {}", self.n, other.n);
        BoolFn {
            n: self.n,
            table: self
                .table
                .iter()
                .zip(other.table.iter())
                .map(|(&a, &b)| op(a, b))
                .collect(),
        }
    }

    /// Restriction: fixes variable `var` to `value`, producing a function on
    /// `n - 1` variables (the remaining variables keep their relative
    /// order). This is the `g ⊆ f` operation of Fact 2.2(4).
    pub fn restrict(&self, var: usize, value: bool) -> BoolFn {
        assert!(
            var < self.n,
            "variable {var} out of range for arity {}",
            self.n
        );
        let low_mask = (1u32 << var) - 1;
        let bit = u32::from(value) << var;
        let table = (0..1u32 << (self.n - 1))
            .map(|b| {
                let a = (b & low_mask) | ((b & !low_mask) << 1) | bit;
                self.table[a as usize]
            })
            .collect();
        BoolFn {
            n: self.n - 1,
            table,
        }
    }

    /// Whether flipping variable `var` at assignment `a` changes the value —
    /// i.e. `f` is *sensitive* to `var` at `a`.
    pub fn sensitive_at(&self, a: u32, var: usize) -> bool {
        assert!(var < self.n);
        self.eval(a) != self.eval(a ^ (1 << var))
    }

    /// Sensitivity `s(f, a)`: number of variables `f` is sensitive to at `a`.
    pub fn sensitivity_at(&self, a: u32) -> usize {
        (0..self.n).filter(|&i| self.sensitive_at(a, i)).count()
    }

    /// Sensitivity `s(f) = max_a s(f, a)`.
    pub fn sensitivity(&self) -> usize {
        (0..1u32 << self.n)
            .map(|a| self.sensitivity_at(a))
            .max()
            .unwrap_or(0)
    }

    /// Influence of variable `i`: the number of inputs at which `f` is
    /// sensitive to `i` (a count, not a fraction — exact arithmetic).
    pub fn influence_count(&self, i: usize) -> usize {
        (0..1u32 << self.n)
            .filter(|&a| self.sensitive_at(a, i))
            .count()
    }

    /// Total influence as a count: `Σ_i influence_count(i)`. Dividing by
    /// `2^n` gives the usual total influence `I(f)`, which equals the
    /// *average sensitivity* — an identity the tests verify exactly.
    pub fn total_influence_count(&self) -> usize {
        (0..self.n).map(|i| self.influence_count(i)).sum()
    }

    /// The junta support as a bitmask: bit `i` is set iff `f` depends on
    /// variable `i` anywhere on the cube. This is exactly the `Know` set
    /// of Section 5.1 when `f` is a trace-class map, and the adversary's
    /// memoized analysis is validated against it.
    pub fn junta_support(&self) -> u32 {
        let mut support = 0u32;
        for i in 0..self.n {
            if self.influence_count(i) > 0 {
                support |= 1 << i;
            }
        }
        support
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn from_fn_matches_eval() {
        let f = BoolFn::from_fn(3, |a| a.count_ones() % 2 == 1);
        assert_eq!(f.arity(), 3);
        assert!(f.eval(0b001));
        assert!(!f.eval(0b011));
        assert!(f.eval(0b111));
        assert_eq!(f.count_ones(), 4);
    }

    #[test]
    fn junta_support_is_the_set_of_influential_variables() {
        // x0 ⊕ x2 ignores x1.
        let f = BoolFn::from_fn(3, |a| (a & 1 != 0) ^ (a >> 2 & 1 != 0));
        assert_eq!(f.junta_support(), 0b101);
        let c = BoolFn::from_fn(3, |_| true);
        assert_eq!(c.junta_support(), 0);
        assert_eq!(families::or(4).junta_support(), 0b1111);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn bad_table_length_panics() {
        let _ = BoolFn::from_table(vec![true, false, true]);
    }

    #[test]
    fn pointwise_ops() {
        let f = families::or(2);
        let g = families::and(2);
        assert_eq!(f.and(&g), families::and(2));
        assert_eq!(f.or(&g), families::or(2));
        assert_eq!(f.xor(&g), families::parity(2));
        assert_eq!(f.not().not(), f);
    }

    #[test]
    fn restrict_or_gives_constant_or_smaller_or() {
        let f = families::or(3);
        // OR with x_1 = 1 is constantly true.
        let g = f.restrict(1, true);
        assert_eq!(g.arity(), 2);
        assert!(g.is_constant() && g.eval(0));
        // OR with x_1 = 0 is OR on the remaining two variables.
        let h = f.restrict(1, false);
        assert_eq!(h, families::or(2));
    }

    #[test]
    fn restrict_preserves_variable_order() {
        // f(x0,x1,x2) = x2; restricting x0 must still select the (new) x1.
        let f = BoolFn::from_fn(3, |a| a & 0b100 != 0);
        let g = f.restrict(0, false);
        assert_eq!(g, BoolFn::from_fn(2, |a| a & 0b10 != 0));
    }

    #[test]
    fn parity_is_fully_sensitive_everywhere() {
        let f = families::parity(5);
        for a in 0..32 {
            assert_eq!(f.sensitivity_at(a), 5);
        }
        assert_eq!(f.sensitivity(), 5);
    }

    #[test]
    fn or_sensitivity_is_n_at_zero() {
        let f = families::or(4);
        assert_eq!(f.sensitivity_at(0), 4);
        // At a weight-2 input, OR is insensitive to every variable.
        assert_eq!(f.sensitivity_at(0b0011), 0);
        assert_eq!(f.sensitivity(), 4);
    }

    #[test]
    fn total_influence_equals_summed_sensitivity() {
        // I(f)·2^n = Σ_a s(f, a): an exact identity, checked on every
        // family and on pseudorandom functions.
        let mut fns = vec![
            families::parity(5),
            families::or(5),
            families::and(5),
            families::majority(5),
        ];
        for seed in 0..8 {
            fns.push(families::pseudorandom(5, seed));
        }
        for f in &fns {
            let total: usize = (0..32).map(|a| f.sensitivity_at(a)).sum();
            assert_eq!(f.total_influence_count(), total);
        }
    }

    #[test]
    fn parity_influences_are_maximal() {
        let f = families::parity(4);
        for i in 0..4 {
            assert_eq!(f.influence_count(i), 16);
        }
        assert_eq!(f.total_influence_count(), 64);
    }

    #[test]
    fn or_influence_is_concentrated_at_low_weight() {
        // Variable i flips OR only when all other bits are 0: exactly 2
        // inputs per variable.
        let f = families::or(4);
        for i in 0..4 {
            assert_eq!(f.influence_count(i), 2);
        }
    }

    #[test]
    fn constant_function_properties() {
        let f = families::constant(3, true);
        assert!(f.is_constant());
        assert_eq!(f.sensitivity(), 0);
        assert_eq!(f.count_ones(), 8);
    }
}
