//! Certificate complexity (Nisan) and its relation to degree (Fact 2.3).
//!
//! For an input `a`, a *certificate* is a set `S` of variables such that
//! every input agreeing with `a` on `S` has the same function value; the
//! certificate complexity at `a` is the size of the smallest such set, and
//! `C(f)` is the maximum over all inputs. The paper uses Fact 2.3,
//! `C(f) ≤ deg(f)^4`, inside Claim 5.2 to bound how many inputs must be
//! fixed to force a processor/cell state.

use crate::function::BoolFn;
use crate::poly::degree;

/// Certificate complexity of `f` at input `a`: the size of the smallest
/// variable set whose values at `a` force `f`'s value.
///
/// Exact computation by searching subsets in order of increasing size; the
/// subcube-constancy check makes this exponential, so arity is expected to
/// be small (the adversary machinery only needs `n ≲ 12`).
pub fn certificate_at(f: &BoolFn, a: u32) -> usize {
    let n = f.arity();
    let target = f.eval(a);
    for k in 0..=n {
        if subsets_of_size(n, k).any(|s| subcube_constant(f, a, s, target)) {
            return k;
        }
    }
    n
}

/// The smallest certificate set itself (lexicographically smallest bitmask
/// among the minimum-size ones — the paper's `Cert(v, t, f)` uses the same
/// tie-break). Returns a variable-set bitmask.
pub fn certificate_set_at(f: &BoolFn, a: u32) -> u32 {
    let n = f.arity();
    let target = f.eval(a);
    for k in 0..=n {
        let mut best: Option<u32> = None;
        for s in subsets_of_size(n, k) {
            if subcube_constant(f, a, s, target) {
                best = Some(match best {
                    Some(b) if b <= s => b,
                    _ => s,
                });
            }
        }
        if let Some(s) = best {
            return s;
        }
    }
    (1u32 << n) - 1
}

/// `C(f) = max_a certificate_at(f, a)`.
pub fn certificate_complexity(f: &BoolFn) -> usize {
    (0..1u32 << f.arity())
        .map(|a| certificate_at(f, a))
        .max()
        .unwrap_or(0)
}

/// Checks Fact 2.3, `C(f) ≤ deg(f)^4`, returning the two sides.
pub fn check_fact_2_3(f: &BoolFn) -> (usize, usize) {
    (certificate_complexity(f), degree(f).pow(4))
}

/// Is `f` constant on the subcube of inputs agreeing with `a` on the
/// variable set `s`, with value `target`?
fn subcube_constant(f: &BoolFn, a: u32, s: u32, target: bool) -> bool {
    let n = f.arity();
    let free = !s & ((1u32 << n) - 1);
    let base = a & s;
    // Enumerate all settings of the free variables.
    let mut b = free;
    loop {
        if f.eval(base | b) != target {
            return false;
        }
        if b == 0 {
            break;
        }
        b = (b - 1) & free;
    }
    true
}

/// Iterates over all `n`-variable subsets of size `k`, as bitmasks, in
/// increasing numeric order (Gosper's hack).
fn subsets_of_size(n: usize, k: usize) -> impl Iterator<Item = u32> {
    let limit = 1u64 << n;
    let first: u64 = if k == 0 { 0 } else { (1u64 << k) - 1 };
    let mut cur = Some(first);
    std::iter::from_fn(move || {
        let v = cur?;
        if v >= limit {
            cur = None;
            return None;
        }
        if v == 0 {
            cur = None; // only the empty set
        } else {
            // Gosper: next bitmask with the same popcount.
            let c = v & v.wrapping_neg();
            let r = v + c;
            let next = (((r ^ v) >> 2) / c) | r;
            cur = Some(next);
        }
        Some(v as u32)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn subsets_enumeration_is_complete() {
        let subs: Vec<u32> = subsets_of_size(5, 2).collect();
        assert_eq!(subs.len(), 10);
        assert!(subs.iter().all(|s| s.count_ones() == 2));
        let subs: Vec<u32> = subsets_of_size(4, 0).collect();
        assert_eq!(subs, vec![0]);
        let subs: Vec<u32> = subsets_of_size(4, 4).collect();
        assert_eq!(subs, vec![0b1111]);
    }

    #[test]
    fn or_certificates() {
        let f = families::or(5);
        // At the all-zero input every variable must be fixed.
        assert_eq!(certificate_at(&f, 0), 5);
        // At any input with a one, that single one certifies.
        assert_eq!(certificate_at(&f, 0b00100), 1);
        assert_eq!(certificate_set_at(&f, 0b00100), 0b00100);
        assert_eq!(certificate_at(&f, 0b11111), 1);
        assert_eq!(certificate_complexity(&f), 5);
    }

    #[test]
    fn parity_needs_full_certificates() {
        let f = families::parity(4);
        for a in 0..16 {
            assert_eq!(certificate_at(&f, a), 4);
        }
        assert_eq!(certificate_complexity(&f), 4);
    }

    #[test]
    fn constant_functions_need_no_certificate() {
        let f = families::constant(4, true);
        assert_eq!(certificate_complexity(&f), 0);
        assert_eq!(certificate_set_at(&f, 7), 0);
    }

    #[test]
    fn dictator_certificate_is_its_variable() {
        let f = families::dictator(5, 3);
        assert_eq!(certificate_complexity(&f), 1);
        for a in 0..32 {
            assert_eq!(certificate_set_at(&f, a), 1 << 3);
        }
    }

    #[test]
    fn fact_2_3_holds_for_standard_families() {
        for n in 1..=6 {
            for f in [
                families::parity(n),
                families::or(n),
                families::and(n),
                families::threshold(n, n.div_ceil(2)),
            ] {
                let (c, d4) = check_fact_2_3(&f);
                assert!(c <= d4, "C(f)={c} > deg^4={d4} at n={n}");
            }
        }
    }

    #[test]
    fn fact_2_3_holds_for_pseudorandom_functions() {
        for seed in 0..20 {
            let f = families::pseudorandom(5, seed);
            let (c, d4) = check_fact_2_3(&f);
            assert!(c <= d4, "seed {seed}: C={c} deg^4={d4}");
        }
    }

    #[test]
    fn certificate_set_forces_the_value() {
        let f = families::majority(5);
        for a in 0..32 {
            let s = certificate_set_at(&f, a);
            assert!(subcube_constant(&f, a, s, f.eval(a)));
            assert_eq!(s.count_ones() as usize, certificate_at(&f, a));
        }
    }
}

/// Block sensitivity `bs(f, a)`: the maximum number of *disjoint* variable
/// blocks `B_1, …, B_k` such that flipping each block individually changes
/// the value at `a`. Computed exactly by greedy-free exhaustive search over
/// disjoint sensitive blocks (branch and bound on the remaining variable
/// mask); arity is expected small.
pub fn block_sensitivity_at(f: &BoolFn, a: u32) -> usize {
    let n = f.arity();
    let full = (1u32 << n) - 1;
    // Collect all minimal sensitive blocks at `a` (flipping the block
    // changes the value and no proper subset does); maximal disjoint
    // packings of sensitive blocks can always be taken over minimal ones.
    let mut blocks = Vec::new();
    for b in 1..=full {
        if f.eval(a) != f.eval(a ^ b) {
            // Minimality check: no proper subset of b is itself sensitive.
            let mut minimal = true;
            let mut s = (b - 1) & b;
            while s != 0 {
                if f.eval(a) != f.eval(a ^ s) {
                    minimal = false;
                    break;
                }
                s = (s - 1) & b;
            }
            if minimal {
                blocks.push(b);
            }
        }
    }
    fn pack(blocks: &[u32], used: u32, from: usize) -> usize {
        let mut best = 0;
        for i in from..blocks.len() {
            if blocks[i] & used == 0 {
                best = best.max(1 + pack(blocks, used | blocks[i], i + 1));
            }
        }
        best
    }
    pack(&blocks, 0, 0)
}

/// `bs(f) = max_a bs(f, a)`.
pub fn block_sensitivity(f: &BoolFn) -> usize {
    (0..1u32 << f.arity())
        .map(|a| block_sensitivity_at(f, a))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod bs_tests {
    use super::*;
    use crate::families;

    #[test]
    fn parity_block_sensitivity_is_n() {
        for n in 1..=5 {
            assert_eq!(block_sensitivity(&families::parity(n)), n);
        }
    }

    #[test]
    fn or_block_sensitivity_is_n_at_zero() {
        let f = families::or(4);
        assert_eq!(block_sensitivity_at(&f, 0), 4);
        // At a one-input, the only sensitive blocks contain all the ones.
        assert_eq!(block_sensitivity_at(&f, 0b1111), 1);
        assert_eq!(block_sensitivity(&f), 4);
    }

    #[test]
    fn chain_s_le_bs_le_c_on_families_and_random_functions() {
        let mut fns = vec![
            families::parity(5),
            families::or(5),
            families::and(5),
            families::majority(5),
            families::threshold(5, 2),
        ];
        for seed in 0..12 {
            fns.push(families::pseudorandom(5, seed));
        }
        for f in &fns {
            let s = f.sensitivity();
            let bs = block_sensitivity(f);
            let c = certificate_complexity(f);
            assert!(s <= bs, "s={s} bs={bs}");
            assert!(bs <= c, "bs={bs} C={c}");
        }
    }

    #[test]
    fn constant_has_zero_block_sensitivity() {
        assert_eq!(block_sensitivity(&families::constant(4, true)), 0);
    }

    #[test]
    fn dictator_block_sensitivity_is_one() {
        assert_eq!(block_sensitivity(&families::dictator(4, 2)), 1);
    }
}
