//! Constructors for the standard boolean function families the paper's
//! bounds concern (Parity, OR) and companions used in tests and demos.

use crate::function::BoolFn;

/// `Parity_n(a) = 1` iff the number of ones in `a` is odd (Section 3).
pub fn parity(n: usize) -> BoolFn {
    BoolFn::from_fn(n, |a| a.count_ones() % 2 == 1)
}

/// `OR_n(a) = 1` iff some bit of `a` is one (Section 7).
pub fn or(n: usize) -> BoolFn {
    BoolFn::from_fn(n, |a| a != 0)
}

/// `AND_n(a) = 1` iff every bit of `a` is one.
pub fn and(n: usize) -> BoolFn {
    let full = (1u64 << n) - 1;
    BoolFn::from_fn(n, move |a| u64::from(a) == full)
}

/// The constant function with the given value.
pub fn constant(n: usize, value: bool) -> BoolFn {
    BoolFn::from_fn(n, move |_| value)
}

/// The dictator function `f(a) = a_i`.
pub fn dictator(n: usize, i: usize) -> BoolFn {
    assert!(i < n, "dictator variable {i} out of range for arity {n}");
    BoolFn::from_fn(n, move |a| a >> i & 1 == 1)
}

/// `Threshold_k`: 1 iff at least `k` input bits are one.
pub fn threshold(n: usize, k: usize) -> BoolFn {
    BoolFn::from_fn(n, move |a| a.count_ones() as usize >= k)
}

/// Majority on an odd number of inputs.
pub fn majority(n: usize) -> BoolFn {
    assert!(n % 2 == 1, "majority needs odd arity, got {n}");
    threshold(n, n / 2 + 1)
}

/// A pseudorandom function determined by `seed` — every truth-table entry
/// is an independent-looking bit. Used for property tests.
pub fn pseudorandom(n: usize, seed: u64) -> BoolFn {
    BoolFn::from_fn(n, move |a| {
        // SplitMix64 step on (seed, a).
        let mut z = seed.wrapping_add(u64::from(a).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        z & 1 == 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_of_zero_vars_is_false() {
        let f = parity(0);
        assert!(!f.eval(0));
    }

    #[test]
    fn or_and_duality() {
        // not(OR(a)) = AND(not a): check via De Morgan on tables.
        let n = 4;
        let f = or(n).not();
        let g = BoolFn::from_fn(n, |a| a == 0);
        assert_eq!(f, g);
    }

    #[test]
    fn threshold_boundaries() {
        let f = threshold(5, 0);
        assert!(f.is_constant() && f.eval(0));
        let f = threshold(5, 6);
        assert!(f.is_constant() && !f.eval(31));
        let f = threshold(3, 2);
        assert!(!f.eval(0b001));
        assert!(f.eval(0b011));
    }

    #[test]
    fn majority_is_self_dual() {
        let n = 5;
        let f = majority(n);
        let full = (1u32 << n) - 1;
        for a in 0..=full {
            assert_eq!(f.eval(a), !f.eval(!a & full));
        }
    }

    #[test]
    fn dictator_depends_on_one_variable() {
        let f = dictator(4, 2);
        assert!(f.eval(0b0100));
        assert!(!f.eval(0b1011));
        assert_eq!(f.sensitivity(), 1);
    }

    #[test]
    fn pseudorandom_is_deterministic_and_seed_sensitive() {
        let f = pseudorandom(6, 1);
        let g = pseudorandom(6, 1);
        let h = pseudorandom(6, 2);
        assert_eq!(f, g);
        assert_ne!(f, h);
        // Should be roughly balanced.
        let ones = f.count_ones();
        assert!(
            (16..=48).contains(&ones),
            "suspiciously unbalanced: {ones}/64"
        );
    }
}
