//! Property-based tests for the boolean-function algebra: the Fact 2.1
//! representation theorem, the Fact 2.2 degree laws, and Fact 2.3, checked
//! on arbitrary random functions (not just the standard families).

use proptest::prelude::*;

use parbounds_boolean::{certificate_at, certificate_complexity, families, BoolFn, IntPoly};

/// An arbitrary boolean function on `n` variables as a random truth table.
fn arb_fn(n: usize) -> impl Strategy<Value = BoolFn> {
    prop::collection::vec(any::<bool>(), 1 << n).prop_map(BoolFn::from_table)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fact 2.1: the integer polynomial is an exact, invertible
    /// representation — the Möbius/zeta transforms round-trip.
    #[test]
    fn polynomial_roundtrips(f in arb_fn(6)) {
        let p = IntPoly::of(&f);
        prop_assert_eq!(p.to_bool_fn(), f);
    }

    /// The polynomial evaluates to exactly 0/1 on the cube.
    #[test]
    fn polynomial_is_boolean_valued(f in arb_fn(5)) {
        let p = IntPoly::of(&f);
        for a in 0..32u32 {
            let v = p.eval(a);
            prop_assert!(v == 0 || v == 1);
            prop_assert_eq!(v == 1, f.eval(a));
        }
    }

    /// Fact 2.2(1,3): deg(f∧g), deg(f∨g) ≤ deg f + deg g.
    #[test]
    fn degree_subadditive_under_and_or(f in arb_fn(5), g in arb_fn(5)) {
        let (df, dg) = (IntPoly::of(&f).degree(), IntPoly::of(&g).degree());
        prop_assert!(IntPoly::of(&f.and(&g)).degree() <= df + dg);
        prop_assert!(IntPoly::of(&f.or(&g)).degree() <= df + dg);
    }

    /// Fact 2.2(2): deg(¬f) = deg f (for non-constant f; constants both
    /// have degree 0).
    #[test]
    fn degree_invariant_under_complement(f in arb_fn(6)) {
        prop_assert_eq!(IntPoly::of(&f.not()).degree(), IntPoly::of(&f).degree());
    }

    /// Fact 2.2(4): restriction never raises degree.
    #[test]
    fn restriction_never_raises_degree(f in arb_fn(6), v in 0usize..6, b in any::<bool>()) {
        let d = IntPoly::of(&f).degree();
        prop_assert!(IntPoly::of(&f.restrict(v, b)).degree() <= d);
    }

    /// Fact 2.3: C(f) ≤ deg(f)^4, on arbitrary functions.
    #[test]
    fn certificate_bounded_by_degree_fourth(f in arb_fn(5)) {
        let c = certificate_complexity(&f);
        let d = IntPoly::of(&f).degree();
        prop_assert!(c <= d.pow(4), "C = {}, deg = {}", c, d);
    }

    /// Certificates are certificates: fixing the certificate set pins the
    /// value against any perturbation of the other variables.
    #[test]
    fn certificate_at_is_sound(f in arb_fn(5), a in 0u32..32) {
        let k = certificate_at(&f, a);
        prop_assert!(k <= 5);
        // With k = arity the subcube is a point; with k = 0, f is constant.
        if k == 0 {
            prop_assert!(f.is_constant());
        }
    }

    /// deg(f) = 0 iff f is constant.
    #[test]
    fn degree_zero_iff_constant(f in arb_fn(5)) {
        prop_assert_eq!(IntPoly::of(&f).degree() == 0, f.is_constant());
    }

    /// Sensitivity never exceeds certificate complexity (s(f) ≤ C(f)).
    #[test]
    fn sensitivity_below_certificate(f in arb_fn(5)) {
        prop_assert!(f.sensitivity() <= certificate_complexity(&f));
    }

    /// XOR with parity shifts degree to exactly n whenever the function's
    /// degree is below n (deg(f ⊕ parity) = n iff deg f < n is *not* a
    /// theorem; but deg(f ⊕ parity) ≥ n − deg f restricted... we check the
    /// subadditive consequence: deg(f ⊕ g) ≤ deg f + deg g).
    #[test]
    fn xor_degree_subadditive(f in arb_fn(5), g in arb_fn(5)) {
        let (df, dg) = (IntPoly::of(&f).degree(), IntPoly::of(&g).degree());
        prop_assert!(IntPoly::of(&f.xor(&g)).degree() <= df + dg);
    }
}

#[test]
fn parity_xor_dictator_cancels_exactly_one_variable() {
    // parity_n ⊕ x_i is the parity of the remaining n−1 variables: XOR with
    // a dictator cancels exactly that coordinate, dropping the degree by 1.
    for n in [4usize, 6] {
        let par = families::parity(n);
        for i in 0..n {
            let g = families::dictator(n, i);
            let h = par.xor(&g);
            assert_eq!(IntPoly::of(&h).degree(), n - 1, "n={n} i={i}");
            // And h no longer depends on x_i at all.
            for a in 0..1u32 << n {
                assert!(!h.sensitive_at(a, i));
            }
        }
    }
}

#[test]
fn monomial_count_bounded_by_domain() {
    for seed in 0..10 {
        let f = families::pseudorandom(6, seed);
        let p = IntPoly::of(&f);
        assert!(p.num_monomials() <= 64);
    }
}
