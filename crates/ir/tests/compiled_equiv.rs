//! Differential suite for the plan compiler: the straight-line compiled
//! executor ([`parbounds_ir::run_compiled_batch`] /
//! [`parbounds_ir::run_compiled_msg_batch`]) must return exactly the same
//! [`PlanRun`](parbounds_ir::PlanRun) — per-phase ledger rows, phase
//! count, output words, and (via output equality on multi-writer
//! fixtures) arbitration winners — as the batch interpreter and the
//! closure-dispatch reference grounding, for every Section 8 family,
//! across `(n, p, g, L)` grids and host thread counts {1, 2, 4, 7}.
//! Property tests with skewed pid/address distributions exercise the
//! work-stealing rebalance of the sharded apply stage.

use parbounds_ir::{
    broadcast, bsp_fan_in_reduce, bsp_prefix_scan, compile_plan, execute_plan,
    execute_plan_compiled, execute_plan_reference, fan_in_read_tree, fan_in_write_tree,
    prefix_sweep, run_compiled_batch, run_compiled_msg_batch, scatter_gather, CombineOp,
    CompileOutcome, CompiledPlan, ModelKind, PhasePlan,
};
use parbounds_models::{BspMachine, Parallelism, QsmMachine, Word};
use proptest::prelude::*;

/// All shared-memory model kinds at a given gap.
fn shared_models(g: u64) -> Vec<ModelKind> {
    vec![
        ModelKind::Qsm { g },
        ModelKind::SQsm { g },
        ModelKind::QsmUnitCr { g },
    ]
}

/// Builds the machine a shared plan grounds on, at a given thread count.
fn shared_machine(model: ModelKind, threads: usize) -> QsmMachine {
    let m = match model {
        ModelKind::Qsm { g } => QsmMachine::qsm(g),
        ModelKind::SQsm { g } => QsmMachine::sqsm(g),
        ModelKind::QsmUnitCr { g } => QsmMachine::qsm_unit_cr(g),
        other => panic!("not a compiled shared model: {other:?}"),
    };
    m.with_parallelism(Parallelism::Fixed(threads))
}

/// Compiles a plan the suite expects to be eligible.
fn compiled(plan: &PhasePlan) -> CompiledPlan {
    match compile_plan(plan).unwrap() {
        CompileOutcome::Compiled(c) => c,
        CompileOutcome::Ineligible(why) => {
            panic!("'{}' should compile, but: {}", plan.family, why.describe())
        }
    }
}

/// Three-way check on a shared plan: compiled (at every thread count) ==
/// interpreted == reference, ledger row for ledger row.
fn assert_shared_tri(plan: &PhasePlan, input: &[Word]) {
    let reference = execute_plan_reference(plan, input).unwrap();
    let interpreted = execute_plan(plan, input).unwrap();
    assert_eq!(
        interpreted, reference,
        "interpreter diverges from reference for '{}'",
        plan.family
    );
    let cp = compiled(plan);
    for threads in [1usize, 2, 4, 7] {
        let machine = shared_machine(plan.model, threads);
        let got = run_compiled_batch(plan, &cp, &machine, input).unwrap();
        assert_eq!(
            got.ledger, reference.ledger,
            "compiled ledger diverges for '{}' at {threads} thread(s)",
            plan.family
        );
        assert_eq!(
            got.output, reference.output,
            "compiled output diverges for '{}' at {threads} thread(s)",
            plan.family
        );
    }
}

/// Three-way check on a BSP plan (the compiled message path is
/// single-threaded; thread invariance is a shared-memory property).
fn assert_bsp_tri(plan: &PhasePlan, input: &[Word]) {
    let reference = execute_plan_reference(plan, input).unwrap();
    let interpreted = execute_plan(plan, input).unwrap();
    assert_eq!(
        interpreted, reference,
        "interpreter diverges from reference for '{}'",
        plan.family
    );
    let cp = compiled(plan);
    let ModelKind::Bsp { p, g, l } = plan.model else {
        panic!("BSP fixture must carry a BSP model");
    };
    let machine = BspMachine::new(p, g, l).unwrap();
    let got = run_compiled_msg_batch(plan, &cp, &machine, input).unwrap();
    assert_eq!(
        got, reference,
        "compiled BSP diverges for '{}'",
        plan.family
    );
}

fn bits(n: usize, stride: usize) -> Vec<Word> {
    (0..n).map(|i| Word::from(i % stride == 0)).collect()
}

fn ramp(n: usize) -> Vec<Word> {
    (0..n as Word).map(|x| 3 * x - 7).collect()
}

#[test]
fn compiled_write_trees_match() {
    for model in shared_models(3) {
        for n in [1usize, 2, 5, 16, 33, 100] {
            for k in [2usize, 3, 8] {
                let plan = fan_in_write_tree(n, k, model);
                assert_shared_tri(&plan, &bits(n, 3));
                assert_shared_tri(&plan, &vec![0; n]);
                assert_shared_tri(&plan, &vec![1; n]);
            }
        }
    }
}

#[test]
fn compiled_read_trees_match() {
    for model in shared_models(2) {
        for op in [
            CombineOp::Sum,
            CombineOp::Or,
            CombineOp::Xor,
            CombineOp::Max,
        ] {
            for n in [1usize, 2, 9, 14, 40] {
                let plan = fan_in_read_tree(n, 3, op, model);
                assert_shared_tri(&plan, &ramp(n));
            }
        }
    }
}

#[test]
fn compiled_broadcast_matches() {
    for model in shared_models(5) {
        for n in [1usize, 2, 6, 17, 64] {
            for k in [2usize, 4] {
                let plan = broadcast(n, k, model);
                assert_shared_tri(&plan, &[42]);
            }
        }
    }
}

#[test]
fn compiled_prefix_sweeps_match() {
    for model in shared_models(1) {
        for (n, k) in [(1usize, 2usize), (4, 2), (13, 2), (16, 4), (31, 5), (57, 3)] {
            let plan = prefix_sweep(n, k, CombineOp::Sum, model);
            assert_shared_tri(&plan, &ramp(n));
            let plan = prefix_sweep(n, k, CombineOp::Max, model);
            assert_shared_tri(&plan, &ramp(n));
        }
    }
}

#[test]
fn compiled_scatter_gather_matches() {
    for model in shared_models(4) {
        let sources = [2usize, 0, 1, 5, 4, 3];
        let dests = [7usize, 9, 8, 6, 11, 10];
        let plan = scatter_gather(&sources, &dests, model);
        assert_shared_tri(&plan, &[10, 20, 30, 40, 50, 60]);
    }
}

#[test]
fn compiled_bsp_plans_match() {
    for (g, l) in [(1u64, 1u64), (2, 8), (4, 16)] {
        for p in [1usize, 2, 4, 7, 13] {
            for k in [2usize, 3] {
                for op in [CombineOp::Sum, CombineOp::Max, CombineOp::Xor] {
                    let input: Vec<Word> = (0..(3 * p + 1) as Word).map(|x| 2 * x - 5).collect();
                    let plan = bsp_fan_in_reduce(p, k, op, g, l);
                    assert_bsp_tri(&plan, &input);
                    let plan = bsp_prefix_scan(p, k, op, g, l);
                    assert_bsp_tri(&plan, &input);
                }
            }
        }
    }
}

/// Error paths must match the interpreter verbatim: the compiled executor
/// reports the same phase-limit error the checked path does.
#[test]
fn compiled_honors_phase_limit_like_interpreter() {
    let plan = prefix_sweep(16, 2, CombineOp::Sum, ModelKind::Qsm { g: 1 });
    let cp = compiled(&plan);
    let machine = QsmMachine::qsm(1).with_max_phases(2);
    let got = run_compiled_batch(&plan, &cp, &machine, &ramp(16));
    let want = parbounds_ir::run_shared_batch(&plan, &machine, &ramp(16));
    assert!(got.is_err() && want.is_err());
    assert_eq!(
        format!("{}", got.unwrap_err()),
        format!("{}", want.unwrap_err())
    );
}

/// Traced machines take the checked interpreter (traces need the routing
/// engine), transparently and bit-identically.
#[test]
fn compiled_falls_back_for_traced_machines() {
    let plan = fan_in_read_tree(9, 3, CombineOp::Sum, ModelKind::SQsm { g: 2 });
    let cp = compiled(&plan);
    let machine = QsmMachine::sqsm(2).with_tracing();
    let traced = run_compiled_batch(&plan, &cp, &machine, &ramp(9)).unwrap();
    let plain = execute_plan(&plan, &ramp(9)).unwrap();
    assert_eq!(traced, plain);
}

/// `execute_plan_compiled` on an ineligible plan must still run (checked
/// interpreter) and agree with the reference, including the seeded
/// arbitration winner.
#[test]
fn ineligible_plans_still_agree_via_fallback() {
    use parbounds_ir::{dart_round, ValueRule};
    let targets: Vec<(usize, ValueRule)> = (0..24)
        .map(|i| (100 + i % 3, ValueRule::Const(i as Word)))
        .collect();
    for model in shared_models(2) {
        let plan = dart_round(&targets, model);
        assert!(matches!(
            compile_plan(&plan).unwrap(),
            CompileOutcome::Ineligible(_)
        ));
        let via_compiled = execute_plan_compiled(&plan, &[]).unwrap();
        let reference = execute_plan_reference(&plan, &[]).unwrap();
        assert_eq!(via_compiled, reference);
    }
}

/// Builds an input whose ones are concentrated in one window of the leaf
/// range: in the guarded OR tree only those leaves fire, so one pid shard
/// carries nearly all the work — the skew the stealing pool must absorb.
fn skewed_bits(n: usize, start: usize, len: usize) -> Vec<Word> {
    (0..n)
        .map(|i| Word::from(i >= start && i < start + len))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random guarded trees with all firing leaves clumped in one window:
    /// the compiled parallel path must stay bit-identical to the
    /// sequential interpreter under maximal shard skew.
    #[test]
    fn compiled_guarded_skew_is_thread_invariant(
        n in 8usize..80,
        k in 2usize..5,
        window in 0u8..4,
        threads in 1usize..8,
        g in 1u64..5,
    ) {
        let plan = fan_in_write_tree(n, k, ModelKind::Qsm { g });
        let wlen = (n / 4).max(1);
        let start = (window as usize * n / 4).min(n - wlen);
        let input = skewed_bits(n, start, wlen);
        let want = execute_plan(&plan, &input).unwrap();
        let cp = compiled(&plan);
        let machine = shared_machine(plan.model, threads);
        let got = run_compiled_batch(&plan, &cp, &machine, &input).unwrap();
        prop_assert_eq!(got, want);
    }

    /// Random permutation routings (scatter/gather) with addresses
    /// clustered by a rotation: the apply stage's address chunks receive
    /// unequal store counts, exercising chunk-task stealing.
    #[test]
    fn compiled_scatter_skew_is_thread_invariant(
        n in 1usize..48,
        rot in 0usize..48,
        spread in 1usize..4,
        threads in 1usize..8,
    ) {
        let sources: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
        let dests: Vec<usize> = (0..n).map(|i| n + i * spread).collect();
        let plan = scatter_gather(&sources, &dests, ModelKind::SQsm { g: 2 });
        let input = ramp(n);
        let want = execute_plan(&plan, &input).unwrap();
        let cp = compiled(&plan);
        let machine = shared_machine(plan.model, threads);
        let got = run_compiled_batch(&plan, &cp, &machine, &input).unwrap();
        prop_assert_eq!(got, want);
    }

    /// Random BSP grids: compiled message schedules replay the precounted
    /// `(w, h)` ledger and the register outputs exactly.
    #[test]
    fn compiled_bsp_random_grids_match(
        p in 1usize..14,
        k in 2usize..4,
        g in 1u64..6,
        l in 1u64..20,
        extra in 0usize..9,
    ) {
        // BSP machines require L >= g.
        let l = l.max(g);
        let input: Vec<Word> = (0..(p + extra) as Word).map(|x| (5 * x) ^ 11).collect();
        let plan = bsp_fan_in_reduce(p, k, CombineOp::Sum, g, l);
        let want = execute_plan(&plan, &input).unwrap();
        let cp = compiled(&plan);
        let machine = BspMachine::new(p, g, l).unwrap();
        let got = run_compiled_msg_batch(&plan, &cp, &machine, &input).unwrap();
        prop_assert_eq!(got, want);
    }
}
