//! Differential suite: the batch interpreter ([`parbounds_ir::execute_plan`]
//! for shared plans, [`parbounds_ir::run_shared_batch`] directly) must return
//! exactly the same [`PlanRun`] — ledger, phase count, output — as the
//! closure-dispatch grounding [`parbounds_ir::execute_plan_reference`], for
//! every Section 8 family the combinators build, on every QSM flavor the IR
//! schedules, across fan-ins and gap parameters.

use parbounds_ir::{
    broadcast, dart_round, execute_plan, execute_plan_reference, fan_in_read_tree,
    fan_in_write_tree, prefix_sweep, run_shared_batch, scatter_gather, CombineOp, ModelKind,
    PhasePlan, ValueRule,
};
use parbounds_models::{QsmMachine, Word};

/// All shared-memory model kinds at a given gap.
fn shared_models(g: u64) -> Vec<ModelKind> {
    vec![
        ModelKind::Qsm { g },
        ModelKind::SQsm { g },
        ModelKind::QsmUnitCr { g },
    ]
}

/// Asserts batch == reference on `plan` for `input` and returns the run.
fn assert_equiv(plan: &PhasePlan, input: &[Word]) {
    let batch = execute_plan(plan, input);
    let reference = execute_plan_reference(plan, input);
    match (&batch, &reference) {
        (Ok(b), Ok(r)) => {
            assert_eq!(b.ledger, r.ledger, "ledger mismatch for '{}'", plan.family);
            assert_eq!(b.output, r.output, "output mismatch for '{}'", plan.family);
            assert_eq!(
                b.ledger.num_phases(),
                r.ledger.num_phases(),
                "phase count mismatch for '{}'",
                plan.family
            );
        }
        (Err(be), Err(re)) => {
            assert_eq!(
                format!("{be}"),
                format!("{re}"),
                "error mismatch for '{}'",
                plan.family
            );
        }
        _ => panic!(
            "divergent outcomes for '{}': batch={batch:?} reference={reference:?}",
            plan.family
        ),
    }
}

fn bits(n: usize, stride: usize) -> Vec<Word> {
    (0..n).map(|i| Word::from(i % stride == 0)).collect()
}

fn ramp(n: usize) -> Vec<Word> {
    (0..n as Word).map(|x| 3 * x - 7).collect()
}

#[test]
fn write_trees_match_reference() {
    for model in shared_models(3) {
        for n in [1usize, 2, 5, 16, 33, 100] {
            for k in [2usize, 3, 8] {
                let plan = fan_in_write_tree(n, k, model);
                assert_equiv(&plan, &bits(n, 3));
                assert_equiv(&plan, &vec![0; n]);
            }
        }
    }
}

#[test]
fn read_trees_match_reference() {
    for model in shared_models(2) {
        for op in [
            CombineOp::Sum,
            CombineOp::Or,
            CombineOp::Xor,
            CombineOp::Max,
        ] {
            for n in [1usize, 2, 9, 14, 40] {
                let plan = fan_in_read_tree(n, 3, op, model);
                assert_equiv(&plan, &ramp(n));
            }
        }
    }
}

#[test]
fn broadcast_matches_reference() {
    for model in shared_models(5) {
        for n in [1usize, 2, 6, 17, 64] {
            for k in [2usize, 4] {
                let plan = broadcast(n, k, model);
                assert_equiv(&plan, &[42]);
            }
        }
    }
}

#[test]
fn prefix_sweeps_match_reference() {
    for model in shared_models(1) {
        for (n, k) in [(1usize, 2usize), (4, 2), (13, 2), (16, 4), (31, 5), (57, 3)] {
            let plan = prefix_sweep(n, k, CombineOp::Sum, model);
            assert_equiv(&plan, &ramp(n));
            let plan = prefix_sweep(n, k, CombineOp::Max, model);
            assert_equiv(&plan, &ramp(n));
        }
    }
}

#[test]
fn scatter_gather_matches_reference() {
    for model in shared_models(4) {
        let sources = [2usize, 0, 1, 5, 4, 3];
        let dests = [7usize, 9, 8, 6, 11, 10];
        let plan = scatter_gather(&sources, &dests, model);
        assert_equiv(&plan, &[10, 20, 30, 40, 50, 60]);
    }
}

#[test]
fn dart_rounds_match_reference_including_rng_arbitration() {
    // Many processors throwing darts at few cells: multi-writer arbitration
    // consumes the RNG, so equality here pins the consumption order.
    for model in shared_models(2) {
        let targets: Vec<(usize, ValueRule)> = (0..24)
            .map(|i| (100 + i % 3, ValueRule::Const(i as Word)))
            .collect();
        let plan = dart_round(&targets, model);
        assert_equiv(&plan, &[]);
    }
}

#[test]
fn batch_respects_machine_seed_and_flavor() {
    // Same plan, different seeds: batch must track the machine's RNG, and
    // the two paths must agree seed for seed.
    let targets: Vec<(usize, ValueRule)> =
        (0..16).map(|i| (7, ValueRule::Const(i as Word))).collect();
    let plan = dart_round(&targets, ModelKind::Qsm { g: 2 });
    let mut outputs = Vec::new();
    for seed in [1u64, 2, 0xdead_beef] {
        let machine = QsmMachine::qsm(2).with_seed(seed);
        let batch = run_shared_batch(&plan, &machine, &[]).unwrap();
        let reference = {
            let program = parbounds_ir::IrProgram::new(&plan).unwrap();
            let result = machine.run(&program, &[]).unwrap();
            result.memory.get(7)
        };
        assert_eq!(batch.output[0], reference, "seed {seed}");
        outputs.push(batch.output[0]);
    }
    // Sanity: with 16 writers the winner should vary across seeds.
    assert!(outputs.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn batch_honors_phase_limit_like_machine() {
    let plan = prefix_sweep(16, 2, CombineOp::Sum, ModelKind::Qsm { g: 1 });
    let machine = QsmMachine::qsm(1).with_max_phases(2);
    let batch = run_shared_batch(&plan, &machine, &ramp(16));
    let reference = machine.run(&parbounds_ir::IrProgram::new(&plan).unwrap(), &ramp(16));
    assert!(batch.is_err() && reference.is_err());
    assert_eq!(
        format!("{}", batch.unwrap_err()),
        format!("{}", reference.unwrap_err())
    );
}

#[test]
fn batch_falls_back_for_traced_machines() {
    let plan = fan_in_read_tree(9, 3, CombineOp::Sum, ModelKind::SQsm { g: 2 });
    let machine = QsmMachine::sqsm(2).with_tracing();
    let traced = run_shared_batch(&plan, &machine, &ramp(9)).unwrap();
    let plain = execute_plan(&plan, &ramp(9)).unwrap();
    assert_eq!(traced.ledger, plain.ledger);
    assert_eq!(traced.output, plain.output);
}

#[test]
fn guarded_plans_match_reference_on_both_branches() {
    // The OR write-tree is the guarded family: leaves fire only on ones.
    for model in shared_models(2) {
        for n in [8usize, 27] {
            let plan = fan_in_write_tree(n, 3, model);
            assert_equiv(&plan, &vec![1; n]); // every guard fires
            assert_equiv(&plan, &vec![0; n]); // no guard fires
            let mut one = vec![0; n];
            one[n - 1] = 1;
            assert_equiv(&plan, &one); // a single sparse path
        }
    }
}
