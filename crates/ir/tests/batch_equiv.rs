//! Differential suite: the batch interpreters ([`parbounds_ir::execute_plan`]
//! for shared and BSP plans, [`parbounds_ir::run_shared_batch`] /
//! [`parbounds_ir::run_msg_batch`] directly) must return exactly the same
//! [`PlanRun`] — ledger, phase count, output — as the closure-dispatch
//! grounding [`parbounds_ir::execute_plan_reference`], for every Section 8
//! family the combinators build, on every model kind the IR schedules,
//! across fan-ins, gap parameters, and host thread counts {1, 2, 4, 7}.

use parbounds_ir::{
    broadcast, bsp_fan_in_reduce, bsp_prefix_scan, dart_round, execute_plan,
    execute_plan_reference, fan_in_read_tree, fan_in_write_tree, prefix_sweep, run_msg_batch,
    run_shared_batch, scatter_gather, CombineOp, ModelKind, PhasePlan, ValueRule,
};
use parbounds_models::{BspMachine, Parallelism, QsmMachine, Word};

/// All shared-memory model kinds at a given gap.
fn shared_models(g: u64) -> Vec<ModelKind> {
    vec![
        ModelKind::Qsm { g },
        ModelKind::SQsm { g },
        ModelKind::QsmUnitCr { g },
    ]
}

/// Asserts batch == reference on `plan` for `input` and returns the run.
fn assert_equiv(plan: &PhasePlan, input: &[Word]) {
    let batch = execute_plan(plan, input);
    let reference = execute_plan_reference(plan, input);
    match (&batch, &reference) {
        (Ok(b), Ok(r)) => {
            assert_eq!(b.ledger, r.ledger, "ledger mismatch for '{}'", plan.family);
            assert_eq!(b.output, r.output, "output mismatch for '{}'", plan.family);
            assert_eq!(
                b.ledger.num_phases(),
                r.ledger.num_phases(),
                "phase count mismatch for '{}'",
                plan.family
            );
        }
        (Err(be), Err(re)) => {
            assert_eq!(
                format!("{be}"),
                format!("{re}"),
                "error mismatch for '{}'",
                plan.family
            );
        }
        _ => panic!(
            "divergent outcomes for '{}': batch={batch:?} reference={reference:?}",
            plan.family
        ),
    }
}

fn bits(n: usize, stride: usize) -> Vec<Word> {
    (0..n).map(|i| Word::from(i % stride == 0)).collect()
}

fn ramp(n: usize) -> Vec<Word> {
    (0..n as Word).map(|x| 3 * x - 7).collect()
}

#[test]
fn write_trees_match_reference() {
    for model in shared_models(3) {
        for n in [1usize, 2, 5, 16, 33, 100] {
            for k in [2usize, 3, 8] {
                let plan = fan_in_write_tree(n, k, model);
                assert_equiv(&plan, &bits(n, 3));
                assert_equiv(&plan, &vec![0; n]);
            }
        }
    }
}

#[test]
fn read_trees_match_reference() {
    for model in shared_models(2) {
        for op in [
            CombineOp::Sum,
            CombineOp::Or,
            CombineOp::Xor,
            CombineOp::Max,
        ] {
            for n in [1usize, 2, 9, 14, 40] {
                let plan = fan_in_read_tree(n, 3, op, model);
                assert_equiv(&plan, &ramp(n));
            }
        }
    }
}

#[test]
fn broadcast_matches_reference() {
    for model in shared_models(5) {
        for n in [1usize, 2, 6, 17, 64] {
            for k in [2usize, 4] {
                let plan = broadcast(n, k, model);
                assert_equiv(&plan, &[42]);
            }
        }
    }
}

#[test]
fn prefix_sweeps_match_reference() {
    for model in shared_models(1) {
        for (n, k) in [(1usize, 2usize), (4, 2), (13, 2), (16, 4), (31, 5), (57, 3)] {
            let plan = prefix_sweep(n, k, CombineOp::Sum, model);
            assert_equiv(&plan, &ramp(n));
            let plan = prefix_sweep(n, k, CombineOp::Max, model);
            assert_equiv(&plan, &ramp(n));
        }
    }
}

#[test]
fn scatter_gather_matches_reference() {
    for model in shared_models(4) {
        let sources = [2usize, 0, 1, 5, 4, 3];
        let dests = [7usize, 9, 8, 6, 11, 10];
        let plan = scatter_gather(&sources, &dests, model);
        assert_equiv(&plan, &[10, 20, 30, 40, 50, 60]);
    }
}

#[test]
fn dart_rounds_match_reference_including_rng_arbitration() {
    // Many processors throwing darts at few cells: multi-writer arbitration
    // consumes the RNG, so equality here pins the consumption order.
    for model in shared_models(2) {
        let targets: Vec<(usize, ValueRule)> = (0..24)
            .map(|i| (100 + i % 3, ValueRule::Const(i as Word)))
            .collect();
        let plan = dart_round(&targets, model);
        assert_equiv(&plan, &[]);
    }
}

#[test]
fn batch_respects_machine_seed_and_flavor() {
    // Same plan, different seeds: batch must track the machine's RNG, and
    // the two paths must agree seed for seed.
    let targets: Vec<(usize, ValueRule)> =
        (0..16).map(|i| (7, ValueRule::Const(i as Word))).collect();
    let plan = dart_round(&targets, ModelKind::Qsm { g: 2 });
    let mut outputs = Vec::new();
    for seed in [1u64, 2, 0xdead_beef] {
        let machine = QsmMachine::qsm(2).with_seed(seed);
        let batch = run_shared_batch(&plan, &machine, &[]).unwrap();
        let reference = {
            let program = parbounds_ir::IrProgram::new(&plan).unwrap();
            let result = machine.run(&program, &[]).unwrap();
            result.memory.get(7)
        };
        assert_eq!(batch.output[0], reference, "seed {seed}");
        outputs.push(batch.output[0]);
    }
    // Sanity: with 16 writers the winner should vary across seeds.
    assert!(outputs.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn batch_honors_phase_limit_like_machine() {
    let plan = prefix_sweep(16, 2, CombineOp::Sum, ModelKind::Qsm { g: 1 });
    let machine = QsmMachine::qsm(1).with_max_phases(2);
    let batch = run_shared_batch(&plan, &machine, &ramp(16));
    let reference = machine.run(&parbounds_ir::IrProgram::new(&plan).unwrap(), &ramp(16));
    assert!(batch.is_err() && reference.is_err());
    assert_eq!(
        format!("{}", batch.unwrap_err()),
        format!("{}", reference.unwrap_err())
    );
}

#[test]
fn batch_falls_back_for_traced_machines() {
    let plan = fan_in_read_tree(9, 3, CombineOp::Sum, ModelKind::SQsm { g: 2 });
    let machine = QsmMachine::sqsm(2).with_tracing();
    let traced = run_shared_batch(&plan, &machine, &ramp(9)).unwrap();
    let plain = execute_plan(&plan, &ramp(9)).unwrap();
    assert_eq!(traced.ledger, plain.ledger);
    assert_eq!(traced.output, plain.output);
}

#[test]
fn bsp_plans_match_reference() {
    for (g, l) in [(1u64, 1u64), (2, 8), (4, 16)] {
        for p in [1usize, 2, 5, 8, 13] {
            for k in [2usize, 3] {
                for op in [CombineOp::Sum, CombineOp::Max, CombineOp::Xor] {
                    let input: Vec<Word> = (0..(3 * p + 1) as Word).map(|x| 2 * x - 5).collect();
                    let plan = bsp_fan_in_reduce(p, k, op, g, l);
                    assert_equiv(&plan, &input);
                    let plan = bsp_prefix_scan(p, k, op, g, l);
                    assert_equiv(&plan, &input);
                }
            }
        }
    }
}

#[test]
fn msg_batch_falls_back_for_traced_machines() {
    let plan = bsp_prefix_scan(6, 2, CombineOp::Sum, 2, 8);
    let input: Vec<Word> = (0..20).collect();
    let machine = BspMachine::new(6, 2, 8).unwrap().with_tracing();
    let traced = run_msg_batch(&plan, &machine, &input).unwrap();
    let plain = execute_plan(&plan, &input).unwrap();
    assert_eq!(traced.ledger, plain.ledger);
    assert_eq!(traced.output, plain.output);
}

#[test]
fn msg_batch_rejects_shared_plans() {
    let plan = broadcast(4, 2, ModelKind::Qsm { g: 1 });
    let machine = BspMachine::new(4, 1, 1).unwrap();
    assert!(run_msg_batch(&plan, &machine, &[1]).is_err());
}

/// The parallel batch interpreter must be bit-identical to the sequential
/// one at every thread count, including oversubscription (more workers
/// than plan processors) and heavy multi-writer arbitration.
#[test]
fn shared_batch_is_thread_count_invariant() {
    let targets: Vec<(usize, ValueRule)> = (0..24)
        .map(|i| (100 + i % 3, ValueRule::Const(i as Word)))
        .collect();
    for model in shared_models(2) {
        let plans = [
            prefix_sweep(31, 3, CombineOp::Sum, model),
            fan_in_write_tree(33, 2, model),
            dart_round(&targets, model),
        ];
        let inputs: [Vec<Word>; 3] = [ramp(31), bits(33, 3), Vec::new()];
        for (plan, input) in plans.iter().zip(&inputs) {
            let machine = match model {
                ModelKind::Qsm { g } => QsmMachine::qsm(g),
                ModelKind::SQsm { g } => QsmMachine::sqsm(g),
                ModelKind::QsmUnitCr { g } => QsmMachine::qsm_unit_cr(g),
                _ => unreachable!("shared_models yields shared kinds"),
            };
            let sequential = run_shared_batch(plan, &machine, input).unwrap();
            for threads in [1usize, 2, 4, 7, 64] {
                let par = machine
                    .clone()
                    .with_parallelism(Parallelism::Fixed(threads));
                let got = run_shared_batch(plan, &par, input).unwrap();
                assert_eq!(
                    got.ledger, sequential.ledger,
                    "ledger '{}' threads={threads}",
                    plan.family
                );
                assert_eq!(
                    got.output, sequential.output,
                    "output '{}' threads={threads}",
                    plan.family
                );
            }
        }
    }
}

#[test]
fn guarded_plans_match_reference_on_both_branches() {
    // The OR write-tree is the guarded family: leaves fire only on ones.
    for model in shared_models(2) {
        for n in [8usize, 27] {
            let plan = fan_in_write_tree(n, 3, model);
            assert_equiv(&plan, &vec![1; n]); // every guard fires
            assert_equiv(&plan, &vec![0; n]); // no guard fires
            let mut one = vec![0; n];
            one[n - 1] = 1;
            assert_equiv(&plan, &one); // a single sparse path
        }
    }
}
