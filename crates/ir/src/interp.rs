//! IR → `Program` interpreters: grounding a [`PhasePlan`] on the real
//! simulators.
//!
//! [`IrProgram`] adapts a shared-memory plan to the `Program` trait run by
//! [`QsmMachine`]; [`IrBspProgram`] adapts a message-passing plan to the
//! `BspProgram` trait run by [`BspMachine`]. Both are thin: a processor's
//! state is just its register file, and each phase looks up the plan entry
//! for `(phase, pid)` and replays its declared update, guard, and
//! requests. [`execute_plan`] picks the right machine from the plan's
//! [`ModelKind`] and returns the measured ledger plus the declared output,
//! which the static analyzer cross-validates against its prediction.

use std::collections::HashMap;

use crate::plan::{apply_update, Guard, InitRule, ModelKind, OutputDecl, PhasePlan, PlanBody};
use parbounds_models::{
    BspMachine, BspProgram, CostLedger, ModelError, PhaseEnv, Program, QsmMachine, Result, Status,
    Superstep, Word,
};

/// Per-phase lookup tables for one plan body.
struct PhaseTable {
    /// `table[t][pid]` = index of the entry for `pid` in phase `t`.
    table: Vec<HashMap<usize, usize>>,
    /// `finish[pid]` = phase in which `pid` halts.
    finish: Vec<usize>,
}

/// A shared-memory [`PhasePlan`] adapted to the simulators' `Program`
/// trait. Construct with [`IrProgram::new`]; the plan is validated first.
pub struct IrProgram<'a> {
    plan: &'a PhasePlan,
    phases: PhaseTable,
}

impl<'a> IrProgram<'a> {
    /// Validates `plan` and builds the interpreter. Fails on structurally
    /// invalid plans and on BSP (message-passing) plans.
    pub fn new(plan: &'a PhasePlan) -> Result<Self> {
        plan.validate()?;
        let PlanBody::Shared(phases) = &plan.body else {
            return Err(ModelError::BadConfig(format!(
                "plan '{}': IrProgram interprets shared-memory plans; use IrBspProgram",
                plan.family
            )));
        };
        let table = phases
            .iter()
            .map(|phase| {
                phase
                    .procs
                    .iter()
                    .enumerate()
                    .map(|(i, entry)| (entry.pid, i))
                    .collect()
            })
            .collect();
        Ok(IrProgram {
            plan,
            phases: PhaseTable {
                table,
                finish: plan.finish_phases()?,
            },
        })
    }
}

impl Program for IrProgram<'_> {
    type Proc = Vec<Word>;

    fn num_procs(&self) -> usize {
        self.plan.procs
    }

    fn create(&self, _pid: usize) -> Self::Proc {
        Vec::new()
    }

    fn phase(&self, pid: usize, regs: &mut Self::Proc, env: &mut PhaseEnv) -> Status {
        let t = env.phase();
        let PlanBody::Shared(phases) = &self.plan.body else {
            unreachable!("IrProgram::new rejects non-shared plans");
        };
        if let Some(phase) = phases.get(t) {
            if let Some(&i) = self.phases.table[t].get(&pid) {
                let entry = &phase.procs[i];
                let delivered: Vec<Word> = env.delivered().iter().map(|&(_, v)| v).collect();
                apply_update(entry.update, regs, &delivered);
                let fire = match entry.guard {
                    Guard::Always => true,
                    Guard::NonZero => regs.first().copied().unwrap_or(0) != 0,
                };
                if fire {
                    if entry.local_ops > 0 {
                        env.local_ops(entry.local_ops);
                    }
                    for &addr in &entry.reads {
                        env.read(addr);
                    }
                    for w in &entry.writes {
                        env.write(w.addr, w.value.eval(regs));
                    }
                }
            }
        }
        if t >= self.phases.finish[pid] {
            Status::Done
        } else {
            Status::Active
        }
    }
}

/// A message-passing [`PhasePlan`] adapted to the `BspProgram` trait.
pub struct IrBspProgram<'a> {
    plan: &'a PhasePlan,
    init: InitRule,
    steps: PhaseTable,
}

impl<'a> IrBspProgram<'a> {
    /// Validates `plan` and builds the interpreter. Fails on structurally
    /// invalid plans and on shared-memory plans.
    pub fn new(plan: &'a PhasePlan) -> Result<Self> {
        plan.validate()?;
        let PlanBody::Msg { init, steps } = &plan.body else {
            return Err(ModelError::BadConfig(format!(
                "plan '{}': IrBspProgram interprets message-passing plans; use IrProgram",
                plan.family
            )));
        };
        let table = steps
            .iter()
            .map(|step| {
                step.comps
                    .iter()
                    .enumerate()
                    .map(|(i, entry)| (entry.pid, i))
                    .collect()
            })
            .collect();
        Ok(IrBspProgram {
            plan,
            init: *init,
            steps: PhaseTable {
                table,
                finish: plan.finish_phases()?,
            },
        })
    }
}

impl BspProgram for IrBspProgram<'_> {
    type Proc = Vec<Word>;

    fn create(&self, _pid: usize, local_input: &[Word]) -> Self::Proc {
        vec![match self.init {
            InitRule::Const(v) => v,
            InitRule::FoldLocal(op) => op.fold(local_input),
        }]
    }

    fn superstep(&self, pid: usize, regs: &mut Self::Proc, ctx: &mut Superstep) -> Status {
        let t = ctx.step();
        let PlanBody::Msg { steps, .. } = &self.plan.body else {
            unreachable!("IrBspProgram::new rejects non-message plans");
        };
        if let Some(step) = steps.get(t) {
            if let Some(&i) = self.steps.table[t].get(&pid) {
                let entry = &step.comps[i];
                let inbox: Vec<Word> = ctx.inbox().iter().map(|m| m.value).collect();
                apply_update(entry.update, regs, &inbox);
                if entry.local_ops > 0 {
                    ctx.local_ops(entry.local_ops);
                }
                for send in &entry.sends {
                    ctx.send(send.dest, send.tag, send.value.eval(regs));
                }
            }
        }
        if t >= self.steps.finish[pid] {
            Status::Done
        } else {
            Status::Active
        }
    }
}

/// The measured outcome of grounding a plan on its simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRun {
    /// Per-phase cost records from the real machine.
    pub ledger: CostLedger,
    /// The declared output: the shared-memory region, or register 0 of
    /// every BSP component in pid order.
    pub output: Vec<Word>,
}

/// Runs `plan` on the simulator its [`ModelKind`] names and collects the
/// measured ledger plus the declared output.
///
/// GSM plans are analyze-only (the GSM is this repo's lower-bound model;
/// its programs are written against a different trait) and are rejected
/// with `BadConfig`.
pub fn execute_plan(plan: &PhasePlan, input: &[Word]) -> Result<PlanRun> {
    match plan.model {
        ModelKind::Qsm { g } | ModelKind::SQsm { g } | ModelKind::QsmUnitCr { g } => {
            let machine = match plan.model {
                ModelKind::Qsm { .. } => QsmMachine::qsm(g),
                ModelKind::SQsm { .. } => QsmMachine::sqsm(g),
                _ => QsmMachine::qsm_unit_cr(g),
            };
            let program = IrProgram::new(plan)?;
            let result = machine.run(&program, input)?;
            let OutputDecl::Region { base, len } = plan.output else {
                unreachable!("validate() ties shared plans to Region outputs");
            };
            Ok(PlanRun {
                ledger: result.ledger,
                output: result.memory.slice(base, len),
            })
        }
        ModelKind::Bsp { p, g, l } => {
            let machine = BspMachine::new(p, g, l)?;
            let program = IrBspProgram::new(plan)?;
            let result = machine.run(&program, input)?;
            Ok(PlanRun {
                ledger: result.ledger,
                output: result
                    .states
                    .iter()
                    .map(|regs| regs.first().copied().unwrap_or(0))
                    .collect(),
            })
        }
        ModelKind::Gsm { .. } => Err(ModelError::BadConfig(format!(
            "plan '{}': GSM plans are analyze-only (no IR interpreter)",
            plan.family
        ))),
    }
}
