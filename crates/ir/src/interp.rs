//! IR → `Program` interpreters: grounding a [`PhasePlan`] on the real
//! simulators.
//!
//! [`IrProgram`] adapts a shared-memory plan to the `Program` trait run by
//! [`QsmMachine`]; [`IrBspProgram`] adapts a message-passing plan to the
//! `BspProgram` trait run by [`BspMachine`]. Both are thin: a processor's
//! state is just its register file, and each phase looks up the plan entry
//! for `(phase, pid)` and replays its declared update, guard, and
//! requests. [`execute_plan`] picks the right machine from the plan's
//! [`ModelKind`] and returns the measured ledger plus the declared output,
//! which the static analyzer cross-validates against its prediction.

use std::collections::HashMap;

use crate::plan::{apply_update, Guard, InitRule, ModelKind, OutputDecl, PhasePlan, PlanBody};
use parbounds_models::exec::{ContentionTable, WriteRouter};
use parbounds_models::par::{shard_ranges, with_pool};
use parbounds_models::{
    Addr, BspMachine, BspProgram, CancelToken, CostLedger, Memory, ModelError, Msg, PhaseCost,
    PhaseEnv, Program, QsmFlavor, QsmMachine, Result, Status, Superstep, Word,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Per-phase lookup tables for one plan body.
struct PhaseTable {
    /// `table[t][pid]` = index of the entry for `pid` in phase `t`.
    table: Vec<HashMap<usize, usize>>,
    /// `finish[pid]` = phase in which `pid` halts.
    finish: Vec<usize>,
}

/// A shared-memory [`PhasePlan`] adapted to the simulators' `Program`
/// trait. Construct with [`IrProgram::new`]; the plan is validated first.
pub struct IrProgram<'a> {
    plan: &'a PhasePlan,
    phases: PhaseTable,
}

impl<'a> IrProgram<'a> {
    /// Validates `plan` and builds the interpreter. Fails on structurally
    /// invalid plans and on BSP (message-passing) plans.
    pub fn new(plan: &'a PhasePlan) -> Result<Self> {
        plan.validate()?;
        let PlanBody::Shared(phases) = &plan.body else {
            return Err(ModelError::BadConfig(format!(
                "plan '{}': IrProgram interprets shared-memory plans; use IrBspProgram",
                plan.family
            )));
        };
        let table = phases
            .iter()
            .map(|phase| {
                phase
                    .procs
                    .iter()
                    .enumerate()
                    .map(|(i, entry)| (entry.pid, i))
                    .collect()
            })
            .collect();
        Ok(IrProgram {
            plan,
            phases: PhaseTable {
                table,
                finish: plan.finish_phases()?,
            },
        })
    }
}

impl Program for IrProgram<'_> {
    type Proc = Vec<Word>;

    fn num_procs(&self) -> usize {
        self.plan.procs
    }

    fn create(&self, _pid: usize) -> Self::Proc {
        Vec::new()
    }

    fn phase(&self, pid: usize, regs: &mut Self::Proc, env: &mut PhaseEnv) -> Status {
        let t = env.phase();
        let PlanBody::Shared(phases) = &self.plan.body else {
            unreachable!("IrProgram::new rejects non-shared plans");
        };
        if let Some(phase) = phases.get(t) {
            if let Some(&i) = self.phases.table[t].get(&pid) {
                let entry = &phase.procs[i];
                let delivered: Vec<Word> = env.delivered().iter().map(|&(_, v)| v).collect();
                apply_update(entry.update, regs, &delivered);
                let fire = match entry.guard {
                    Guard::Always => true,
                    Guard::NonZero => regs.first().copied().unwrap_or(0) != 0,
                };
                if fire {
                    if entry.local_ops > 0 {
                        env.local_ops(entry.local_ops);
                    }
                    for &addr in &entry.reads {
                        env.read(addr);
                    }
                    for w in &entry.writes {
                        env.write(w.addr, w.value.eval(regs));
                    }
                }
            }
        }
        if t >= self.phases.finish[pid] {
            Status::Done
        } else {
            Status::Active
        }
    }
}

/// A message-passing [`PhasePlan`] adapted to the `BspProgram` trait.
pub struct IrBspProgram<'a> {
    plan: &'a PhasePlan,
    init: InitRule,
    steps: PhaseTable,
}

impl<'a> IrBspProgram<'a> {
    /// Validates `plan` and builds the interpreter. Fails on structurally
    /// invalid plans and on shared-memory plans.
    pub fn new(plan: &'a PhasePlan) -> Result<Self> {
        plan.validate()?;
        let PlanBody::Msg { init, steps } = &plan.body else {
            return Err(ModelError::BadConfig(format!(
                "plan '{}': IrBspProgram interprets message-passing plans; use IrProgram",
                plan.family
            )));
        };
        let table = steps
            .iter()
            .map(|step| {
                step.comps
                    .iter()
                    .enumerate()
                    .map(|(i, entry)| (entry.pid, i))
                    .collect()
            })
            .collect();
        Ok(IrBspProgram {
            plan,
            init: *init,
            steps: PhaseTable {
                table,
                finish: plan.finish_phases()?,
            },
        })
    }
}

impl BspProgram for IrBspProgram<'_> {
    type Proc = Vec<Word>;

    fn create(&self, _pid: usize, local_input: &[Word]) -> Self::Proc {
        vec![match self.init {
            InitRule::Const(v) => v,
            InitRule::FoldLocal(op) => op.fold(local_input),
        }]
    }

    fn superstep(&self, pid: usize, regs: &mut Self::Proc, ctx: &mut Superstep) -> Status {
        let t = ctx.step();
        let PlanBody::Msg { steps, .. } = &self.plan.body else {
            unreachable!("IrBspProgram::new rejects non-message plans");
        };
        if let Some(step) = steps.get(t) {
            if let Some(&i) = self.steps.table[t].get(&pid) {
                let entry = &step.comps[i];
                let inbox: Vec<Word> = ctx.inbox().iter().map(|m| m.value).collect();
                apply_update(entry.update, regs, &inbox);
                if entry.local_ops > 0 {
                    ctx.local_ops(entry.local_ops);
                }
                for send in &entry.sends {
                    ctx.send(send.dest, send.tag, send.value.eval(regs));
                }
            }
        }
        if t >= self.steps.finish[pid] {
            Status::Done
        } else {
            Status::Active
        }
    }
}

/// The measured outcome of grounding a plan on its simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRun {
    /// Per-phase cost records from the real machine.
    pub ledger: CostLedger,
    /// The declared output: the shared-memory region, or register 0 of
    /// every BSP component in pid order.
    pub output: Vec<Word>,
}

/// Builds the shared-memory machine a plan's [`ModelKind`] names.
pub(crate) fn shared_machine(plan: &PhasePlan) -> Option<QsmMachine> {
    match plan.model {
        ModelKind::Qsm { g } => Some(QsmMachine::qsm(g)),
        ModelKind::SQsm { g } => Some(QsmMachine::sqsm(g)),
        ModelKind::QsmUnitCr { g } => Some(QsmMachine::qsm_unit_cr(g)),
        _ => None,
    }
}

/// Runs `plan` on the simulator its [`ModelKind`] names and collects the
/// measured ledger plus the declared output.
///
/// Shared-memory plans go through the batch interpreter
/// ([`run_shared_batch`]) and BSP plans through its message-passing
/// counterpart ([`run_msg_batch`]); both exploit the static schedule to
/// skip the per-processor closure dispatch of the generic program paths
/// while producing a bit-identical ledger and output. Use
/// [`execute_plan_reference`] for the original closure-dispatch grounding.
///
/// GSM plans are analyze-only (the GSM is this repo's lower-bound model;
/// its programs are written against a different trait) and are rejected
/// with `BadConfig`.
pub fn execute_plan(plan: &PhasePlan, input: &[Word]) -> Result<PlanRun> {
    execute_plan_cancellable(plan, input, &CancelToken::new())
}

/// [`execute_plan`] with a cooperative [`CancelToken`] attached to the
/// machine it builds: the run is checked at every phase/superstep boundary
/// and stops with [`ModelError::DeadlineExceeded`] once the token trips.
/// This is the entry point serving layers use to bound measured runs by a
/// per-request deadline.
///
/// [`ModelError::DeadlineExceeded`]: parbounds_models::ModelError::DeadlineExceeded
pub fn execute_plan_cancellable(
    plan: &PhasePlan,
    input: &[Word],
    cancel: &CancelToken,
) -> Result<PlanRun> {
    match plan.model {
        ModelKind::Qsm { .. } | ModelKind::SQsm { .. } | ModelKind::QsmUnitCr { .. } => {
            let machine = shared_machine(plan)
                .expect("matched shared flavors")
                .with_cancel(cancel.clone());
            run_shared_batch(plan, &machine, input)
        }
        ModelKind::Bsp { p, g, l } => {
            let machine = BspMachine::new(p, g, l)?.with_cancel(cancel.clone());
            run_msg_batch(plan, &machine, input)
        }
        ModelKind::Gsm { .. } => execute_plan_reference(plan, input),
    }
}

/// Runs `plan` through the generic closure-dispatch interpreters
/// ([`IrProgram`] / [`IrBspProgram`]) on the real machines, configured with
/// [`Routing::Reference`] — i.e. the full pre-fast-path stack (per-processor
/// closure dispatch feeding the map-based reference engines). This is the
/// executable specification [`execute_plan`]'s batch path is differentially
/// tested against; both return identical [`PlanRun`]s.
///
/// [`Routing::Reference`]: parbounds_models::Routing::Reference
pub fn execute_plan_reference(plan: &PhasePlan, input: &[Word]) -> Result<PlanRun> {
    match plan.model {
        ModelKind::Qsm { .. } | ModelKind::SQsm { .. } | ModelKind::QsmUnitCr { .. } => {
            let machine = shared_machine(plan)
                .expect("matched shared flavors")
                .with_reference_routing();
            let program = IrProgram::new(plan)?;
            let result = machine.run(&program, input)?;
            let OutputDecl::Region { base, len } = plan.output else {
                unreachable!("validate() ties shared plans to Region outputs");
            };
            Ok(PlanRun {
                ledger: result.ledger,
                output: result.memory.slice(base, len),
            })
        }
        ModelKind::Bsp { p, g, l } => {
            let machine = BspMachine::new(p, g, l)?.with_reference_routing();
            let program = IrBspProgram::new(plan)?;
            let result = machine.run(&program, input)?;
            Ok(PlanRun {
                ledger: result.ledger,
                output: result
                    .states
                    .iter()
                    .map(|regs| regs.first().copied().unwrap_or(0))
                    .collect(),
            })
        }
        ModelKind::Gsm { .. } => Err(ModelError::BadConfig(format!(
            "plan '{}': GSM plans are analyze-only (no IR interpreter)",
            plan.family
        ))),
    }
}

/// Batch interpreter for shared-memory plans: executes the phase loop
/// directly over the plan's entry lists — pre-sorted by pid once, no
/// per-processor closure dispatch, no per-phase allocation — using the same
/// dense routing tables as the engine fast path.
///
/// Observationally identical to `machine.run(&IrProgram::new(plan)?, input)`:
/// same [`CostLedger`], same RNG consumption order for arbitrary-write
/// arbitration (sorted-address, multi-writer cells only), same errors. The
/// differential suite in `tests/batch_equiv.rs` enforces this against
/// [`execute_plan_reference`].
///
/// Configurations the batch loop does not replicate (fault plans, trace
/// recording) transparently fall back to the closure-dispatch path, so the
/// guarantee holds for every machine.
pub fn run_shared_batch(plan: &PhasePlan, machine: &QsmMachine, input: &[Word]) -> Result<PlanRun> {
    plan.validate()?;
    let PlanBody::Shared(phases) = &plan.body else {
        return Err(ModelError::BadConfig(format!(
            "plan '{}': run_shared_batch interprets shared-memory plans",
            plan.family
        )));
    };
    let OutputDecl::Region { base, len } = plan.output else {
        unreachable!("validate() ties shared plans to Region outputs");
    };
    if machine.fault_plan().is_some() || machine.options().record_trace {
        let program = IrProgram::new(plan)?;
        let result = machine.run(&program, input)?;
        return Ok(PlanRun {
            ledger: result.ledger,
            output: result.memory.slice(base, len),
        });
    }

    let finish = plan.finish_phases()?;
    // validate() guarantees some processor retires in the final phase and
    // none issues afterwards, so the machine would execute exactly
    // `phases.len()` phases — the limit check can happen up front.
    let limit = machine.max_phases();
    if phases.len() > limit {
        return Err(ModelError::PhaseLimitExceeded { limit });
    }

    let workers = machine.options().parallelism.workers(plan.procs);
    if workers > 1 {
        return run_shared_batch_par(plan, machine, input, &finish, workers);
    }

    let mut memory = Memory::with_limit(machine.mem_limit());
    memory.load(0, input)?;
    let mut rng = ChaCha8Rng::seed_from_u64(machine.seed());
    let mut ledger = CostLedger::new();

    // Entry indices per phase, sorted by pid: the generic path visits
    // processors in pid order, and pid order is what fixes both delivery
    // order within a write bucket and the RNG stream.
    let order: Vec<Vec<usize>> = phases
        .iter()
        .map(|phase| {
            let mut idx: Vec<usize> = (0..phase.procs.len()).collect();
            idx.sort_unstable_by_key(|&i| phase.procs[i].pid);
            idx
        })
        .collect();

    let mut regs: Vec<Vec<Word>> = vec![Vec::new(); plan.procs];
    // Values delivered to each pid by the previous phase's reads, plus the
    // list of pids holding any — the machine discards deliveries to
    // processors that skip a phase, so stale buffers are cleared wholesale.
    let mut pending: Vec<Vec<Word>> = vec![Vec::new(); plan.procs];
    let mut delivered_to: Vec<usize> = Vec::new();

    let mut read_table = ContentionTable::default();
    let mut writes = WriteRouter::default();
    let mut new_reads: Vec<(usize, Addr)> = Vec::new();

    for (t, phase) in phases.iter().enumerate() {
        if let Some(token) = machine.cancel_token() {
            token.check(t)?;
        }
        read_table.begin_phase();
        writes.begin_phase();
        new_reads.clear();
        let mut m_op: u64 = 0;
        let mut m_rw: u64 = 0;
        let mut any_access = false;

        for &i in &order[t] {
            let entry = &phase.procs[i];
            let pid = entry.pid;
            apply_update(entry.update, &mut regs[pid], &pending[pid]);
            let fire = match entry.guard {
                Guard::Always => true,
                Guard::NonZero => regs[pid].first().copied().unwrap_or(0) != 0,
            };
            if !fire {
                continue;
            }
            let r_i = entry.reads.len() as u64;
            let w_i = entry.writes.len() as u64;
            m_op = m_op.max(entry.local_ops + r_i + w_i);
            m_rw = m_rw.max(r_i.max(w_i));
            any_access |= r_i + w_i > 0;
            for &addr in &entry.reads {
                read_table.incr(addr);
                new_reads.push((pid, addr));
            }
            for w in &entry.writes {
                writes.push(w.addr, w.value.eval(&regs[pid]));
            }
        }

        // Deliveries are consumed exactly once: processors without an entry
        // this phase (or past their finish) have theirs discarded, like the
        // machine's take-and-drop.
        for pid in delivered_to.drain(..) {
            pending[pid].clear();
        }

        // Model rule: a cell may be read or written in a phase, not both.
        // Sorted written-address order keeps the reported cell identical to
        // the machine's.
        writes.route();
        for &addr in writes.sorted_addrs() {
            if read_table.contains(addr) {
                return Err(ModelError::ReadWriteConflict { addr, phase: t });
            }
        }

        // Value reads against pre-write memory; deliveries reach only
        // processors still active after this phase.
        for &(pid, addr) in &new_reads {
            let v = memory.get(addr);
            if finish[pid] > t {
                pending[pid].push(v);
                delivered_to.push(pid);
            }
        }
        // Commit in sorted-address order, arbitrating each cell's
        // concurrent writers; the RNG advances only on multi-writer cells.
        for (addr, values) in writes.groups() {
            let value = if values.len() == 1 {
                values[0]
            } else {
                values[rng.gen_range(0..values.len())]
            };
            memory.set(addr, value)?;
        }

        let write_contention = writes.max_contention();
        let kappa = if any_access {
            read_table.max_contention().max(write_contention)
        } else {
            1
        };
        let kappa = match machine.flavor() {
            // Unit-time concurrent reads: only write contention queues.
            QsmFlavor::QsmUnitConcurrentReads => write_contention,
            _ => kappa,
        };
        let cost = machine.phase_cost(m_op, m_rw, kappa);
        ledger.push(PhaseCost {
            m_op,
            m_rw: m_rw.max(1),
            kappa,
            cost,
        });
    }

    Ok(PlanRun {
        ledger,
        output: memory.slice(base, len),
    })
}

/// One worker's slice of the batch interpreter in the parallel path: its
/// contiguous pid range's register files and pending deliveries, plus the
/// request arenas it refills each phase.
struct BatchShard {
    base: usize,
    phase_no: usize,
    regs: Vec<Vec<Word>>,
    pending: Vec<Vec<Word>>,
    /// `(pid, addr)` read requests, in entry order within the shard.
    reads: Vec<(usize, Addr)>,
    /// `(addr, value)` write requests, in entry order within the shard.
    writes: Vec<(Addr, Word)>,
    m_op: u64,
    m_rw: u64,
    any_access: bool,
}

/// The parallel batch interpreter: the per-phase entry loop is sharded by
/// contiguous pid ranges across `workers` scoped threads (each owning its
/// range's register files), and shard request arenas merge back in pid
/// order into the same [`WriteRouter`] / [`ContentionTable`] apply stage as
/// the sequential loop — so ledgers, RNG draws, errors and outputs are
/// bit-identical to [`run_shared_batch`] at every thread count.
fn run_shared_batch_par(
    plan: &PhasePlan,
    machine: &QsmMachine,
    input: &[Word],
    finish: &[usize],
    workers: usize,
) -> Result<PlanRun> {
    let PlanBody::Shared(phases) = &plan.body else {
        unreachable!("run_shared_batch dispatches shared plans only");
    };
    let OutputDecl::Region { base, len } = plan.output else {
        unreachable!("validate() ties shared plans to Region outputs");
    };

    let mut memory = Memory::with_limit(machine.mem_limit());
    memory.load(0, input)?;
    let mut rng = ChaCha8Rng::seed_from_u64(machine.seed());
    let mut ledger = CostLedger::new();

    let order: Vec<Vec<usize>> = phases
        .iter()
        .map(|phase| {
            let mut idx: Vec<usize> = (0..phase.procs.len()).collect();
            idx.sort_unstable_by_key(|&i| phase.procs[i].pid);
            idx
        })
        .collect();

    let ranges = shard_ranges(plan.procs, workers);
    // pid -> owning shard, for routing deliveries back after the apply
    // stage (shards own the pending buffers of their pid range).
    let mut shard_of = vec![0usize; plan.procs];
    for (s, r) in ranges.iter().enumerate() {
        for pid in r.clone() {
            shard_of[pid] = s;
        }
    }
    // `sub[t][w]` = the slice of `order[t]` whose pids fall in shard `w`'s
    // range (entries are pid-sorted, so each shard owns a contiguous run).
    let sub: Vec<Vec<std::ops::Range<usize>>> = phases
        .iter()
        .enumerate()
        .map(|(t, phase)| {
            ranges
                .iter()
                .map(|r| {
                    let lo = order[t].partition_point(|&i| phase.procs[i].pid < r.start);
                    let hi = order[t].partition_point(|&i| phase.procs[i].pid < r.end);
                    lo..hi
                })
                .collect()
        })
        .collect();

    let mut shards: Vec<Option<BatchShard>> = ranges
        .iter()
        .map(|r| {
            Some(BatchShard {
                base: r.start,
                phase_no: 0,
                regs: vec![Vec::new(); r.len()],
                pending: vec![Vec::new(); r.len()],
                reads: Vec::new(),
                writes: Vec::new(),
                m_op: 0,
                m_rw: 0,
                any_access: false,
            })
        })
        .collect();

    let work = |wk: usize, mut shard: BatchShard| {
        shard.reads.clear();
        shard.writes.clear();
        shard.m_op = 0;
        shard.m_rw = 0;
        shard.any_access = false;
        let t = shard.phase_no;
        let phase = &phases[t];
        for &i in &order[t][sub[t][wk].clone()] {
            let entry = &phase.procs[i];
            let pid = entry.pid;
            let li = pid - shard.base;
            apply_update(entry.update, &mut shard.regs[li], &shard.pending[li]);
            let fire = match entry.guard {
                Guard::Always => true,
                Guard::NonZero => shard.regs[li].first().copied().unwrap_or(0) != 0,
            };
            if !fire {
                continue;
            }
            let r_i = entry.reads.len() as u64;
            let w_i = entry.writes.len() as u64;
            shard.m_op = shard.m_op.max(entry.local_ops + r_i + w_i);
            shard.m_rw = shard.m_rw.max(r_i.max(w_i));
            shard.any_access |= r_i + w_i > 0;
            for &addr in &entry.reads {
                shard.reads.push((pid, addr));
            }
            for w in &entry.writes {
                shard.writes.push((w.addr, w.value.eval(&shard.regs[li])));
            }
        }
        // Deliveries are consumed exactly once (entry or not), like the
        // sequential loop's wholesale clear.
        for p in shard.pending.iter_mut() {
            p.clear();
        }
        shard
    };

    with_pool(workers, work, move |pool| {
        let mut read_table = ContentionTable::default();
        let mut writes = WriteRouter::default();
        let mut new_reads: Vec<(usize, Addr)> = Vec::new();

        for t in 0..phases.len() {
            if let Some(token) = machine.cancel_token() {
                token.check(t)?;
            }
            read_table.begin_phase();
            writes.begin_phase();
            new_reads.clear();
            let mut m_op: u64 = 0;
            let mut m_rw: u64 = 0;
            let mut any_access = false;

            // Compute stage: dispatch shards, merge arenas in pid order.
            let mut tasks = Vec::with_capacity(shards.len());
            for slot in shards.iter_mut() {
                let mut shard = slot.take().expect("shard not in flight");
                shard.phase_no = t;
                tasks.push(shard);
            }
            pool.run_round(tasks, |wk, shard| {
                m_op = m_op.max(shard.m_op);
                m_rw = m_rw.max(shard.m_rw);
                any_access |= shard.any_access;
                for &(pid, addr) in &shard.reads {
                    read_table.incr(addr);
                    new_reads.push((pid, addr));
                }
                for &(addr, v) in &shard.writes {
                    writes.push(addr, v);
                }
                shards[wk] = Some(shard);
            });

            // Apply stage: identical to the sequential loop.
            writes.route();
            for &addr in writes.sorted_addrs() {
                if read_table.contains(addr) {
                    return Err(ModelError::ReadWriteConflict { addr, phase: t });
                }
            }
            for &(pid, addr) in &new_reads {
                let v = memory.get(addr);
                if finish[pid] > t {
                    let sh = shards[shard_of[pid]].as_mut().expect("shard not in flight");
                    let li = pid - sh.base;
                    sh.pending[li].push(v);
                }
            }
            for (addr, values) in writes.groups() {
                let value = if values.len() == 1 {
                    values[0]
                } else {
                    values[rng.gen_range(0..values.len())]
                };
                memory.set(addr, value)?;
            }

            let write_contention = writes.max_contention();
            let kappa = if any_access {
                read_table.max_contention().max(write_contention)
            } else {
                1
            };
            let kappa = match machine.flavor() {
                QsmFlavor::QsmUnitConcurrentReads => write_contention,
                _ => kappa,
            };
            let cost = machine.phase_cost(m_op, m_rw, kappa);
            ledger.push(PhaseCost {
                m_op,
                m_rw: m_rw.max(1),
                kappa,
                cost,
            });
        }

        Ok(PlanRun {
            ledger,
            output: memory.slice(base, len),
        })
    })
}

/// Batch interpreter for message-passing (BSP) plans: executes the
/// superstep loop directly over the plan's component lists — pre-sorted by
/// pid once, no per-component closure dispatch — with double-buffered
/// inboxes.
///
/// Observationally identical to `machine.run(&IrBspProgram::new(plan)?,
/// input)`: same [`CostLedger`] (every active component contributes its
/// inbox size to `w` whether or not it has an entry), same `(src, tag)`
/// inbox ordering, same errors. The differential suite in
/// `tests/batch_equiv.rs` enforces this against [`execute_plan_reference`].
///
/// Configurations the batch loop does not replicate (fault plans, trace
/// recording) transparently fall back to the closure-dispatch path.
pub fn run_msg_batch(plan: &PhasePlan, machine: &BspMachine, input: &[Word]) -> Result<PlanRun> {
    plan.validate()?;
    let PlanBody::Msg { init, steps } = &plan.body else {
        return Err(ModelError::BadConfig(format!(
            "plan '{}': run_msg_batch interprets message-passing plans",
            plan.family
        )));
    };
    if machine.fault_plan().is_some() || machine.options().record_trace {
        let program = IrBspProgram::new(plan)?;
        let result = machine.run(&program, input)?;
        return Ok(PlanRun {
            ledger: result.ledger,
            output: result
                .states
                .iter()
                .map(|regs| regs.first().copied().unwrap_or(0))
                .collect(),
        });
    }

    let finish = plan.finish_phases()?;
    // validate() pins the machine width to the plan's component count and
    // guarantees some component retires in the final superstep, so the
    // machine would execute exactly `steps.len()` supersteps.
    let p = machine.p();
    let limit = machine.max_steps();
    if steps.len() > limit {
        return Err(ModelError::PhaseLimitExceeded { limit });
    }

    let mut regs: Vec<Vec<Word>> = machine
        .partition(input)
        .iter()
        .map(|local| {
            vec![match init {
                InitRule::Const(v) => *v,
                InitRule::FoldLocal(op) => op.fold(local),
            }]
        })
        .collect();

    // Entry indices per superstep, sorted by pid, so the component loop can
    // walk plan entries with a cursor instead of a hash lookup.
    let order: Vec<Vec<usize>> = steps
        .iter()
        .map(|step| {
            let mut idx: Vec<usize> = (0..step.comps.len()).collect();
            idx.sort_unstable_by_key(|&i| step.comps[i].pid);
            idx
        })
        .collect();

    let mut ledger = CostLedger::new();
    let mut inboxes: Vec<Vec<Msg>> = vec![Vec::new(); p];
    let mut next_inboxes: Vec<Vec<Msg>> = vec![Vec::new(); p];
    let mut received: Vec<u64> = vec![0; p];
    let mut inbox_vals: Vec<Word> = Vec::new();

    for (t, step) in steps.iter().enumerate() {
        if let Some(token) = machine.cancel_token() {
            token.check(t)?;
        }
        for ib in next_inboxes.iter_mut() {
            ib.clear();
        }
        received.fill(0);
        let mut w: u64 = 0;
        let mut max_sent: u64 = 0;
        let mut cursor = 0usize;

        for pid in 0..p {
            // A component is active through its finish superstep and
            // skipped afterwards, like the machine's `active` flags.
            if t > finish[pid] {
                continue;
            }
            let recv = inboxes[pid].len() as u64;
            let mut ops: u64 = 0;
            let mut sent: u64 = 0;
            while cursor < order[t].len() && step.comps[order[t][cursor]].pid < pid {
                cursor += 1;
            }
            if cursor < order[t].len() && step.comps[order[t][cursor]].pid == pid {
                let entry = &step.comps[order[t][cursor]];
                inbox_vals.clear();
                inbox_vals.extend(inboxes[pid].iter().map(|m| m.value));
                apply_update(entry.update, &mut regs[pid], &inbox_vals);
                ops = entry.local_ops;
                sent = entry.sends.len() as u64;
                for send in &entry.sends {
                    // validate() already rejected out-of-range destinations.
                    let msg = Msg {
                        src: pid,
                        tag: send.tag,
                        value: send.value.eval(&regs[pid]),
                    };
                    received[send.dest] += 1;
                    next_inboxes[send.dest].push(msg);
                }
            }
            w = w.max(ops + sent + recv);
            max_sent = max_sent.max(sent);
        }

        for ib in next_inboxes.iter_mut() {
            ib.sort_unstable_by_key(|m| (m.src, m.tag));
        }
        let h = max_sent.max(received.iter().copied().max().unwrap_or(0));
        let cost = machine.superstep_cost(w, h);
        ledger.push(PhaseCost {
            m_op: w,
            m_rw: h.max(1),
            kappa: 1,
            cost,
        });
        std::mem::swap(&mut inboxes, &mut next_inboxes);
    }

    Ok(PlanRun {
        ledger,
        output: regs
            .iter()
            .map(|r| r.first().copied().unwrap_or(0))
            .collect(),
    })
}
