//! The PhaseIR data model.
//!
//! A [`PhasePlan`] is a *declarative* description of a bulk-synchronous
//! schedule: for every phase (QSM/s-QSM/GSM) or superstep (BSP) it lists,
//! per participating processor, exactly which cells are read, which cells
//! are written (and with what value rule), how many local operations are
//! charged, and when the processor halts. Because the request pattern is
//! spelled out as data rather than hidden in arbitrary Rust closures, the
//! static analyzer in `parbounds-analyze` can derive the exact per-phase
//! `(m_op, m_rw, κ)` / BSP `h`-relation — and hence the model cost of
//! Section 2 of MacKenzie & Ramachandran — without running anything, while
//! the interpreter in [`crate::interp`] grounds the same plan on the real
//! simulators so the prediction can be cross-validated cell for cell.
//!
//! Value flow is deliberately restricted to a small register machine
//! (fold/accumulate over delivered values, constants) — enough to express
//! the Section 8 families (fan-in trees, broadcast, prefix sweeps,
//! scatter/gather, dart rounds) but simple enough that guards are the only
//! data dependence. Static analysis adopts the *saturating schedule*
//! convention: every guard is assumed to fire, so predictions are exact for
//! data-independent families and worst-case-exact for guarded ones (e.g.
//! the OR write-tree on an all-ones input).

use std::fmt;

use parbounds_models::{Addr, ModelError, Result, Word};

/// Associative combining operator usable in IR value rules.
///
/// Mirrors `parbounds_algo::ReduceOp` exactly (identity and application)
/// so IR-lifted families compute the same values as their hand-written
/// counterparts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineOp {
    /// Integer addition.
    Sum,
    /// Logical OR of nonzero-ness; result is 0 or 1.
    Or,
    /// Parity (XOR of the low bits); result is 0 or 1.
    Xor,
    /// Maximum.
    Max,
}

impl CombineOp {
    /// The identity element of the operator.
    pub fn identity(self) -> Word {
        match self {
            CombineOp::Sum | CombineOp::Or | CombineOp::Xor => 0,
            CombineOp::Max => Word::MIN,
        }
    }

    /// Combines two values.
    pub fn apply(self, a: Word, b: Word) -> Word {
        match self {
            CombineOp::Sum => a + b,
            CombineOp::Or => Word::from(a != 0 || b != 0),
            CombineOp::Xor => (a ^ b) & 1,
            CombineOp::Max => a.max(b),
        }
    }

    /// Folds a slice, starting from the identity.
    pub fn fold(self, values: &[Word]) -> Word {
        values
            .iter()
            .fold(self.identity(), |a, &b| self.apply(a, b))
    }
}

/// How a processor's register file reacts to the values delivered by the
/// previous phase's reads (QSM/GSM) or this superstep's inbox (BSP).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Update {
    /// Leave the registers untouched; delivered values are discarded.
    Keep,
    /// Replace the register file with the delivered values, in delivery
    /// order (address order on the shared-memory models, `(src, tag)`
    /// order on the BSP).
    Load,
    /// Replace the register file with the single fold of the delivered
    /// values under the operator (the identity if nothing was delivered).
    Fold(CombineOp),
    /// Fold the delivered values into register 0 (`r0 = op(r0, fold(xs))`).
    /// A no-op when nothing was delivered; an empty register file is
    /// seeded with the operator's identity first.
    Accum(CombineOp),
}

/// A value expression over the processor's register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueRule {
    /// A literal constant.
    Const(Word),
    /// The contents of register `i` (0 if the register does not exist).
    Reg(usize),
    /// The fold of the whole register file under the operator.
    FoldRegs(CombineOp),
}

impl ValueRule {
    /// Evaluates the rule against a register file.
    pub fn eval(self, regs: &[Word]) -> Word {
        match self {
            ValueRule::Const(v) => v,
            ValueRule::Reg(i) => regs.get(i).copied().unwrap_or(0),
            ValueRule::FoldRegs(op) => op.fold(regs),
        }
    }

    /// True when the rule's value is fixed independent of execution state.
    pub fn is_const(self) -> bool {
        matches!(self, ValueRule::Const(_))
    }
}

impl fmt::Display for CombineOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CombineOp::Sum => "sum",
            CombineOp::Or => "or",
            CombineOp::Xor => "xor",
            CombineOp::Max => "max",
        })
    }
}

impl fmt::Display for ValueRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueRule::Const(v) => write!(f, "{v}"),
            ValueRule::Reg(i) => write!(f, "r{i}"),
            ValueRule::FoldRegs(op) => write!(f, "{op}(regs)"),
        }
    }
}

/// Gate on a processor's requests for one phase.
///
/// The register update always happens; the guard only decides whether the
/// phase's reads, writes and local operations are issued. Guards are the
/// single source of data dependence in the IR, which is what makes the
/// saturating-schedule convention (assume every guard fires) a sound
/// worst case for static analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// Requests are always issued.
    Always,
    /// Requests are issued only while register 0 is nonzero.
    NonZero,
}

/// One shared-memory write: a destination cell and the value rule
/// producing the written word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteSpec {
    /// Destination cell.
    pub addr: Addr,
    /// Value to commit.
    pub value: ValueRule,
}

/// What one processor does in one shared-memory phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcPhase {
    /// The processor this entry describes.
    pub pid: usize,
    /// Register-file reaction to the previous phase's delivered reads.
    pub update: Update,
    /// Gate on this phase's requests.
    pub guard: Guard,
    /// Cells to read (delivered before the *next* phase).
    pub reads: Vec<Addr>,
    /// Cells to write, with value rules.
    pub writes: Vec<WriteSpec>,
    /// Local operations charged beyond the per-request unit costs.
    pub local_ops: u64,
}

impl ProcPhase {
    /// An entry that issues nothing and keeps its registers.
    pub fn idle(pid: usize) -> Self {
        ProcPhase {
            pid,
            update: Update::Keep,
            guard: Guard::Always,
            reads: Vec::new(),
            writes: Vec::new(),
            local_ops: 0,
        }
    }

    /// Sets the register update rule.
    pub fn update(mut self, update: Update) -> Self {
        self.update = update;
        self
    }

    /// Sets the request guard.
    pub fn guard(mut self, guard: Guard) -> Self {
        self.guard = guard;
        self
    }

    /// Adds a read request.
    pub fn read(mut self, addr: Addr) -> Self {
        self.reads.push(addr);
        self
    }

    /// Adds a write request.
    pub fn write(mut self, addr: Addr, value: ValueRule) -> Self {
        self.writes.push(WriteSpec { addr, value });
        self
    }

    /// Charges extra local operations.
    pub fn local_ops(mut self, k: u64) -> Self {
        self.local_ops = k;
        self
    }
}

/// One phase of a shared-memory plan: the participating processors and the
/// set of processors that halt at the end of the phase.
///
/// Processors of the plan that have no entry in a phase are *idle but
/// active*: the simulators still call them and they contribute zero to
/// every maximum, exactly as an entry with no requests would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedPhase {
    /// Human-readable label (used in diagnostics and rendered tables).
    pub label: String,
    /// Per-processor behavior for this phase.
    pub procs: Vec<ProcPhase>,
    /// Processors that return `Done` at the end of this phase.
    pub finish: Vec<usize>,
}

impl SharedPhase {
    /// Creates an empty phase with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        SharedPhase {
            label: label.into(),
            procs: Vec::new(),
            finish: Vec::new(),
        }
    }
}

/// One BSP message send: destination component, tag, and value rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendSpec {
    /// Destination component.
    pub dest: usize,
    /// Message tag (inboxes are delivered sorted by `(src, tag)`).
    pub tag: Word,
    /// Value to send.
    pub value: ValueRule,
}

/// What one BSP component does in one superstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompStep {
    /// The component this entry describes.
    pub pid: usize,
    /// Register-file reaction to this superstep's inbox values.
    pub update: Update,
    /// Messages to send (delivered at the start of the next superstep).
    pub sends: Vec<SendSpec>,
    /// Local operations charged beyond the per-message unit costs.
    pub local_ops: u64,
}

impl CompStep {
    /// An entry that sends nothing and keeps its registers.
    pub fn idle(pid: usize) -> Self {
        CompStep {
            pid,
            update: Update::Keep,
            sends: Vec::new(),
            local_ops: 0,
        }
    }

    /// Sets the register update rule.
    pub fn update(mut self, update: Update) -> Self {
        self.update = update;
        self
    }

    /// Adds a message send.
    pub fn send(mut self, dest: usize, tag: Word, value: ValueRule) -> Self {
        self.sends.push(SendSpec { dest, tag, value });
        self
    }

    /// Charges extra local operations.
    pub fn local_ops(mut self, k: u64) -> Self {
        self.local_ops = k;
        self
    }
}

/// One superstep of a BSP plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgStep {
    /// Human-readable label.
    pub label: String,
    /// Per-component behavior for this superstep.
    pub comps: Vec<CompStep>,
    /// Components that return `Done` at the end of this superstep.
    pub finish: Vec<usize>,
}

impl MsgStep {
    /// Creates an empty superstep with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        MsgStep {
            label: label.into(),
            comps: Vec::new(),
            finish: Vec::new(),
        }
    }
}

/// How a BSP component's register file is seeded from its partition of the
/// input (the shared-memory models instead read the input from cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitRule {
    /// Seed register 0 with a constant.
    Const(Word),
    /// Seed register 0 with the fold of the component's local input slice.
    FoldLocal(CombineOp),
}

/// The phases of a plan, in the idiom of its model family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanBody {
    /// Shared-memory phases (QSM, s-QSM, GSM).
    Shared(Vec<SharedPhase>),
    /// Message-passing supersteps (BSP).
    Msg {
        /// Register seeding from the component's local input.
        init: InitRule,
        /// The supersteps.
        steps: Vec<MsgStep>,
    },
}

/// The concrete machine a plan is scheduled for, with its cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// QSM with gap `g`: phase cost `max{m_op, g·m_rw, κ}`.
    Qsm {
        /// Bandwidth gap.
        g: u64,
    },
    /// s-QSM with gap `g`: phase cost `max{m_op, g·m_rw, g·κ}`.
    SQsm {
        /// Bandwidth gap.
        g: u64,
    },
    /// QSM variant charging only write contention (unit-cost concurrent
    /// reads): phase cost `max{m_op, g·m_rw, κ_w}`.
    QsmUnitCr {
        /// Bandwidth gap.
        g: u64,
    },
    /// BSP(p, g, L): superstep cost `max{w, g·h, L}`.
    Bsp {
        /// Number of components (must equal the plan's processor count).
        p: usize,
        /// Bandwidth gap.
        g: u64,
        /// Latency / synchronization parameter.
        l: u64,
    },
    /// GSM(α, β, γ): phase cost `max{α,β} · max{⌈m_rw/α⌉, ⌈κ/β⌉}`.
    Gsm {
        /// Bandwidth parameter α.
        alpha: u64,
        /// Contention parameter β.
        beta: u64,
        /// Input-packing parameter γ (cells `[0, input_cells)` are
        /// read-only γ-packed input).
        gamma: u64,
    },
}

impl ModelKind {
    /// The paper-facing model name, matching the labels used by the
    /// dynamic lints ("QSM", "s-QSM", "BSP", "GSM").
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Qsm { .. } | ModelKind::QsmUnitCr { .. } => "QSM",
            ModelKind::SQsm { .. } => "s-QSM",
            ModelKind::Bsp { .. } => "BSP",
            ModelKind::Gsm { .. } => "GSM",
        }
    }

    /// True for the shared-memory family (everything but the BSP).
    pub fn is_shared(self) -> bool {
        !matches!(self, ModelKind::Bsp { .. })
    }
}

/// Where a plan's result lives after the final phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputDecl {
    /// A shared-memory region `[base, base + len)`.
    Region {
        /// First output cell.
        base: Addr,
        /// Number of output cells.
        len: usize,
    },
    /// Register 0 of every BSP component, in pid order.
    ComponentState,
}

/// A complete declarative schedule: model, processor count, input/output
/// declarations, contention contract, and the phase descriptors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhasePlan {
    /// Family name (used in reports and diagnostics).
    pub family: String,
    /// Target machine and cost parameters.
    pub model: ModelKind,
    /// Number of processors / components.
    pub procs: usize,
    /// Cells `[0, input_cells)` hold the input. On the GSM this is the
    /// γ-packed read-only region; writes into it are flagged.
    pub input_cells: usize,
    /// Declared maximum contention (fan-in) the family promises; `None`
    /// for no contract. The static linter flags phases exceeding it.
    pub contention_bound: Option<u64>,
    /// Where the result lives.
    pub output: OutputDecl,
    /// The phases themselves.
    pub body: PlanBody,
}

impl PhasePlan {
    /// Number of phases (shared) or supersteps (BSP) in the plan.
    pub fn num_phases(&self) -> usize {
        match &self.body {
            PlanBody::Shared(phases) => phases.len(),
            PlanBody::Msg { steps, .. } => steps.len(),
        }
    }

    /// The phase labels, in order.
    pub fn labels(&self) -> Vec<&str> {
        match &self.body {
            PlanBody::Shared(phases) => phases.iter().map(|p| p.label.as_str()).collect(),
            PlanBody::Msg { steps, .. } => steps.iter().map(|s| s.label.as_str()).collect(),
        }
    }

    /// For each processor, the phase index in which it halts.
    ///
    /// Fails if a processor never halts or halts more than once; plan
    /// validation guarantees success for validated plans.
    pub fn finish_phases(&self) -> Result<Vec<usize>> {
        let mut finish = vec![None; self.procs];
        let record = |finish: &mut Vec<Option<usize>>, pid: usize, t: usize| -> Result<()> {
            if pid >= finish.len() {
                return Err(ModelError::BadConfig(format!(
                    "plan '{}': finish list of phase {t} names pid {pid} >= procs",
                    self.family
                )));
            }
            if let Some(prev) = finish[pid] {
                return Err(ModelError::BadConfig(format!(
                    "plan '{}': pid {pid} finishes twice (phases {prev} and {t})",
                    self.family
                )));
            }
            finish[pid] = Some(t);
            Ok(())
        };
        match &self.body {
            PlanBody::Shared(phases) => {
                for (t, phase) in phases.iter().enumerate() {
                    for &pid in &phase.finish {
                        record(&mut finish, pid, t)?;
                    }
                }
            }
            PlanBody::Msg { steps, .. } => {
                for (t, step) in steps.iter().enumerate() {
                    for &pid in &step.finish {
                        record(&mut finish, pid, t)?;
                    }
                }
            }
        }
        finish
            .into_iter()
            .enumerate()
            .map(|(pid, f)| {
                f.ok_or_else(|| {
                    ModelError::BadConfig(format!(
                        "plan '{}': pid {pid} never finishes",
                        self.family
                    ))
                })
            })
            .collect()
    }

    /// Structural validation: every pid in range and unique per phase, every
    /// processor halts exactly once and issues nothing afterwards, the model
    /// matches the body idiom, and the final phase retires at least one
    /// processor (so the simulator's phase count equals the plan's).
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: String| {
            Err(ModelError::BadConfig(format!(
                "plan '{}': {msg}",
                self.family
            )))
        };
        if self.procs == 0 {
            return bad("must have at least one processor".into());
        }
        if self.num_phases() == 0 {
            return bad("must have at least one phase".into());
        }
        match (&self.model, &self.body) {
            (ModelKind::Bsp { .. }, PlanBody::Shared(_)) => {
                return bad("BSP model requires message-passing supersteps".into());
            }
            (m, PlanBody::Msg { .. }) if m.is_shared() => {
                return bad(format!("{} model requires shared-memory phases", m.name()));
            }
            (ModelKind::Bsp { p, .. }, _) if *p != self.procs => {
                return bad(format!(
                    "BSP machine width {p} != plan processor count {}",
                    self.procs
                ));
            }
            _ => {}
        }
        match (&self.model, &self.output) {
            (ModelKind::Bsp { .. }, OutputDecl::Region { .. }) => {
                return bad("BSP plans declare OutputDecl::ComponentState".into());
            }
            (m, OutputDecl::ComponentState) if m.is_shared() => {
                return bad("shared-memory plans declare OutputDecl::Region".into());
            }
            _ => {}
        }
        let finish = self.finish_phases()?;
        let last = self.num_phases() - 1;
        if !finish.contains(&last) {
            return bad(format!("no processor finishes in the final phase {last}"));
        }
        match &self.body {
            PlanBody::Shared(phases) => {
                for (t, phase) in phases.iter().enumerate() {
                    let mut seen = vec![false; self.procs];
                    for entry in &phase.procs {
                        if entry.pid >= self.procs {
                            return bad(format!(
                                "phase {t} names pid {} >= procs {}",
                                entry.pid, self.procs
                            ));
                        }
                        if seen[entry.pid] {
                            return bad(format!("phase {t} lists pid {} twice", entry.pid));
                        }
                        seen[entry.pid] = true;
                        if t > finish[entry.pid] {
                            return bad(format!(
                                "pid {} appears in phase {t} after finishing in phase {}",
                                entry.pid, finish[entry.pid]
                            ));
                        }
                    }
                }
            }
            PlanBody::Msg { steps, .. } => {
                for (t, step) in steps.iter().enumerate() {
                    let mut seen = vec![false; self.procs];
                    for entry in &step.comps {
                        if entry.pid >= self.procs {
                            return bad(format!(
                                "superstep {t} names pid {} >= procs {}",
                                entry.pid, self.procs
                            ));
                        }
                        if seen[entry.pid] {
                            return bad(format!("superstep {t} lists pid {} twice", entry.pid));
                        }
                        seen[entry.pid] = true;
                        if t > finish[entry.pid] {
                            return bad(format!(
                                "pid {} appears in superstep {t} after finishing in superstep {}",
                                entry.pid, finish[entry.pid]
                            ));
                        }
                        for send in &entry.sends {
                            if send.dest >= self.procs {
                                return bad(format!(
                                    "superstep {t}: pid {} sends to dest {} >= procs {}",
                                    entry.pid, send.dest, self.procs
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Applies an [`Update`] to a register file given the delivered values.
/// Shared by both interpreters and exercised by the unit tests.
pub fn apply_update(update: Update, regs: &mut Vec<Word>, delivered: &[Word]) {
    match update {
        Update::Keep => {}
        Update::Load => {
            regs.clear();
            regs.extend_from_slice(delivered);
        }
        Update::Fold(op) => {
            let v = op.fold(delivered);
            regs.clear();
            regs.push(v);
        }
        Update::Accum(op) => {
            if delivered.is_empty() {
                return;
            }
            if regs.is_empty() {
                regs.push(op.identity());
            }
            regs[0] = op.apply(regs[0], op.fold(delivered));
        }
    }
}
