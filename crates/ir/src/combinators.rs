//! Schedule combinators: builders that assemble [`PhasePlan`]s for the
//! Section 8 algorithm families.
//!
//! Each combinator mirrors, phase for phase and request for request, the
//! communication pattern of the corresponding hand-written program in
//! `parbounds-algo` (where one exists), so that the IR's executed ledger is
//! identical to the original algorithm's — the cross-validation tests in
//! `parbounds-analyze` assert this cell for cell. The fan-in/fan-out
//! parameter `k` is chosen by the caller from the model parameters (`g` on
//! the QSM, `L/g` on the BSP) per the paper's recipes.

use crate::plan::{
    CombineOp, CompStep, Guard, InitRule, ModelKind, MsgStep, OutputDecl, PhasePlan, PlanBody,
    ProcPhase, SharedPhase, Update, ValueRule,
};
use parbounds_models::Addr;

/// `⌈log_k n⌉` computed by repeated ceiling division (matches
/// `parbounds_algo::ceil_log`).
fn ceil_log(n: usize, k: usize) -> usize {
    assert!(k >= 2, "fan-in must be at least 2");
    let mut width = n.max(1);
    let mut levels = 0;
    while width > 1 {
        width = width.div_ceil(k);
        levels += 1;
    }
    levels
}

/// `k^e`, saturating.
fn kpow(k: usize, e: usize) -> usize {
    let mut x = 1usize;
    for _ in 0..e {
        x = x.saturating_mul(k);
    }
    x
}

/// Highest tree level a leaf survives to: the largest `m <= depth` with
/// `k^m | i` (matches the OR-tree's representative rule).
fn rep_level(i: usize, k: usize, depth: usize) -> usize {
    if i == 0 {
        return depth;
    }
    let mut m = 0;
    let mut stride = k;
    while m < depth && i.is_multiple_of(stride) {
        m += 1;
        stride = stride.saturating_mul(k);
    }
    m
}

/// The round at which a processor joins a `k`-ary broadcast: 0 for pid 0,
/// otherwise the `l` with `k^(l-1) <= pid < k^l`.
fn join_round(i: usize, k: usize) -> usize {
    if i == 0 {
        return 0;
    }
    let mut reach = 1usize;
    let mut l = 0;
    while reach <= i {
        reach = reach.saturating_mul(k);
        l += 1;
    }
    l
}

/// `FanInTree{k}` over *writes*: the QSM OR tree of Section 8.
///
/// Leaves read their input bit; at each round the survivors that saw a 1
/// write a common 1 into their group's cell (contention `<= k`, absorbed by
/// the QSM's `max` cost rule), and one representative per group advances.
/// The plan is race-free despite multi-writer cells because every
/// concurrent write commits the same constant. On an all-ones input the
/// executed schedule saturates every guard, matching the static
/// (worst-case) prediction and `or_write_tree_cost_max` exactly.
pub fn fan_in_write_tree(n: usize, k: usize, model: ModelKind) -> PhasePlan {
    assert!(n >= 1, "fan_in_write_tree needs at least one leaf");
    let depth = ceil_log(n, k);
    // Layout mirror of the OR-tree program: levels above the n input
    // cells, then the output cell.
    let mut next = n;
    let mut level_bases = Vec::with_capacity(depth);
    let mut width = n;
    for _ in 0..depth {
        width = width.div_ceil(k);
        level_bases.push(next);
        next += width;
    }
    let out = next;

    let mut phases = Vec::with_capacity(2 * depth + 2);
    let mut leaf_read = SharedPhase::new("leaf-read");
    for pid in 0..n {
        leaf_read.procs.push(ProcPhase::idle(pid).read(pid));
    }
    phases.push(leaf_read);

    for round in 1..=depth {
        let stride = kpow(k, round - 1);
        let group = stride.saturating_mul(k);
        let mut write = SharedPhase::new(format!("level-{round}-write"));
        for pid in (0..n).step_by(stride) {
            let lvl = rep_level(pid, k, depth);
            if lvl < round - 1 {
                continue;
            }
            write.procs.push(
                ProcPhase::idle(pid)
                    .update(Update::Fold(CombineOp::Or))
                    .guard(Guard::NonZero)
                    .write(level_bases[round - 1] + pid / group, ValueRule::Const(1)),
            );
            if lvl == round - 1 {
                write.finish.push(pid);
            }
        }
        phases.push(write);

        let mut read = SharedPhase::new(format!("level-{round}-read"));
        for pid in (0..n).step_by(group) {
            if rep_level(pid, k, depth) < round {
                continue;
            }
            read.procs
                .push(ProcPhase::idle(pid).read(level_bases[round - 1] + pid / group));
        }
        phases.push(read);
    }

    let mut publish = SharedPhase::new("publish");
    publish.procs.push(
        ProcPhase::idle(0)
            .update(Update::Fold(CombineOp::Or))
            .write(out, ValueRule::Reg(0)),
    );
    publish.finish.push(0);
    phases.push(publish);

    PhasePlan {
        family: "fan-in-write-tree".into(),
        model,
        procs: n,
        input_cells: n,
        contention_bound: Some(k as u64),
        output: OutputDecl::Region { base: out, len: 1 },
        body: PlanBody::Shared(phases),
    }
}

/// `FanInTree{k}` over *reads*: the s-QSM-friendly reduction tree.
///
/// One processor per internal node; a node reads its (up to `k`) children
/// and writes their fold one cell up. Every cell is read by exactly one
/// processor, so the contention is 1 everywhere — the symmetric pattern the
/// s-QSM's `g·κ` charge demands.
pub fn fan_in_read_tree(n: usize, k: usize, op: CombineOp, model: ModelKind) -> PhasePlan {
    assert!(n >= 1, "fan_in_read_tree needs at least one leaf");
    assert!(k >= 2, "fan-in must be at least 2");
    // Width of each tree level, leaves first (mirrors TreeShape).
    let mut widths = vec![n];
    while *widths.last().expect("non-empty") > 1 {
        widths.push(widths.last().expect("non-empty").div_ceil(k));
    }
    let depth = widths.len() - 1;
    let mut level_bases = vec![0usize];
    let mut next = n.max(1);
    for &w in widths.iter().skip(1) {
        level_bases.push(next);
        next += w;
    }
    // Degenerate single-leaf tree: one proc copies the leaf to a fresh root.
    let degenerate = depth == 0;
    let proc_nodes: Vec<(usize, usize)> = if degenerate {
        level_bases.push(next);
        vec![(1, 0)]
    } else {
        let mut nodes = Vec::new();
        for (level, &w) in widths.iter().enumerate().skip(1) {
            for node in 0..w {
                nodes.push((level, node));
            }
        }
        nodes
    };
    let root = *level_bases.last().expect("non-empty");

    let eff_depth = if degenerate { 1 } else { depth };
    let mut phases: Vec<SharedPhase> = (0..2 * eff_depth)
        .map(|t| {
            let level = t / 2 + 1;
            if t % 2 == 0 {
                SharedPhase::new(format!("level-{level}-read"))
            } else {
                SharedPhase::new(format!("level-{level}-write"))
            }
        })
        .collect();

    for (pid, &(level, node)) in proc_nodes.iter().enumerate() {
        let children = if degenerate {
            1
        } else {
            k.min(widths[level - 1] - node * k)
        };
        let read_phase = 2 * (level - 1);
        let mut entry = ProcPhase::idle(pid);
        for c in 0..children {
            entry = entry.read(level_bases[level - 1] + node * k + c);
        }
        phases[read_phase].procs.push(entry);
        phases[read_phase + 1].procs.push(
            ProcPhase::idle(pid)
                .update(Update::Fold(op))
                .write(level_bases[level] + node, ValueRule::Reg(0)),
        );
        phases[read_phase + 1].finish.push(pid);
    }

    PhasePlan {
        family: "fan-in-read-tree".into(),
        model,
        procs: proc_nodes.len(),
        input_cells: n,
        contention_bound: Some(1),
        output: OutputDecl::Region { base: root, len: 1 },
        body: PlanBody::Shared(phases),
    }
}

/// `Broadcast{replication}`: `k`-ary doubling broadcast of cell 0 to `n`
/// output cells.
///
/// Round `l` processors read one of the `k^(l-1)` already-published copies
/// (contention `<= k-1` per copy) and republish, mirroring the
/// `parbounds_algo::broadcast` program exactly.
pub fn broadcast(n: usize, k: usize, model: ModelKind) -> PhasePlan {
    assert!(n >= 1, "broadcast needs at least one receiver");
    assert!(k >= 2, "fan-out must be at least 2");
    let out: Addr = 1;
    let rounds = ceil_log(n, k);
    let mut phases: Vec<SharedPhase> = (0..=rounds)
        .flat_map(|l| {
            [
                SharedPhase::new(format!("round-{l}-read")),
                SharedPhase::new(format!("round-{l}-write")),
            ]
        })
        .collect();
    for pid in 0..n {
        let join = join_round(pid, k);
        let src = if pid == 0 {
            0
        } else {
            out + pid % kpow(k, join - 1)
        };
        phases[2 * join].procs.push(ProcPhase::idle(pid).read(src));
        phases[2 * join + 1].procs.push(
            ProcPhase::idle(pid)
                .update(Update::Load)
                .write(out + pid, ValueRule::Reg(0)),
        );
        phases[2 * join + 1].finish.push(pid);
    }
    PhasePlan {
        family: "broadcast".into(),
        model,
        procs: n,
        input_cells: 1,
        contention_bound: Some((k as u64 - 1).max(1)),
        output: OutputDecl::Region { base: out, len: n },
        body: PlanBody::Shared(phases),
    }
}

/// `PrefixSweep{k}`: a `k`-ary Hillis–Steele prefix scan on the shared
/// memory models.
///
/// Processor `i` maintains the fold of the window of (up to) `k^t` inputs
/// ending at `i`; each round it reads the `k-1` windows to its left at
/// stride `k^t` and widens its window by a factor of `k`. After
/// `⌈log_k n⌉` rounds cell `out + i` holds `op`-prefix `x_0 … x_i`. All
/// window writes land at distinct cells, so the plan is race-free with
/// read contention `<= k-1`.
pub fn prefix_sweep(n: usize, k: usize, op: CombineOp, model: ModelKind) -> PhasePlan {
    assert!(n >= 1, "prefix_sweep needs at least one element");
    assert!(k >= 2, "fan-in must be at least 2");
    let rounds = ceil_log(n, k);
    let buf = [n, 2 * n]; // double buffers; `out` is the region at 3n.
    let out = 3 * n;

    let mut phases = Vec::with_capacity(2 * rounds + 2);
    let mut input_read = SharedPhase::new("input-read");
    for pid in 0..n {
        input_read.procs.push(ProcPhase::idle(pid).read(pid));
    }
    phases.push(input_read);

    // A window write is only issued when some later round will read it.
    let wanted = |i: usize, t: usize| (1..k).any(|j| i + j * kpow(k, t) < n);
    let mut seed = SharedPhase::new("window-seed");
    for pid in 0..n {
        let mut entry = ProcPhase::idle(pid).update(Update::Fold(op));
        if rounds == 0 {
            entry = entry.write(out + pid, ValueRule::Reg(0));
            seed.finish.push(pid);
        } else if wanted(pid, 0) {
            entry = entry.write(buf[0] + pid, ValueRule::Reg(0));
        }
        seed.procs.push(entry);
    }
    phases.push(seed);

    for t in 0..rounds {
        let stride = kpow(k, t);
        let cur = buf[t % 2];
        let last = t + 1 == rounds;
        let next = if last { out } else { buf[(t + 1) % 2] };

        let mut read = SharedPhase::new(format!("sweep-{t}-read"));
        for pid in stride..n {
            let mut entry = ProcPhase::idle(pid);
            for j in 1..k {
                if j * stride <= pid {
                    entry = entry.read(cur + pid - j * stride);
                }
            }
            read.procs.push(entry);
        }
        phases.push(read);

        let mut write = SharedPhase::new(format!("sweep-{t}-write"));
        for pid in 0..n {
            let mut entry = ProcPhase::idle(pid).update(Update::Accum(op));
            if last {
                entry = entry.write(out + pid, ValueRule::Reg(0));
                write.finish.push(pid);
            } else if wanted(pid, t + 1) {
                entry = entry.write(next + pid, ValueRule::Reg(0));
            }
            write.procs.push(entry);
        }
        phases.push(write);
    }

    PhasePlan {
        family: "prefix-sweep".into(),
        model,
        procs: n,
        input_cells: n,
        contention_bound: Some((k as u64 - 1).max(1)),
        output: OutputDecl::Region { base: out, len: n },
        body: PlanBody::Shared(phases),
    }
}

/// `Scatter/Gather`: one read round from `sources`, one write round to
/// `dests` (a data-movement permutation when both are duplicate-free).
pub fn scatter_gather(sources: &[Addr], dests: &[Addr], model: ModelKind) -> PhasePlan {
    assert_eq!(sources.len(), dests.len(), "sources and dests must pair up");
    assert!(
        !sources.is_empty(),
        "scatter_gather needs at least one item"
    );
    let n = sources.len();
    let base = *dests.iter().min().expect("non-empty");
    let len = *dests.iter().max().expect("non-empty") - base + 1;
    let multiplicity = |addrs: &[Addr]| {
        let mut sorted = addrs.to_vec();
        sorted.sort_unstable();
        sorted
            .chunk_by(|a, b| a == b)
            .map(|c| c.len() as u64)
            .max()
            .unwrap_or(1)
    };
    let bound = multiplicity(sources).max(multiplicity(dests));

    let mut gather = SharedPhase::new("gather");
    let mut scatter = SharedPhase::new("scatter");
    for (pid, (&src, &dst)) in sources.iter().zip(dests.iter()).enumerate() {
        gather.procs.push(ProcPhase::idle(pid).read(src));
        scatter.procs.push(
            ProcPhase::idle(pid)
                .update(Update::Load)
                .write(dst, ValueRule::Reg(0)),
        );
        scatter.finish.push(pid);
    }
    PhasePlan {
        family: "scatter-gather".into(),
        model,
        procs: n,
        input_cells: sources.iter().max().map_or(0, |&m| m + 1),
        contention_bound: Some(bound),
        output: OutputDecl::Region { base, len },
        body: PlanBody::Shared(phases_pair(gather, scatter)),
    }
}

fn phases_pair(a: SharedPhase, b: SharedPhase) -> Vec<SharedPhase> {
    vec![a, b]
}

/// `DartRound`: a single all-write phase, processor `i` throwing one dart
/// at `targets[i]`. The building block of the LAC sampling rounds — and,
/// with colliding targets, the canonical *racy* fixture the static race
/// certifier must reject.
pub fn dart_round(targets: &[(Addr, ValueRule)], model: ModelKind) -> PhasePlan {
    assert!(!targets.is_empty(), "dart_round needs at least one dart");
    let base = targets.iter().map(|&(a, _)| a).min().expect("non-empty");
    let len = targets.iter().map(|&(a, _)| a).max().expect("non-empty") - base + 1;
    let mut phase = SharedPhase::new("dart-throw");
    for (pid, &(addr, value)) in targets.iter().enumerate() {
        phase.procs.push(ProcPhase::idle(pid).write(addr, value));
        phase.finish.push(pid);
    }
    PhasePlan {
        family: "dart-round".into(),
        model,
        procs: targets.len(),
        input_cells: 0,
        contention_bound: Some(1),
        output: OutputDecl::Region { base, len },
        body: PlanBody::Shared(vec![phase]),
    }
}

/// Senders into `pid` at tree round `r` of a `k`-ary fan-in over `p`
/// components: `pid + j·k^r` for `j = 1..k`, bounded by `p`.
fn fanin_senders(pid: usize, k: usize, r: usize, p: usize) -> u64 {
    (1..k).filter(|&j| pid + j * kpow(k, r) < p).count() as u64
}

/// BSP `FanInTree{k}` reduce: the fan-in-`(L/g)` reduction of Section 8.
///
/// Each component seeds register 0 with the fold of its input partition;
/// round `r` has the non-leaders among the surviving multiples of `k^r`
/// send their value to their group leader and halt. Mirrors
/// `parbounds_algo::bsp_reduce` superstep for superstep.
pub fn bsp_fan_in_reduce(p: usize, k: usize, op: CombineOp, g: u64, l: u64) -> PhasePlan {
    assert!(p >= 1, "bsp_fan_in_reduce needs at least one component");
    assert!(k >= 2, "fan-in must be at least 2");
    let depth = ceil_log(p, k);
    let mut steps = Vec::with_capacity(depth + 1);
    for r in 0..depth {
        let stride = kpow(k, r);
        let group = stride.saturating_mul(k);
        let mut step = MsgStep::new(format!("fan-in-{r}"));
        for pid in (0..p).step_by(stride) {
            let ops = if r == 0 {
                0
            } else {
                fanin_senders(pid, k, r - 1, p)
            };
            let mut comp = CompStep::idle(pid).update(Update::Accum(op)).local_ops(ops);
            if pid % group != 0 {
                comp = comp.send(pid - pid % group, 0, ValueRule::Reg(0));
                step.finish.push(pid);
            }
            step.comps.push(comp);
        }
        steps.push(step);
    }
    let mut root = MsgStep::new("root-fold");
    let ops = if depth == 0 {
        0
    } else {
        fanin_senders(0, k, depth - 1, p)
    };
    root.comps
        .push(CompStep::idle(0).update(Update::Accum(op)).local_ops(ops));
    root.finish.push(0);
    steps.push(root);

    PhasePlan {
        family: "bsp-fan-in-reduce".into(),
        model: ModelKind::Bsp { p, g, l },
        procs: p,
        input_cells: 0,
        contention_bound: Some((k as u64 - 1).max(1)),
        output: OutputDecl::ComponentState,
        body: PlanBody::Msg {
            init: InitRule::FoldLocal(op),
            steps,
        },
    }
}

/// BSP `PrefixSweep{k}`: a `k`-ary doubling prefix scan over component
/// partitions. After the final superstep component `i` holds the
/// `op`-prefix of partitions `0..=i` in register 0.
pub fn bsp_prefix_scan(p: usize, k: usize, op: CombineOp, g: u64, l: u64) -> PhasePlan {
    assert!(p >= 1, "bsp_prefix_scan needs at least one component");
    assert!(k >= 2, "fan-out must be at least 2");
    let rounds = ceil_log(p, k);
    let mut steps = Vec::with_capacity(rounds + 1);
    for t in 0..rounds {
        let stride = kpow(k, t);
        let mut step = MsgStep::new(format!("scan-{t}"));
        for pid in 0..p {
            let (update, ops) = if t == 0 {
                (Update::Keep, 0)
            } else {
                (
                    Update::Accum(op),
                    (1..k).filter(|&j| pid >= j * kpow(k, t - 1)).count() as u64,
                )
            };
            let mut comp = CompStep::idle(pid).update(update).local_ops(ops);
            for j in 1..k {
                let dest = pid + j * stride;
                if dest < p {
                    comp = comp.send(dest, 0, ValueRule::Reg(0));
                }
            }
            step.comps.push(comp);
        }
        steps.push(step);
    }
    let mut fin = MsgStep::new("scan-final");
    for pid in 0..p {
        let ops = if rounds == 0 {
            0
        } else {
            (1..k).filter(|&j| pid >= j * kpow(k, rounds - 1)).count() as u64
        };
        fin.comps.push(
            CompStep::idle(pid)
                .update(if rounds == 0 {
                    Update::Keep
                } else {
                    Update::Accum(op)
                })
                .local_ops(ops),
        );
        fin.finish.push(pid);
    }
    steps.push(fin);

    PhasePlan {
        family: "bsp-prefix-scan".into(),
        model: ModelKind::Bsp { p, g, l },
        procs: p,
        input_cells: 0,
        contention_bound: Some((k as u64 - 1).max(1)),
        output: OutputDecl::ComponentState,
        body: PlanBody::Msg {
            init: InitRule::FoldLocal(op),
            steps,
        },
    }
}
