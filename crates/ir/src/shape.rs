//! Parameterized family shapes: the size of each §8 schedule as a
//! function of the free model parameters, without building the plan.
//!
//! The combinators in [`crate::combinators`] instantiate one concrete
//! [`crate::plan::PhasePlan`] per `(n, k)` point. The symbolic cost layer
//! in `parbounds-analyze` needs the *shape* of those plans — the fan-in
//! recipe that picks `k` from the model parameters, and the resulting
//! phase count — with the parameters left free. This module states both,
//! mirroring the constructors exactly, so the analyzer can (a) recognise
//! that a concrete plan is an instance of a family at some parameter
//! point, and (b) prove the match by comparing phase counts.

use crate::plan::ModelKind;

/// A concrete parameter point `(n, p, g, L)` at which a shape — or a
/// symbolic ledger derived from it — is instantiated.
///
/// Shared-memory families read `n` and `g`; BSP families read `p`, `g`
/// and `l`. Unused coordinates are ignored, not validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapePoint {
    /// Problem size (leaves of a tree, cells of a sweep).
    pub n: u64,
    /// BSP component count.
    pub p: u64,
    /// Per-request bandwidth gap.
    pub g: u64,
    /// BSP periodicity `L`.
    pub l: u64,
}

/// `⌈log_k n⌉` by repeated ceiling division — the exact round count the
/// combinators use (`k` is floored at 2, `n` at 1).
pub fn ceil_log(n: u64, k: u64) -> u64 {
    let k = k.max(2);
    let mut width = n.max(1);
    let mut levels = 0;
    while width > 1 {
        width = width.div_ceil(k);
        levels += 1;
    }
    levels
}

/// The paper's recipe choosing a combinator's fan-in/fan-out `k` from the
/// model parameters. Each variant mirrors one `parbounds-algo` family
/// constructor; [`FanRecipe::fan`] reproduces its arithmetic exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FanRecipe {
    /// `max(2, g)` — the QSM OR write tree.
    OrFanIn,
    /// Constant 2 — the s-QSM parity read tree.
    Binary,
    /// `max(2, g + 1)` — the QSM broadcast fan-out.
    BroadcastFanOut,
    /// `max(2, g)` — the QSM prefix sweep.
    SweepFanIn,
    /// `max(2, ⌊L / max(1, g)⌋)` — both BSP tree families.
    BspFanIn,
}

impl FanRecipe {
    /// Evaluates the recipe at a parameter point.
    pub fn fan(self, pt: ShapePoint) -> u64 {
        match self {
            FanRecipe::OrFanIn | FanRecipe::SweepFanIn => pt.g.max(2),
            FanRecipe::Binary => 2,
            FanRecipe::BroadcastFanOut => (pt.g + 1).max(2),
            FanRecipe::BspFanIn => (pt.l / pt.g.max(1)).max(2),
        }
    }
}

/// The phase-level skeleton of one combinator family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Skeleton {
    /// Leaf read, `D` rounds of (write, read), publish: `2 + 2D` phases.
    FanInWriteTree,
    /// [`Skeleton::FanInWriteTree`] plus `⌈log₂ n⌉` padding phases —
    /// the deliberately-worse fixture the bound-regression lint exists
    /// to catch.
    FanInWriteTreePadded,
    /// `D` rounds of (read, write), floored at one round: `2·max(D, 1)`.
    FanInReadTree,
    /// Root round plus `R` fan-out rounds, each (read, write):
    /// `2(R + 1)`.
    Broadcast,
    /// Input read, window seed, `R` rounds of (read, write): `2 + 2R`.
    PrefixSweep,
    /// One gather phase, one scatter phase: 2.
    ScatterGather,
    /// `D` fan-in supersteps plus the root fold: `D + 1`.
    BspFanInReduce,
    /// `R` doubling supersteps plus the final fold: `R + 1`.
    BspPrefixScan,
}

/// A named family shape: skeleton plus fan recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FamilyShape {
    /// The analyzer-registry family name (e.g. `"or-write-tree"`).
    pub name: &'static str,
    /// The phase-level skeleton.
    pub skeleton: Skeleton,
    /// How `k` is chosen from the parameters.
    pub recipe: FanRecipe,
}

impl FamilyShape {
    /// Size parameter the skeleton's round count is driven by: `p` for
    /// BSP families, `n` otherwise.
    pub fn size(&self, pt: ShapePoint) -> u64 {
        match self.skeleton {
            Skeleton::BspFanInReduce | Skeleton::BspPrefixScan => pt.p,
            _ => pt.n,
        }
    }

    /// Exact number of phases the combinator emits at `pt` — the witness
    /// the analyzer compares against `PhasePlan::num_phases`.
    pub fn phase_count(&self, pt: ShapePoint) -> u64 {
        let k = self.recipe.fan(pt);
        let rounds = ceil_log(self.size(pt), k);
        match self.skeleton {
            Skeleton::FanInWriteTree => 2 + 2 * rounds,
            Skeleton::FanInWriteTreePadded => 2 + 2 * rounds + ceil_log(pt.n, 2),
            Skeleton::FanInReadTree => 2 * rounds.max(1),
            Skeleton::Broadcast => 2 * (rounds + 1),
            Skeleton::PrefixSweep => 2 + 2 * rounds,
            Skeleton::ScatterGather => 2,
            Skeleton::BspFanInReduce | Skeleton::BspPrefixScan => rounds + 1,
        }
    }

    /// The parameter point a concrete instance of this shape was built
    /// at, reconstructed from the plan-level facts `(procs, input_cells)`
    /// and the model. Returns `None` when the model kind does not match
    /// the family (e.g. a BSP shape asked about a QSM plan).
    pub fn point_from_plan(
        &self,
        model: ModelKind,
        procs: u64,
        input_cells: u64,
    ) -> Option<ShapePoint> {
        match (self.skeleton, model) {
            (Skeleton::BspFanInReduce | Skeleton::BspPrefixScan, ModelKind::Bsp { p: _, g, l }) => {
                Some(ShapePoint {
                    n: input_cells,
                    p: procs,
                    g,
                    l,
                })
            }
            (Skeleton::FanInReadTree, ModelKind::SQsm { g }) => {
                // Read-tree processors are internal nodes; `n` is the
                // input width.
                Some(ShapePoint {
                    n: input_cells,
                    p: procs,
                    g,
                    l: 0,
                })
            }
            (
                Skeleton::FanInWriteTree
                | Skeleton::FanInWriteTreePadded
                | Skeleton::Broadcast
                | Skeleton::PrefixSweep
                | Skeleton::ScatterGather,
                ModelKind::Qsm { g },
            ) => Some(ShapePoint {
                n: procs,
                p: procs,
                g,
                l: 0,
            }),
            _ => None,
        }
    }
}

/// Registry of every family shape the symbolic analyzer covers, keyed by
/// the `parbounds-analyze` family name. The padded write tree is included
/// so the bound-regression fixture resolves like any other family.
pub const FAMILY_SHAPES: &[FamilyShape] = &[
    FamilyShape {
        name: "or-write-tree",
        skeleton: Skeleton::FanInWriteTree,
        recipe: FanRecipe::OrFanIn,
    },
    FamilyShape {
        name: "or-write-tree-padded",
        skeleton: Skeleton::FanInWriteTreePadded,
        recipe: FanRecipe::OrFanIn,
    },
    FamilyShape {
        name: "parity-read-tree",
        skeleton: Skeleton::FanInReadTree,
        recipe: FanRecipe::Binary,
    },
    FamilyShape {
        name: "broadcast",
        skeleton: Skeleton::Broadcast,
        recipe: FanRecipe::BroadcastFanOut,
    },
    FamilyShape {
        name: "prefix-sweep",
        skeleton: Skeleton::PrefixSweep,
        recipe: FanRecipe::SweepFanIn,
    },
    FamilyShape {
        name: "scatter-gather",
        skeleton: Skeleton::ScatterGather,
        recipe: FanRecipe::OrFanIn,
    },
    FamilyShape {
        name: "bsp-reduce",
        skeleton: Skeleton::BspFanInReduce,
        recipe: FanRecipe::BspFanIn,
    },
    FamilyShape {
        name: "bsp-prefix-scan",
        skeleton: Skeleton::BspPrefixScan,
        recipe: FanRecipe::BspFanIn,
    },
];

/// Looks a family shape up by registry name.
pub fn family_shape(name: &str) -> Option<&'static FamilyShape> {
    FAMILY_SHAPES.iter().find(|s| s.name == name)
}

/// Maps a plan's combinator tag (`PhasePlan::family`) to the registry
/// family name it instantiates, if the symbolic layer covers it.
pub fn shape_for_combinator(family: &str) -> Option<&'static FamilyShape> {
    let name = match family {
        "fan-in-write-tree" => "or-write-tree",
        "fan-in-write-tree-padded" => "or-write-tree-padded",
        "fan-in-read-tree" => "parity-read-tree",
        "broadcast" => "broadcast",
        "prefix-sweep" => "prefix-sweep",
        "scatter-gather" => "scatter-gather",
        "bsp-fan-in-reduce" => "bsp-reduce",
        "bsp-prefix-scan" => "bsp-prefix-scan",
        _ => return None,
    };
    family_shape(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinators::{
        broadcast, bsp_fan_in_reduce, bsp_prefix_scan, fan_in_read_tree, fan_in_write_tree,
        prefix_sweep, scatter_gather,
    };
    use crate::plan::CombineOp;

    fn pt(n: u64, p: u64, g: u64, l: u64) -> ShapePoint {
        ShapePoint { n, p, g, l }
    }

    #[test]
    fn ceil_log_matches_degenerate_and_exact_cases() {
        assert_eq!(ceil_log(1, 2), 0);
        assert_eq!(ceil_log(0, 2), 0);
        assert_eq!(ceil_log(2, 2), 1);
        assert_eq!(ceil_log(9, 2), 4); // 9→5→3→2→1
        assert_eq!(ceil_log(8, 9), 1);
        assert_eq!(ceil_log(10, 1), 4); // k floored at 2
    }

    #[test]
    fn phase_counts_match_the_combinators() {
        for n in [2usize, 3, 8, 9, 16, 33, 100, 257] {
            for g in [1u64, 2, 3, 8, 16] {
                let p = pt(n as u64, 0, g, 0);
                let k_or = g.max(2) as usize;
                let plan = fan_in_write_tree(n, k_or, ModelKind::Qsm { g });
                let shape = family_shape("or-write-tree").unwrap();
                assert_eq!(
                    shape.phase_count(p),
                    plan.num_phases() as u64,
                    "or n={n} g={g}"
                );

                let plan = fan_in_read_tree(n, 2, CombineOp::Xor, ModelKind::SQsm { g });
                let shape = family_shape("parity-read-tree").unwrap();
                assert_eq!(
                    shape.phase_count(p),
                    plan.num_phases() as u64,
                    "parity n={n}"
                );

                let k_bc = (g as usize + 1).max(2);
                let plan = broadcast(n, k_bc, ModelKind::Qsm { g });
                let shape = family_shape("broadcast").unwrap();
                assert_eq!(
                    shape.phase_count(p),
                    plan.num_phases() as u64,
                    "bcast n={n} g={g}"
                );

                let plan = prefix_sweep(n, k_or, CombineOp::Sum, ModelKind::Qsm { g });
                let shape = family_shape("prefix-sweep").unwrap();
                assert_eq!(
                    shape.phase_count(p),
                    plan.num_phases() as u64,
                    "sweep n={n} g={g}"
                );

                let sources: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
                let dests: Vec<usize> = (0..n).map(|i| n + (n - 1 - i)).collect();
                let plan = scatter_gather(&sources, &dests, ModelKind::Qsm { g });
                let shape = family_shape("scatter-gather").unwrap();
                assert_eq!(shape.phase_count(p), plan.num_phases() as u64);
            }
        }
        for procs in [2usize, 3, 8, 16, 64, 100] {
            for (g, l) in [(1u64, 2u64), (2, 8), (8, 64), (8, 12), (16, 32)] {
                let p = pt(0, procs as u64, g, l);
                let k = ((l / g.max(1)) as usize).max(2);
                let plan = bsp_fan_in_reduce(procs, k, CombineOp::Xor, g, l);
                let shape = family_shape("bsp-reduce").unwrap();
                assert_eq!(
                    shape.phase_count(p),
                    plan.num_phases() as u64,
                    "reduce p={procs}"
                );

                let plan = bsp_prefix_scan(procs, k, CombineOp::Sum, g, l);
                let shape = family_shape("bsp-prefix-scan").unwrap();
                assert_eq!(
                    shape.phase_count(p),
                    plan.num_phases() as u64,
                    "scan p={procs}"
                );
            }
        }
    }

    #[test]
    fn recipes_match_the_family_constructors() {
        let p = pt(64, 16, 8, 64);
        assert_eq!(FanRecipe::OrFanIn.fan(p), 8);
        assert_eq!(FanRecipe::Binary.fan(p), 2);
        assert_eq!(FanRecipe::BroadcastFanOut.fan(p), 9);
        assert_eq!(FanRecipe::BspFanIn.fan(p), 8);
        let tiny = pt(64, 16, 1, 1);
        assert_eq!(FanRecipe::OrFanIn.fan(tiny), 2);
        assert_eq!(FanRecipe::BroadcastFanOut.fan(tiny), 2);
        assert_eq!(FanRecipe::BspFanIn.fan(tiny), 2);
    }
}
