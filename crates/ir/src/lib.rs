//! PhaseIR: a declarative schedule representation for the general-purpose
//! parallel models of MacKenzie & Ramachandran (SPAA 1998).
//!
//! The bounds of the paper are statements about *schedules*, not runs: the
//! communication pattern of an OR tree or a BSP prefix sweep is
//! data-independent, so its per-phase `(m_op, m_rw, κ)` / `h`-relation —
//! and hence its exact Section 2 cost — can be derived once, symbolically,
//! for all parameters. This crate provides:
//!
//! * [`plan`] — the IR itself: [`plan::PhasePlan`], a sequence of phase
//!   descriptors listing every read, write, send, and halt explicitly,
//!   with value flow restricted to a tiny fold/accumulate register
//!   machine so that guards are the only data dependence;
//! * [`combinators`] — builders (`FanInTree`, `Broadcast`, `PrefixSweep`,
//!   `Scatter/Gather`, `DartRound`, BSP reduce/scan) assembling plans for
//!   the Section 8 families, mirroring the hand-written programs in
//!   `parbounds-algo` request for request;
//! * [`interp`] — generic IR→`Program` interpreters grounding one plan on
//!   the QSM/s-QSM simulators or the BSP machine, so the same definition
//!   both *runs* and is *analyzed statically* (see `parbounds-analyze`),
//!   and the two ledgers can be compared cell for cell;
//! * [`compile`] — a one-shot compiler lowering an eligible plan into a
//!   straight-line [`compile::CompiledPlan`] schedule (pre-resolved dense
//!   request tables, contention counts and ledger rows baked in) with a
//!   bit-identical executor that skips routing, conflict checks, and
//!   arbitration on phases proved race-free at plan time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combinators;
pub mod compile;
pub mod interp;
pub mod plan;
pub mod shape;

pub use combinators::{
    broadcast, bsp_fan_in_reduce, bsp_prefix_scan, dart_round, fan_in_read_tree, fan_in_write_tree,
    prefix_sweep, scatter_gather,
};
pub use compile::{
    compile_plan, execute_compiled_cancellable, execute_plan_compiled,
    execute_plan_compiled_cancellable, run_compiled_batch, run_compiled_msg_batch, CompileOutcome,
    CompiledPlan, Ineligibility,
};
pub use interp::{
    execute_plan, execute_plan_cancellable, execute_plan_reference, run_msg_batch,
    run_shared_batch, IrBspProgram, IrProgram, PlanRun,
};
pub use plan::{
    apply_update, CombineOp, CompStep, Guard, InitRule, ModelKind, MsgStep, OutputDecl, PhasePlan,
    PlanBody, ProcPhase, SendSpec, SharedPhase, Update, ValueRule, WriteSpec,
};
pub use shape::{
    ceil_log, family_shape, shape_for_combinator, FamilyShape, FanRecipe, ShapePoint, Skeleton,
    FAMILY_SHAPES,
};

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::Word;

    fn qsm() -> ModelKind {
        ModelKind::Qsm { g: 4 }
    }

    #[test]
    fn combine_ops_match_reduce_semantics() {
        assert_eq!(CombineOp::Sum.fold(&[3, 4, 5]), 12);
        assert_eq!(CombineOp::Or.fold(&[0, 7, 0]), 1);
        assert_eq!(CombineOp::Or.fold(&[]), 0);
        assert_eq!(CombineOp::Xor.fold(&[1, 1, 1]), 1);
        assert_eq!(CombineOp::Xor.fold(&[3, 5]), 0); // low bits 1^1
        assert_eq!(CombineOp::Max.fold(&[-7, -3]), -3);
        assert_eq!(CombineOp::Max.identity(), Word::MIN);
    }

    #[test]
    fn apply_update_covers_all_rules() {
        let mut regs = vec![5];
        apply_update(Update::Keep, &mut regs, &[9]);
        assert_eq!(regs, vec![5]);
        apply_update(Update::Load, &mut regs, &[9, 8]);
        assert_eq!(regs, vec![9, 8]);
        apply_update(Update::Fold(CombineOp::Sum), &mut regs, &[1, 2, 3]);
        assert_eq!(regs, vec![6]);
        apply_update(Update::Accum(CombineOp::Sum), &mut regs, &[4]);
        assert_eq!(regs, vec![10]);
        // Accum on empty delivery is a no-op; on an empty file it seeds
        // the identity first.
        apply_update(Update::Accum(CombineOp::Sum), &mut regs, &[]);
        assert_eq!(regs, vec![10]);
        let mut empty = Vec::new();
        apply_update(Update::Accum(CombineOp::Sum), &mut empty, &[7]);
        assert_eq!(empty, vec![7]);
    }

    #[test]
    fn validate_accepts_every_combinator() {
        for n in [1, 2, 3, 7, 16, 33] {
            fan_in_write_tree(n, 2, qsm()).validate().unwrap();
            fan_in_read_tree(n, 3, CombineOp::Xor, ModelKind::SQsm { g: 2 })
                .validate()
                .unwrap();
            broadcast(n, 4, qsm()).validate().unwrap();
            prefix_sweep(n, 2, CombineOp::Sum, qsm())
                .validate()
                .unwrap();
        }
        for p in [1, 2, 5, 8] {
            bsp_fan_in_reduce(p, 2, CombineOp::Sum, 4, 16)
                .validate()
                .unwrap();
            bsp_prefix_scan(p, 3, CombineOp::Sum, 4, 16)
                .validate()
                .unwrap();
        }
        let sources = [2, 0, 1];
        let dests = [3, 4, 5];
        scatter_gather(&sources, &dests, qsm()).validate().unwrap();
        dart_round(&[(0, ValueRule::Const(1)), (1, ValueRule::Const(2))], qsm())
            .validate()
            .unwrap();
    }

    #[test]
    fn validate_rejects_model_body_mismatch() {
        let mut plan = fan_in_write_tree(4, 2, qsm());
        plan.model = ModelKind::Bsp { p: 4, g: 1, l: 1 };
        assert!(plan.validate().is_err());
        let mut bsp = bsp_fan_in_reduce(4, 2, CombineOp::Sum, 4, 16);
        bsp.model = qsm();
        assert!(bsp.validate().is_err());
    }

    #[test]
    fn validate_rejects_requests_after_finish() {
        let mut plan = dart_round(&[(0, ValueRule::Const(1))], qsm());
        if let PlanBody::Shared(phases) = &mut plan.body {
            let mut extra = SharedPhase::new("ghost");
            extra.procs.push(ProcPhase::idle(0));
            extra.finish.push(0); // double finish
            phases.push(extra);
        }
        assert!(plan.validate().is_err());
    }

    #[test]
    fn validate_requires_every_proc_to_finish() {
        let mut plan = dart_round(&[(0, ValueRule::Const(1)), (1, ValueRule::Const(2))], qsm());
        if let PlanBody::Shared(phases) = &mut plan.body {
            phases[0].finish.retain(|&pid| pid != 1);
        }
        assert!(plan.validate().is_err());
    }

    #[test]
    fn or_write_tree_plan_computes_or() {
        let plan = fan_in_write_tree(13, 3, qsm());
        let mut bits = vec![0 as Word; 13];
        assert_eq!(execute_plan(&plan, &bits).unwrap().output, vec![0]);
        bits[11] = 1;
        assert_eq!(execute_plan(&plan, &bits).unwrap().output, vec![1]);
    }

    #[test]
    fn read_tree_plan_reduces() {
        for n in [1usize, 2, 9, 14] {
            let input: Vec<Word> = (0..n as Word).map(|x| x % 2).collect();
            let plan = fan_in_read_tree(n, 2, CombineOp::Xor, ModelKind::SQsm { g: 3 });
            let want = CombineOp::Xor.fold(&input);
            assert_eq!(execute_plan(&plan, &input).unwrap().output, vec![want]);
        }
    }

    #[test]
    fn broadcast_plan_replicates_cell_zero() {
        for n in [1usize, 2, 6, 17] {
            let plan = broadcast(n, 3, qsm());
            let run = execute_plan(&plan, &[42]).unwrap();
            assert_eq!(run.output, vec![42; n]);
        }
    }

    #[test]
    fn prefix_sweep_plan_matches_serial_scan() {
        for (n, k) in [(1usize, 2usize), (4, 2), (9, 3), (13, 2), (16, 4), (31, 5)] {
            let input: Vec<Word> = (0..n as Word).map(|x| 3 * x + 1).collect();
            let plan = prefix_sweep(n, k, CombineOp::Sum, qsm());
            let run = execute_plan(&plan, &input).unwrap();
            let want: Vec<Word> = input
                .iter()
                .scan(0, |acc, &x| {
                    *acc += x;
                    Some(*acc)
                })
                .collect();
            assert_eq!(run.output, want, "n={n} k={k}");
        }
    }

    #[test]
    fn prefix_sweep_plan_handles_max_and_or() {
        let input: Vec<Word> = vec![2, -5, 9, 1, 9, 0, 11];
        let plan = prefix_sweep(input.len(), 3, CombineOp::Max, qsm());
        let run = execute_plan(&plan, &input).unwrap();
        assert_eq!(run.output, vec![2, 2, 9, 9, 9, 9, 11]);
    }

    #[test]
    fn scatter_gather_plan_permutes() {
        let sources = [2usize, 0, 1];
        let dests = [3usize, 4, 5];
        let plan = scatter_gather(&sources, &dests, qsm());
        let run = execute_plan(&plan, &[10, 20, 30]).unwrap();
        assert_eq!(run.output, vec![30, 10, 20]);
    }

    #[test]
    fn bsp_reduce_plan_folds_partitions() {
        for p in [1usize, 2, 4, 7] {
            let input: Vec<Word> = (0..19).collect();
            let plan = bsp_fan_in_reduce(p, 2, CombineOp::Sum, 4, 16);
            let run = execute_plan(&plan, &input).unwrap();
            assert_eq!(run.output[0], input.iter().sum::<Word>());
        }
    }

    #[test]
    fn bsp_prefix_scan_plan_scans_partitions() {
        let p = 5;
        let input: Vec<Word> = (1..=10).collect();
        let plan = bsp_prefix_scan(p, 2, CombineOp::Sum, 4, 16);
        let run = execute_plan(&plan, &input).unwrap();
        // Partitions of 10 over 5 components: 2 each; prefix of partition sums.
        assert_eq!(run.output, vec![3, 10, 21, 36, 55]);
    }

    #[test]
    fn gsm_plans_are_analyze_only() {
        let mut plan = dart_round(&[(5, ValueRule::Const(1))], qsm());
        plan.model = ModelKind::Gsm {
            alpha: 4,
            beta: 4,
            gamma: 16,
        };
        assert!(execute_plan(&plan, &[]).is_err());
    }
}
