//! Plan compilation: lowering an analyzed [`PhasePlan`] into a flat,
//! straight-line execution schedule.
//!
//! The batch interpreter ([`crate::interp::run_shared_batch`]) still walks
//! plan nodes generically every phase: it re-derives request tables,
//! re-counts contention, and re-arbitrates writes that static analysis
//! already proved race-free at plan time. [`compile_plan`] does that work
//! *once*, producing a [`CompiledPlan`] — per-phase dense tables of
//! pre-resolved source/target addresses with contention counts and ledger
//! rows baked in — and [`run_compiled_batch`] replays it as memcpy-shaped
//! gather/scatter/fold loops over contiguous slices: no per-processor
//! dispatch, no hash routing, no runtime arbitration, no conflict checks.
//!
//! Eligibility is decided conservatively under the saturating-schedule
//! convention (every guard fires):
//!
//! * shared-memory plans: no phase may read and write the same cell, and
//!   every cell with more than one saturating writer must receive one
//!   common constant (the analyzer's common-write certificate) — then the
//!   conflict check and the arbitration RNG are provably unobservable;
//! * BSP plans: no superstep may carry two messages with the same
//!   `(source, tag)` key to one destination — then the `(src, tag)` inbox
//!   sort has a unique answer and slots can be assigned at compile time;
//! * GSM plans are analyze-only and never compile.
//!
//! Ineligible plans are *reported*, not rejected: [`compile_plan`] returns
//! [`CompileOutcome::Ineligible`] naming the exact node and reason (the
//! `compile-ineligible` analyzer lint surfaces it), and the convenience
//! entry points fall back to the checked interpreter. Configurations the
//! compiled loop does not replicate at run time — fault plans, trace
//! recording, memory-limit edge cases — also fall back, so the observable
//! behaviour (outputs, ledgers, errors, arbitration) is bit-identical to
//! [`crate::interp::execute_plan`] in every configuration; the
//! differential suite in `tests/compiled_equiv.rs` enforces this.
//!
//! With [`parbounds_models::ExecOptions::parallelism`] above one worker,
//! the compiled executor shards phases two ways: the compute/gather stage
//! by contiguous pid ranges (as in the interpreter's parallel path) and
//! the apply/scatter stage by the disjoint address-range partition the
//! compiler emits ([`CompiledPlan::num_chunks`]). Both stages run on a
//! work-stealing pool ([`parbounds_models::par::with_steal_pool`]) so
//! skewed shards rebalance, and stay bit-identical at every thread count:
//! writes land at compiler-assigned slots and all cross-shard reads happen
//! between barriers, so no interleaving is observable.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::RwLock;

use crate::interp::{
    execute_plan_cancellable, run_msg_batch, run_shared_batch, shared_machine, PlanRun,
};
use crate::plan::{
    apply_update, Guard, InitRule, ModelKind, OutputDecl, PhasePlan, PlanBody, Update, ValueRule,
};
use parbounds_models::par::{shard_ranges, with_steal_pool};
use parbounds_models::{
    Addr, BspMachine, CancelToken, CostLedger, ModelError, PhaseCost, QsmFlavor, QsmMachine,
    Result, Word,
};

/// The result of [`compile_plan`]: either a compiled schedule or a precise
/// explanation of why the plan must stay on the checked interpreter.
#[derive(Debug, Clone)]
pub enum CompileOutcome {
    /// The plan lowered to a straight-line schedule.
    Compiled(CompiledPlan),
    /// The plan cannot take the compiled fast path; the payload names the
    /// first offending node.
    Ineligible(Ineligibility),
}

/// Why a plan cannot take the compiled fast path, pinned to the first
/// offending node. Feeds the `compile-ineligible` analyzer lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ineligibility {
    /// Phase / superstep index of the offending node, if any.
    pub phase: Option<usize>,
    /// Processor id of the offending node, if any.
    pub pid: Option<usize>,
    /// Shared-memory cell of the offending node, if any.
    pub addr: Option<Addr>,
    /// Human-readable description of the node itself.
    pub node: String,
    /// Why that node blocks compilation.
    pub reason: String,
}

impl Ineligibility {
    /// One-line `node: reason` rendering for lint messages and CLI output.
    pub fn describe(&self) -> String {
        format!("{}: {}", self.node, self.reason)
    }
}

/// Value source of one compiled store slot.
#[derive(Debug, Clone, Copy)]
enum StoreSrc {
    /// Known at compile time (constant rules, and every certified
    /// common-write cell).
    Const(Word),
    /// Evaluated against the named processor's registers at run time.
    Proc(usize, ValueRule),
}

/// One pre-resolved write: destination cell, its (chunk, offset) address
/// in the sharded-apply partition, and the value source.
#[derive(Debug, Clone, Copy)]
struct StoreSlot {
    addr: Addr,
    chunk: usize,
    off: usize,
    src: StoreSrc,
}

/// One pre-resolved delivered read: the receiving pid and the source cell
/// (with its chunk/offset). Reads whose receiver retires this phase are
/// compiled out (their contention is already in the baked ledger row).
#[derive(Debug, Clone, Copy)]
struct GatherSlot {
    pid: usize,
    addr: Addr,
    chunk: usize,
    off: usize,
}

/// The pre-counted ledger row of a fully static phase: `m_rw` is kept raw
/// (the cost formula sees the unfloored value; the ledger floors at 1) and
/// both contention flavors are precomputed so the executor just selects by
/// machine flavor.
#[derive(Debug, Clone, Copy)]
struct StaticCost {
    m_op: u64,
    m_rw: u64,
    kappa_std: u64,
    kappa_unit: u64,
}

/// A phase in which every guard is [`Guard::Always`]: the request set, the
/// contention counts, and the entire ledger row are compile-time facts.
#[derive(Debug, Clone)]
struct StaticPhase {
    /// `(pid, update)` in pid order, [`Update::Keep`] entries elided.
    updates: Vec<(usize, Update)>,
    /// Delivered reads in pid order (entry read order preserved per pid).
    gathers: Vec<GatherSlot>,
    /// Commits in ascending address order, one slot per cell.
    stores: Vec<StoreSlot>,
    /// `stores[store_chunks[c]]` = the slots landing in address chunk `c`.
    store_chunks: Vec<Range<usize>>,
    cost: StaticCost,
}

/// One compiled read of a guarded entry: `slot` indexes the phase's dense
/// read-contention counters, `deliver` is the compile-time liveness fact
/// `finish[pid] > t`.
#[derive(Debug, Clone, Copy)]
struct GuardedRead {
    slot: usize,
    addr: Addr,
    chunk: usize,
    off: usize,
    deliver: bool,
}

/// One entry of a guarded phase, pre-resolved: reads carry dense counter
/// slots, writes carry dense write-slot ids.
#[derive(Debug, Clone)]
struct GuardedEntry {
    pid: usize,
    update: Update,
    guard: Guard,
    local_ops: u64,
    reads: Vec<GuardedRead>,
    writes: Vec<(usize, ValueRule)>,
}

/// A distinct cell written (under saturation) in a guarded phase.
#[derive(Debug, Clone, Copy)]
struct WriteSlot {
    addr: Addr,
    chunk: usize,
    off: usize,
}

/// A phase with data-dependent guards (the OR write tree): the request
/// set is decided at run time, but addresses, counter slots, and delivery
/// targets are still pre-resolved, and eligibility already proved the
/// phase free of conflicts and of observable arbitration.
#[derive(Debug, Clone)]
struct GuardedPhase {
    /// All entries in pid order.
    entries: Vec<GuardedEntry>,
    /// Number of distinct saturating read cells (dense counter width).
    read_slots: usize,
    /// Distinct saturating write cells in ascending address order.
    write_slots: Vec<WriteSlot>,
    /// `write_slots[w_chunks[c]]` = the slots landing in address chunk `c`.
    w_chunks: Vec<Range<usize>>,
}

#[derive(Debug, Clone)]
enum CompiledPhase {
    Static(StaticPhase),
    Guarded(GuardedPhase),
}

/// A compiled shared-memory plan: the flat phase schedule plus the memory
/// extent and the address-range partition for the sharded apply stage.
#[derive(Debug, Clone)]
struct CompiledShared {
    procs: usize,
    base: Addr,
    len: usize,
    /// Arena size hint: one word per cell any request or the output can
    /// touch. The executor allocates exactly this, once.
    planned_cells: usize,
    /// Largest cell any (saturating) write targets; runs whose machine
    /// memory limit is at or below it fall back to the checked
    /// interpreter, which owns the limit-error behaviour.
    max_write_addr: Option<Addr>,
    /// The compiler-emitted disjoint address partition the parallel apply
    /// stage shards by.
    chunk_ranges: Vec<Range<Addr>>,
    phases: Vec<CompiledPhase>,
}

/// One compiled BSP component step: the register update plus sends with
/// compile-time arena slots (the `(src, tag)` inbox sort is baked into the
/// slot assignment).
#[derive(Debug, Clone)]
struct CompiledComp {
    pid: usize,
    update: Update,
    sends: Vec<(usize, ValueRule)>,
}

/// One compiled superstep: components in pid order, each pid's slice of
/// the current inbox arena, the next arena's size, and the pre-counted
/// `(w, h)` ledger row.
#[derive(Debug, Clone)]
struct CompiledStep {
    comps: Vec<CompiledComp>,
    inbox_ranges: Vec<(usize, usize)>,
    next_len: usize,
    w: u64,
    h: u64,
}

/// A compiled message-passing plan.
#[derive(Debug, Clone)]
struct CompiledMsg {
    procs: usize,
    init: InitRule,
    steps: Vec<CompiledStep>,
    /// Arena size hint: the largest inbox arena any superstep needs.
    max_arena: usize,
}

#[derive(Debug, Clone)]
enum CompiledKind {
    Shared(CompiledShared),
    Msg(CompiledMsg),
}

/// A plan lowered to a straight-line schedule by [`compile_plan`]: dense
/// per-phase request tables with contention counts and arena size hints
/// baked in. Run it with [`run_compiled_batch`] /
/// [`run_compiled_msg_batch`], or [`execute_compiled_cancellable`] to
/// dispatch on the plan's model. A `CompiledPlan` is only meaningful
/// against the exact plan it was compiled from.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    kind: CompiledKind,
}

impl CompiledPlan {
    /// True for shared-memory schedules, false for BSP.
    pub fn is_shared(&self) -> bool {
        matches!(self.kind, CompiledKind::Shared(_))
    }

    /// Number of phases (shared) or supersteps (BSP).
    pub fn num_phases(&self) -> usize {
        match &self.kind {
            CompiledKind::Shared(cs) => cs.phases.len(),
            CompiledKind::Msg(cm) => cm.steps.len(),
        }
    }

    /// Arena size hint: cells the shared executor allocates, or the
    /// largest inbox arena a BSP superstep needs.
    pub fn arena_cells(&self) -> usize {
        match &self.kind {
            CompiledKind::Shared(cs) => cs.planned_cells,
            CompiledKind::Msg(cm) => cm.max_arena,
        }
    }

    /// Width of the compiler-emitted address partition the parallel apply
    /// stage shards by (1 for BSP schedules, which run sequentially).
    pub fn num_chunks(&self) -> usize {
        match &self.kind {
            CompiledKind::Shared(cs) => cs.chunk_ranges.len(),
            CompiledKind::Msg(_) => 1,
        }
    }
}

/// Width of the compiler-emitted address partition: enough chunks that
/// the parallel apply stage can shard and steal, few enough that a task's
/// "lock every chunk for reading" prologue stays trivial.
const APPLY_CHUNKS: usize = 16;

/// Compiles `plan` into a straight-line schedule, or explains why it must
/// stay on the checked interpreter. `Err` is reserved for invalid plans
/// (the same validation failures every run path reports); a *valid* plan
/// always yields `Ok` with one of the two outcomes.
pub fn compile_plan(plan: &PhasePlan) -> Result<CompileOutcome> {
    plan.validate()?;
    match &plan.body {
        PlanBody::Shared(_) => compile_shared(plan),
        PlanBody::Msg { .. } => compile_msg(plan),
    }
}

fn chunk_of(chunk_ranges: &[Range<Addr>], addr: Addr) -> (usize, usize) {
    let c = chunk_ranges.partition_point(|r| r.end <= addr);
    debug_assert!(chunk_ranges[c].contains(&addr));
    (c, addr - chunk_ranges[c].start)
}

/// Read multiplicity per address under the saturating schedule.
type ReadMap = BTreeMap<Addr, u64>;
/// Saturating writers per address: `(pid, value rule)` in arrival order.
type WriteMap = BTreeMap<Addr, Vec<(usize, ValueRule)>>;

/// Per-phase saturating request maps: read multiplicities and write
/// groups, both in address order.
fn phase_maps(phase: &crate::plan::SharedPhase) -> (ReadMap, WriteMap) {
    let mut reads: BTreeMap<Addr, u64> = BTreeMap::new();
    let mut writes: BTreeMap<Addr, Vec<(usize, ValueRule)>> = BTreeMap::new();
    for entry in &phase.procs {
        for &addr in &entry.reads {
            *reads.entry(addr).or_insert(0) += 1;
        }
        for w in &entry.writes {
            writes.entry(w.addr).or_default().push((entry.pid, w.value));
        }
    }
    (reads, writes)
}

/// Shared-memory eligibility for one phase: no read/write overlap, and
/// every multi-writer cell a certified common write. Returns the first
/// offending node.
fn check_shared_phase(
    t: usize,
    label: &str,
    reads: &ReadMap,
    writes: &WriteMap,
) -> Option<Ineligibility> {
    for (&addr, group) in writes {
        if reads.contains_key(&addr) {
            return Some(Ineligibility {
                phase: Some(t),
                pid: None,
                addr: Some(addr),
                node: format!("phase {t} '{label}', cell {addr}"),
                reason: "cell is read and written in the same phase; the compiled path \
                         elides the conflict check"
                    .into(),
            });
        }
        if group.len() > 1 {
            let mut common: Option<Word> = None;
            for &(pid, rule) in group {
                let ValueRule::Const(v) = rule else {
                    return Some(Ineligibility {
                        phase: Some(t),
                        pid: Some(pid),
                        addr: Some(addr),
                        node: format!("phase {t} '{label}', cell {addr} (pid {pid})"),
                        reason: format!(
                            "{} concurrent writers with a non-constant value rule need \
                             runtime arbitration",
                            group.len()
                        ),
                    });
                };
                match common {
                    None => common = Some(v),
                    Some(c) if c == v => {}
                    Some(c) => {
                        return Some(Ineligibility {
                            phase: Some(t),
                            pid: Some(pid),
                            addr: Some(addr),
                            node: format!("phase {t} '{label}', cell {addr} (pid {pid})"),
                            reason: format!(
                                "{} concurrent writers race with differing constants \
                                 ({c} vs {v}); arbitration is observable",
                                group.len()
                            ),
                        });
                    }
                }
            }
        }
    }
    None
}

fn compile_shared(plan: &PhasePlan) -> Result<CompileOutcome> {
    let PlanBody::Shared(phases) = &plan.body else {
        unreachable!("compile_shared dispatches shared bodies only");
    };
    if !matches!(
        plan.model,
        ModelKind::Qsm { .. } | ModelKind::SQsm { .. } | ModelKind::QsmUnitCr { .. }
    ) {
        return Ok(CompileOutcome::Ineligible(Ineligibility {
            phase: None,
            pid: None,
            addr: None,
            node: format!("plan '{}' (model {})", plan.family, plan.model.name()),
            reason: "GSM plans are analyze-only; there is no compiled executor".into(),
        }));
    }
    let OutputDecl::Region { base, len } = plan.output else {
        unreachable!("validate() ties shared plans to Region outputs");
    };
    let finish = plan.finish_phases()?;

    // Pass 1: eligibility and memory extent.
    let mut max_addr: Option<Addr> = None;
    let mut max_write_addr: Option<Addr> = None;
    for (t, phase) in phases.iter().enumerate() {
        let (reads, writes) = phase_maps(phase);
        if let Some(ineligible) = check_shared_phase(t, &phase.label, &reads, &writes) {
            return Ok(CompileOutcome::Ineligible(ineligible));
        }
        if let Some((&a, _)) = reads.last_key_value() {
            max_addr = Some(max_addr.map_or(a, |m| m.max(a)));
        }
        if let Some((&a, _)) = writes.last_key_value() {
            max_addr = Some(max_addr.map_or(a, |m| m.max(a)));
            max_write_addr = Some(max_write_addr.map_or(a, |m| m.max(a)));
        }
    }
    let planned_cells = max_addr.map(|a| a + 1).unwrap_or(0).max(base + len).max(1);
    let chunk_ranges = shard_ranges(planned_cells, APPLY_CHUNKS.min(planned_cells));

    // Pass 2: lower each phase.
    let mut compiled = Vec::with_capacity(phases.len());
    for (t, phase) in phases.iter().enumerate() {
        let (reads, writes) = phase_maps(phase);
        let mut order: Vec<usize> = (0..phase.procs.len()).collect();
        order.sort_unstable_by_key(|&i| phase.procs[i].pid);
        let is_static = phase.procs.iter().all(|e| matches!(e.guard, Guard::Always));
        if is_static {
            compiled.push(CompiledPhase::Static(lower_static_phase(
                phase,
                &order,
                &reads,
                &writes,
                &finish,
                t,
                &chunk_ranges,
            )));
        } else {
            compiled.push(CompiledPhase::Guarded(lower_guarded_phase(
                phase,
                &order,
                &reads,
                &writes,
                &finish,
                t,
                &chunk_ranges,
            )));
        }
    }

    Ok(CompileOutcome::Compiled(CompiledPlan {
        kind: CompiledKind::Shared(CompiledShared {
            procs: plan.procs,
            base,
            len,
            planned_cells,
            max_write_addr,
            chunk_ranges,
            phases: compiled,
        }),
    }))
}

#[allow(clippy::too_many_arguments)]
fn lower_static_phase(
    phase: &crate::plan::SharedPhase,
    order: &[usize],
    reads: &BTreeMap<Addr, u64>,
    writes: &BTreeMap<Addr, Vec<(usize, ValueRule)>>,
    finish: &[usize],
    t: usize,
    chunk_ranges: &[Range<Addr>],
) -> StaticPhase {
    let mut m_op: u64 = 0;
    let mut m_rw: u64 = 0;
    let mut any_access = false;
    let mut updates = Vec::new();
    let mut gathers = Vec::new();
    for &i in order {
        let entry = &phase.procs[i];
        let r_i = entry.reads.len() as u64;
        let w_i = entry.writes.len() as u64;
        m_op = m_op.max(entry.local_ops + r_i + w_i);
        m_rw = m_rw.max(r_i.max(w_i));
        any_access |= r_i + w_i > 0;
        if !matches!(entry.update, Update::Keep) {
            updates.push((entry.pid, entry.update));
        }
        // Reads whose receiver retires this phase cost contention (already
        // counted below) but deliver nothing: compiled out.
        if finish[entry.pid] > t {
            for &addr in &entry.reads {
                let (chunk, off) = chunk_of(chunk_ranges, addr);
                gathers.push(GatherSlot {
                    pid: entry.pid,
                    addr,
                    chunk,
                    off,
                });
            }
        }
    }
    let read_contention = reads.values().copied().max().unwrap_or(0);
    let write_contention = writes.values().map(|g| g.len() as u64).max().unwrap_or(0);
    let kappa_std = if any_access {
        read_contention.max(write_contention)
    } else {
        1
    };
    let mut stores = Vec::with_capacity(writes.len());
    for (&addr, group) in writes {
        let (chunk, off) = chunk_of(chunk_ranges, addr);
        let src = if group.len() > 1 {
            // Eligibility proved all writers share one constant.
            let ValueRule::Const(v) = group[0].1 else {
                unreachable!("eligibility pinned multi-writer cells to constants");
            };
            StoreSrc::Const(v)
        } else {
            let (pid, rule) = group[0];
            if rule.is_const() {
                StoreSrc::Const(rule.eval(&[]))
            } else {
                StoreSrc::Proc(pid, rule)
            }
        };
        stores.push(StoreSlot {
            addr,
            chunk,
            off,
            src,
        });
    }
    let store_chunks = split_by_chunk(stores.len(), |i| stores[i].chunk, chunk_ranges.len());
    StaticPhase {
        updates,
        gathers,
        stores,
        store_chunks,
        cost: StaticCost {
            m_op,
            m_rw,
            kappa_std,
            // The routing engines floor contention at 1 (an empty write
            // router still reports contention 1), so the unit-CR flavor
            // sees max(write contention, 1).
            kappa_unit: write_contention.max(1),
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn lower_guarded_phase(
    phase: &crate::plan::SharedPhase,
    order: &[usize],
    reads: &BTreeMap<Addr, u64>,
    writes: &BTreeMap<Addr, Vec<(usize, ValueRule)>>,
    finish: &[usize],
    t: usize,
    chunk_ranges: &[Range<Addr>],
) -> GuardedPhase {
    let read_slot_of: BTreeMap<Addr, usize> = reads
        .keys()
        .enumerate()
        .map(|(slot, &addr)| (addr, slot))
        .collect();
    let write_slot_of: BTreeMap<Addr, usize> = writes
        .keys()
        .enumerate()
        .map(|(slot, &addr)| (addr, slot))
        .collect();
    let write_slots: Vec<WriteSlot> = writes
        .keys()
        .map(|&addr| {
            let (chunk, off) = chunk_of(chunk_ranges, addr);
            WriteSlot { addr, chunk, off }
        })
        .collect();
    let entries = order
        .iter()
        .map(|&i| {
            let entry = &phase.procs[i];
            GuardedEntry {
                pid: entry.pid,
                update: entry.update,
                guard: entry.guard,
                local_ops: entry.local_ops,
                reads: entry
                    .reads
                    .iter()
                    .map(|&addr| {
                        let (chunk, off) = chunk_of(chunk_ranges, addr);
                        GuardedRead {
                            slot: read_slot_of[&addr],
                            addr,
                            chunk,
                            off,
                            deliver: finish[entry.pid] > t,
                        }
                    })
                    .collect(),
                writes: entry
                    .writes
                    .iter()
                    .map(|w| (write_slot_of[&w.addr], w.value))
                    .collect(),
            }
        })
        .collect();
    let w_chunks = split_by_chunk(
        write_slots.len(),
        |i| write_slots[i].chunk,
        chunk_ranges.len(),
    );
    GuardedPhase {
        entries,
        read_slots: read_slot_of.len(),
        write_slots,
        w_chunks,
    }
}

/// Partitions the index range `0..n` of a chunk-sorted slot list into one
/// contiguous range per address chunk (slots are built in ascending
/// address order, so equal-chunk runs are contiguous).
fn split_by_chunk(n: usize, chunk_at: impl Fn(usize) -> usize, chunks: usize) -> Vec<Range<usize>> {
    let mut out = Vec::with_capacity(chunks);
    let mut lo = 0usize;
    for c in 0..chunks {
        let mut hi = lo;
        while hi < n && chunk_at(hi) == c {
            hi += 1;
        }
        out.push(lo..hi);
        lo = hi;
    }
    debug_assert_eq!(lo, n);
    out
}

fn compile_msg(plan: &PhasePlan) -> Result<CompileOutcome> {
    let PlanBody::Msg { init, steps } = &plan.body else {
        unreachable!("compile_msg dispatches message bodies only");
    };
    let p = plan.procs;
    let finish = plan.finish_phases()?;
    let mut compiled_steps = Vec::with_capacity(steps.len());
    let mut max_arena = 0usize;
    // Inbox layout of the *current* superstep, produced by the previous
    // one: per-pid arena ranges and sizes.
    let mut cur_ranges: Vec<(usize, usize)> = vec![(0, 0); p];
    for (t, step) in steps.iter().enumerate() {
        let mut order: Vec<usize> = (0..step.comps.len()).collect();
        order.sort_unstable_by_key(|&i| step.comps[i].pid);

        // Flatten this step's sends and assign arena slots for the next
        // inbox: dest-major, then the machine's (src, tag) sort order.
        let mut flat: Vec<(usize, usize, Word, usize, usize)> = Vec::new();
        for (ci, comp) in step.comps.iter().enumerate() {
            for (si, send) in comp.sends.iter().enumerate() {
                flat.push((send.dest, comp.pid, send.tag, ci, si));
            }
        }
        flat.sort_unstable_by_key(|&(dest, src, tag, _, _)| (dest, src, tag));
        for pair in flat.windows(2) {
            let (d0, s0, tag0, ..) = pair[0];
            let (d1, s1, tag1, ..) = pair[1];
            if d0 == d1 && s0 == s1 && tag0 == tag1 {
                return Ok(CompileOutcome::Ineligible(Ineligibility {
                    phase: Some(t),
                    pid: Some(s0),
                    addr: None,
                    node: format!(
                        "superstep {t} '{}', message (src {s0}, tag {tag0}) to dest {d0}",
                        step.label
                    ),
                    reason: "duplicate (source, tag) key in one superstep leaves the inbox \
                             sort order unstable"
                        .into(),
                }));
            }
        }
        let mut slot_of: Vec<Vec<usize>> = step
            .comps
            .iter()
            .map(|c| vec![usize::MAX; c.sends.len()])
            .collect();
        let mut next_ranges: Vec<(usize, usize)> = vec![(0, 0); p];
        let mut received: Vec<u64> = vec![0; p];
        {
            let mut i = 0usize;
            while i < flat.len() {
                let dest = flat[i].0;
                let start = i;
                while i < flat.len() && flat[i].0 == dest {
                    let (_, _, _, ci, si) = flat[i];
                    slot_of[ci][si] = i;
                    i += 1;
                }
                next_ranges[dest] = (start, i);
                received[dest] = (i - start) as u64;
            }
        }

        // Pre-count the ledger row exactly as the interpreter would.
        let mut w: u64 = 0;
        let mut max_sent: u64 = 0;
        let mut cursor = 0usize;
        for pid in 0..p {
            if t > finish[pid] {
                continue;
            }
            let recv = (cur_ranges[pid].1 - cur_ranges[pid].0) as u64;
            let mut ops: u64 = 0;
            let mut sent: u64 = 0;
            while cursor < order.len() && step.comps[order[cursor]].pid < pid {
                cursor += 1;
            }
            if cursor < order.len() && step.comps[order[cursor]].pid == pid {
                let entry = &step.comps[order[cursor]];
                ops = entry.local_ops;
                sent = entry.sends.len() as u64;
            }
            w = w.max(ops + sent + recv);
            max_sent = max_sent.max(sent);
        }
        let h = max_sent.max(received.iter().copied().max().unwrap_or(0));

        let comps = order
            .iter()
            .map(|&ci| {
                let comp = &step.comps[ci];
                CompiledComp {
                    pid: comp.pid,
                    update: comp.update,
                    sends: comp
                        .sends
                        .iter()
                        .enumerate()
                        .map(|(si, send)| (slot_of[ci][si], send.value))
                        .collect(),
                }
            })
            .collect();
        max_arena = max_arena.max(flat.len());
        compiled_steps.push(CompiledStep {
            comps,
            inbox_ranges: cur_ranges.clone(),
            next_len: flat.len(),
            w,
            h,
        });
        cur_ranges = next_ranges;
    }
    Ok(CompileOutcome::Compiled(CompiledPlan {
        kind: CompiledKind::Msg(CompiledMsg {
            procs: p,
            init: *init,
            steps: compiled_steps,
            max_arena,
        }),
    }))
}

/// Runs a compiled shared-memory schedule on `machine`, bit-identical to
/// [`run_shared_batch`] on the plan it was compiled from. Configurations
/// the straight-line loop does not replicate — fault plans, trace
/// recording, memory limits the plan's footprint could trip — fall back
/// to the checked interpreter (which is why `plan` is passed alongside its
/// compiled form).
pub fn run_compiled_batch(
    plan: &PhasePlan,
    compiled: &CompiledPlan,
    machine: &QsmMachine,
    input: &[Word],
) -> Result<PlanRun> {
    let CompiledKind::Shared(cs) = &compiled.kind else {
        return Err(ModelError::BadConfig(format!(
            "plan '{}': run_compiled_batch runs shared-memory schedules",
            plan.family
        )));
    };
    if machine.fault_plan().is_some()
        || machine.options().record_trace
        || input.len() > machine.mem_limit()
        || cs.max_write_addr.is_some_and(|a| a >= machine.mem_limit())
    {
        return run_shared_batch(plan, machine, input);
    }
    let limit = machine.max_phases();
    if cs.phases.len() > limit {
        return Err(ModelError::PhaseLimitExceeded { limit });
    }
    let workers = machine.options().parallelism.workers(cs.procs);
    if workers > 1 {
        return run_compiled_shared_par(cs, machine, input, workers);
    }
    run_compiled_shared_seq(cs, machine, input)
}

fn ledger_row(
    machine: &QsmMachine,
    m_op: u64,
    m_rw: u64,
    kappa_std: u64,
    kappa_unit: u64,
) -> PhaseCost {
    let kappa = match machine.flavor() {
        QsmFlavor::QsmUnitConcurrentReads => kappa_unit,
        _ => kappa_std,
    };
    PhaseCost {
        m_op,
        m_rw: m_rw.max(1),
        kappa,
        cost: machine.phase_cost(m_op, m_rw, kappa),
    }
}

fn run_compiled_shared_seq(
    cs: &CompiledShared,
    machine: &QsmMachine,
    input: &[Word],
) -> Result<PlanRun> {
    let mut cells = vec![0 as Word; cs.planned_cells];
    let ncopy = input.len().min(cells.len());
    cells[..ncopy].copy_from_slice(&input[..ncopy]);
    let mut ledger = CostLedger::new();
    let mut regs: Vec<Vec<Word>> = vec![Vec::new(); cs.procs];
    let mut pending: Vec<Vec<Word>> = vec![Vec::new(); cs.procs];
    let mut delivered: Vec<usize> = Vec::new();
    // Guarded-phase scratch, reused across phases.
    let mut read_counts: Vec<u64> = Vec::new();
    let mut write_counts: Vec<u64> = Vec::new();
    let mut write_vals: Vec<Word> = Vec::new();
    let mut fired_reads: Vec<(usize, Addr, bool)> = Vec::new();

    for (t, phase) in cs.phases.iter().enumerate() {
        if let Some(token) = machine.cancel_token() {
            token.check(t)?;
        }
        match phase {
            CompiledPhase::Static(sp) => {
                for &(pid, update) in &sp.updates {
                    apply_update(update, &mut regs[pid], &pending[pid]);
                }
                for pid in delivered.drain(..) {
                    pending[pid].clear();
                }
                for g in &sp.gathers {
                    let v = cells[g.addr];
                    pending[g.pid].push(v);
                    delivered.push(g.pid);
                }
                for s in &sp.stores {
                    cells[s.addr] = match s.src {
                        StoreSrc::Const(v) => v,
                        StoreSrc::Proc(pid, rule) => rule.eval(&regs[pid]),
                    };
                }
                let c = sp.cost;
                ledger.push(ledger_row(
                    machine,
                    c.m_op,
                    c.m_rw,
                    c.kappa_std,
                    c.kappa_unit,
                ));
            }
            CompiledPhase::Guarded(gp) => {
                read_counts.clear();
                read_counts.resize(gp.read_slots, 0);
                write_counts.clear();
                write_counts.resize(gp.write_slots.len(), 0);
                write_vals.clear();
                write_vals.resize(gp.write_slots.len(), 0);
                fired_reads.clear();
                let mut m_op: u64 = 0;
                let mut m_rw: u64 = 0;
                let mut any_access = false;
                for e in &gp.entries {
                    apply_update(e.update, &mut regs[e.pid], &pending[e.pid]);
                    let fire = match e.guard {
                        Guard::Always => true,
                        Guard::NonZero => regs[e.pid].first().copied().unwrap_or(0) != 0,
                    };
                    if !fire {
                        continue;
                    }
                    let r_i = e.reads.len() as u64;
                    let w_i = e.writes.len() as u64;
                    m_op = m_op.max(e.local_ops + r_i + w_i);
                    m_rw = m_rw.max(r_i.max(w_i));
                    any_access |= r_i + w_i > 0;
                    for r in &e.reads {
                        read_counts[r.slot] += 1;
                        fired_reads.push((e.pid, r.addr, r.deliver));
                    }
                    for &(wslot, rule) in &e.writes {
                        write_counts[wslot] += 1;
                        write_vals[wslot] = rule.eval(&regs[e.pid]);
                    }
                }
                for pid in delivered.drain(..) {
                    pending[pid].clear();
                }
                for &(pid, addr, deliver) in &fired_reads {
                    let v = cells[addr];
                    if deliver {
                        pending[pid].push(v);
                        delivered.push(pid);
                    }
                }
                for (wslot, ws) in gp.write_slots.iter().enumerate() {
                    if write_counts[wslot] > 0 {
                        cells[ws.addr] = write_vals[wslot];
                    }
                }
                let read_c = read_counts.iter().copied().max().unwrap_or(0);
                let write_c = write_counts.iter().copied().max().unwrap_or(0);
                let kappa_std = if any_access { read_c.max(write_c) } else { 1 };
                ledger.push(ledger_row(machine, m_op, m_rw, kappa_std, write_c.max(1)));
            }
        }
    }

    Ok(PlanRun {
        ledger,
        output: cells[cs.base..cs.base + cs.len].to_vec(),
    })
}

/// One pid shard of the parallel compiled executor: the register files and
/// pending deliveries of a contiguous pid range, plus phase-local scratch
/// for guarded phases.
struct ParShard {
    base: usize,
    regs: Vec<Vec<Word>>,
    pending: Vec<Vec<Word>>,
    /// Local indices (pid - base) delivered to in the previous phase.
    delivered: Vec<usize>,
    m_op: u64,
    m_rw: u64,
    any_access: bool,
    /// Fired guarded reads `(slot, pid, chunk, off, deliver)`, entry order.
    g_reads: Vec<(usize, usize, usize, usize, bool)>,
    /// Fired guarded writes `(wslot, value)`, entry order.
    g_writes: Vec<(usize, Word)>,
}

/// One task of the parallel compiled executor's work-stealing rounds.
enum ParTask {
    /// Compute/gather stage of a static phase, for one pid shard.
    Gather(usize, usize),
    /// Apply/scatter stage of a static phase, for one address chunk.
    Apply(usize, usize),
    /// Compute stage of a guarded phase, for one pid shard.
    Guarded(usize, usize),
}

fn run_compiled_shared_par(
    cs: &CompiledShared,
    machine: &QsmMachine,
    input: &[Word],
    workers: usize,
) -> Result<PlanRun> {
    // Oversubscribe pid shards 2x so the stealing pool has slack to
    // rebalance skewed phases.
    let nshards = (workers * 2).clamp(1, cs.procs.max(1));
    let ranges = shard_ranges(cs.procs, nshards);
    let mut shard_of = vec![0usize; cs.procs];
    for (s, r) in ranges.iter().enumerate() {
        for pid in r.clone() {
            shard_of[pid] = s;
        }
    }
    let shard_of = &shard_of;

    let shards: Vec<RwLock<ParShard>> = ranges
        .iter()
        .map(|r| {
            RwLock::new(ParShard {
                base: r.start,
                regs: vec![Vec::new(); r.len()],
                pending: vec![Vec::new(); r.len()],
                delivered: Vec::new(),
                m_op: 0,
                m_rw: 0,
                any_access: false,
                g_reads: Vec::new(),
                g_writes: Vec::new(),
            })
        })
        .collect();
    let chunks: Vec<RwLock<Vec<Word>>> = cs
        .chunk_ranges
        .iter()
        .map(|r| {
            let mut cells = vec![0 as Word; r.len()];
            if r.start < input.len() {
                let hi = r.end.min(input.len());
                cells[..hi - r.start].copy_from_slice(&input[r.start..hi]);
            }
            RwLock::new(cells)
        })
        .collect();
    let shards = &shards;
    let chunks = &chunks;

    // Per-phase, per-shard sub-ranges of the pid-sorted tables.
    let sub_updates: Vec<Vec<Range<usize>>> = cs
        .phases
        .iter()
        .map(|phase| match phase {
            CompiledPhase::Static(sp) => pid_subranges(&sp.updates, |u| u.0, &ranges),
            CompiledPhase::Guarded(_) => Vec::new(),
        })
        .collect();
    let sub_gathers: Vec<Vec<Range<usize>>> = cs
        .phases
        .iter()
        .map(|phase| match phase {
            CompiledPhase::Static(sp) => pid_subranges(&sp.gathers, |g| g.pid, &ranges),
            CompiledPhase::Guarded(_) => Vec::new(),
        })
        .collect();
    let sub_entries: Vec<Vec<Range<usize>>> = cs
        .phases
        .iter()
        .map(|phase| match phase {
            CompiledPhase::Static(_) => Vec::new(),
            CompiledPhase::Guarded(gp) => pid_subranges(&gp.entries, |e| e.pid, &ranges),
        })
        .collect();
    let (sub_updates, sub_gathers, sub_entries) = (&sub_updates, &sub_gathers, &sub_entries);

    let lock_msg = "compiled executor lock poisoned";
    let work = move |_wk: usize, task: ParTask| match task {
        ParTask::Gather(t, s) => {
            let CompiledPhase::Static(sp) = &cs.phases[t] else {
                unreachable!("Gather tasks are issued for static phases");
            };
            let mut sh = shards[s].write().expect(lock_msg);
            let sh = &mut *sh;
            for &(pid, update) in &sp.updates[sub_updates[t][s].clone()] {
                let li = pid - sh.base;
                apply_update(update, &mut sh.regs[li], &sh.pending[li]);
            }
            for li in sh.delivered.drain(..) {
                sh.pending[li].clear();
            }
            let cell_guards: Vec<_> = chunks.iter().map(|c| c.read().expect(lock_msg)).collect();
            for g in &sp.gathers[sub_gathers[t][s].clone()] {
                let v = cell_guards[g.chunk][g.off];
                let li = g.pid - sh.base;
                sh.pending[li].push(v);
                sh.delivered.push(li);
            }
        }
        ParTask::Apply(t, c) => {
            let CompiledPhase::Static(sp) = &cs.phases[t] else {
                unreachable!("Apply tasks are issued for static phases");
            };
            let mut cells = chunks[c].write().expect(lock_msg);
            let shard_guards: Vec<_> = shards.iter().map(|s| s.read().expect(lock_msg)).collect();
            for slot in &sp.stores[sp.store_chunks[c].clone()] {
                cells[slot.off] = match slot.src {
                    StoreSrc::Const(v) => v,
                    StoreSrc::Proc(pid, rule) => {
                        let sg = &shard_guards[shard_of[pid]];
                        rule.eval(&sg.regs[pid - sg.base])
                    }
                };
            }
        }
        ParTask::Guarded(t, s) => {
            let CompiledPhase::Guarded(gp) = &cs.phases[t] else {
                unreachable!("Guarded tasks are issued for guarded phases");
            };
            let mut sh = shards[s].write().expect(lock_msg);
            let sh = &mut *sh;
            sh.m_op = 0;
            sh.m_rw = 0;
            sh.any_access = false;
            sh.g_reads.clear();
            sh.g_writes.clear();
            for e in &gp.entries[sub_entries[t][s].clone()] {
                let li = e.pid - sh.base;
                apply_update(e.update, &mut sh.regs[li], &sh.pending[li]);
                let fire = match e.guard {
                    Guard::Always => true,
                    Guard::NonZero => sh.regs[li].first().copied().unwrap_or(0) != 0,
                };
                if !fire {
                    continue;
                }
                let r_i = e.reads.len() as u64;
                let w_i = e.writes.len() as u64;
                sh.m_op = sh.m_op.max(e.local_ops + r_i + w_i);
                sh.m_rw = sh.m_rw.max(r_i.max(w_i));
                sh.any_access |= r_i + w_i > 0;
                for r in &e.reads {
                    sh.g_reads.push((r.slot, e.pid, r.chunk, r.off, r.deliver));
                }
                for &(wslot, rule) in &e.writes {
                    sh.g_writes.push((wslot, rule.eval(&sh.regs[li])));
                }
            }
            for li in sh.delivered.drain(..) {
                sh.pending[li].clear();
            }
        }
    };

    with_steal_pool(workers, work, move |pool| {
        let mut ledger = CostLedger::new();
        let mut read_counts: Vec<u64> = Vec::new();
        let mut write_counts: Vec<u64> = Vec::new();
        let mut write_vals: Vec<Word> = Vec::new();
        let mut fired_reads: Vec<(usize, usize, usize, bool)> = Vec::new();

        for (t, phase) in cs.phases.iter().enumerate() {
            if let Some(token) = machine.cancel_token() {
                token.check(t)?;
            }
            match phase {
                CompiledPhase::Static(sp) => {
                    pool.run_round((0..nshards).map(|s| ParTask::Gather(t, s)).collect());
                    let apply: Vec<ParTask> = (0..cs.chunk_ranges.len())
                        .filter(|&c| !sp.store_chunks[c].is_empty())
                        .map(|c| ParTask::Apply(t, c))
                        .collect();
                    if !apply.is_empty() {
                        pool.run_round(apply);
                    }
                    let c = sp.cost;
                    ledger.push(ledger_row(
                        machine,
                        c.m_op,
                        c.m_rw,
                        c.kappa_std,
                        c.kappa_unit,
                    ));
                }
                CompiledPhase::Guarded(gp) => {
                    pool.run_round((0..nshards).map(|s| ParTask::Guarded(t, s)).collect());
                    // Merge in shard (= pid) order; the result is identical
                    // to the sequential walk.
                    read_counts.clear();
                    read_counts.resize(gp.read_slots, 0);
                    write_counts.clear();
                    write_counts.resize(gp.write_slots.len(), 0);
                    write_vals.clear();
                    write_vals.resize(gp.write_slots.len(), 0);
                    fired_reads.clear();
                    let mut m_op: u64 = 0;
                    let mut m_rw: u64 = 0;
                    let mut any_access = false;
                    for shard in shards {
                        let sh = shard.read().expect(lock_msg);
                        m_op = m_op.max(sh.m_op);
                        m_rw = m_rw.max(sh.m_rw);
                        any_access |= sh.any_access;
                        for &(slot, pid, chunk, off, deliver) in &sh.g_reads {
                            read_counts[slot] += 1;
                            fired_reads.push((pid, chunk, off, deliver));
                        }
                        for &(wslot, v) in &sh.g_writes {
                            write_counts[wslot] += 1;
                            write_vals[wslot] = v;
                        }
                    }
                    {
                        let cell_guards: Vec<_> =
                            chunks.iter().map(|c| c.read().expect(lock_msg)).collect();
                        for &(pid, chunk, off, deliver) in &fired_reads {
                            let v = cell_guards[chunk][off];
                            if deliver {
                                drop_read_push(shards, shard_of, pid, v, lock_msg);
                            }
                        }
                    }
                    for (c, range) in gp.w_chunks.iter().enumerate() {
                        if range.is_empty() {
                            continue;
                        }
                        let mut cells = chunks[c].write().expect(lock_msg);
                        for wslot in range.clone() {
                            if write_counts[wslot] > 0 {
                                cells[gp.write_slots[wslot].off] = write_vals[wslot];
                            }
                        }
                    }
                    let read_c = read_counts.iter().copied().max().unwrap_or(0);
                    let write_c = write_counts.iter().copied().max().unwrap_or(0);
                    let kappa_std = if any_access { read_c.max(write_c) } else { 1 };
                    ledger.push(ledger_row(machine, m_op, m_rw, kappa_std, write_c.max(1)));
                }
            }
        }

        let mut output = Vec::with_capacity(cs.len);
        for (c, range) in cs.chunk_ranges.iter().enumerate() {
            if range.end <= cs.base || range.start >= cs.base + cs.len {
                continue;
            }
            let cells = chunks[c].read().expect(lock_msg);
            let lo = cs.base.max(range.start);
            let hi = (cs.base + cs.len).min(range.end);
            output.extend_from_slice(&cells[lo - range.start..hi - range.start]);
        }
        Ok(PlanRun { ledger, output })
    })
}

/// Pushes a delivered value into `pid`'s pending buffer (write-locking its
/// owning shard between rounds, when no task holds any lock).
fn drop_read_push(
    shards: &[RwLock<ParShard>],
    shard_of: &[usize],
    pid: usize,
    v: Word,
    lock_msg: &str,
) {
    let mut sh = shards[shard_of[pid]].write().expect(lock_msg);
    let li = pid - sh.base;
    sh.pending[li].push(v);
    sh.delivered.push(li);
}

/// Per-shard sub-ranges of a pid-sorted table (entries are pid-sorted, so
/// each shard owns a contiguous run).
fn pid_subranges<T>(
    table: &[T],
    pid_of: impl Fn(&T) -> usize,
    ranges: &[Range<usize>],
) -> Vec<Range<usize>> {
    ranges
        .iter()
        .map(|r| {
            let lo = table.partition_point(|x| pid_of(x) < r.start);
            let hi = table.partition_point(|x| pid_of(x) < r.end);
            lo..hi
        })
        .collect()
}

/// Runs a compiled BSP schedule on `machine`, bit-identical to
/// [`run_msg_batch`] on the plan it was compiled from. Fault plans, trace
/// recording, and machine-width mismatches fall back to the checked
/// interpreter. BSP schedules run sequentially (as does the interpreter's
/// superstep loop), so every thread setting is trivially identical.
pub fn run_compiled_msg_batch(
    plan: &PhasePlan,
    compiled: &CompiledPlan,
    machine: &BspMachine,
    input: &[Word],
) -> Result<PlanRun> {
    let CompiledKind::Msg(cm) = &compiled.kind else {
        return Err(ModelError::BadConfig(format!(
            "plan '{}': run_compiled_msg_batch runs message-passing schedules",
            plan.family
        )));
    };
    if machine.fault_plan().is_some() || machine.options().record_trace || machine.p() != cm.procs {
        return run_msg_batch(plan, machine, input);
    }
    let limit = machine.max_steps();
    if cm.steps.len() > limit {
        return Err(ModelError::PhaseLimitExceeded { limit });
    }

    let mut regs: Vec<Vec<Word>> = machine
        .partition(input)
        .iter()
        .map(|local| {
            vec![match cm.init {
                InitRule::Const(v) => v,
                InitRule::FoldLocal(op) => op.fold(local),
            }]
        })
        .collect();
    let mut ledger = CostLedger::new();
    let mut cur: Vec<Word> = Vec::new();
    let mut next: Vec<Word> = Vec::with_capacity(cm.max_arena);
    for (t, step) in cm.steps.iter().enumerate() {
        if let Some(token) = machine.cancel_token() {
            token.check(t)?;
        }
        next.clear();
        next.resize(step.next_len, 0);
        for comp in &step.comps {
            let (lo, hi) = step.inbox_ranges[comp.pid];
            apply_update(comp.update, &mut regs[comp.pid], &cur[lo..hi]);
            for &(slot, rule) in &comp.sends {
                next[slot] = rule.eval(&regs[comp.pid]);
            }
        }
        ledger.push(PhaseCost {
            m_op: step.w,
            m_rw: step.h.max(1),
            kappa: 1,
            cost: machine.superstep_cost(step.w, step.h),
        });
        std::mem::swap(&mut cur, &mut next);
    }

    Ok(PlanRun {
        ledger,
        output: regs
            .iter()
            .map(|r| r.first().copied().unwrap_or(0))
            .collect(),
    })
}

/// Runs a compiled schedule on the machine its plan's [`ModelKind`] names,
/// with a cooperative [`CancelToken`] checked at every phase boundary —
/// the compiled counterpart of [`execute_plan_cancellable`].
pub fn execute_compiled_cancellable(
    plan: &PhasePlan,
    compiled: &CompiledPlan,
    input: &[Word],
    cancel: &CancelToken,
) -> Result<PlanRun> {
    match plan.model {
        ModelKind::Qsm { .. } | ModelKind::SQsm { .. } | ModelKind::QsmUnitCr { .. } => {
            let machine = shared_machine(plan)
                .expect("matched shared flavors")
                .with_cancel(cancel.clone());
            run_compiled_batch(plan, compiled, &machine, input)
        }
        ModelKind::Bsp { p, g, l } => {
            let machine = BspMachine::new(p, g, l)?.with_cancel(cancel.clone());
            run_compiled_msg_batch(plan, compiled, &machine, input)
        }
        ModelKind::Gsm { .. } => Err(ModelError::BadConfig(format!(
            "plan '{}': GSM plans are analyze-only (no IR interpreter)",
            plan.family
        ))),
    }
}

/// Compile-and-run convenience: compiles `plan`, runs the schedule if
/// eligible, and transparently falls back to the checked interpreter
/// ([`crate::interp::execute_plan`]) otherwise. One-shot callers should
/// prefer this; callers running one plan many times should compile once
/// and call [`execute_compiled_cancellable`] per run.
pub fn execute_plan_compiled(plan: &PhasePlan, input: &[Word]) -> Result<PlanRun> {
    execute_plan_compiled_cancellable(plan, input, &CancelToken::new())
}

/// [`execute_plan_compiled`] with a cooperative [`CancelToken`].
pub fn execute_plan_compiled_cancellable(
    plan: &PhasePlan,
    input: &[Word],
    cancel: &CancelToken,
) -> Result<PlanRun> {
    match compile_plan(plan)? {
        CompileOutcome::Compiled(compiled) => {
            execute_compiled_cancellable(plan, &compiled, input, cancel)
        }
        CompileOutcome::Ineligible(_) => execute_plan_cancellable(plan, input, cancel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinators::{
        broadcast, bsp_fan_in_reduce, bsp_prefix_scan, dart_round, fan_in_read_tree,
        fan_in_write_tree, prefix_sweep, scatter_gather,
    };
    use crate::interp::execute_plan;
    use crate::plan::CombineOp;

    fn qsm() -> ModelKind {
        ModelKind::Qsm { g: 4 }
    }

    fn compile_ok(plan: &PhasePlan) -> CompiledPlan {
        match compile_plan(plan).unwrap() {
            CompileOutcome::Compiled(c) => c,
            CompileOutcome::Ineligible(why) => {
                panic!("plan '{}' ineligible: {}", plan.family, why.describe())
            }
        }
    }

    #[test]
    fn every_section8_combinator_compiles() {
        compile_ok(&fan_in_write_tree(13, 3, qsm()));
        compile_ok(&fan_in_read_tree(
            14,
            2,
            CombineOp::Xor,
            ModelKind::SQsm { g: 3 },
        ));
        compile_ok(&broadcast(17, 3, qsm()));
        compile_ok(&prefix_sweep(16, 4, CombineOp::Sum, qsm()));
        let sources = [2usize, 0, 1];
        let dests = [3usize, 4, 5];
        compile_ok(&scatter_gather(&sources, &dests, qsm()));
        compile_ok(&bsp_fan_in_reduce(5, 2, CombineOp::Sum, 4, 16));
        compile_ok(&bsp_prefix_scan(5, 2, CombineOp::Sum, 4, 16));
    }

    #[test]
    fn racy_darts_are_ineligible_with_located_reason() {
        let plan = dart_round(&[(0, ValueRule::Const(1)), (0, ValueRule::Const(2))], qsm());
        let CompileOutcome::Ineligible(why) = compile_plan(&plan).unwrap() else {
            panic!("racy darts must not compile");
        };
        assert_eq!(why.phase, Some(0));
        assert_eq!(why.addr, Some(0));
        assert!(
            why.describe().contains("differing constants"),
            "{}",
            why.describe()
        );
    }

    #[test]
    fn gsm_plans_are_ineligible() {
        let mut plan = dart_round(&[(5, ValueRule::Const(1))], qsm());
        plan.model = ModelKind::Gsm {
            alpha: 4,
            beta: 4,
            gamma: 16,
        };
        let CompileOutcome::Ineligible(why) = compile_plan(&plan).unwrap() else {
            panic!("GSM plans must not compile");
        };
        assert!(why.reason.contains("analyze-only"), "{}", why.reason);
    }

    #[test]
    fn compiled_matches_interpreted_on_shared_families() {
        for n in [1usize, 2, 9, 14, 33] {
            let input: Vec<Word> = (0..n as Word).map(|x| x % 2).collect();
            for plan in [
                fan_in_write_tree(n, 3, qsm()),
                fan_in_read_tree(n, 2, CombineOp::Xor, ModelKind::SQsm { g: 3 }),
                prefix_sweep(n, 2, CombineOp::Sum, ModelKind::QsmUnitCr { g: 2 }),
            ] {
                let want = execute_plan(&plan, &input).unwrap();
                let got = execute_plan_compiled(&plan, &input).unwrap();
                assert_eq!(got, want, "family {} n={n}", plan.family);
            }
        }
    }

    #[test]
    fn compiled_matches_interpreted_on_bsp_families() {
        for p in [1usize, 2, 4, 7] {
            let input: Vec<Word> = (0..19).collect();
            for plan in [
                bsp_fan_in_reduce(p, 2, CombineOp::Sum, 4, 16),
                bsp_prefix_scan(p, 3, CombineOp::Sum, 4, 16),
            ] {
                let want = execute_plan(&plan, &input).unwrap();
                let got = execute_plan_compiled(&plan, &input).unwrap();
                assert_eq!(got, want, "family {} p={p}", plan.family);
            }
        }
    }

    #[test]
    fn compiled_plan_reports_layout() {
        let compiled = compile_ok(&prefix_sweep(16, 4, CombineOp::Sum, qsm()));
        assert!(compiled.is_shared());
        assert!(compiled.num_phases() > 0);
        assert!(compiled.arena_cells() >= 16);
        assert!(compiled.num_chunks() >= 1 && compiled.num_chunks() <= APPLY_CHUNKS);
        let bsp = compile_ok(&bsp_fan_in_reduce(4, 2, CombineOp::Or, 4, 16));
        assert!(!bsp.is_shared());
        assert_eq!(bsp.num_chunks(), 1);
    }

    #[test]
    fn ineligible_plans_fall_back_transparently() {
        let plan = dart_round(&[(0, ValueRule::Const(1)), (0, ValueRule::Const(2))], qsm());
        let want = execute_plan(&plan, &[]).unwrap();
        let got = execute_plan_compiled(&plan, &[]).unwrap();
        assert_eq!(got, want);
    }
}
