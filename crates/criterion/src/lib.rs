//! Offline drop-in replacement for the subset of `criterion` this
//! workspace's benches use: `Criterion::benchmark_group`, per-group
//! `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_with_input` with [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology is simplified but honest: each benchmark is warmed up for
//! (a capped fraction of) the configured warm-up time, then timed for
//! `sample_size` samples whose batch size is calibrated so a sample takes
//! roughly `measurement_time / sample_size`. Median and min/max
//! per-iteration times are printed to stdout. There is no statistical
//! analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayable parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    batch: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.samples
            .push(start.elapsed() / self.batch.max(1) as u32);
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(50),
            measurement: Duration::from_millis(500),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Requested warm-up duration (capped at 250 ms in this shim).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d.min(Duration::from_millis(250));
        self
    }

    /// Requested measurement duration (capped at 2 s in this shim).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d.min(Duration::from_secs(2));
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        // Calibrate: time one iteration to pick a batch size.
        let t0 = Instant::now();
        let mut probe = Bencher {
            batch: 1,
            samples: Vec::new(),
        };
        f(&mut probe, input);
        let once = t0.elapsed().max(Duration::from_nanos(1));

        // Warm-up.
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            let mut b = Bencher {
                batch: 1,
                samples: Vec::new(),
            };
            f(&mut b, input);
        }

        let per_sample = self.measurement / self.sample_size.max(1) as u32;
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;
        let mut bencher = Bencher {
            batch,
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut bencher, input);
        }

        bencher.samples.sort();
        let median = bencher
            .samples
            .get(bencher.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        let lo = bencher.samples.first().copied().unwrap_or_default();
        let hi = bencher.samples.last().copied().unwrap_or_default();
        println!(
            "{}/{}: median {:?} (min {:?}, max {:?}, {} samples x {} iters)",
            self.name,
            id.id,
            median,
            lo,
            hi,
            bencher.samples.len(),
            batch
        );
        self
    }

    /// Benchmarks `f` with no input parameter.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &()),
    {
        self.bench_with_input(BenchmarkId::new(name.to_string(), "_"), &(), f)
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, trivial_bench);

    #[test]
    fn harness_runs_end_to_end() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("lac", 1024).id, "lac/1024");
    }
}
