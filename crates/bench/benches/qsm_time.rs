#![forbid(unsafe_code)]

//! Criterion bench for experiment T1.QSM (sub-table 1): host wall-clock of
//! the Section 8 QSM algorithms across the (n, g) sweep. The *model* costs
//! are printed by `--bin table_qsm`; this bench tracks simulator throughput
//! so regressions in the engine show up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parbounds::algo::{lac, or_tree, parity, workloads};
use parbounds::models::QsmMachine;
use std::time::Duration;

fn bench_qsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsm_time");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    for &n in &[1usize << 10, 1 << 12] {
        for &g in &[4u64, 16] {
            let machine = QsmMachine::qsm(g);
            let bits = workloads::random_bits(n, 1);
            let k = parity::parity_helper_default_k(&machine);
            group.bench_with_input(
                BenchmarkId::new("parity_helper", format!("n{n}_g{g}")),
                &(),
                |b, _| {
                    b.iter(|| {
                        parity::parity_pattern_helper(&machine, &bits, k)
                            .unwrap()
                            .value
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("or_write_tree", format!("n{n}_g{g}")),
                &(),
                |b, _| {
                    b.iter(|| {
                        or_tree::or_write_tree(&machine, &bits, g as usize)
                            .unwrap()
                            .value
                    })
                },
            );
            let items = workloads::sparse_items(n, n / 8, 2);
            group.bench_with_input(
                BenchmarkId::new("lac_dart", format!("n{n}_g{g}")),
                &(),
                |b, _| b.iter(|| lac::lac_dart(&machine, &items, n / 8, 3).unwrap().out_size),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_qsm);
criterion_main!(benches);
