#![forbid(unsafe_code)]

//! Ablation benches (DESIGN.md): fan-in sweeps for the OR tree and parity
//! helpers, the LAC dart-schedule ablation, and the BSP fan-in sweep —
//! the design choices whose crossovers the paper's sub-tables predict.
//! Model-time ablation numbers are asserted in the test suite; this bench
//! tracks host throughput of the same sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parbounds::algo::{bsp_algos, or_tree, parity, util::ReduceOp, workloads};
use parbounds::models::{BspMachine, QsmMachine};
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    let n = 1 << 12;
    let bits = workloads::random_bits(n, 1);

    // OR-tree fan-in sweep on QSM(16): k = g should be the sweet spot.
    let machine = QsmMachine::qsm(16);
    for &k in &[2usize, 4, 16, 32] {
        group.bench_with_input(BenchmarkId::new("or_fanin", k), &k, |b, &k| {
            b.iter(|| or_tree::or_write_tree(&machine, &bits, k).unwrap().value)
        });
    }

    // Parity helper group-size sweep.
    for &k in &[2usize, 3, 4, 6] {
        group.bench_with_input(BenchmarkId::new("parity_group", k), &k, |b, &k| {
            b.iter(|| {
                parity::parity_pattern_helper(&machine, &bits, k)
                    .unwrap()
                    .value
            })
        });
    }

    // BSP reduction fan-in sweep around L/g = 8.
    let bsp = BspMachine::new(64, 2, 16).unwrap();
    for &k in &[2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("bsp_fanin", k), &k, |b, &k| {
            b.iter(|| {
                bsp_algos::bsp_reduce(&bsp, &bits, k, ReduceOp::Xor)
                    .unwrap()
                    .value
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
