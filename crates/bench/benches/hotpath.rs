//! Criterion bench of the execution fast paths: dense vs reference engines
//! on the heaviest Section 8 workloads, at the largest standard size.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use parbounds::ir::{execute_plan, execute_plan_reference, fan_in_read_tree, CombineOp, ModelKind};
use parbounds::models::{QsmMachine, Routing, Word};
use parbounds::qsm_time_row_on;
use parbounds::tables::Problem;

const N: usize = 1 << 14;

fn bench_qsm_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_qsm");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    let dense = QsmMachine::qsm(8).with_routing(Routing::Dense);
    let reference = QsmMachine::qsm(8).with_reference_routing();
    group.bench_function("parity_dense", |b, _| {
        b.iter(|| qsm_time_row_on(&dense, Problem::Parity, N, 0xbe7c).unwrap())
    });
    group.bench_function("parity_reference", |b, _| {
        b.iter(|| qsm_time_row_on(&reference, Problem::Parity, N, 0xbe7c).unwrap())
    });
    group.bench_function("or_dense", |b, _| {
        b.iter(|| qsm_time_row_on(&dense, Problem::Or, N, 0xbe7c).unwrap())
    });
    group.bench_function("or_reference", |b, _| {
        b.iter(|| qsm_time_row_on(&reference, Problem::Or, N, 0xbe7c).unwrap())
    });
    group.finish();
}

fn bench_ir_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_ir");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    let plan = fan_in_read_tree(N, 3, CombineOp::Sum, ModelKind::SQsm { g: 4 });
    let input: Vec<Word> = (0..N as Word).collect();
    group.bench_function("read_tree_batch", |b, _| {
        b.iter(|| execute_plan(&plan, &input).unwrap())
    });
    group.bench_function("read_tree_reference", |b, _| {
        b.iter(|| execute_plan_reference(&plan, &input).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_qsm_paths, bench_ir_paths);
criterion_main!(benches);
