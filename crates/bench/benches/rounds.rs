#![forbid(unsafe_code)]

//! Criterion bench for experiment T1.ROUNDS (sub-table 4): the
//! rounds-respecting algorithms across the n/p sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parbounds::algo::{lac, rounds, util::ReduceOp, workloads};
use parbounds::models::QsmMachine;
use std::time::Duration;

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("rounds");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    let n = 1 << 14;
    let bits = workloads::random_bits(n, 1);
    let items = workloads::sparse_items(n, n / 8, 2);
    for &np in &[16usize, 256] {
        let p = n / np;
        let qsm = QsmMachine::qsm(4);
        let sqsm = QsmMachine::sqsm(4);
        group.bench_with_input(
            BenchmarkId::new("or_rounds_qsm", format!("np{np}")),
            &(),
            |b, _| b.iter(|| rounds::or_in_rounds_qsm(&qsm, &bits, p).unwrap().value),
        );
        group.bench_with_input(
            BenchmarkId::new("parity_rounds_sqsm", format!("np{np}")),
            &(),
            |b, _| {
                b.iter(|| {
                    rounds::reduce_in_rounds(&sqsm, &bits, p, ReduceOp::Xor)
                        .unwrap()
                        .value
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lac_prefix", format!("np{np}")),
            &(),
            |b, _| b.iter(|| lac::lac_prefix(&qsm, &items, p).unwrap().out_size),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
