#![forbid(unsafe_code)]

//! Criterion bench for experiment T1.BSP (sub-table 3): the BSP reduction,
//! sort and compaction algorithms across (n, p, g, L).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parbounds::algo::{bsp_algos, workloads};
use parbounds::models::BspMachine;
use std::time::Duration;

fn bench_bsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp_time");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    for &n in &[1usize << 12, 1 << 14] {
        for &(p, g, l) in &[(16usize, 2u64, 8u64), (64, 2, 32)] {
            let machine = BspMachine::new(p, g, l).unwrap();
            let bits = workloads::random_bits(n, 1);
            group.bench_with_input(
                BenchmarkId::new("parity_reduce", format!("n{n}_p{p}_L{l}")),
                &(),
                |b, _| b.iter(|| bsp_algos::bsp_parity(&machine, &bits).unwrap().value),
            );
            let items = workloads::sparse_items(n, n / 8, 2);
            group.bench_with_input(
                BenchmarkId::new("lac_dart_msgs", format!("n{n}_p{p}_L{l}")),
                &(),
                |b, _| {
                    b.iter(|| {
                        bsp_algos::bsp_lac_dart(&machine, &items, n / 8, 3)
                            .unwrap()
                            .out_size
                    })
                },
            );
            let values = workloads::uniform_values(n.min(1 << 12), 4);
            group.bench_with_input(
                BenchmarkId::new("sample_sort", format!("n{n}_p{p}_L{l}")),
                &(),
                |b, _| {
                    b.iter(|| {
                        bsp_algos::bsp_sort_sample(&machine, &values, 8)
                            .unwrap()
                            .blocks
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bsp);
criterion_main!(benches);
