#![forbid(unsafe_code)]

//! Criterion bench for experiment T1.SQSM (sub-table 2): the s-QSM
//! algorithms (binary trees + darts) across the (n, g) sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parbounds::algo::{lac, or_tree, reduce, workloads};
use parbounds::models::QsmMachine;
use std::time::Duration;

fn bench_sqsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("sqsm_time");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    for &n in &[1usize << 10, 1 << 12] {
        for &g in &[4u64, 16] {
            let machine = QsmMachine::sqsm(g);
            let bits = workloads::random_bits(n, 1);
            group.bench_with_input(
                BenchmarkId::new("parity_tree2", format!("n{n}_g{g}")),
                &(),
                |b, _| b.iter(|| reduce::parity_read_tree(&machine, &bits, 2).unwrap().value),
            );
            group.bench_with_input(
                BenchmarkId::new("or_write_tree2", format!("n{n}_g{g}")),
                &(),
                |b, _| b.iter(|| or_tree::or_write_tree(&machine, &bits, 2).unwrap().value),
            );
            let items = workloads::sparse_items(n, n / 8, 2);
            group.bench_with_input(
                BenchmarkId::new("lac_dart", format!("n{n}_g{g}")),
                &(),
                |b, _| b.iter(|| lac::lac_dart(&machine, &items, n / 8, 3).unwrap().out_size),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sqsm);
criterion_main!(benches);
