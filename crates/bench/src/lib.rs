//! Shared harness code for the Table 1 regeneration binaries and the
//! Criterion benches: a scoped-thread parallel sweep executor and the
//! common row formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Runs `f` over `items` on all available cores (order-preserving output).
/// The simulators are single-threaded and deterministic; sweeps across
/// parameter points are embarrassingly parallel, so this is where the host
/// machine's parallelism goes.
pub fn par_sweep<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut out: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (slice_in, slice_out) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (i, item) in slice_in.iter().enumerate() {
                    slice_out[i] = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|t| t.expect("all slots filled"))
        .collect()
}

/// Formats a ratio column: `-` for absent measurements.
pub fn fmt_ratio(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:8.2}"),
        None => format!("{:>8}", "-"),
    }
}

/// Formats an optional measurement.
pub fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:10.0}"),
        None => format!("{:>10}", "-"),
    }
}

/// A standard geometric sweep of input sizes.
pub fn n_sweep() -> Vec<usize> {
    vec![1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16]
}

/// A standard sweep of gap parameters.
pub fn g_sweep() -> Vec<u64> {
    vec![2, 4, 8, 16]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_sweep_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_sweep(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_sweep_handles_tiny_inputs() {
        assert_eq!(par_sweep::<u64, u64, _>(&[], |&x| x), Vec::<u64>::new());
        assert_eq!(par_sweep(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ratio(None).trim(), "-");
        assert!(fmt_ratio(Some(1.5)).contains("1.50"));
        assert_eq!(fmt_opt(None).trim(), "-");
        assert!(fmt_opt(Some(42.0)).contains("42"));
    }
}
