//! Shared harness code for the Table 1 regeneration binaries and the
//! Criterion benches: a scoped-thread parallel sweep executor and the
//! common row formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod hotpath;
pub mod soak;

/// Process-wide thread-count override set by [`set_threads`] (0 = unset).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the number of worker threads [`par_sweep`] uses. Takes precedence
/// over the `PARBOUNDS_THREADS` environment variable.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The configured sweep width, if any: the [`set_threads`] override first,
/// then the `PARBOUNDS_THREADS` environment variable. `None` means "use all
/// available cores".
pub fn configured_threads() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::env::var("PARBOUNDS_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0),
        n => Some(n),
    }
}

/// Strips a `--threads N` flag from the process arguments, applying it via
/// [`set_threads`], and returns the remaining (non-program-name) arguments.
/// Every bench binary calls this first, so `--threads` works uniformly.
///
/// A malformed `--threads` value is a typed
/// [`ModelError::BadConfig`](parbounds::models::ModelError) — the library
/// never prints or exits; each binary reports the error at its own edge.
pub fn init_threads_from_cli() -> Result<Vec<String>, parbounds::models::ModelError> {
    init_threads_from_args(std::env::args().skip(1))
}

/// The testable core of [`init_threads_from_cli`]: same contract, explicit
/// argument source.
pub fn init_threads_from_args<I: IntoIterator<Item = String>>(
    input: I,
) -> Result<Vec<String>, parbounds::models::ModelError> {
    let bad = || {
        parbounds::models::ModelError::BadConfig("--threads expects a positive integer".to_string())
    };
    let mut out = Vec::new();
    let mut args = input.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let n = args
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .ok_or_else(bad)?;
            set_threads(n);
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => set_threads(n),
                _ => return Err(bad()),
            }
        } else {
            out.push(arg);
        }
    }
    Ok(out)
}

/// Runs `f` over `items` on all available cores (order-preserving output),
/// honoring [`configured_threads`] — i.e. `--threads` / `PARBOUNDS_THREADS`.
/// The simulators are single-threaded and deterministic; sweeps across
/// parameter points are embarrassingly parallel, so this is where the host
/// machine's parallelism goes.
pub fn par_sweep<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = configured_threads()
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut out: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (slice_in, slice_out) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (i, item) in slice_in.iter().enumerate() {
                    slice_out[i] = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|t| t.expect("all slots filled"))
        .collect()
}

/// Formats a ratio column: `-` for absent measurements.
pub fn fmt_ratio(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:8.2}"),
        None => format!("{:>8}", "-"),
    }
}

/// Formats an optional measurement.
pub fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:10.0}"),
        None => format!("{:>10}", "-"),
    }
}

/// A standard geometric sweep of input sizes.
pub fn n_sweep() -> Vec<usize> {
    vec![1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16]
}

/// A standard sweep of gap parameters.
pub fn g_sweep() -> Vec<u64> {
    vec![2, 4, 8, 16]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_sweep_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_sweep(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_sweep_handles_tiny_inputs() {
        assert_eq!(par_sweep::<u64, u64, _>(&[], |&x| x), Vec::<u64>::new());
        assert_eq!(par_sweep(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ratio(None).trim(), "-");
        assert!(fmt_ratio(Some(1.5)).contains("1.50"));
        assert_eq!(fmt_opt(None).trim(), "-");
        assert!(fmt_opt(Some(42.0)).contains("42"));
    }
}
