#![forbid(unsafe_code)]

//! Ad-hoc microprofile of the BSP pooled vs reference executors: long
//! interleaved repetition blocks give ground-truth ratios for the
//! microsecond-scale BSP grid points that the main benchmark's batched
//! timing can only bound (dev tool backing the `--check-floor` margin).

use parbounds::algo::bsp_algos::{bsp_lac_dart, bsp_or, bsp_parity};
use parbounds::algo::workloads;
use parbounds::models::{BspMachine, Routing};
use std::time::Instant;

fn machines(p: usize, g: u64, l: u64) -> (BspMachine, BspMachine) {
    let dense = BspMachine::new(p, g, l)
        .unwrap()
        .with_routing(Routing::Dense);
    let reference = BspMachine::new(p, g, l).unwrap().with_reference_routing();
    (dense, reference)
}

fn profile(label: &str, iters: u32, mut dense: impl FnMut(), mut reference: impl FnMut()) {
    let mut td = 0.0f64;
    let mut tr = 0.0f64;
    // Interleaved blocks so cache/allocator state is shared fairly.
    for _ in 0..10 {
        let t0 = Instant::now();
        for _ in 0..iters / 10 {
            dense();
        }
        td += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for _ in 0..iters / 10 {
            reference();
        }
        tr += t0.elapsed().as_secs_f64();
    }
    println!(
        "{label}: dense {:.3}us/run  reference {:.3}us/run  dense speedup {:.3}x",
        td * 1e6 / iters as f64,
        tr * 1e6 / iters as f64,
        tr / td
    );
}

fn main() {
    let seed = 0xbe7cu64;

    for (n, p) in [(256usize, 4usize), (1024, 16), (4096, 64), (65536, 512)] {
        // Scale iteration counts down with run length so each family
        // profiles in a few seconds at every size.
        let iters = (20_000_000 / n as u32).max(100);
        let bits = workloads::random_bits(n, seed);
        let (d, r) = machines(p, 4, 16);
        {
            let (bd, br) = (bits.clone(), bits.clone());
            profile(
                &format!("parity n={n} p={p}"),
                iters,
                || {
                    std::hint::black_box(bsp_parity(&d, &bd).unwrap());
                },
                || {
                    std::hint::black_box(bsp_parity(&r, &br).unwrap());
                },
            );
        }
        profile(
            &format!("or     n={n} p={p}"),
            iters,
            || {
                std::hint::black_box(bsp_or(&d, &bits).unwrap());
            },
            || {
                std::hint::black_box(bsp_or(&r, &bits).unwrap());
            },
        );

        let h = (n / 8).max(1);
        let items = workloads::sparse_items(n, h, seed);
        profile(
            &format!("lac    n={n} p={p}"),
            iters / 2,
            || {
                std::hint::black_box(bsp_lac_dart(&d, &items, h, seed ^ 0xd1ce).unwrap());
            },
            || {
                std::hint::black_box(bsp_lac_dart(&r, &items, h, seed ^ 0xd1ce).unwrap());
            },
        );
    }
}
