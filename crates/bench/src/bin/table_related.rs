#![forbid(unsafe_code)]

//! The Theorem 6.1 *related problems* table: Load Balancing and Padded
//! Sort measured against the LAC lower bounds that Theorem 6.1 transfers
//! onto them, plus the GSM tightness panel (the strong-queuing tree meeting
//! the Theorem 3.1 GSM bound).
//!
//! ```text
//! cargo run --release -p parbounds-bench --bin table_related
//! ```

use parbounds::algo::gsm_algos;
use parbounds::algo::workloads::random_bits;
use parbounds::models::GsmMachine;
use parbounds::tables::{Model, Problem};
use parbounds::{load_balance_row, padded_sort_row, qsm_time_row};
use parbounds_bench::par_sweep;

fn main() {
    // `--threads N` / `PARBOUNDS_THREADS` pin the sweep width.
    if let Err(e) = parbounds_bench::init_threads_from_cli() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    println!("Theorem 6.1 transfers the LAC lower bounds to Load Balancing and Padded Sort.");
    println!("Measured (total model time across all passes) vs the transferred LAC rand LB:");
    println!();
    println!(
        "{:<16} {:<6} {:>8} {:>6} | {:>10} {:>12} {:>8}",
        "problem", "model", "n", "g", "measured", "LAC rand LB", "phases"
    );
    println!("{}", "-".repeat(80));

    let points: Vec<(usize, u64)> = [1usize << 10, 1 << 12, 1 << 14]
        .into_iter()
        .flat_map(|n| [2u64, 8].into_iter().map(move |g| (n, g)))
        .collect();

    for model in [Model::Qsm, Model::SQsm] {
        let rows = par_sweep(&points, |&(n, g)| {
            (
                load_balance_row(model, n, g, (n / 16).max(1), 0x6a11).unwrap(),
                padded_sort_row(model, n, g, 0x50f7).unwrap(),
            )
        });
        for (lb_row, ps_row) in rows {
            for row in [&lb_row, &ps_row] {
                assert!(
                    row.measured >= row.lac_rand_lb,
                    "Theorem 6.1 violated?! {row:?}"
                );
                println!(
                    "{:<16} {:<6} {:>8} {:>6} | {:>10.0} {:>12.1} {:>8}",
                    row.problem,
                    format!("{:?}", row.model),
                    row.params.n,
                    row.params.g,
                    row.measured,
                    row.lac_rand_lb,
                    row.phases
                );
            }
        }
    }

    // LAC itself, for side-by-side comparison.
    println!();
    println!("LAC itself on the same sweep (QSM):");
    for &(n, g) in &points {
        let row = qsm_time_row(Problem::Lac, n, g, 0x1ac).unwrap();
        println!(
            "{:<16} {:<6} {:>8} {:>6} | {:>10.0} {:>12.1}",
            "lac",
            "Qsm",
            n,
            g,
            row.measured.unwrap(),
            row.rand_lb
        );
    }

    // BSP padded sort: the §2.2 "message delivery is compaction" remark.
    println!();
    println!("BSP padded sort (2 supersteps; routing IS the compaction):");
    println!(
        "{:>8} {:>5} | {:>10} {:>10} {:>12}",
        "n", "p", "time", "steps", "output size"
    );
    for &(n, p) in &[(1usize << 12, 16usize), (1 << 14, 64), (1 << 16, 256)] {
        let m = parbounds::models::BspMachine::new(p, 2, 16).unwrap();
        let values = parbounds::algo::workloads::uniform_values(n, 0xbead);
        let out = parbounds::algo::bsp_algos::bsp_padded_sort(&m, &values).unwrap();
        assert!(out.verify(&values));
        println!(
            "{:>8} {:>5} | {:>10} {:>10} {:>12}",
            n,
            p,
            out.ledger.total_time(),
            out.ledger.num_phases(),
            out.output().len()
        );
    }

    // GSM tightness panel.
    println!();
    println!("GSM tightness (Theorem 3.1 is achievable on the GSM itself):");
    println!(
        "{:>8} {:>5} {:>5} | {:>10} {:>22} {:>8}",
        "n", "beta", "mu", "measured", "μ·log(n/γ)/log β", "ratio"
    );
    println!("{}", "-".repeat(70));
    for n in [1usize << 8, 1 << 12, 1 << 16] {
        for beta in [2u64, 8, 32] {
            let m = GsmMachine::new(1, beta, 1);
            let bits = random_bits(n, 1);
            let out = gsm_algos::gsm_parity(&m, &bits).unwrap();
            let formula = m.mu() as f64 * (n as f64).log2() / (beta as f64).log2().max(1.0);
            println!(
                "{:>8} {:>5} {:>5} | {:>10} {:>22.1} {:>8.2}",
                n,
                beta,
                m.mu(),
                out.run.time(),
                formula,
                out.run.time() as f64 / formula
            );
        }
    }
    println!();
    println!(
        "The flat ratio column shows the strong-queuing tree meets the GSM lower bound \
         — the bound is tight on the lower-bound model, and the QSM/GSM gap (compare \
         table_qsm) is the real content of the separation."
    );
}
