#![forbid(unsafe_code)]

//! Regenerates **sub-table 4** of Table 1 (rounds of p-processor
//! algorithms, p ≤ n) with the measured round counts of the
//! rounds-respecting algorithms on all three models.
//!
//! ```text
//! cargo run --release -p parbounds-bench --bin table_rounds
//! ```

use parbounds::rounds_row;
use parbounds::tables::{render_rounds_table, Model, Params, Problem};
use parbounds_bench::par_sweep;

fn main() {
    // `--threads N` / `PARBOUNDS_THREADS` pin the sweep width.
    if let Err(e) = parbounds_bench::init_threads_from_cli() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let pr = Params::bsp(1_048_576.0, 8.0, 64.0, 65_536.0);
    println!("{}", render_rounds_table(&pr));
    println!();
    println!("Measured: rounds-respecting algorithms (every phase within budget 2·g·n/p)");
    println!(
        "{:<8} {:<6} {:>8} {:>6} {:>6} | {:>8} {:>8} {:>8} | algorithm",
        "problem", "model", "n", "p", "n/p", "rounds", "LB", "UB form."
    );
    println!("{}", "-".repeat(110));

    let n = 1 << 16;
    let mut points = Vec::new();
    for problem in [Problem::Parity, Problem::Or, Problem::Lac] {
        for model in [Model::Qsm, Model::SQsm, Model::Bsp] {
            for &np in &[4usize, 16, 64, 256] {
                points.push((problem, model, n, n / np));
            }
        }
    }
    let rows = par_sweep(&points, |&(problem, model, n, p)| {
        rounds_row(problem, model, n, 4, 16, p, 0x70c).expect("row generation failed")
    });
    for row in &rows {
        let measured = row
            .measured
            .map(|(r, _)| r.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<8} {:<6} {:>8} {:>6} {:>6} | {:>8} {:>8.2} {:>8.2} | {}",
            format!("{:?}", row.problem),
            format!("{:?}", row.model),
            row.params.n,
            row.params.p,
            row.params.n / row.params.p,
            measured,
            row.lower,
            row.upper_formula,
            row.algorithm
        );
    }
    println!();
    println!(
        "Shape check: measured rounds track Θ(log n/log(n/p)) — they shrink as n/p grows \
         — and the QSM OR rows (fan-in g·n/p) sit below the s-QSM ones, exactly the \
         paper's log(gn/p) vs log(n/p) separation."
    );
}
