#![forbid(unsafe_code)]

//! Lower-bound *audit* tables: Theorem 3.1's degree recurrence checked on
//! exhaustively verified Parity programs (experiment TH3.1 in DESIGN.md),
//! and Theorem 7.1's OR adversary defeating bounded-information algorithms
//! (experiment TH7.1).
//!
//! ```text
//! cargo run --release -p parbounds-bench --bin table_audits
//! ```

use parbounds::adversary::f_star;
use parbounds::adversary::{
    audit_parity_program, or_success_rate, probe_k_or, DegreeAudit, GrowthSequences,
    OrDistribution, OrRefine, TGoodness, TraceEnsemble,
};
use parbounds::models::{GsmEnv, GsmFnProgram, GsmMachine, GsmProgram, Status, Word};
use rand::SeedableRng;

/// The binary-tree GSM parity program used by the audits (one processor per
/// internal node, XOR combine).
fn tree_parity(r: usize) -> (impl GsmProgram<Proc = ()> + use<>, usize) {
    let mut nodes = Vec::new();
    let mut bases = vec![0usize];
    let mut width = r;
    let mut next = r;
    let mut level = 1;
    let mut out = 0;
    while width > 1 {
        let w2 = width.div_ceil(2);
        bases.push(next);
        out = next;
        for j in 0..w2 {
            nodes.push((level, j, width));
        }
        next += w2;
        width = w2;
        level += 1;
    }
    let prog = GsmFnProgram::new(
        nodes.len().max(1),
        move |_| (),
        move |pid, _, env: &mut GsmEnv<'_>| {
            if nodes.is_empty() {
                return Status::Done;
            }
            let (level, j, prev_width) = nodes[pid];
            let read_phase = 2 * (level - 1);
            let t = env.phase();
            if t < read_phase {
                Status::Active
            } else if t == read_phase {
                env.read(bases[level - 1] + 2 * j);
                if 2 * j + 1 < prev_width {
                    env.read(bases[level - 1] + 2 * j + 1);
                }
                Status::Active
            } else {
                let x: Word = env
                    .delivered()
                    .iter()
                    .map(|(_, c)| c.iter().fold(0, |a, &b| a ^ (b & 1)))
                    .fold(0, |a, b| a ^ b);
                env.write(bases[level] + j, x);
                Status::Done
            }
        },
    );
    (prog, out)
}

fn main() {
    // `--threads N` / `PARBOUNDS_THREADS` pin the sweep width.
    if let Err(e) = parbounds_bench::init_threads_from_cli() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    println!("Experiment TH3.1 — Theorem 3.1 degree-recurrence audit");
    println!("(exhaustive over all 2^r inputs; tree parity on GSM(α,β,γ))");
    println!(
        "{:>3} {:>6} {:>6} | {:>8} {:>12} {:>12} | {:>10} {:>12}",
        "r", "alpha", "beta", "correct", "log2(b_l)", "log2(r)", "T (meas)", "Thm3.1 LB"
    );
    println!("{}", "-".repeat(90));
    for r in [4usize, 6, 8, 10, 12] {
        for (alpha, beta) in [(1u64, 1u64), (2, 2), (1, 4)] {
            let machine = GsmMachine::new(alpha, beta, 1);
            let (_, out) = tree_parity(r);
            let report =
                audit_parity_program(&machine, || tree_parity(r).0, out, r).expect("audit failed");
            assert!(report.correct, "tree parity must be correct");
            assert!(
                report.worst.supports_degree(r),
                "Theorem 3.1 accounting violated"
            );
            println!(
                "{:>3} {:>6} {:>6} | {:>8} {:>12.2} {:>12.2} | {:>10} {:>12.2}",
                r,
                alpha,
                beta,
                report.correct,
                report.worst.final_log2_cap(),
                (r as f64).log2(),
                report.max_time,
                DegreeAudit::theorem_3_1_bound(machine.mu(), r),
            );
        }
    }

    println!();
    println!("Experiment TH7.1 — Section 7 OR adversary vs bounded-information algorithms");
    println!("(success over the {{all-zeros}} ∪ {{H_i}} mixture; 4000 trials each)");
    println!(
        "{:>8} {:>6} | {:>24} {:>10}",
        "n", "mu", "algorithm", "success"
    );
    println!("{}", "-".repeat(60));
    for n in [1 << 10, 1 << 14] {
        for mu in [1u64, 4] {
            let dist = OrDistribution::new(n, mu, 1);
            let honest = |input: &[Word]| Word::from(input.iter().any(|&b| b != 0));
            for (name, rate) in [
                ("honest full OR", or_success_rate(honest, &dist, 4000, 1)),
                (
                    "probe 1 input",
                    or_success_rate(probe_k_or(1), &dist, 4000, 2),
                ),
                (
                    "probe 16 inputs",
                    or_success_rate(probe_k_or(16), &dist, 4000, 3),
                ),
                (
                    "probe n/4 inputs",
                    or_success_rate(probe_k_or(n / 4), &dist, 4000, 4),
                ),
                ("constant 0", or_success_rate(|_| 0, &dist, 4000, 5)),
            ] {
                println!("{:>8} {:>6} | {:>24} {:>10.3}", n, mu, name, rate);
            }
        }
    }
    println!();
    println!(
        "Reading: the honest algorithm scores 1.0; algorithms inspecting o(n) inputs \
         collapse toward the Theorem 7.1 ceiling of ~1/2(1+ε)."
    );

    // ----- Section 5.2 t-goodness, exactly evaluated -----
    println!();
    println!("Experiment §5.2 — t-goodness of f* on tree parity (exhaustive, r = 8)");
    println!(
        "{:>3} | {:>10} {:>8} | {:>8} {:>8} {:>8} {:>8}",
        "t", "deg(States)", "d_t", "|States|", "|Know|", "|AffP|", "|AffC|"
    );
    println!("{}", "-".repeat(70));
    let r = 8;
    let machine = GsmMachine::new(1, 1, 1);
    let ens = TraceEnsemble::build(&machine, || tree_parity(r).0, r).expect("ensemble");
    let seq = GrowthSequences {
        nu: 1.0,
        mu: 1.0,
        n: r as f64,
    };
    for t in 1..=ens.num_phases() {
        let good = TGoodness::check(&ens, &f_star(r), t);
        assert!(good.max_states_degree as f64 <= seq.d(t), "d_t violated");
        println!(
            "{:>3} | {:>10} {:>8.0} | {:>8} {:>8} {:>8} {:>8}",
            t,
            good.max_states_degree,
            seq.d(t),
            good.max_states,
            good.max_know,
            good.max_aff_proc,
            good.max_aff_cell
        );
    }
    println!("All rows sit inside the paper's d_t = ν(μ+1)^2t envelope (asserted).");

    // ----- Section 7.1 modified REFINE, live -----
    println!();
    println!("Experiment §7.1 — modified Random Adversary (RANDOMRESTRICT/RANDOMFIX)");
    let r = 8;
    let dist = OrDistribution::new(r, machine.mu(), 1);
    for seed in [3u64, 7, 11] {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut refine =
            OrRefine::build(&machine, || tree_parity(r).0, r, &dist, 64).expect("refine");
        print!("  seed {seed}: 256");
        let mut t = 0usize;
        loop {
            let step = refine.refine(t, &mut rng);
            print!(" -> {}", refine.set.masks.len());
            t += 1;
            if step.done {
                println!(
                    "  (fixed mask {:#010b} after {t} steps)",
                    step.fixed.unwrap()
                );
                break;
            }
            if t > 12 {
                println!(
                    "  (time limit reached with {} maps alive)",
                    refine.set.masks.len()
                );
                break;
            }
        }
    }
    println!(
        "Each trajectory restricts the possible-map set phase by phase and ends by \
         RANDOMFIXing a complete input drawn from D — the §7 game, executed."
    );
}
