#![forbid(unsafe_code)]

//! Adversary-audit scaling table: the enumerative `2^r` goodness checker
//! against the memoized symbolic analysis and the seeded Monte-Carlo mode,
//! with wall time and live working-set size per route (experiment SYM-AUD
//! in DESIGN.md). Writes the machine-readable row set to `BENCH_PR8.json`
//! when `--out PATH` is given.
//!
//! ```text
//! cargo run --release -p parbounds-bench --bin table_audit_scale -- --out BENCH_PR8.json
//! ```

use std::time::Instant;

use parbounds::adversary::symbolic::{audit_family, mc_audit, FoldOp, FoldTree};
use parbounds::adversary::{f_star, TGoodness, TraceEnsemble};
use parbounds::models::GsmMachine;

struct Row {
    route: &'static str,
    n: usize,
    steps: usize,
    entries: u64,
    micros: u128,
    note: String,
}

fn enumerative_row(n: usize) -> Row {
    let tree = FoldTree::new(n, 2, FoldOp::Xor);
    let machine = GsmMachine::new(1, 1, 1);
    let f = f_star(n);
    let start = Instant::now();
    let ens = TraceEnsemble::build(&machine, || tree.program(), n).expect("enumerable");
    let mut good = 0usize;
    for t in 1..=tree.num_phases() {
        if TGoodness::check(&ens, &f, t).max_know > 0 {
            good += 1;
        }
    }
    Row {
        route: "enumerative",
        n,
        steps: tree.num_phases(),
        // The ensemble keys every (entity, mask) pair: 2^n masks over the
        // tree's processors and cells.
        entries: (tree.peak_set_entries()) << n,
        micros: start.elapsed().as_micros(),
        note: format!("{good} phases with Know > 0"),
    }
}

fn memoized_row(n: usize) -> Row {
    let start = Instant::now();
    let o = audit_family("parity-read-tree", n).expect("registered family");
    Row {
        route: "memoized",
        n,
        steps: o.steps_checked,
        entries: o.peak_set_entries,
        micros: start.elapsed().as_micros(),
        note: format!(
            "{} ({} clamped), verdict {}",
            if o.all_good {
                "all t-good"
            } else {
                "NOT t-good"
            },
            o.budget_clamped,
            o.verdict.name()
        ),
    }
}

fn mc_row(n: usize, samples: u64) -> Row {
    let start = Instant::now();
    let o = mc_audit("parity-read-tree", n, 42, samples).expect("fold family");
    Row {
        route: "monte-carlo",
        n,
        steps: o.t,
        entries: 2 * samples, // two live executions per sample
        micros: start.elapsed().as_micros(),
        note: format!(
            "sensitivity {:.3} in [{:.3}, {:.3}] over {} samples",
            o.estimate.p_hat, o.estimate.lo, o.estimate.hi, o.estimate.samples
        ),
    }
}

fn to_json(rows: &[Row]) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"route\":\"{}\",\"n\":{},\"steps\":{},\"set_entries\":{},\"micros\":{}}}",
                r.route, r.n, r.steps, r.entries, r.micros
            )
        })
        .collect();
    format!(
        "{{\"table\":\"audit-scale\",\"rows\":[{}]}}\n",
        cells.join(",")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());

    let mut rows = Vec::new();
    for n in [8usize, 10, 12] {
        rows.push(enumerative_row(n));
        rows.push(memoized_row(n));
    }
    for n in [1 << 12, 1 << 14, 1 << 16] {
        rows.push(memoized_row(n));
    }
    rows.push(mc_row(1 << 12, 48));
    rows.push(mc_row(1 << 14, 16));

    println!("Adversary audit scaling: enumerative vs memoized vs Monte-Carlo");
    println!(
        "{:<12} | {:>7} | {:>5} | {:>16} | {:>10} | note",
        "route", "n", "steps", "set entries", "wall (us)"
    );
    println!("{}", "-".repeat(96));
    for r in &rows {
        println!(
            "{:<12} | {:>7} | {:>5} | {:>16} | {:>10} | {}",
            r.route, r.n, r.steps, r.entries, r.micros, r.note
        );
    }

    if let Some(path) = out {
        std::fs::write(&path, to_json(&rows)).expect("write report");
        println!();
        println!("report written to {path}");
    }
}
