#![forbid(unsafe_code)]

//! Regenerates **sub-table 1** of Table 1 (QSM time bounds) and pairs every
//! row with the measured cost of our implementation of the matching
//! Section 8 algorithm, swept over `(n, g)`.
//!
//! ```text
//! cargo run --release -p parbounds-bench --bin table_qsm
//! ```

use parbounds::tables::{render_time_table, Model, Params, Problem};
use parbounds::{qsm_time_row, qsm_unit_cr_parity};
use parbounds_bench::{fmt_opt, fmt_ratio, g_sweep, n_sweep, par_sweep};

fn main() {
    // `--threads N` / `PARBOUNDS_THREADS` pin the sweep width.
    if let Err(e) = parbounds_bench::init_threads_from_cli() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let pr = Params::qsm(1_048_576.0, 8.0);
    println!("{}", render_time_table(Model::Qsm, &pr));
    println!();
    println!("Measured: Section 8 QSM algorithms on the QSM(g) simulator");
    println!(
        "{:<8} {:>8} {:>6} | {:>10} {:>10} {:>8} | {:>10} {:>10} | algorithm",
        "problem", "n", "g", "measured", "UB form.", "meas/UB", "det LB", "rand LB"
    );
    println!("{}", "-".repeat(120));

    let mut points = Vec::new();
    for problem in [Problem::Parity, Problem::Or, Problem::Lac] {
        for &n in &n_sweep() {
            for &g in &g_sweep() {
                points.push((problem, n, g));
            }
        }
    }
    let rows = par_sweep(&points, |&(problem, n, g)| {
        qsm_time_row(problem, n, g, 0xbe7c).expect("row generation failed")
    });
    for row in &rows {
        println!(
            "{:<8} {:>8} {:>6} | {} {:>10.0} {} | {:>10.1} {:>10.1} | {}",
            format!("{:?}", row.problem),
            row.params.n,
            row.params.g,
            fmt_opt(row.measured),
            row.upper_formula,
            fmt_ratio(row.shape_ratio()),
            row.det_lb,
            row.rand_lb,
            row.algorithm
        );
    }

    println!();
    println!("Parity with unit-time concurrent reads (the Θ(g·log n/log g) row):");
    println!(
        "{:<8} {:>8} {:>6} | {:>10} {:>10} {:>8}",
        "", "n", "g", "measured", "Θ form.", "ratio"
    );
    let points: Vec<(usize, u64)> = n_sweep()
        .into_iter()
        .flat_map(|n| g_sweep().into_iter().map(move |g| (n, g)))
        .collect();
    let rows = par_sweep(&points, |&(n, g)| {
        let (m, theta) = qsm_unit_cr_parity(n, g, 0xbe7c).expect("row generation failed");
        (n, g, m, theta)
    });
    for (n, g, m, theta) in rows {
        println!(
            "{:<8} {:>8} {:>6} | {:>10.0} {:>10.0} {:>8.2}",
            "Parity",
            n,
            g,
            m,
            theta,
            m / theta
        );
    }
}
