#![forbid(unsafe_code)]

//! Model-time ablations of the design choices DESIGN.md calls out: fan-in
//! sweeps for the OR tree, the parity-helper group size, broadcast fan-out,
//! the LAC dart schedule, and the BSP reduction fan-in — each showing the
//! crossover the corresponding Table 1 row predicts.
//!
//! ```text
//! cargo run --release -p parbounds-bench --bin table_ablations
//! ```

use parbounds::algo::{broadcast, bsp_algos, lac, or_tree, parity, util::ReduceOp, workloads};
use parbounds::models::{BspMachine, QsmMachine};

fn main() {
    // `--threads N` / `PARBOUNDS_THREADS` pin the sweep width.
    if let Err(e) = parbounds_bench::init_threads_from_cli() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let n = 1 << 12;
    let bits = workloads::random_bits(n, 1);

    println!("Ablation 1 — OR tree fan-in on QSM(16) vs s-QSM(16), n = {n}");
    println!("(the QSM minimum sits at k = g; the s-QSM minimum at k = 2)");
    println!("{:>6} | {:>10} | {:>10}", "k", "QSM time", "s-QSM time");
    for k in [2usize, 4, 8, 16, 32, 64] {
        let q = or_tree::or_write_tree(&QsmMachine::qsm(16), &bits, k).unwrap();
        let s = or_tree::or_write_tree(&QsmMachine::sqsm(16), &bits, k).unwrap();
        println!("{:>6} | {:>10} | {:>10}", k, q.run.time(), s.run.time());
    }

    println!();
    println!("Ablation 2 — parity-helper group size on QSM(64) vs unit-CR QSM(64)");
    println!("(plain QSM optimal near k = log g = 6; unit-CR keeps improving to k = g-ish)");
    println!("{:>6} | {:>10} | {:>12}", "k", "QSM time", "unit-CR time");
    for k in [2usize, 3, 4, 6, 8, 10] {
        let q = parity::parity_pattern_helper(&QsmMachine::qsm(64), &bits, k).unwrap();
        let u = parity::parity_pattern_helper(&QsmMachine::qsm_unit_cr(64), &bits, k).unwrap();
        println!("{:>6} | {:>10} | {:>12}", k, q.run.time(), u.run.time());
    }

    println!();
    println!("Ablation 3 — broadcast fan-out on QSM(16), n = {n}");
    println!("{:>6} | {:>10}", "k", "time");
    for k in [2usize, 4, 8, 17, 33, 65] {
        let out = broadcast::broadcast(&QsmMachine::qsm(16), 7, n, k).unwrap();
        println!("{:>6} | {:>10}", k, out.run.time());
    }

    println!();
    println!("Ablation 4 — LAC dart load factor (h = n/8 items), QRQW (g = 1), n = {n}");
    println!("(the geometric schedule keeps realized contention low at any seed)");
    println!(
        "{:>6} | {:>10} | {:>8} | {:>10}",
        "seed", "time", "phases", "max κ"
    );
    let items = workloads::sparse_items(n, n / 8, 3);
    for seed in [1u64, 2, 3, 4] {
        let out = lac::lac_dart(&QsmMachine::qrqw(), &items, n / 8, seed).unwrap();
        assert!(out.verify(&items));
        println!(
            "{:>6} | {:>10} | {:>8} | {:>10}",
            seed,
            out.run.ledger.total_time(),
            out.run.ledger.num_phases(),
            out.run.ledger.max_contention()
        );
    }

    println!();
    println!("Ablation 5 — BSP reduction fan-in around L/g (p = 64, g = 2, L = 32 ⇒ L/g = 16)");
    println!("{:>6} | {:>10} | {:>10}", "k", "time", "supersteps");
    let m = BspMachine::new(64, 2, 32).unwrap();
    for k in [2usize, 4, 8, 16, 32, 64] {
        let out = bsp_algos::bsp_reduce(&m, &bits, k, ReduceOp::Xor).unwrap();
        println!("{:>6} | {:>10} | {:>10}", k, out.time(), out.supersteps());
    }
    println!();
    println!("Ablation 6 — QSM(g, d) interpolation (Claim 2.2): OR fan-in sweep at g = 32");
    println!("(optimal fan-in shifts from g at d = 1 toward 2 as d -> g)");
    println!(
        "{:>6} | {:>10} {:>10} {:>10} {:>10}",
        "k", "d=1", "d=4", "d=16", "d=32"
    );
    for k in [2usize, 4, 8, 16, 32] {
        let mut row = format!("{k:>6} |");
        for d in [1u64, 4, 16, 32] {
            let m = QsmMachine::qsm_gd(32, d);
            let out = or_tree::or_write_tree(&m, &bits, k).unwrap();
            row.push_str(&format!(" {:>10}", out.run.time()));
        }
        println!("{row}");
    }
    println!();
    println!(
        "Each sweep bottoms out where the matching Table 1 denominator says it should: \
         k = g (OR/broadcast on QSM), k = log g (parity helpers), k = L/g (BSP), and \
         k tracking g/d across the QSM(g,d) interpolation."
    );
}
