#![forbid(unsafe_code)]

//! Regenerates **sub-table 2** of Table 1 (s-QSM time bounds) with measured
//! costs of the Section 8 s-QSM algorithms.
//!
//! ```text
//! cargo run --release -p parbounds-bench --bin table_sqsm
//! ```

use parbounds::sqsm_time_row;
use parbounds::tables::{render_time_table, Model, Params, Problem};
use parbounds_bench::{fmt_opt, fmt_ratio, g_sweep, n_sweep, par_sweep};

fn main() {
    // `--threads N` / `PARBOUNDS_THREADS` pin the sweep width.
    if let Err(e) = parbounds_bench::init_threads_from_cli() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let pr = Params::qsm(1_048_576.0, 8.0);
    println!("{}", render_time_table(Model::SQsm, &pr));
    println!();
    println!("Measured: Section 8 s-QSM algorithms on the s-QSM(g) simulator");
    println!(
        "{:<8} {:>8} {:>6} | {:>10} {:>10} {:>8} | {:>10} {:>10} | algorithm",
        "problem", "n", "g", "measured", "UB form.", "meas/UB", "det LB", "rand LB"
    );
    println!("{}", "-".repeat(120));

    let mut points = Vec::new();
    for problem in [Problem::Parity, Problem::Or, Problem::Lac] {
        for &n in &n_sweep() {
            for &g in &g_sweep() {
                points.push((problem, n, g));
            }
        }
    }
    let rows = par_sweep(&points, |&(problem, n, g)| {
        sqsm_time_row(problem, n, g, 0x5e5e).expect("row generation failed")
    });
    for row in &rows {
        println!(
            "{:<8} {:>8} {:>6} | {} {:>10.0} {} | {:>10.1} {:>10.1} | {}",
            format!("{:?}", row.problem),
            row.params.n,
            row.params.g,
            fmt_opt(row.measured),
            row.upper_formula,
            fmt_ratio(row.shape_ratio()),
            row.det_lb,
            row.rand_lb,
            row.algorithm
        );
    }
    println!();
    println!(
        "Tightness check (Θ(g·log n) Parity row): the meas/UB column above must be a \
         flat constant (~3: the binary tree costs 3g per level)."
    );
}
