#![forbid(unsafe_code)]

//! Regenerates `MEASUREMENTS.md` at the repository root from live runs —
//! the diffable reproduction artifact.
//!
//! ```text
//! cargo run --release -p parbounds-bench --bin make_report
//! ```

use parbounds::models::ModelError;
use parbounds::{generate_report, ReportOptions};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), ModelError> {
    // `--threads N` / `PARBOUNDS_THREADS` pin the sweep width.
    parbounds_bench::init_threads_from_cli()?;
    let report = generate_report(&ReportOptions::default())?;
    let path = "MEASUREMENTS.md";
    std::fs::write(path, &report)
        .map_err(|e| ModelError::Io(format!("cannot write {path}: {e}")))?;
    println!("wrote {path} ({} lines)", report.lines().count());
    Ok(())
}
