#![forbid(unsafe_code)]

//! Regenerates `MEASUREMENTS.md` at the repository root from live runs —
//! the diffable reproduction artifact.
//!
//! ```text
//! cargo run --release -p parbounds-bench --bin make_report
//! ```

use parbounds::{generate_report, ReportOptions};

fn main() {
    // `--threads N` / `PARBOUNDS_THREADS` pin the sweep width.
    let _ = parbounds_bench::init_threads_from_cli();
    let report = generate_report(&ReportOptions::default()).expect("report generation failed");
    let path = "MEASUREMENTS.md";
    std::fs::write(path, &report).expect("cannot write MEASUREMENTS.md");
    println!("wrote {path} ({} lines)", report.lines().count());
}
