#![forbid(unsafe_code)]

//! Wall-clock benchmark of the execution fast paths: dense request
//! routing + arena reuse in the QSM/s-QSM/GSM/BSP engines and the IR batch
//! interpreter against the reference (pre-fast-path) engines, plus the
//! intra-phase thread-scaling curve of the parallel executor, on the
//! Section 8 workloads.
//!
//! ```text
//! cargo run --release -p parbounds-bench --bin table_hotpath -- \
//!     [--smoke] [--out BENCH_PR5.json] [--threads N] \
//!     [--check-speedup X] [--check-compiled X] [--check-floor X] \
//!     [--check-scaling X]
//! ```
//!
//! Exits nonzero if any point's dense run disagrees with its reference run
//! or any scaling run disagrees with its single-threaded baseline (the
//! equivalence gates); if `--check-speedup X` is given and the
//! geometric-mean speedup on the largest-`n` sweep falls below `X`; if
//! `--check-compiled X` is given and the compiled-suite geomean at the
//! largest `n` falls below `X`; if `--check-floor X` is given and ANY
//! point of any suite or size comes in below `X` — the "dense never
//! loses to reference" assertion; or if `--check-scaling X` is given,
//! the host has at least 4 threads, and the 4-worker scaling geomean
//! falls below `X` (on hosts with fewer than 4 threads the scaling floor
//! is skipped — more simulator workers than cores cannot show wall-clock
//! speedup).

use parbounds_bench::hotpath::{default_ns, run_grid, smoke_ns};
use parbounds_bench::init_threads_from_cli;

fn main() {
    let args = init_threads_from_cli().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut check_speedup: Option<f64> = None;
    let mut check_compiled: Option<f64> = None;
    let mut check_floor: Option<f64> = None;
    let mut check_scaling: Option<f64> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(it.next().unwrap_or_else(|| usage("--out needs a path"))),
            "--check-speedup" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--check-speedup needs a number"));
                check_speedup = Some(v.parse().unwrap_or_else(|_| {
                    usage("--check-speedup expects a number");
                }));
            }
            "--check-compiled" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--check-compiled needs a number"));
                check_compiled = Some(v.parse().unwrap_or_else(|_| {
                    usage("--check-compiled expects a number");
                }));
            }
            "--check-floor" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--check-floor needs a number"));
                check_floor = Some(v.parse().unwrap_or_else(|_| {
                    usage("--check-floor expects a number");
                }));
            }
            "--check-scaling" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--check-scaling needs a number"));
                check_scaling = Some(v.parse().unwrap_or_else(|_| {
                    usage("--check-scaling expects a number");
                }));
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }

    let (ns, reps) = if smoke {
        (smoke_ns(), 1)
    } else {
        (default_ns(), 3)
    };
    let report = run_grid(&ns, reps, smoke);

    println!(
        "{:<5} {:<6} {:<18} {:>8} | {:>12} {:>12} {:>8} | equal",
        "suite", "engine", "workload", "n", "dense (s)", "ref (s)", "speedup"
    );
    println!("{}", "-".repeat(90));
    for p in &report.points {
        println!(
            "{:<5} {:<6} {:<18} {:>8} | {:>12.6} {:>12.6} {:>8.2} | {}",
            p.suite,
            p.engine,
            p.workload,
            p.n,
            p.dense_s,
            p.reference_s,
            p.speedup(),
            if p.equal { "yes" } else { "NO" }
        );
    }
    println!();
    println!(
        "largest-n (n = {}) hot-suite geomean speedup: {:.2}x",
        report.largest_n(),
        report.largest_n_geomean_speedup()
    );
    println!(
        "largest-n (n = {}) end-to-end geomean speedup: {:.2}x",
        report.largest_n(),
        report.largest_n_e2e_geomean_speedup()
    );
    println!(
        "largest-n (n = {}) compiled-vs-interpreter geomean speedup: {:.2}x",
        report.largest_n(),
        report.largest_n_compiled_geomean_speedup()
    );
    if let Some((got, p)) = report.min_speedup() {
        println!(
            "slowest point vs reference: {got:.2}x ({} {} {} n = {})",
            p.suite, p.engine, p.workload, p.n
        );
    }

    if !report.scaling.is_empty() {
        println!();
        println!(
            "thread scaling (intra-phase parallel executor, host_threads = {}):",
            report.host_threads
        );
        println!(
            "{:<6} {:<18} {:>8} {:>8} | {:>12} {:>8} | equal",
            "engine", "workload", "n", "threads", "seconds", "vs 1thr"
        );
        println!("{}", "-".repeat(78));
        for p in &report.scaling {
            let base = report
                .scaling
                .iter()
                .find(|b| {
                    b.threads == 1 && b.engine == p.engine && b.workload == p.workload && b.n == p.n
                })
                .map(|b| b.seconds / p.seconds.max(1e-12));
            println!(
                "{:<6} {:<18} {:>8} {:>8} | {:>12.6} {:>8} | {}",
                p.engine,
                p.workload,
                p.n,
                p.threads,
                p.seconds,
                base.map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".into()),
                if p.equal { "yes" } else { "NO" }
            );
        }
        println!(
            "4-thread scaling geomean: {:.2}x",
            report.scaling_geomean(4)
        );
    }

    if let Some(path) = out {
        std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }

    if !report.all_equal() {
        eprintln!("FAIL: dense fast path diverged from the reference engines");
        std::process::exit(1);
    }
    if let Some(x) = check_speedup {
        let got = report.largest_n_geomean_speedup();
        if got < x {
            eprintln!("FAIL: largest-n geomean speedup {got:.2}x < required {x:.2}x");
            std::process::exit(1);
        }
    }
    if let Some(x) = check_compiled {
        let got = report.largest_n_compiled_geomean_speedup();
        if got < x {
            eprintln!("FAIL: compiled-suite geomean speedup {got:.2}x < required {x:.2}x");
            std::process::exit(1);
        }
    }
    if let Some(x) = check_floor {
        if let Some((got, p)) = report.min_speedup() {
            if got < x {
                eprintln!(
                    "FAIL: dense lost to reference: {} {} {} n={} at {got:.2}x < floor {x:.2}x",
                    p.suite, p.engine, p.workload, p.n
                );
                std::process::exit(1);
            }
        }
    }
    if let Some(x) = check_scaling {
        if report.host_threads < 4 {
            println!(
                "skipping 4-thread scaling floor: host has only {} thread(s) \
                 (4 simulator workers cannot beat wall-clock on fewer cores)",
                report.host_threads
            );
        } else {
            let got = report.scaling_geomean(4);
            if got < x {
                eprintln!("FAIL: 4-thread scaling geomean {got:.2}x < required {x:.2}x");
                std::process::exit(1);
            }
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: table_hotpath [--smoke] [--out PATH] [--threads N] \
         [--check-speedup X] [--check-compiled X] [--check-floor X] \
         [--check-scaling X]"
    );
    std::process::exit(2);
}
