#![forbid(unsafe_code)]

//! Wall-clock benchmark of the execution fast paths (PR 4): dense request
//! routing + arena reuse in the QSM/s-QSM/GSM/BSP engines and the IR batch
//! interpreter, against the reference (pre-fast-path) engines, on the
//! Section 8 workloads.
//!
//! ```text
//! cargo run --release -p parbounds-bench --bin table_hotpath -- \
//!     [--smoke] [--out BENCH_PR4.json] [--threads N] [--check-speedup X]
//! ```
//!
//! Exits nonzero if any point's dense run disagrees with its reference run
//! (the equivalence gate), or if `--check-speedup X` is given and the
//! geometric-mean speedup on the largest-`n` sweep falls below `X`.

use parbounds_bench::hotpath::{default_ns, run_grid, smoke_ns};
use parbounds_bench::init_threads_from_cli;

fn main() {
    let args = init_threads_from_cli();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut check_speedup: Option<f64> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(it.next().unwrap_or_else(|| usage("--out needs a path"))),
            "--check-speedup" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--check-speedup needs a number"));
                check_speedup = Some(v.parse().unwrap_or_else(|_| {
                    usage("--check-speedup expects a number");
                }));
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }

    let (ns, reps) = if smoke {
        (smoke_ns(), 1)
    } else {
        (default_ns(), 3)
    };
    let report = run_grid(&ns, reps, smoke);

    println!(
        "{:<5} {:<6} {:<18} {:>8} | {:>12} {:>12} {:>8} | equal",
        "suite", "engine", "workload", "n", "dense (s)", "ref (s)", "speedup"
    );
    println!("{}", "-".repeat(90));
    for p in &report.points {
        println!(
            "{:<5} {:<6} {:<18} {:>8} | {:>12.6} {:>12.6} {:>8.2} | {}",
            p.suite,
            p.engine,
            p.workload,
            p.n,
            p.dense_s,
            p.reference_s,
            p.speedup(),
            if p.equal { "yes" } else { "NO" }
        );
    }
    println!();
    println!(
        "largest-n (n = {}) hot-suite geomean speedup: {:.2}x",
        report.largest_n(),
        report.largest_n_geomean_speedup()
    );
    println!(
        "largest-n (n = {}) end-to-end geomean speedup: {:.2}x",
        report.largest_n(),
        report.largest_n_e2e_geomean_speedup()
    );

    if let Some(path) = out {
        std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }

    if !report.all_equal() {
        eprintln!("FAIL: dense fast path diverged from the reference engines");
        std::process::exit(1);
    }
    if let Some(x) = check_speedup {
        let got = report.largest_n_geomean_speedup();
        if got < x {
            eprintln!("FAIL: largest-n geomean speedup {got:.2}x < required {x:.2}x");
            std::process::exit(1);
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: table_hotpath [--smoke] [--out PATH] [--threads N] [--check-speedup X]");
    std::process::exit(2);
}
