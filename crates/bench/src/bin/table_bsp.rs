#![forbid(unsafe_code)]

//! Regenerates **sub-table 3** of Table 1 (BSP time bounds, q = min{n, p})
//! with measured costs of the BSP algorithms.
//!
//! ```text
//! cargo run --release -p parbounds-bench --bin table_bsp
//! ```

use parbounds::bsp_time_row;
use parbounds::tables::{render_time_table, Model, Params, Problem};
use parbounds_bench::{fmt_opt, fmt_ratio, n_sweep, par_sweep};

fn main() {
    // `--threads N` / `PARBOUNDS_THREADS` pin the sweep width.
    if let Err(e) = parbounds_bench::init_threads_from_cli() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let pr = Params::bsp(1_048_576.0, 8.0, 64.0, 4096.0);
    println!("{}", render_time_table(Model::Bsp, &pr));
    println!();
    println!("Measured: BSP algorithms on the BSP(p, g, L) simulator");
    println!(
        "{:<8} {:>8} {:>5} {:>5} {:>6} | {:>10} {:>10} {:>8} | {:>10} {:>10} | algorithm",
        "problem", "n", "g", "L", "p", "measured", "UB form.", "meas/UB", "det LB", "rand LB"
    );
    println!("{}", "-".repeat(130));

    let mut points = Vec::new();
    for problem in [Problem::Parity, Problem::Or, Problem::Lac] {
        for &n in &n_sweep() {
            for &(g, l) in &[(2u64, 8u64), (2, 32), (4, 64)] {
                for &p in &[16usize, 64, 256] {
                    if p <= n {
                        points.push((problem, n, g, l, p));
                    }
                }
            }
        }
    }
    let rows = par_sweep(&points, |&(problem, n, g, l, p)| {
        bsp_time_row(problem, n, g, l, p, 0xb59).expect("row generation failed")
    });
    for row in &rows {
        println!(
            "{:<8} {:>8} {:>5} {:>5} {:>6} | {} {:>10.0} {} | {:>10.1} {:>10.1} | {}",
            format!("{:?}", row.problem),
            row.params.n,
            row.params.g,
            row.params.l,
            row.params.p,
            fmt_opt(row.measured),
            row.upper_formula,
            fmt_ratio(row.shape_ratio()),
            row.det_lb,
            row.rand_lb,
            row.algorithm
        );
    }
    println!();
    println!(
        "Shape check: Parity/OR meas/UB flat in n and p (the Θ(L·log q/log(L/g)) row is \
         tight); LAC measured sits between its rand LB and the UB formula."
    );
}
