//! Chaos-driven soak harness for the cost-oracle service.
//!
//! Replays thousands of seeded mixed queries against an in-process
//! [`Server`] while injecting the faults a hostile or unlucky client
//! population produces — malformed frames, oversized frames, mid-request
//! disconnects, deterministic deadline trips, budget-exhausting tenants,
//! and concurrent duplicate storms — and checks the service's invariants
//! the whole way:
//!
//! * **zero panics** — every response is a full answer, a typed error, or
//!   a degraded static fallback; a worker that dies mid-request is a
//!   violation;
//! * **valid degraded answers** — every `degraded: true` response carries
//!   exactly the plan's static ledger;
//! * **cache consistency** — two full answers for the same
//!   `(kind, plan, input)` are identical, the hit rate over identically
//!   distributed batches is monotone non-decreasing, and the cache never
//!   exceeds its capacity;
//! * **deadline discipline** — no request's wall latency exceeds twice
//!   its deadline budget.
//!
//! Everything is seeded: two soaks with the same [`SoakConfig`] replay
//! the same request schedule.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use parbounds::analyze::{ir_family_plan, predict_ledger, IR_FAMILIES};
use parbounds::models::CostLedger;
use parbounds::serve::{
    json, Answer, ErrorCode, OracleConfig, PlanSource, QueryKind, Request, Response, Server,
    ServerConfig,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Soak knobs. Everything downstream is derived deterministically from
/// these.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Master seed for the request schedule.
    pub seed: u64,
    /// Total requests across all batches and clients.
    pub requests: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Sequential batches (the monotone-hit-rate check runs per batch).
    pub batches: usize,
    /// Server worker threads (0 = auto).
    pub workers: usize,
    /// Admission-queue depth.
    pub queue_cap: usize,
    /// Cache capacity (ready answers).
    pub cache_cap: usize,
    /// Per-tenant predicted-cost budget.
    pub tenant_budget: u64,
    /// Default request deadline, milliseconds.
    pub deadline_ms: u64,
}

impl SoakConfig {
    /// The CI smoke configuration: ≥5k mixed requests, fixed seed, sized
    /// to finish in a few seconds on a release build.
    pub fn smoke() -> Self {
        SoakConfig {
            seed: 0x5eed_50a8,
            requests: 5_500,
            clients: 8,
            batches: 4,
            workers: 0,
            queue_cap: 256,
            cache_cap: 512,
            tenant_budget: 2_000_000,
            deadline_ms: 2_000,
        }
    }
}

/// Latency percentiles in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct Percentiles {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst case.
    pub max: u64,
}

/// What the soak observed.
#[derive(Debug, Clone, Default)]
pub struct SoakReport {
    /// Requests submitted through the typed path.
    pub submitted: usize,
    /// Full (non-degraded) successful answers.
    pub ok_full: usize,
    /// Answers served from the cache.
    pub cached: usize,
    /// Degraded static-fallback answers.
    pub degraded: usize,
    /// Requests shed with `overloaded`.
    pub shed: usize,
    /// Other typed errors (budget, deadline, model-rule).
    pub typed_errors: usize,
    /// Typed `budget_exhausted` refusals drawn by the spender storm.
    pub budget_refusals: usize,
    /// Malformed/oversized frames pushed through the connection loop.
    pub wire_faults: usize,
    /// Responses received on fault-injected connections.
    pub wire_responses: usize,
    /// Cumulative cache hit rate after each batch.
    pub batch_hit_rates: Vec<f64>,
    /// Wall time of the whole soak, milliseconds.
    pub elapsed_ms: u64,
    /// Requests per second over the typed path.
    pub throughput_rps: f64,
    /// Latency distribution of typed submissions.
    pub latency_us: Percentiles,
    /// Invariant violations. Empty means the soak passed.
    pub violations: Vec<String>,
}

impl SoakReport {
    /// True when no invariant was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "soak: {} typed requests in {} ms ({:.0} req/s)",
            self.submitted, self.elapsed_ms, self.throughput_rps
        );
        let _ = writeln!(
            out,
            "  full answers {}  cached {}  degraded {}  shed {}  typed errors {}  budget refusals {}",
            self.ok_full, self.cached, self.degraded, self.shed, self.typed_errors,
            self.budget_refusals
        );
        let _ = writeln!(
            out,
            "  wire faults {} (responses {})",
            self.wire_faults, self.wire_responses
        );
        let rates: Vec<String> = self
            .batch_hit_rates
            .iter()
            .map(|r| format!("{:.3}", r))
            .collect();
        let _ = writeln!(out, "  cache hit rate by batch: [{}]", rates.join(", "));
        let _ = writeln!(
            out,
            "  latency us: p50 {}  p90 {}  p99 {}  max {}",
            self.latency_us.p50, self.latency_us.p90, self.latency_us.p99, self.latency_us.max
        );
        if self.passed() {
            let _ = writeln!(out, "  PASS: all invariants held");
        } else {
            for v in &self.violations {
                let _ = writeln!(out, "  VIOLATION: {v}");
            }
        }
        out
    }

    /// The report as a JSON object (for `BENCH_PR6.json`).
    pub fn to_json(&self, cfg: &SoakConfig) -> String {
        use json::Json;
        let obj = Json::Obj(vec![
            ("seed".into(), Json::Num(i128::from(cfg.seed))),
            ("requests".into(), Json::Num(self.submitted as i128)),
            ("ok_full".into(), Json::Num(self.ok_full as i128)),
            ("cached".into(), Json::Num(self.cached as i128)),
            ("degraded".into(), Json::Num(self.degraded as i128)),
            ("shed".into(), Json::Num(self.shed as i128)),
            ("typed_errors".into(), Json::Num(self.typed_errors as i128)),
            (
                "budget_refusals".into(),
                Json::Num(self.budget_refusals as i128),
            ),
            ("wire_faults".into(), Json::Num(self.wire_faults as i128)),
            ("elapsed_ms".into(), Json::Num(i128::from(self.elapsed_ms))),
            (
                "throughput_rps".into(),
                Json::Num(self.throughput_rps as i128),
            ),
            (
                "batch_hit_rate_milli".into(),
                Json::Arr(
                    self.batch_hit_rates
                        .iter()
                        .map(|r| Json::Num((r * 1000.0) as i128))
                        .collect(),
                ),
            ),
            (
                "latency_us".into(),
                Json::Obj(vec![
                    ("p50".into(), Json::Num(i128::from(self.latency_us.p50))),
                    ("p90".into(), Json::Num(i128::from(self.latency_us.p90))),
                    ("p99".into(), Json::Num(i128::from(self.latency_us.p99))),
                    ("max".into(), Json::Num(i128::from(self.latency_us.max))),
                ]),
            ),
            (
                "violations".into(),
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                ),
            ),
        ]);
        obj.render()
    }
}

/// One precomputed plan the chaos schedule draws from.
struct PoolEntry {
    family: &'static str,
    n: usize,
    seed: u64,
    phases: usize,
    predicted: CostLedger,
}

/// Shared mutable state the client threads fold their observations into.
#[derive(Default)]
struct Tally {
    ok_full: usize,
    cached: usize,
    degraded: usize,
    shed: usize,
    typed_errors: usize,
    wire_faults: usize,
    wire_responses: usize,
    latencies_us: Vec<u64>,
    violations: Vec<String>,
    /// Fingerprints of full answers per (kind, pool index): cache
    /// consistency means they never change.
    fingerprints: HashMap<(u8, usize), u64>,
}

/// Builds the request pool: the seven clean §8 families at three sizes
/// and a few seeds each.
fn build_pool() -> Vec<PoolEntry> {
    let mut pool = Vec::new();
    for &family in IR_FAMILIES.iter() {
        for &n in &[16usize, 64, 256] {
            for seed in 0..3u64 {
                let (name, plan, _input) =
                    ir_family_plan(family, n, seed).expect("pool family builds");
                let predicted = predict_ledger(&plan).expect("pool plan predicts");
                pool.push(PoolEntry {
                    family: name,
                    n,
                    seed,
                    phases: plan.num_phases(),
                    predicted,
                });
            }
        }
    }
    pool
}

fn kind_code(kind: QueryKind) -> u8 {
    match kind {
        QueryKind::Static => 0,
        QueryKind::Lint => 1,
        QueryKind::Certify => 2,
        QueryKind::Run => 3,
        QueryKind::Compare => 4,
        QueryKind::Symbolic => 5,
        QueryKind::Audit => 6,
    }
}

/// A writer that fails after a fixed number of bytes — a client that
/// disconnects mid-response.
struct Disconnecting {
    remaining: usize,
}

impl std::io::Write for Disconnecting {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.remaining == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "client disconnected",
            ));
        }
        let n = buf.len().min(self.remaining);
        self.remaining -= n;
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs the soak and returns the report. Deterministic request schedule;
/// concurrency interleaving (and hence exact cached/shed counts) varies,
/// the invariants never.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let pool = Arc::new(build_pool());
    let server = Arc::new(Server::start(ServerConfig {
        workers: cfg.workers,
        queue_cap: cfg.queue_cap,
        retry_after_ms: 10,
        max_frame_bytes: 1 << 20,
        oracle: OracleConfig {
            cache_cap: cfg.cache_cap,
            default_deadline: Duration::from_millis(cfg.deadline_ms),
            tenant_budget: cfg.tenant_budget,
        },
    }));
    let tally = Arc::new(Mutex::new(Tally::default()));
    let started = Instant::now();
    let per_batch = (cfg.requests / cfg.batches.max(1)).max(1);
    let mut batch_hit_rates = Vec::new();

    for batch in 0..cfg.batches.max(1) {
        let per_client = (per_batch / cfg.clients.max(1)).max(1);
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|client| {
                let pool = Arc::clone(&pool);
                let server = Arc::clone(&server);
                let tally = Arc::clone(&tally);
                let seed = cfg
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((batch * 1000 + client) as u64);
                let deadline_ms = cfg.deadline_ms;
                thread::spawn(move || {
                    client_loop(&server, &pool, &tally, seed, per_client, deadline_ms)
                })
            })
            .collect();
        for h in handles {
            if h.join().is_err() {
                tally
                    .lock()
                    .expect("tally lock")
                    .violations
                    .push(format!("client thread panicked in batch {batch}"));
            }
        }
        batch_hit_rates.push(server.oracle().cache_stats().hit_rate());
    }

    // Budget-exhausting storm: after the batches, the "spender" tenant
    // hammers the costliest plan until its budget runs dry. The refusal
    // must arrive as a typed `budget_exhausted`, never a panic or a
    // mangled answer.
    let mut budget_refusals = 0usize;
    if cfg.tenant_budget < u64::MAX {
        let costly = pool
            .iter()
            .max_by_key(|e| e.predicted.total_time())
            .expect("pool is non-empty");
        let cost = costly.predicted.total_time().max(1);
        let cap = (cfg.tenant_budget / cost).saturating_add(2).min(100_000);
        for i in 0..cap {
            let resp = server.submit(Request {
                id: 1_000_000 + i,
                tenant: "spender".to_string(),
                kind: QueryKind::Run,
                deadline_ms: Some(cfg.deadline_ms),
                trip_at_phase: None,
                plan: PlanSource::Family {
                    name: costly.family.to_string(),
                    n: costly.n,
                    seed: costly.seed,
                },
                input: None,
            });
            if let Err(err) = &resp.result {
                if err.code == ErrorCode::BudgetExhausted {
                    budget_refusals += 1;
                    break;
                }
                tally.lock().expect("tally lock").violations.push(format!(
                    "spender storm drew {:?}: {}",
                    err.code, err.message
                ));
                break;
            }
        }
        if budget_refusals == 0 {
            tally
                .lock()
                .expect("tally lock")
                .violations
                .push("spender tenant never drew a typed budget refusal".to_string());
        }
    }

    let elapsed = started.elapsed();
    let mut t = Arc::try_unwrap(tally)
        .map(|m| m.into_inner().expect("tally lock"))
        .unwrap_or_else(|arc| arc.lock().expect("tally lock").clone_out());

    // Invariant: identically distributed batches drive the cumulative hit
    // rate monotonically up (duplicates only accumulate).
    for w in batch_hit_rates.windows(2) {
        if w[1] < w[0] - 1e-9 {
            t.violations.push(format!(
                "cache hit rate regressed across batches: {:.4} -> {:.4}",
                w[0], w[1]
            ));
        }
    }
    // Invariant: bounded memory — the cache respects its capacity.
    let stats = server.oracle().cache_stats();
    if stats.entries > cfg.cache_cap {
        t.violations.push(format!(
            "cache holds {} entries, capacity {}",
            stats.entries, cfg.cache_cap
        ));
    }
    // Invariant: deadline discipline — no typed request took more than
    // twice its deadline budget end to end.
    let cap_us = cfg.deadline_ms.saturating_mul(2).saturating_mul(1000);
    if let Some(&worst) = t.latencies_us.iter().max() {
        if worst > cap_us {
            t.violations.push(format!(
                "request latency {worst}us exceeded 2x the {}ms deadline budget",
                cfg.deadline_ms
            ));
        }
    }

    t.latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if t.latencies_us.is_empty() {
            0
        } else {
            let idx = ((t.latencies_us.len() - 1) as f64 * p).round() as usize;
            t.latencies_us[idx]
        }
    };
    let submitted = t.latencies_us.len();
    SoakReport {
        submitted,
        ok_full: t.ok_full,
        cached: t.cached,
        degraded: t.degraded,
        shed: t.shed,
        typed_errors: t.typed_errors,
        budget_refusals,
        wire_faults: t.wire_faults,
        wire_responses: t.wire_responses,
        batch_hit_rates,
        elapsed_ms: elapsed.as_millis().min(u128::from(u64::MAX)) as u64,
        throughput_rps: submitted as f64 / elapsed.as_secs_f64().max(1e-9),
        latency_us: Percentiles {
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            max: t.latencies_us.last().copied().unwrap_or(0),
        },
        violations: t.violations,
    }
}

impl Tally {
    /// Clone the contents out from behind a still-shared Arc (only hit if
    /// a client thread leaked its Arc by panicking).
    fn clone_out(&self) -> Tally {
        Tally {
            ok_full: self.ok_full,
            cached: self.cached,
            degraded: self.degraded,
            shed: self.shed,
            typed_errors: self.typed_errors,
            wire_faults: self.wire_faults,
            wire_responses: self.wire_responses,
            latencies_us: self.latencies_us.clone(),
            violations: self.violations.clone(),
            fingerprints: self.fingerprints.clone(),
        }
    }
}

fn client_loop(
    server: &Server,
    pool: &[PoolEntry],
    tally: &Mutex<Tally>,
    seed: u64,
    requests: usize,
    deadline_ms: u64,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in 0..requests {
        let roll: f64 = rng.gen_range(0.0..1.0);
        if roll < 0.02 {
            chaos_wire_frame(server, &mut rng, tally);
            continue;
        }
        if roll < 0.03 {
            chaos_disconnect(server, &mut rng, pool, tally);
            continue;
        }

        // A duplicate storm concentrates 20% of traffic on 4 hot keys;
        // the rest spreads over the whole pool.
        let idx = if rng.gen_bool(0.2) {
            rng.gen_range(0..4usize.min(pool.len()))
        } else {
            rng.gen_range(0..pool.len())
        };
        let entry = &pool[idx];
        let kind = match rng.gen_range(0..100u32) {
            0..=19 => QueryKind::Static,
            20..=29 => QueryKind::Lint,
            30..=39 => QueryKind::Certify,
            40..=74 => QueryKind::Run,
            _ => QueryKind::Compare,
        };
        // 5% of measured requests come from the "spender" tenant, which
        // eventually exhausts its budget and must get typed refusals.
        let tenant = if kind.is_measured() && rng.gen_bool(0.05) {
            "spender".to_string()
        } else {
            format!("tenant-{}", rng.gen_range(0..4u32))
        };
        // 8% of measured requests trip their deadline at a deterministic
        // phase boundary — the degradation path under test.
        let trip = if kind.is_measured() && rng.gen_bool(0.08) {
            Some(rng.gen_range(0..entry.phases.max(1)))
        } else {
            None
        };
        let req = Request {
            id: i as u64,
            tenant,
            kind,
            deadline_ms: Some(deadline_ms),
            trip_at_phase: trip,
            plan: PlanSource::Family {
                name: entry.family.to_string(),
                n: entry.n,
                seed: entry.seed,
            },
            input: None,
        };

        let begun = Instant::now();
        let resp = server.submit(req);
        let latency_us = begun.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        observe(tally, entry, kind, idx, &resp, latency_us);
    }
}

/// Validates one typed response against the invariants and folds it into
/// the tally.
fn observe(
    tally: &Mutex<Tally>,
    entry: &PoolEntry,
    kind: QueryKind,
    idx: usize,
    resp: &Response,
    latency_us: u64,
) {
    let mut t = tally.lock().expect("tally lock");
    t.latencies_us.push(latency_us);
    match &resp.result {
        Ok(answer) => {
            if resp.degraded {
                t.degraded += 1;
                // Degraded answers must be the plan's exact static ledger.
                match answer {
                    Answer::Ledger { ledger } if *ledger == entry.predicted => {}
                    other => t.violations.push(format!(
                        "degraded answer for {}#{} is not the static ledger: {other:?}",
                        entry.family, entry.n
                    )),
                }
            } else {
                t.ok_full += 1;
                if resp.cached {
                    t.cached += 1;
                }
                // Cache consistency: a full answer for a key never changes.
                let fp = json::fnv1a(answer.to_json().render().as_bytes());
                match t.fingerprints.insert((kind_code(kind), idx), fp) {
                    Some(prev) if prev != fp => t.violations.push(format!(
                        "cache consistency: answer changed for {:?} {}#{}",
                        kind, entry.family, entry.n
                    )),
                    _ => {}
                }
            }
        }
        Err(err) => match err.code {
            ErrorCode::Overloaded => {
                t.shed += 1;
                if err.retry_after_ms.is_none() {
                    t.violations
                        .push("overloaded response without retry_after_ms".to_string());
                }
            }
            ErrorCode::BudgetExhausted | ErrorCode::DeadlineExceeded | ErrorCode::ModelRule => {
                t.typed_errors += 1;
            }
            ErrorCode::BadRequest | ErrorCode::Io => {
                // The typed path never sends malformed frames; these mean
                // a worker died or the service mangled a valid request.
                t.violations
                    .push(format!("unexpected {:?}: {}", err.code, err.message));
            }
        },
    }
}

/// Pushes a deliberately broken frame (garbage bytes, truncated JSON, an
/// oversized frame, or a wrong-schema object) through the connection loop
/// and checks the connection answers with a typed error and stays up.
fn chaos_wire_frame(server: &Server, rng: &mut ChaCha8Rng, tally: &Mutex<Tally>) {
    let frame = match rng.gen_range(0..4u32) {
        0 => "not json at all".to_string(),
        1 => "{\"id\":1,\"kind\":\"static\"".to_string(), // truncated
        2 => format!("{{\"pad\":\"{}\"}}", "x".repeat(2 << 20)), // oversized
        _ => "{\"id\":9,\"kind\":\"warp\",\"family\":{\"name\":\"or-write-tree\"}}".to_string(),
    };
    // Follow the bad frame with a good one: the connection must survive.
    let good = Request {
        id: 77,
        tenant: "chaos".to_string(),
        kind: QueryKind::Static,
        deadline_ms: None,
        trip_at_phase: None,
        plan: PlanSource::Family {
            name: "or-write-tree".to_string(),
            n: 16,
            seed: 0,
        },
        input: None,
    }
    .to_json()
    .render();
    let input = format!("{frame}\n{good}\n");
    let mut out = Vec::new();
    server.serve_connection(input.as_bytes(), &mut out);
    let text = String::from_utf8_lossy(&out);
    let lines: Vec<&str> = text.lines().collect();

    let mut t = tally.lock().expect("tally lock");
    t.wire_faults += 1;
    t.wire_responses += lines.len();
    if lines.len() != 2 {
        t.violations.push(format!(
            "connection produced {} responses to 2 frames (1 malformed)",
            lines.len()
        ));
        return;
    }
    let bad_ok = json::parse(lines[0])
        .ok()
        .and_then(|v| Response::from_json(&v).ok())
        .is_some_and(|r| {
            matches!(
                r.result,
                Err(ref e) if e.code == ErrorCode::BadRequest
            )
        });
    if !bad_ok {
        t.violations.push(format!(
            "malformed frame not answered bad_request: {}",
            lines[0]
        ));
    }
    let good_ok = json::parse(lines[1])
        .ok()
        .and_then(|v| Response::from_json(&v).ok())
        .is_some_and(|r| r.result.is_ok());
    if !good_ok {
        t.violations.push(format!(
            "connection did not serve a valid frame after a malformed one: {}",
            lines[1]
        ));
    }
}

/// Submits a valid request on a connection whose client disconnects
/// mid-response; the server must shrug it off (no panic, no violation).
fn chaos_disconnect(
    server: &Server,
    rng: &mut ChaCha8Rng,
    pool: &[PoolEntry],
    tally: &Mutex<Tally>,
) {
    let entry = &pool[rng.gen_range(0..pool.len())];
    let req = Request {
        id: 13,
        tenant: "chaos".to_string(),
        kind: QueryKind::Static,
        deadline_ms: None,
        trip_at_phase: None,
        plan: PlanSource::Family {
            name: entry.family.to_string(),
            n: entry.n,
            seed: entry.seed,
        },
        input: None,
    };
    let mut frames = Vec::new();
    let _ = writeln!(frames, "{}", req.to_json().render());
    let _ = writeln!(frames, "{}", req.to_json().render());
    // Allow a handful of bytes through, then break the pipe.
    let cut = rng.gen_range(0..32usize);
    server.serve_connection(frames.as_slice(), Disconnecting { remaining: cut });
    let mut t = tally.lock().expect("tally lock");
    t.wire_faults += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature soak: the full chaos schedule at a size quick enough
    /// for the unit suite, all invariants enforced.
    #[test]
    fn mini_soak_holds_all_invariants() {
        let cfg = SoakConfig {
            requests: 400,
            clients: 4,
            batches: 2,
            tenant_budget: 150_000,
            ..SoakConfig::smoke()
        };
        let report = run_soak(&cfg);
        assert!(report.passed(), "soak violations: {:#?}", report.violations);
        assert!(report.submitted >= 300, "typed path exercised");
        assert!(report.ok_full > 0);
        assert!(report.degraded > 0, "chaos must exercise degradation");
        assert!(report.wire_faults > 0, "chaos must exercise the wire");
        assert!(report.budget_refusals > 0, "spender storm must exhaust");
        assert!(
            report.batch_hit_rates.len() == 2
                && report.batch_hit_rates[1] >= report.batch_hit_rates[0]
        );
        // The JSON render is parseable.
        let parsed = json::parse(&report.to_json(&cfg)).unwrap();
        assert_eq!(
            parsed.get("requests").and_then(json::Json::as_usize),
            Some(report.submitted)
        );
    }
}
