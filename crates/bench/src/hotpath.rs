//! Hot-path wall-clock benchmark: the dense fast paths (engine request
//! routing, arena reuse, IR batch interpretation) against the reference
//! engines they replaced.
//!
//! Every point runs the *same* workload twice — once on the default
//! [`Routing::Dense`] configuration, once on [`Routing::Reference`] (the
//! pre-fast-path map-based engines) — records best-of-`reps` wall-clock
//! for both, and checks the two runs' measured model costs are identical.
//! A speedup claim over a run that computed something else would be
//! meaningless, so equality is part of the benchmark result, and the
//! `table_hotpath` binary fails on any mismatch.
//!
//! The grid carries two suites:
//!
//! * **`hot`** — request-dense microbenchmarks of the routing layer itself
//!   (high-contention scatter phases, BSP message exchanges, the IR batch
//!   interpreter on wide static schedules). Wall-clock here is dominated by
//!   the subsystem this PR replaced, so these points are the headline
//!   speedup the perf trajectory tracks.
//! * **`e2e`** — the end-to-end Section 8 table rows (seeded input
//!   generation hoisted out of the timed region: it is engine-independent
//!   and would otherwise dominate the small BSP rows, drowning the engine
//!   comparison in generator noise). These spend most of their time in
//!   per-processor program logic that is *shared* by both paths, so their
//!   speedups are structurally smaller; they are reported to show the
//!   fast path's effect on user-visible table regeneration.
//! * **`compiled`** — the straight-line compiled schedules
//!   ([`run_compiled_batch`] on a plan lowered once, outside the timer)
//!   against the PR 4 dense batch interpreter ([`execute_plan`]) on the
//!   same plan. Equality here is three-way: the compiled run must match
//!   both the interpreted run and the reference run bit for bit.

use std::time::Instant;

use parbounds::ir::{
    compile_plan, execute_plan, execute_plan_reference, fan_in_read_tree, fan_in_write_tree,
    prefix_sweep, run_compiled_batch, CombineOp, CompileOutcome, CompiledPlan, ModelKind,
    PhasePlan,
};
use parbounds::models::{
    BspFnProgram, BspMachine, FnProgram, GsmEnv, GsmFnProgram, GsmMachine, Parallelism, PhaseEnv,
    Program, QsmMachine, Routing, Status, Superstep, Word,
};
use parbounds::tables::Problem;
use parbounds::{bsp_time_row_on_input, qsm_time_row_on_input, row_input, sqsm_time_row_on_input};

use crate::par_sweep;

/// One benchmarked grid point: a workload at size `n`, timed on both paths.
#[derive(Debug, Clone)]
pub struct HotPoint {
    /// Engine exercised: "QSM", "s-QSM", "BSP", or "IR".
    pub engine: &'static str,
    /// Workload name.
    pub workload: String,
    /// Input size.
    pub n: usize,
    /// Best-of-reps wall-clock of the dense fast path, seconds.
    pub dense_s: f64,
    /// Best-of-reps wall-clock of the reference path, seconds.
    pub reference_s: f64,
    /// Whether the two paths produced identical measured results.
    pub equal: bool,
    /// Which suite the point belongs to: `"hot"` (routing-layer
    /// microbenchmark, part of the headline geomean), `"e2e"` (Section 8
    /// table row, reported for context), or `"compiled"` (straight-line
    /// compiled schedule vs the dense interpreter it was lowered from).
    pub suite: &'static str,
}

impl HotPoint {
    /// Wall-clock speedup of the fast path over the reference path.
    pub fn speedup(&self) -> f64 {
        self.reference_s / self.dense_s.max(1e-12)
    }
}

/// One thread-scaling measurement: a hot workload at size `n` executed
/// with the intra-phase parallel executor ([`Parallelism::Fixed`]) at a
/// given host worker count. The `threads == 1` point of each
/// (engine, workload, n) group is the baseline its siblings are scaled
/// against.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Engine exercised.
    pub engine: &'static str,
    /// Workload name.
    pub workload: String,
    /// Input size.
    pub n: usize,
    /// Host worker threads the run used.
    pub threads: usize,
    /// Best-of-reps wall-clock, seconds.
    pub seconds: f64,
    /// Whether the run's observable state matched the single-threaded run.
    pub equal: bool,
}

/// The full benchmark result: every grid point plus run configuration.
#[derive(Debug, Clone)]
pub struct HotReport {
    /// Benchmarked points.
    pub points: Vec<HotPoint>,
    /// Thread-scaling curve of the hot workloads (largest grid size only).
    pub scaling: Vec<ScalePoint>,
    /// Host threads available when the report was produced — scaling
    /// numbers measured with more workers than host threads cannot show
    /// speedup, so consumers must gate on this.
    pub host_threads: usize,
    /// Repetitions per point (best-of).
    pub reps: u32,
    /// Whether this was the reduced smoke grid.
    pub smoke: bool,
}

impl HotReport {
    /// Largest input size in the grid.
    pub fn largest_n(&self) -> usize {
        self.points.iter().map(|p| p.n).max().unwrap_or(0)
    }

    fn geomean_at_largest_n(&self, suite: &str) -> f64 {
        let n = self.largest_n();
        let at: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.n == n && p.suite == suite)
            .map(HotPoint::speedup)
            .collect();
        if at.is_empty() {
            return 1.0;
        }
        (at.iter().map(|s| s.ln()).sum::<f64>() / at.len() as f64).exp()
    }

    /// Geometric-mean speedup of the `hot` suite on the largest-`n` sweep —
    /// the headline number the perf trajectory tracks (routing-layer
    /// microbenchmarks, where the replaced subsystem dominates wall-clock).
    pub fn largest_n_geomean_speedup(&self) -> f64 {
        self.geomean_at_largest_n("hot")
    }

    /// Geometric-mean speedup of the end-to-end Section 8 rows at the
    /// largest `n` (program logic shared by both paths dilutes these).
    pub fn largest_n_e2e_geomean_speedup(&self) -> f64 {
        self.geomean_at_largest_n("e2e")
    }

    /// Geometric-mean speedup of the compiled straight-line schedules over
    /// the dense batch interpreter at the largest `n` — the headline number
    /// of the plan-compilation work.
    pub fn largest_n_compiled_geomean_speedup(&self) -> f64 {
        self.geomean_at_largest_n("compiled")
    }

    /// The slowest point of the whole grid relative to its reference —
    /// the "dense never loses" floor. Returns the minimum speedup across
    /// every suite and size together with the point that attains it.
    pub fn min_speedup(&self) -> Option<(f64, &HotPoint)> {
        self.points
            .iter()
            .map(|p| (p.speedup(), p))
            .min_by(|a, b| a.0.total_cmp(&b.0))
    }

    /// True when every point's dense run matched its reference run and
    /// every scaling point matched its single-threaded baseline.
    pub fn all_equal(&self) -> bool {
        self.points.iter().all(|p| p.equal) && self.scaling.iter().all(|p| p.equal)
    }

    /// Geometric-mean wall-clock speedup of the `threads`-worker scaling
    /// points over their single-threaded baselines (same engine, workload
    /// and size). 1.0 when no such points exist.
    pub fn scaling_geomean(&self, threads: usize) -> f64 {
        let mut ratios = Vec::new();
        for p in self.scaling.iter().filter(|p| p.threads == threads) {
            let base = self.scaling.iter().find(|b| {
                b.threads == 1 && b.engine == p.engine && b.workload == p.workload && b.n == p.n
            });
            if let Some(b) = base {
                ratios.push(b.seconds / p.seconds.max(1e-12));
            }
        }
        if ratios.is_empty() {
            return 1.0;
        }
        (ratios.iter().map(|s| s.ln()).sum::<f64>() / ratios.len() as f64).exp()
    }

    /// Renders the report as JSON (hand-rolled: the workspace carries no
    /// serialization dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"table_hotpath\",\n");
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str(&format!("  \"reps\": {},\n", self.reps));
        s.push_str(&format!("  \"largest_n\": {},\n", self.largest_n()));
        s.push_str(&format!(
            "  \"largest_n_geomean_speedup\": {:.4},\n",
            self.largest_n_geomean_speedup()
        ));
        s.push_str(&format!(
            "  \"largest_n_e2e_geomean_speedup\": {:.4},\n",
            self.largest_n_e2e_geomean_speedup()
        ));
        s.push_str(&format!(
            "  \"compiled_geomean_speedup\": {:.4},\n",
            self.largest_n_compiled_geomean_speedup()
        ));
        s.push_str(&format!(
            "  \"min_speedup\": {:.4},\n",
            self.min_speedup().map(|(v, _)| v).unwrap_or(1.0)
        ));
        s.push_str(&format!("  \"all_equal\": {},\n", self.all_equal()));
        s.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        s.push_str(&format!(
            "  \"scaling_geomean_at_4_threads\": {:.4},\n",
            self.scaling_geomean(4)
        ));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"engine\": \"{}\", \"workload\": \"{}\", \"suite\": \"{}\", \
                 \"n\": {}, \
                 \"dense_s\": {:.6}, \"reference_s\": {:.6}, \"speedup\": {:.3}, \
                 \"equal\": {}}}{}\n",
                p.engine,
                p.workload,
                p.suite,
                p.n,
                p.dense_s,
                p.reference_s,
                p.speedup(),
                p.equal,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"thread_scaling\": [\n");
        for (i, p) in self.scaling.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"engine\": \"{}\", \"workload\": \"{}\", \"n\": {}, \
                 \"threads\": {}, \"seconds\": {:.6}, \"equal\": {}}}{}\n",
                p.engine,
                p.workload,
                p.n,
                p.threads,
                p.seconds,
                p.equal,
                if i + 1 < self.scaling.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Wall-clock floor for one timed batch. Microsecond-scale runs are
/// dominated by cold caches and timer overhead when measured one call at
/// a time, which systematically penalizes whichever side is timed first;
/// batching until the timed region clears this floor makes sub-50us
/// workloads measurable (noise well under the `--check-floor` margin)
/// without affecting large ones (batch size 1).
const MIN_TIMED_BATCH_S: f64 = 1e-2;

/// One untimed warmup call (absorbing first-touch effects: page faults,
/// allocator growth, lazy initialization) that also calibrates how many
/// calls a timed region needs to clear [`MIN_TIMED_BATCH_S`].
fn calibrate<T>(f: &mut impl FnMut() -> T) -> (u64, T) {
    let t0 = Instant::now();
    let out = f();
    let warm = t0.elapsed().as_secs_f64();
    let batch = if warm > 0.0 {
        ((MIN_TIMED_BATCH_S / warm).ceil() as u64).clamp(1, 4096)
    } else {
        4096
    };
    (batch, out)
}

/// Times one batch of `batch` calls, returning the per-call mean.
fn timed_batch<T>(batch: u64, f: &mut impl FnMut() -> T, out: &mut T) -> f64 {
    let t0 = Instant::now();
    for _ in 0..batch {
        *out = f();
    }
    t0.elapsed().as_secs_f64() / batch as f64
}

/// Times `f` (seconds per call, best of `reps`), carrying its result out.
fn best_of<T>(reps: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let (batch, mut out) = calibrate(&mut f);
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        best = best.min(timed_batch(batch, &mut f, &mut out));
    }
    (best, out)
}

/// Times a dense/reference pair over **alternating** batches, keeping the
/// best rep per side. Consecutive same-side blocks let a burst of host
/// interference (scheduler steal, frequency excursions) land entirely on
/// one side and bias the ratio; alternation spreads any burst across
/// both. Microsecond-scale pairs (batch > 1) get extra alternations —
/// they are the ones where a single polluted batch would dominate.
fn best_of_pair<T, U>(
    reps: u32,
    mut fa: impl FnMut() -> T,
    mut fb: impl FnMut() -> U,
) -> ((f64, T), (f64, U)) {
    let (batch_a, mut out_a) = calibrate(&mut fa);
    let (batch_b, mut out_b) = calibrate(&mut fb);
    let reps = if batch_a > 1 || batch_b > 1 {
        reps.max(5)
    } else {
        reps.max(1)
    };
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    for _ in 0..reps {
        best_a = best_a.min(timed_batch(batch_a, &mut fa, &mut out_a));
        best_b = best_b.min(timed_batch(batch_b, &mut fb, &mut out_b));
    }
    ((best_a, out_a), (best_b, out_b))
}

const SEED: u64 = 0xbe7c;

/// A grid point descriptor, expanded by [`run_grid`].
#[derive(Debug, Clone, Copy)]
enum Spec {
    Qsm(Problem, usize, u64),
    Sqsm(Problem, usize, u64),
    Bsp(Problem, usize, u64, u64, usize),
    QsmScatter(usize),
    SqsmScatter(usize),
    GsmScatter(usize),
    BspExchange(usize),
    IrReadTree(usize, u64),
    IrPrefix(usize, u64),
    IrcReadTree(usize, u64),
    IrcPrefix(usize, u64),
    IrcWriteTree(usize, u64),
}

/// Lowers `plan` once (outside the timer — one-shot compilation is the
/// point of the compiled path) and times the straight-line schedule
/// against the dense batch interpreter on the same plan. The equality gate
/// is three-way: compiled == interpreted == reference.
fn run_compiled_spec(
    plan: &PhasePlan,
    machine: &QsmMachine,
    input: &[Word],
    workload: String,
    n: usize,
    reps: u32,
) -> HotPoint {
    let compiled: CompiledPlan = match compile_plan(plan) {
        Ok(CompileOutcome::Compiled(c)) => c,
        Ok(CompileOutcome::Ineligible(why)) => {
            panic!(
                "'{}' must take the compiled path: {}",
                plan.family,
                why.describe()
            )
        }
        Err(e) => panic!("'{}' failed to compile: {e}", plan.family),
    };
    let ((ds, dr), (rs, rr)) = best_of_pair(
        reps,
        || run_compiled_batch(plan, &compiled, machine, input),
        || execute_plan(plan, input),
    );
    let reference = execute_plan_reference(plan, input);
    HotPoint {
        engine: "IR",
        workload,
        n,
        dense_s: ds,
        reference_s: rs,
        equal: matches!(
            (&dr, &rr, &reference),
            (Ok(c), Ok(i), Ok(r)) if c == i && i == r
        ),
        suite: "compiled",
    }
}

/// Request-dense scatter rounds: `n` processors each issue two reads across
/// the input region and two writes into `n/8` high-contention cells per
/// phase, for [`SCATTER_PHASES`] phases. Per-processor program logic is a
/// handful of adds, so wall-clock is dominated by the engine's request
/// routing — exactly the subsystem the dense tables replaced.
fn scatter_program(n: usize) -> impl Program<Proc = Word> {
    let buckets = (n / 8).max(1);
    FnProgram::new(
        n,
        |_pid| 0 as Word,
        move |pid, acc: &mut Word, env: &mut PhaseEnv<'_>| {
            let t = env.phase();
            *acc += env.delivered().iter().map(|&(_, v)| v).sum::<Word>();
            for j in 0..2usize {
                env.read((pid * 7 + t * 13 + j * 29) % n);
                env.write(n + ((pid + j * 11) % buckets), *acc + pid as Word);
            }
            if t + 1 >= SCATTER_PHASES {
                Status::Done
            } else {
                Status::Active
            }
        },
    )
}

const SCATTER_PHASES: usize = 8;
const EXCHANGE_STEPS: usize = 32;
const EXCHANGE_FANOUT: usize = 16;

/// GSM variant of the scatter rounds: same access pattern as
/// [`scatter_program`], but reads deliver full accumulated cell contents
/// (strong queuing), so the engine's routing layer moves strictly more
/// data per request. Reads stay in the γ-packed input region (read-only by
/// the Section 2.2 placement invariant); writes land above it.
fn gsm_scatter_program(n: usize) -> impl parbounds::models::GsmProgram<Proc = Word> {
    let buckets = (n / 8).max(1);
    GsmFnProgram::new(
        n,
        |_pid| 0 as Word,
        move |pid, acc: &mut Word, env: &mut GsmEnv<'_>| {
            let t = env.phase();
            *acc += env
                .delivered()
                .iter()
                .map(|(_, c)| c.iter().sum::<Word>())
                .sum::<Word>();
            for j in 0..2usize {
                env.read((pid * 7 + t * 13 + j * 29) % n);
                env.write(n + ((pid + j * 11) % buckets), *acc + pid as Word);
            }
            if t + 1 >= SCATTER_PHASES {
                Status::Done
            } else {
                Status::Active
            }
        },
    )
}

fn run_gsm_scatter(n: usize, reps: u32) -> HotPoint {
    let prog = gsm_scatter_program(n);
    let input: Vec<Word> = (0..n as Word).collect();
    let machine = GsmMachine::new(1, 2, 1);
    let dense = machine.clone().with_routing(Routing::Dense);
    let reference = machine.with_reference_routing();
    let ((ds, dr), (rs, rr)) = best_of_pair(
        reps,
        || dense.run(&prog, &input),
        || reference.run(&prog, &input),
    );
    HotPoint {
        engine: "GSM",
        workload: "scatter/8x2rw".into(),
        n,
        dense_s: ds,
        reference_s: rs,
        equal: match (dr, rr) {
            (Ok(d), Ok(r)) => d.ledger == r.ledger && d.memory == r.memory,
            _ => false,
        },
        suite: "hot",
    }
}

/// Message-exchange supersteps: every component sends [`EXCHANGE_FANOUT`]
/// point-to-point messages per superstep for [`EXCHANGE_STEPS`] supersteps.
/// The reference engine allocates fresh per-destination inboxes every
/// superstep; the pooled engine recycles them, which is what this point
/// measures.
fn exchange_program(p: usize) -> impl parbounds::models::BspProgram<Proc = Word> {
    BspFnProgram::new(
        |_pid: usize, local: &[Word]| local.iter().sum::<Word>(),
        move |pid: usize, acc: &mut Word, ctx: &mut Superstep| {
            let t = ctx.step();
            // Masked: the fold otherwise grows ~fanout× per superstep and
            // overflows a Word within a few supersteps.
            *acc = (*acc + ctx.inbox().iter().map(|m| m.value).sum::<Word>()) & 0x7fff_ffff;
            for j in 0..EXCHANGE_FANOUT {
                ctx.send((pid * 31 + j * 97 + t) % p, j as Word, *acc);
            }
            if t + 1 >= EXCHANGE_STEPS {
                Status::Done
            } else {
                Status::Active
            }
        },
    )
}

/// The `p` a size-`n` point runs BSP workloads at.
fn bsp_p(n: usize) -> usize {
    (n / 64).clamp(4, 1024)
}

fn run_scatter(machine: QsmMachine, engine: &'static str, n: usize, reps: u32) -> HotPoint {
    let prog = scatter_program(n);
    let input: Vec<Word> = (0..n as Word).collect();
    let dense = machine
        .clone()
        .with_routing(Routing::Dense)
        .with_mem_limit(2 * n + 16);
    let reference = machine.with_reference_routing().with_mem_limit(2 * n + 16);
    let ((ds, dr), (rs, rr)) = best_of_pair(
        reps,
        || dense.run(&prog, &input),
        || reference.run(&prog, &input),
    );
    HotPoint {
        engine,
        workload: "scatter/8x2rw".into(),
        n,
        dense_s: ds,
        reference_s: rs,
        equal: match (dr, rr) {
            (Ok(d), Ok(r)) => d.ledger == r.ledger && d.memory == r.memory,
            _ => false,
        },
        suite: "hot",
    }
}

fn run_spec(spec: Spec, reps: u32) -> HotPoint {
    match spec {
        Spec::Qsm(problem, n, g) => {
            let dense = QsmMachine::qsm(g).with_routing(Routing::Dense);
            let reference = QsmMachine::qsm(g).with_reference_routing();
            let input = row_input(problem, n, SEED);
            let ((ds, dr), (rs, rr)) = best_of_pair(
                reps,
                || qsm_time_row_on_input(&dense, &input),
                || qsm_time_row_on_input(&reference, &input),
            );
            HotPoint {
                engine: "QSM",
                workload: format!("{problem:?}/g={g}"),
                n,
                dense_s: ds,
                reference_s: rs,
                equal: match (dr, rr) {
                    (Ok(d), Ok(r)) => d.measured == r.measured,
                    _ => false,
                },
                suite: "e2e",
            }
        }
        Spec::Sqsm(problem, n, g) => {
            let dense = QsmMachine::sqsm(g).with_routing(Routing::Dense);
            let reference = QsmMachine::sqsm(g).with_reference_routing();
            let input = row_input(problem, n, SEED);
            let ((ds, dr), (rs, rr)) = best_of_pair(
                reps,
                || sqsm_time_row_on_input(&dense, &input),
                || sqsm_time_row_on_input(&reference, &input),
            );
            HotPoint {
                engine: "s-QSM",
                workload: format!("{problem:?}/g={g}"),
                n,
                dense_s: ds,
                reference_s: rs,
                equal: match (dr, rr) {
                    (Ok(d), Ok(r)) => d.measured == r.measured,
                    _ => false,
                },
                suite: "e2e",
            }
        }
        Spec::Bsp(problem, n, g, l, p) => {
            let dense = BspMachine::new(p, g, l)
                .expect("valid BSP config")
                .with_routing(Routing::Dense);
            let reference = BspMachine::new(p, g, l)
                .expect("valid BSP config")
                .with_reference_routing();
            let input = row_input(problem, n, SEED);
            let ((ds, dr), (rs, rr)) = best_of_pair(
                reps,
                || bsp_time_row_on_input(&dense, &input),
                || bsp_time_row_on_input(&reference, &input),
            );
            HotPoint {
                engine: "BSP",
                workload: format!("{problem:?}/p={p}"),
                n,
                dense_s: ds,
                reference_s: rs,
                equal: match (dr, rr) {
                    (Ok(d), Ok(r)) => d.measured == r.measured,
                    _ => false,
                },
                suite: "e2e",
            }
        }
        Spec::QsmScatter(n) => run_scatter(QsmMachine::qsm(4), "QSM", n, reps),
        Spec::SqsmScatter(n) => run_scatter(QsmMachine::sqsm(4), "s-QSM", n, reps),
        Spec::GsmScatter(n) => run_gsm_scatter(n, reps),
        Spec::BspExchange(n) => {
            let p = bsp_p(n);
            let prog = exchange_program(p);
            let input: Vec<Word> = (0..(p * 4) as Word).collect();
            let dense = BspMachine::new(p, 2, 16)
                .expect("valid BSP config")
                .with_routing(Routing::Dense);
            let reference = BspMachine::new(p, 2, 16)
                .expect("valid BSP config")
                .with_reference_routing();
            let ((ds, dr), (rs, rr)) = best_of_pair(
                reps,
                || dense.run(&prog, &input),
                || reference.run(&prog, &input),
            );
            HotPoint {
                engine: "BSP",
                workload: format!("exchange/p={p}"),
                n,
                dense_s: ds,
                reference_s: rs,
                equal: match (dr, rr) {
                    (Ok(d), Ok(r)) => d.ledger == r.ledger && d.states == r.states,
                    _ => false,
                },
                suite: "hot",
            }
        }
        Spec::IrReadTree(n, g) => {
            let plan = fan_in_read_tree(n, 3, CombineOp::Sum, ModelKind::SQsm { g });
            let input: Vec<Word> = (0..n as Word).collect();
            let ((ds, dr), (rs, rr)) = best_of_pair(
                reps,
                || execute_plan(&plan, &input),
                || execute_plan_reference(&plan, &input),
            );
            HotPoint {
                engine: "IR",
                workload: format!("read_tree/g={g}"),
                n,
                dense_s: ds,
                reference_s: rs,
                equal: matches!((dr, rr), (Ok(d), Ok(r)) if d == r),
                suite: "hot",
            }
        }
        Spec::IrPrefix(n, g) => {
            let plan = prefix_sweep(n, 4, CombineOp::Sum, ModelKind::Qsm { g });
            let input: Vec<Word> = (0..n as Word).collect();
            let ((ds, dr), (rs, rr)) = best_of_pair(
                reps,
                || execute_plan(&plan, &input),
                || execute_plan_reference(&plan, &input),
            );
            HotPoint {
                engine: "IR",
                workload: format!("prefix_sweep/g={g}"),
                n,
                dense_s: ds,
                reference_s: rs,
                equal: matches!((dr, rr), (Ok(d), Ok(r)) if d == r),
                suite: "hot",
            }
        }
        Spec::IrcReadTree(n, g) => {
            let plan = fan_in_read_tree(n, 3, CombineOp::Sum, ModelKind::SQsm { g });
            let input: Vec<Word> = (0..n as Word).collect();
            run_compiled_spec(
                &plan,
                &QsmMachine::sqsm(g),
                &input,
                format!("read_tree/g={g}"),
                n,
                reps,
            )
        }
        Spec::IrcPrefix(n, g) => {
            let plan = prefix_sweep(n, 4, CombineOp::Sum, ModelKind::Qsm { g });
            let input: Vec<Word> = (0..n as Word).collect();
            run_compiled_spec(
                &plan,
                &QsmMachine::qsm(g),
                &input,
                format!("prefix_sweep/g={g}"),
                n,
                reps,
            )
        }
        Spec::IrcWriteTree(n, g) => {
            // All-ones input saturates every guard, so the guarded-store
            // machinery (the part the sharded apply must merge) is fully
            // exercised, not skipped.
            let plan = fan_in_write_tree(n, 4, ModelKind::Qsm { g });
            let input: Vec<Word> = vec![1; n.max(1)];
            run_compiled_spec(
                &plan,
                &QsmMachine::qsm(g),
                &input,
                format!("write_tree/g={g}"),
                n,
                reps,
            )
        }
    }
}

/// Thread counts the scaling sweep measures; `1` is the baseline.
pub const SCALING_THREADS: [usize; 3] = [1, 2, 4];

/// Runs the thread-scaling sweep: the hot engine workloads at size `n`,
/// once per entry of [`SCALING_THREADS`], timed best-of-`reps`. Runs
/// strictly serially (each measured run is itself multi-threaded, so a
/// parallel sweep would let the points steal cores from each other) and
/// cross-checks every run's observable state against the single-threaded
/// baseline — a scaling curve over runs that computed different things
/// would be meaningless.
fn run_scaling(n: usize, reps: u32) -> Vec<ScalePoint> {
    let mut out = Vec::new();

    let input: Vec<Word> = (0..n as Word).collect();
    for (engine, machine) in [("QSM", QsmMachine::qsm(4)), ("s-QSM", QsmMachine::sqsm(4))] {
        let prog = scatter_program(n);
        let machine = machine
            .with_routing(Routing::Dense)
            .with_mem_limit(2 * n + 16);
        let base = machine.run(&prog, &input);
        for &threads in &SCALING_THREADS {
            let par = machine
                .clone()
                .with_parallelism(Parallelism::Fixed(threads));
            let (s, r) = best_of(reps, || par.run(&prog, &input));
            out.push(ScalePoint {
                engine,
                workload: "scatter/8x2rw".into(),
                n,
                threads,
                seconds: s,
                equal: matches!(
                    (&base, &r),
                    (Ok(b), Ok(v)) if b.ledger == v.ledger && b.memory == v.memory
                ),
            });
        }
    }

    {
        let prog = gsm_scatter_program(n);
        let machine = GsmMachine::new(1, 2, 1).with_routing(Routing::Dense);
        let base = machine.run(&prog, &input);
        for &threads in &SCALING_THREADS {
            let par = machine
                .clone()
                .with_parallelism(Parallelism::Fixed(threads));
            let (s, r) = best_of(reps, || par.run(&prog, &input));
            out.push(ScalePoint {
                engine: "GSM",
                workload: "scatter/8x2rw".into(),
                n,
                threads,
                seconds: s,
                equal: matches!(
                    (&base, &r),
                    (Ok(b), Ok(v)) if b.ledger == v.ledger && b.memory == v.memory
                ),
            });
        }
    }

    {
        let p = bsp_p(n);
        let prog = exchange_program(p);
        let input: Vec<Word> = (0..(p * 4) as Word).collect();
        let machine = BspMachine::new(p, 2, 16)
            .expect("valid BSP config")
            .with_routing(Routing::Dense);
        let base = machine.run(&prog, &input);
        for &threads in &SCALING_THREADS {
            let par = machine
                .clone()
                .with_parallelism(Parallelism::Fixed(threads));
            let (s, r) = best_of(reps, || par.run(&prog, &input));
            out.push(ScalePoint {
                engine: "BSP",
                workload: format!("exchange/p={p}"),
                n,
                threads,
                seconds: s,
                equal: matches!(
                    (&base, &r),
                    (Ok(b), Ok(v)) if b.ledger == v.ledger && b.states == v.states
                ),
            });
        }
    }

    {
        // The compiled executor's sharded apply stage: a dense prefix sweep
        // lowered once, then run at each worker count. The baseline is the
        // sequential straight-line loop; every multi-threaded run must be
        // bit-identical to it.
        let plan = prefix_sweep(n, 4, CombineOp::Sum, ModelKind::Qsm { g: 2 });
        let input: Vec<Word> = (0..n as Word).collect();
        let compiled = match compile_plan(&plan) {
            Ok(CompileOutcome::Compiled(c)) => c,
            other => panic!("prefix sweep must compile, got {other:?}"),
        };
        let machine = QsmMachine::qsm(2);
        let base = run_compiled_batch(&plan, &compiled, &machine, &input);
        for &threads in &SCALING_THREADS {
            let par = machine
                .clone()
                .with_parallelism(Parallelism::Fixed(threads));
            let (s, r) = best_of(reps, || run_compiled_batch(&plan, &compiled, &par, &input));
            out.push(ScalePoint {
                engine: "IR",
                workload: "compiled_prefix/g=2".into(),
                n,
                threads,
                seconds: s,
                equal: matches!((&base, &r), (Ok(b), Ok(v)) if b == v),
            });
        }
    }

    out
}

/// Runs the full grid: every engine × workload at every `n` in `ns`, each
/// timed best-of-`reps` on both paths, plus the thread-scaling sweep at
/// the largest `n`. Dense-vs-reference points sweep in parallel (see
/// [`crate::par_sweep`]); each individual timing is single-threaded. The
/// scaling sweep runs serially afterwards, since its runs are themselves
/// multi-threaded.
pub fn run_grid(ns: &[usize], reps: u32, smoke: bool) -> HotReport {
    let mut specs = Vec::new();
    for &n in ns {
        specs.push(Spec::QsmScatter(n));
        specs.push(Spec::SqsmScatter(n));
        specs.push(Spec::GsmScatter(n));
        specs.push(Spec::BspExchange(n));
        specs.push(Spec::IrReadTree(n, 4));
        specs.push(Spec::IrPrefix(n, 2));
        specs.push(Spec::IrcReadTree(n, 4));
        specs.push(Spec::IrcPrefix(n, 2));
        specs.push(Spec::IrcWriteTree(n, 4));
        for problem in [Problem::Parity, Problem::Or, Problem::Lac] {
            specs.push(Spec::Qsm(problem, n, 8));
            specs.push(Spec::Sqsm(problem, n, 4));
            specs.push(Spec::Bsp(problem, n, 4, 16, bsp_p(n).min(512)));
        }
    }
    let points = par_sweep(&specs, |&spec| run_spec(spec, reps));
    // The scaling sweep needs enough work per phase for the shard/merge
    // machinery to amortize, so its size is floored at 4096 even on the
    // smoke grid — otherwise the curve measures channel overhead, not the
    // compute stage.
    let scaling = match ns.iter().max() {
        Some(&n) => run_scaling(n.max(4096), reps),
        None => Vec::new(),
    };
    HotReport {
        points,
        scaling,
        host_threads: std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1),
        reps,
        smoke,
    }
}

/// The default size sweep of the hot-path table (matches
/// [`crate::n_sweep`], whose largest point is `2^16`).
pub fn default_ns() -> Vec<usize> {
    crate::n_sweep()
}

/// The reduced grid for CI smoke runs: small sizes, still every engine.
pub fn smoke_ns() -> Vec<usize> {
    vec![1 << 8, 1 << 10]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_runs_and_agrees() {
        let report = run_grid(&[64], 1, true);
        assert!(report.all_equal(), "dense and reference paths diverged");
        assert!(report.points.len() > 5);
        // Satellite coverage: the GSM dense-routing row is part of the grid.
        assert!(report
            .points
            .iter()
            .any(|p| p.engine == "GSM" && p.suite == "hot"));
        // Satellite coverage: the compiled suite rows are part of the grid
        // and their three-way equality (compiled == interpreted ==
        // reference) held.
        assert!(report
            .points
            .iter()
            .any(|p| p.suite == "compiled" && p.equal));
        assert!(report.largest_n_compiled_geomean_speedup() > 0.0);
        // Thread-scaling curve: four engines plus the compiled prefix
        // sweep × SCALING_THREADS, all bit-identical to the
        // single-threaded baseline.
        assert_eq!(report.scaling.len(), 5 * SCALING_THREADS.len());
        assert!(report
            .scaling
            .iter()
            .any(|p| p.workload == "compiled_prefix/g=2"));
        assert!(report.host_threads >= 1);
        assert!(report.scaling_geomean(1) > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"table_hotpath\""));
        assert!(json.contains("\"all_equal\": true"));
        assert!(json.contains("\"compiled_geomean_speedup\""));
        assert!(json.contains("\"host_threads\""));
        assert!(json.contains("\"thread_scaling\""));
    }
}
