//! # parbounds-models
//!
//! Cost-exact simulators for the four models of parallel computation studied
//! in MacKenzie & Ramachandran, *Computational Bounds for Fundamental
//! Problems on General-Purpose Parallel Models* (SPAA 1998):
//!
//! * [`QsmMachine`] — the Queuing Shared Memory model QSM(g), its symmetric
//!   variant s-QSM(g), the QRQW PRAM special case (g = 1), and the
//!   unit-time-concurrent-reads variant of Theorem 3.1;
//! * [`GsmMachine`] — the Generalized Shared Memory lower-bound model
//!   GSM(α, β, γ) with strong-queuing (information-merging) cells;
//! * [`BspMachine`] — Valiant's Bulk-Synchronous Parallel model BSP(p, g, L).
//!
//! Programs are bulk-synchronous descriptions (traits [`Program`],
//! [`GsmProgram`], [`BspProgram`]); the machines execute them and charge
//! *exactly* the per-phase cost formulas of Section 2 of the paper, recording
//! everything in a [`CostLedger`]. The ledger supports the Section 2.3
//! *rounds* predicate, and the traced execution modes expose the raw
//! `Trace(v, t, f)` material the paper's lower-bound proofs quantify over.
//!
//! ## Quick example
//!
//! ```
//! use parbounds_models::{FnProgram, PhaseEnv, QsmMachine, Status, Word};
//!
//! // Two processors each read one input cell, then write it back shifted.
//! let prog = FnProgram::new(
//!     2,
//!     |_pid| 0 as Word,
//!     |pid, acc: &mut Word, env: &mut PhaseEnv<'_>| match env.phase() {
//!         0 => { env.read(pid); Status::Active }
//!         _ => {
//!             *acc = env.delivered()[0].1;
//!             env.write(100 + pid, *acc);
//!             Status::Done
//!         }
//!     },
//! );
//! let machine = QsmMachine::qsm(4);
//! let result = machine.run(&prog, &[10, 32]).unwrap();
//! assert_eq!(result.memory.get(100), 10);
//! assert_eq!(result.memory.get(101), 32);
//! // Each phase moves one word per processor: cost g per phase.
//! assert_eq!(result.time(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bsp;
pub mod cancel;
pub mod contract;
mod cost;
mod error;
pub mod exec;
pub mod faults;
mod gsm;
pub mod par;
mod qsm;
mod shared;
pub mod work;

pub use bsp::{
    BspFnProgram, BspMachine, BspProgram, BspRunResult, BspStepTrace, BspTrace, Msg, Superstep,
};
pub use cancel::CancelToken;
pub use contract::{ContractMetric, ContractParams, CostContract};
pub use cost::{round_budget_bsp, round_budget_gsm, round_budget_qsm, CostLedger, PhaseCost};
pub use error::{ModelError, Result};
pub use exec::{ExecOptions, Routing, DEFAULT_TRACE_PHASE_CAP, DENSE_ADDR_CAP};
pub use faults::{ChoicePoint, FaultInjector, FaultLog, FaultPlan, WinnerPolicy};
pub use gsm::{
    CellContent, GsmEnv, GsmFnProgram, GsmMachine, GsmMemory, GsmPhaseTrace, GsmProgram,
    GsmRunResult, GsmTrace,
};
pub use par::Parallelism;
pub use qsm::{ExecTrace, PhaseTrace, QsmFlavor, QsmMachine, RunResult};
pub use shared::{Addr, FnProgram, Memory, PhaseEnv, Program, Status, Word};
