//! Error types for model-rule violations and runaway executions.

use std::fmt;

/// An error raised while executing a program on one of the simulators.
///
/// Most variants correspond to *model rule* violations — programs that ask
/// the machine to do something the QSM/s-QSM/GSM/BSP definitions forbid.
/// Surfacing these as errors (rather than silently picking a semantics) is
/// deliberate: the paper's lower bounds are statements about what legal
/// programs can do, so the simulators must reject illegal ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A phase both read and wrote the same shared-memory cell. Concurrent
    /// reads or writes (but not both) to a location are permitted in a
    /// QSM/s-QSM/GSM phase (Section 2.1).
    ReadWriteConflict {
        /// The offending cell.
        addr: usize,
        /// The phase in which the conflict occurred.
        phase: usize,
    },
    /// The program exceeded the machine's configured phase limit — almost
    /// always an algorithm bug (non-terminating phase loop).
    PhaseLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A processor id out of range was addressed (e.g. a BSP message sent
    /// to a non-existent component).
    BadProcessor {
        /// The out-of-range processor id.
        pid: usize,
        /// Number of processors the machine has.
        num_procs: usize,
    },
    /// Shared-memory footprint exceeded the configured limit.
    MemoryLimitExceeded {
        /// The offending address.
        addr: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The program asked for an invalid machine configuration (e.g. zero
    /// processors, or a BSP with L < g which the paper excludes).
    BadConfig(String),
    /// Total model time exceeded the cost budget of the attached
    /// [`crate::FaultPlan`].
    CostBudgetExceeded {
        /// The configured budget.
        budget: u64,
        /// The accumulated cost at the moment it tripped the budget.
        cost: u64,
    },
    /// Execution was aborted by an injected fault (a scheduled processor
    /// crash), or by a harness that observed an incorrect result under
    /// fault injection. A faulted run never silently reports `Ok`.
    FaultAborted {
        /// Global phase/superstep at which the run was aborted.
        phase: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// The run was cancelled cooperatively at a phase boundary — either its
    /// [`crate::CancelToken`] deadline elapsed or a caller requested
    /// cancellation. Raised before the phase's effects are applied, so a
    /// cancelled run leaves no partial shared-memory state behind.
    DeadlineExceeded {
        /// Global phase/superstep at which the cancellation was observed.
        phase: usize,
    },
    /// An I/O failure in a request path (CLI argument stream, wire frame,
    /// report file). Serving processes surface these as typed errors
    /// instead of aborting.
    Io(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ReadWriteConflict { addr, phase } => write!(
                f,
                "phase {phase}: cell {addr} both read and written in one phase \
                 (forbidden by the QSM/GSM memory rule)"
            ),
            ModelError::PhaseLimitExceeded { limit } => {
                write!(f, "execution exceeded the phase limit of {limit}")
            }
            ModelError::BadProcessor { pid, num_procs } => {
                write!(
                    f,
                    "processor id {pid} out of range (machine has {num_procs})"
                )
            }
            ModelError::MemoryLimitExceeded { addr, limit } => {
                write!(
                    f,
                    "address {addr} exceeds the shared-memory limit of {limit}"
                )
            }
            ModelError::BadConfig(msg) => write!(f, "bad machine configuration: {msg}"),
            ModelError::CostBudgetExceeded { budget, cost } => {
                write!(f, "total cost {cost} exceeded the cost budget of {budget}")
            }
            ModelError::FaultAborted { phase, reason } => {
                write!(
                    f,
                    "phase {phase}: execution aborted by injected fault: {reason}"
                )
            }
            ModelError::DeadlineExceeded { phase } => {
                write!(f, "phase {phase}: run cancelled at the phase boundary (deadline exceeded or cancellation requested)")
            }
            ModelError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience alias used throughout the simulator crates.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        let e = ModelError::ReadWriteConflict { addr: 7, phase: 3 };
        let s = e.to_string();
        assert!(s.contains("cell 7"));
        assert!(s.contains("phase 3"));

        let e = ModelError::PhaseLimitExceeded { limit: 100 };
        assert!(e.to_string().contains("100"));

        let e = ModelError::BadProcessor {
            pid: 9,
            num_procs: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));

        let e = ModelError::MemoryLimitExceeded {
            addr: 1 << 30,
            limit: 1 << 20,
        };
        assert!(e.to_string().contains("limit"));

        let e = ModelError::BadConfig("L < g".into());
        assert!(e.to_string().contains("L < g"));

        let e = ModelError::CostBudgetExceeded {
            budget: 100,
            cost: 150,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("150"));

        let e = ModelError::FaultAborted {
            phase: 4,
            reason: "crash of pid 2".into(),
        };
        assert!(e.to_string().contains("phase 4"));
        assert!(e.to_string().contains("crash of pid 2"));

        let e = ModelError::DeadlineExceeded { phase: 12 };
        assert!(e.to_string().contains("phase 12"));
        assert!(e.to_string().contains("cancelled"));

        let e = ModelError::Io("connection reset".into());
        assert!(e.to_string().contains("connection reset"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            ModelError::PhaseLimitExceeded { limit: 5 },
            ModelError::PhaseLimitExceeded { limit: 5 }
        );
        assert_ne!(
            ModelError::PhaseLimitExceeded { limit: 5 },
            ModelError::PhaseLimitExceeded { limit: 6 }
        );
    }
}
