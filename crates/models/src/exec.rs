//! Execution policies and the dense request-routing fast path.
//!
//! The cost semantics of Section 2 constrain *what* a phase is charged, not
//! *how* the simulator aggregates requests. The engines in this crate
//! therefore ship two request-routing strategies selected by
//! [`ExecOptions::routing`]:
//!
//! * [`Routing::Reference`] — the original `HashMap`/`BTreeMap` aggregation,
//!   kept verbatim as the executable specification;
//! * [`Routing::Dense`] (default) — epoch-stamped, address-indexed scratch
//!   tables ([`ContentionTable`], [`WriteRouter`]) allocated once per run and
//!   reused across phases, with a sparse fallback above
//!   [`DENSE_ADDR_CAP`].
//!
//! Both strategies are **bit-identical** observationally: same
//! [`CostLedger`](crate::cost::CostLedger), same arbitration winners (RNG
//! draws and [`FaultInjector`](crate::faults::FaultInjector) choice points
//! happen in the same order), same fault behaviour, same committed memory.
//! The differential suite in `models/tests/fastpath_equiv.rs` enforces this.
//!
//! Tracing is opt-in ([`ExecOptions::record_trace`]) and bounded: at most
//! [`ExecOptions::trace_phase_cap`] phases are retained, and traces carry a
//! `total_phases`/`truncated` header so consumers can detect capping instead
//! of silently analysing a prefix.

use std::collections::HashMap;

use crate::par::Parallelism;
use crate::shared::{Addr, Word};

/// Addresses below this bound use the dense (vector-indexed) scratch lanes;
/// higher addresses fall back to a hash map. 2^22 words of `u32` lanes is a
/// few tens of MiB at worst — large enough for every Table 1 sweep while
/// bounding worst-case footprint against the 2^34 default address limit.
pub const DENSE_ADDR_CAP: usize = 1 << 22;

/// Default number of phases retained by a recorded trace. Full traces are
/// `O(phases · requests)`; the cap turns unbounded growth on long runs into
/// an explicit, surfaced truncation (`ExecTrace::truncated`).
pub const DEFAULT_TRACE_PHASE_CAP: usize = 1 << 16;

/// Which request-routing implementation an engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Dense epoch-stamped scratch tables (the fast path, default).
    #[default]
    Dense,
    /// The original map-based aggregation (the executable specification).
    Reference,
}

/// Per-machine execution policies orthogonal to the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Record an execution trace into the run result. Off by default:
    /// sweeps and benches skip tracing entirely; `parbounds lint` turns it
    /// on via the machines' `with_tracing` builders.
    pub record_trace: bool,
    /// Maximum number of phases/supersteps retained when tracing
    /// ([`DEFAULT_TRACE_PHASE_CAP`] by default). Further phases still
    /// execute and are counted in the trace header, but their per-request
    /// detail is dropped and the trace is marked truncated.
    pub trace_phase_cap: usize,
    /// Request-routing strategy (dense fast path by default).
    pub routing: Routing,
    /// Host-thread budget for the intra-phase compute stage
    /// ([`Parallelism::Off`] by default — single-threaded, no pool).
    /// Only the dense fast path shards across threads; reference routing
    /// and fault-plan runs always execute sequentially. Results are
    /// bit-identical at every setting.
    pub parallelism: Parallelism,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            record_trace: false,
            trace_phase_cap: DEFAULT_TRACE_PHASE_CAP,
            routing: Routing::Dense,
            parallelism: Parallelism::Off,
        }
    }
}

/// Epoch-stamped per-address access counter.
///
/// `begin_phase` is O(1): instead of clearing, the table bumps an epoch and
/// lazily treats stale dense lanes as zero. Dense lanes grow on demand up to
/// `dense_cap`; addresses at or above the cap are counted in a hash map that
/// is cleared per phase (it only ever holds that phase's high addresses).
#[derive(Debug)]
pub struct ContentionTable {
    epoch: u32,
    stamp: Vec<u32>,
    count: Vec<u32>,
    sparse: HashMap<Addr, u32>,
    max: u32,
    dense_cap: usize,
}

impl Default for ContentionTable {
    fn default() -> Self {
        Self::new(DENSE_ADDR_CAP)
    }
}

impl ContentionTable {
    /// Creates an empty table with the given dense-lane address cap.
    pub fn new(dense_cap: usize) -> Self {
        ContentionTable {
            epoch: 0,
            stamp: Vec::new(),
            count: Vec::new(),
            sparse: HashMap::new(),
            max: 0,
            dense_cap,
        }
    }

    /// Resets the table for a new phase without touching the dense lanes.
    pub fn begin_phase(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One full clear every 2^32 phases keeps stale stamps unable to
            // alias the new epoch.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.sparse.clear();
        self.max = 0;
    }

    fn grow_dense(&mut self, addr: Addr) {
        let want = (addr + 1).next_power_of_two().min(self.dense_cap);
        self.stamp.resize(want, 0);
        self.count.resize(want, 0);
    }

    /// Counts one access to `addr`.
    pub fn incr(&mut self, addr: Addr) {
        let c = if addr < self.dense_cap {
            if addr >= self.stamp.len() {
                self.grow_dense(addr);
            }
            if self.stamp[addr] == self.epoch {
                self.count[addr] += 1;
            } else {
                self.stamp[addr] = self.epoch;
                self.count[addr] = 1;
            }
            self.count[addr]
        } else {
            let e = self.sparse.entry(addr).or_insert(0);
            *e += 1;
            *e
        };
        self.max = self.max.max(c);
    }

    /// Whether `addr` was accessed in the current phase.
    pub fn contains(&self, addr: Addr) -> bool {
        if addr < self.dense_cap {
            addr < self.stamp.len() && self.stamp[addr] == self.epoch && self.count[addr] > 0
        } else {
            self.sparse.contains_key(&addr)
        }
    }

    /// Whether nothing was counted this phase.
    pub fn is_empty(&self) -> bool {
        self.max == 0
    }

    /// Maximum per-address count this phase, floored at 1 (the paper's
    /// convention: a phase with no accesses has contention 1).
    pub fn max_contention(&self) -> u64 {
        u64::from(self.max.max(1))
    }
}

/// Dense write aggregator: buckets attempted writes per address, preserving
/// processor order within each address, and yields the buckets in sorted
/// address order (the coordinate system scripted winner policies rely on).
///
/// Writes are appended flat during the processor loop; [`WriteRouter::route`]
/// then counting-sorts them into per-address groups. Like
/// [`ContentionTable`], per-address lanes are epoch-stamped so `begin_phase`
/// does not clear the dense arrays.
#[derive(Debug)]
pub struct WriteRouter {
    epoch: u32,
    stamp: Vec<u32>,
    count: Vec<u32>,
    cursor: Vec<u32>,
    sparse: HashMap<Addr, SparseLane>,
    /// Attempted writes in arrival (pid/request) order.
    flat: Vec<(Addr, Word)>,
    /// Distinct addresses touched this phase, sorted by [`WriteRouter::route`].
    touched: Vec<Addr>,
    /// Values scattered into contiguous per-address groups.
    bucket: Vec<Word>,
    max: u32,
    dense_cap: usize,
}

#[derive(Debug, Clone, Copy, Default)]
struct SparseLane {
    count: u32,
    cursor: u32,
}

impl Default for WriteRouter {
    fn default() -> Self {
        Self::new(DENSE_ADDR_CAP)
    }
}

impl WriteRouter {
    /// Creates an empty router with the given dense-lane address cap.
    pub fn new(dense_cap: usize) -> Self {
        WriteRouter {
            epoch: 0,
            stamp: Vec::new(),
            count: Vec::new(),
            cursor: Vec::new(),
            sparse: HashMap::new(),
            flat: Vec::new(),
            touched: Vec::new(),
            bucket: Vec::new(),
            max: 0,
            dense_cap,
        }
    }

    /// Resets the router for a new phase without touching the dense lanes.
    pub fn begin_phase(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.sparse.clear();
        self.flat.clear();
        self.touched.clear();
        self.max = 0;
    }

    fn grow_dense(&mut self, addr: Addr) {
        let want = (addr + 1).next_power_of_two().min(self.dense_cap);
        self.stamp.resize(want, 0);
        self.count.resize(want, 0);
        self.cursor.resize(want, 0);
    }

    /// Records one attempted write.
    pub fn push(&mut self, addr: Addr, value: Word) {
        let c = if addr < self.dense_cap {
            if addr >= self.stamp.len() {
                self.grow_dense(addr);
            }
            if self.stamp[addr] == self.epoch {
                self.count[addr] += 1;
            } else {
                self.stamp[addr] = self.epoch;
                self.count[addr] = 1;
                self.touched.push(addr);
            }
            self.count[addr]
        } else {
            let lane = self.sparse.entry(addr).or_default();
            if lane.count == 0 {
                self.touched.push(addr);
            }
            lane.count += 1;
            lane.count
        };
        self.max = self.max.max(c);
        self.flat.push((addr, value));
    }

    fn count_of(&self, addr: Addr) -> u32 {
        if addr < self.dense_cap {
            self.count[addr]
        } else {
            self.sparse[&addr].count
        }
    }

    fn set_cursor(&mut self, addr: Addr, v: u32) {
        if addr < self.dense_cap {
            self.cursor[addr] = v;
        } else if let Some(lane) = self.sparse.get_mut(&addr) {
            lane.cursor = v;
        }
    }

    fn cursor_of(&self, addr: Addr) -> u32 {
        if addr < self.dense_cap {
            self.cursor[addr]
        } else {
            self.sparse[&addr].cursor
        }
    }

    /// Sorts the touched addresses and scatters the flat writes into
    /// contiguous per-address groups (counting sort: O(writes + addrs·log)).
    /// Processor/request order is preserved within each address.
    pub fn route(&mut self) {
        self.touched.sort_unstable();
        let mut off = 0u32;
        for i in 0..self.touched.len() {
            let a = self.touched[i];
            let c = self.count_of(a);
            self.set_cursor(a, off);
            off += c;
        }
        self.bucket.clear();
        self.bucket.resize(self.flat.len(), 0);
        for i in 0..self.flat.len() {
            let (a, v) = self.flat[i];
            let cur = self.cursor_of(a);
            self.bucket[cur as usize] = v;
            self.set_cursor(a, cur + 1);
        }
    }

    /// Distinct written addresses in sorted order. Only meaningful after
    /// [`WriteRouter::route`].
    pub fn sorted_addrs(&self) -> &[Addr] {
        &self.touched
    }

    /// Iterates `(addr, attempted values)` groups in sorted address order
    /// with values in processor/request order. Only meaningful after
    /// [`WriteRouter::route`].
    pub fn groups(&self) -> impl Iterator<Item = (Addr, &[Word])> + '_ {
        let mut start = 0usize;
        self.touched.iter().map(move |&a| {
            let c = self.count_of(a) as usize;
            let s = start;
            start += c;
            (a, &self.bucket[s..s + c])
        })
    }

    /// Whether no write was recorded this phase.
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// Maximum per-address write count this phase, floored at 1.
    pub fn max_contention(&self) -> u64 {
        u64::from(self.max.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_table_counts_and_resets() {
        let mut t = ContentionTable::new(16);
        t.begin_phase();
        assert!(t.is_empty());
        assert_eq!(t.max_contention(), 1);
        t.incr(3);
        t.incr(3);
        t.incr(5);
        assert!(t.contains(3));
        assert!(t.contains(5));
        assert!(!t.contains(4));
        assert_eq!(t.max_contention(), 2);
        // Sparse fallback above the cap.
        t.incr(1000);
        t.incr(1000);
        t.incr(1000);
        assert!(t.contains(1000));
        assert_eq!(t.max_contention(), 3);
        // New phase: O(1) reset, stale lanes read as absent.
        t.begin_phase();
        assert!(!t.contains(3));
        assert!(!t.contains(1000));
        assert!(t.is_empty());
    }

    #[test]
    fn write_router_groups_sorted_with_pid_order_values() {
        let mut r = WriteRouter::new(8);
        r.begin_phase();
        r.push(5, 50);
        r.push(2, 20);
        r.push(5, 51);
        r.push(100, 1); // sparse lane
        r.push(2, 21);
        r.push(100, 2);
        r.route();
        assert_eq!(r.sorted_addrs(), &[2, 5, 100]);
        let groups: Vec<(Addr, Vec<Word>)> = r.groups().map(|(a, vs)| (a, vs.to_vec())).collect();
        assert_eq!(
            groups,
            vec![(2, vec![20, 21]), (5, vec![50, 51]), (100, vec![1, 2])]
        );
        assert_eq!(r.max_contention(), 2);
        r.begin_phase();
        assert!(r.is_empty());
        r.route();
        assert_eq!(r.sorted_addrs(), &[] as &[Addr]);
        assert_eq!(r.max_contention(), 1);
    }

    #[test]
    fn exec_options_default_is_dense_untraced() {
        let o = ExecOptions::default();
        assert!(!o.record_trace);
        assert_eq!(o.routing, Routing::Dense);
        assert_eq!(o.parallelism, Parallelism::Off);
        assert_eq!(o.trace_phase_cap, DEFAULT_TRACE_PHASE_CAP);
    }
}
