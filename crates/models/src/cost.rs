//! Cost accounting shared by all model simulators.
//!
//! Every machine in this crate executes a bulk-synchronous program as a
//! sequence of *phases* (QSM/s-QSM/GSM terminology) or *supersteps* (BSP
//! terminology). Each phase is charged exactly the cost formula of its model
//! as defined in Section 2 of MacKenzie & Ramachandran (SPAA 1998). The
//! [`CostLedger`] records the raw per-phase quantities so that callers can
//! re-derive costs, check the *rounds* predicate of Section 2.3, or audit
//! degree-growth recurrences (see the `parbounds-adversary` crate).

/// Raw, model-independent measurements for a single phase/superstep.
///
/// The fields use the paper's notation:
/// * `m_op`: maximum local computation performed by any processor
///   (`max_i c_i`),
/// * `m_rw`: maximum number of shared-memory reads or writes issued by any
///   processor (`max{1, max_i {r_i, w_i}}`), or for the BSP the maximum
///   number of messages sent or received by any processor (`h`),
/// * `kappa`: maximum contention — the maximum over all locations of the
///   number of processors reading that location or the number writing it.
///   A phase with no reads or writes has contention 1. Not meaningful on the
///   BSP, where it is recorded as 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseCost {
    /// `max_i c_i` — maximum local operations by any processor.
    pub m_op: u64,
    /// `max{1, max_i {r_i, w_i}}` — maximum reads-or-writes by any processor.
    pub m_rw: u64,
    /// Maximum contention at any cell (1 if no accesses).
    pub kappa: u64,
    /// The model-specific time charged for this phase.
    pub cost: u64,
}

impl PhaseCost {
    /// A phase in which nothing happened (still charged the model minimum).
    pub fn idle(min_cost: u64) -> Self {
        PhaseCost {
            m_op: 0,
            m_rw: 1,
            kappa: 1,
            cost: min_cost,
        }
    }
}

/// Append-only record of the phases of one execution.
///
/// The ledger is the interface between "running an algorithm" and "comparing
/// against the paper's bounds": the total time of an algorithm is the sum of
/// its phase costs (Section 2.1), and the number of *rounds* is the number
/// of phases provided every phase satisfies the round budget (Section 2.3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostLedger {
    phases: Vec<PhaseCost>,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one phase.
    pub fn push(&mut self, phase: PhaseCost) {
        self.phases.push(phase);
    }

    /// Number of phases (equivalently supersteps) executed.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Total time: the sum of the per-phase costs.
    pub fn total_time(&self) -> u64 {
        self.phases.iter().map(|p| p.cost).sum()
    }

    /// The most expensive single phase.
    pub fn max_phase_cost(&self) -> u64 {
        self.phases.iter().map(|p| p.cost).max().unwrap_or(0)
    }

    /// Maximum contention observed in any phase.
    pub fn max_contention(&self) -> u64 {
        self.phases.iter().map(|p| p.kappa).max().unwrap_or(1)
    }

    /// Maximum `m_rw` observed in any phase.
    pub fn max_rw(&self) -> u64 {
        self.phases.iter().map(|p| p.m_rw).max().unwrap_or(1)
    }

    /// Per-phase records, in execution order.
    pub fn phases(&self) -> &[PhaseCost] {
        &self.phases
    }

    /// Section 2.3 rounds predicate: every phase must fit in `budget` time.
    ///
    /// On a QSM or s-QSM a *round* is a phase that takes `O(g·n/p)` time; on
    /// a BSP it is a superstep routing an `O(n/p)`-relation with
    /// `O(g·n/p + L)` work. The caller computes the concrete budget (with
    /// its constant) via [`round_budget_qsm`] / [`round_budget_bsp`] and the
    /// ledger checks conformance.
    pub fn is_round_respecting(&self, budget: u64) -> bool {
        self.phases.iter().all(|p| p.cost <= budget)
    }

    /// Number of rounds, i.e. number of phases, if every phase fits in
    /// `budget`; `None` if some phase overruns the budget (the computation
    /// does not "compute in rounds" for that budget).
    pub fn rounds(&self, budget: u64) -> Option<usize> {
        if self.is_round_respecting(budget) {
            Some(self.num_phases())
        } else {
            None
        }
    }

    /// Work = processor-time product for `p` processors.
    ///
    /// Section 2.3: a `p`-processor QSM/s-QSM algorithm performs *linear
    /// work* if this product is `O(g·n)`.
    pub fn work(&self, p: u64) -> u64 {
        self.total_time().saturating_mul(p)
    }
}

/// Round budget for a `p`-processor QSM or s-QSM on an `n`-element input:
/// `slack · g · ceil(n/p)` (Section 2.3, with an explicit slack constant).
pub fn round_budget_qsm(n: u64, p: u64, g: u64, slack: u64) -> u64 {
    slack * g * n.div_ceil(p.max(1)).max(1)
}

/// Round budget for a `p`-processor BSP: a superstep routing an
/// `O(n/p)`-relation and doing `O(g·n/p + L)` work costs at most
/// `slack · (g·ceil(n/p) + L)` (Section 2.3).
pub fn round_budget_bsp(n: u64, p: u64, g: u64, l: u64, slack: u64) -> u64 {
    slack * (g * n.div_ceil(p.max(1)).max(1) + l)
}

/// Round budget for a `p`-processor GSM(α, β, γ): a round is a phase taking
/// `O(μ·n/(λ·p))` time where `μ = max{α,β}`, `λ = min{α,β}` (Section 2.3).
pub fn round_budget_gsm(n: u64, p: u64, alpha: u64, beta: u64, slack: u64) -> u64 {
    let mu = alpha.max(beta).max(1);
    let lambda = alpha.min(beta).max(1);
    slack * mu * n.div_ceil(lambda * p.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(costs: &[(u64, u64, u64, u64)]) -> CostLedger {
        let mut l = CostLedger::new();
        for &(m_op, m_rw, kappa, cost) in costs {
            l.push(PhaseCost {
                m_op,
                m_rw,
                kappa,
                cost,
            });
        }
        l
    }

    #[test]
    fn total_time_is_sum_of_phase_costs() {
        let l = ledger(&[(1, 1, 1, 4), (2, 3, 1, 12), (0, 1, 5, 5)]);
        assert_eq!(l.total_time(), 21);
        assert_eq!(l.num_phases(), 3);
        assert_eq!(l.max_phase_cost(), 12);
    }

    #[test]
    fn empty_ledger_is_zero_cost() {
        let l = CostLedger::new();
        assert_eq!(l.total_time(), 0);
        assert_eq!(l.num_phases(), 0);
        assert_eq!(l.max_phase_cost(), 0);
        assert_eq!(l.max_contention(), 1);
        assert!(l.is_round_respecting(0));
        assert_eq!(l.rounds(0), Some(0));
    }

    #[test]
    fn rounds_predicate_rejects_overrunning_phase() {
        let l = ledger(&[(1, 1, 1, 4), (1, 1, 1, 9)]);
        assert!(l.is_round_respecting(9));
        assert_eq!(l.rounds(9), Some(2));
        assert!(!l.is_round_respecting(8));
        assert_eq!(l.rounds(8), None);
    }

    #[test]
    fn qsm_round_budget_matches_definition() {
        // n = 64, p = 8, g = 2, slack 1: g * n/p = 16.
        assert_eq!(round_budget_qsm(64, 8, 2, 1), 16);
        // Ceiling division: n = 65, p = 8 -> ceil = 9.
        assert_eq!(round_budget_qsm(65, 8, 2, 1), 18);
        // slack scales linearly.
        assert_eq!(round_budget_qsm(64, 8, 2, 3), 48);
    }

    #[test]
    fn bsp_round_budget_includes_latency() {
        assert_eq!(round_budget_bsp(64, 8, 2, 10, 1), 26);
        assert_eq!(round_budget_bsp(64, 8, 2, 10, 2), 52);
    }

    #[test]
    fn gsm_round_budget_uses_mu_over_lambda() {
        // alpha=1, beta=4: mu=4, lambda=1, n=32, p=4 -> 4 * ceil(32/4) = 32.
        assert_eq!(round_budget_gsm(32, 4, 1, 4, 1), 32);
        // alpha=beta=1: mu=lambda=1 -> n/p.
        assert_eq!(round_budget_gsm(32, 4, 1, 1, 1), 8);
    }

    #[test]
    fn work_is_processor_time_product() {
        let l = ledger(&[(1, 2, 1, 8), (1, 1, 1, 2)]);
        assert_eq!(l.work(16), 160);
    }

    #[test]
    fn idle_phase_has_unit_contention() {
        let p = PhaseCost::idle(3);
        assert_eq!(p.kappa, 1);
        assert_eq!(p.m_rw, 1);
        assert_eq!(p.cost, 3);
    }
}
