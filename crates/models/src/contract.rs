//! Asymptotic cost contracts.
//!
//! Each algorithm family in `parbounds-algo` declares the envelope its
//! measured cost is supposed to track — the Table 1 bound of the paper (e.g.
//! LAC's `O(√(g·lg n) + g·lg lg n)` on the QSM). A [`CostContract`] packages
//! the envelope as an evaluable function of the instance parameters; the
//! `parbounds-analyze` contract checker sweeps `n`, fits the hidden constant
//! on the small end of the sweep, and fails the family when later
//! measurements grow past the fitted envelope (super-envelope growth means
//! the implementation no longer matches its claimed bound).

/// Instance parameters an envelope may depend on, pre-converted to `f64`.
#[derive(Debug, Clone, Copy)]
pub struct ContractParams {
    /// Input size `n`.
    pub n: f64,
    /// Gap parameter `g` (bandwidth gap for BSP, `μ` for GSM contracts).
    pub g: f64,
    /// Latency `L` (BSP) or a secondary machine parameter (`β` for GSM);
    /// 1.0 where unused.
    pub l: f64,
    /// Number of processors/components `p` (γ for GSM contracts); 1.0
    /// where unused.
    pub p: f64,
}

impl ContractParams {
    /// Parameters for a QSM/s-QSM instance: size `n`, gap `g`, `p`
    /// processors (`l` is unused and set to 1).
    pub fn qsm(n: usize, g: u64, p: usize) -> Self {
        ContractParams {
            n: n as f64,
            g: g as f64,
            l: 1.0,
            p: p as f64,
        }
    }

    /// Parameters for a BSP instance: size `n`, gap `g`, latency `l`, `p`
    /// components.
    pub fn bsp(n: usize, g: u64, l: u64, p: usize) -> Self {
        ContractParams {
            n: n as f64,
            g: g as f64,
            l: l as f64,
            p: p as f64,
        }
    }

    /// Parameters for a GSM instance: size `n`, with `g = μ`, `l = β` and
    /// `p = γ`.
    pub fn gsm(n: usize, mu: u64, beta: u64, gamma: u64) -> Self {
        ContractParams {
            n: n as f64,
            g: mu as f64,
            l: beta as f64,
            p: gamma as f64,
        }
    }

    /// `lg n`, floored at 1 so envelopes stay positive on tiny instances.
    pub fn lg_n(&self) -> f64 {
        self.n.max(2.0).log2()
    }
}

/// Which measured quantity the envelope bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContractMetric {
    /// Total model time ([`crate::CostLedger::total_time`]).
    Time,
    /// Number of phases / supersteps executed (for rounds-style bounds).
    Phases,
}

/// A declared asymptotic envelope for one algorithm family.
///
/// `envelope` evaluates the bound *without* its hidden constant; the
/// checker estimates the constant from measurements, so only the growth
/// shape matters. Envelopes must be positive for all valid parameters.
#[derive(Debug, Clone)]
pub struct CostContract {
    /// Family label (matches the analyzer suite's family name).
    pub family: &'static str,
    /// The model the bound is stated on (`"QSM"`, `"s-QSM"`, `"BSP"`,
    /// `"GSM"`).
    pub model: &'static str,
    /// Human-readable form of the bound, e.g. `"O(g·lg n / lg g)"`.
    pub formula: &'static str,
    /// What the bound measures.
    pub metric: ContractMetric,
    envelope: fn(&ContractParams) -> f64,
}

impl CostContract {
    /// Declares a [`ContractMetric::Time`] contract.
    pub const fn new(
        family: &'static str,
        model: &'static str,
        formula: &'static str,
        envelope: fn(&ContractParams) -> f64,
    ) -> Self {
        CostContract {
            family,
            model,
            formula,
            metric: ContractMetric::Time,
            envelope,
        }
    }

    /// Switches the measured quantity (builder-style).
    pub const fn with_metric(mut self, metric: ContractMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Evaluates the envelope at `params`, floored at 1 so measured/envelope
    /// ratios are always finite.
    pub fn envelope(&self, params: &ContractParams) -> f64 {
        (self.envelope)(params).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_floored_at_one() {
        let c = CostContract::new("t", "QSM", "O(0)", |_| 0.0);
        assert_eq!(c.envelope(&ContractParams::qsm(16, 4, 2)), 1.0);
        assert_eq!(c.metric, ContractMetric::Time);
    }

    #[test]
    fn params_carry_machine_shape() {
        let p = ContractParams::bsp(1024, 8, 64, 16);
        assert_eq!(p.n, 1024.0);
        assert_eq!(p.g, 8.0);
        assert_eq!(p.l, 64.0);
        assert_eq!(p.p, 16.0);
        assert_eq!(p.lg_n(), 10.0);
        // lg_n never goes below 1 (n clamped to 2).
        assert_eq!(ContractParams::qsm(1, 1, 1).lg_n(), 1.0);
    }

    #[test]
    fn metric_builder_switches_to_phases() {
        let c = CostContract::new("t", "QSM", "O(lg n)", |p| p.lg_n())
            .with_metric(ContractMetric::Phases);
        assert_eq!(c.metric, ContractMetric::Phases);
        assert!((c.envelope(&ContractParams::qsm(256, 1, 4)) - 8.0).abs() < 1e-9);
    }
}
