//! Intra-phase parallel execution: a dependency-free scoped-thread SPMD
//! pool that shards the *inside* of a phase/superstep across host cores.
//!
//! The bulk-synchronous models this crate simulates (QSM, s-QSM, GSM, BSP)
//! only couple processors at the phase barrier: within a phase, every
//! simulated processor runs against values delivered by the *previous*
//! barrier, and its shared-memory requests take effect only at the *next*
//! one. That independence is exactly what a host-level executor can
//! exploit — the compute stage of a phase is a pure function of
//! (delivered values, per-processor state), so contiguous pid chunks can
//! run on separate host threads with no locks and no memory snapshots,
//! emitting requests into per-shard arena buffers.
//!
//! Determinism is preserved by construction: shard outputs are merged
//! back in pid order (worker `w` always owns the `w`-th contiguous pid
//! range, and results are consumed in worker order), so the request
//! streams fed to the sequential apply stage — contention tables, the
//! counting-sort [`crate::exec::WriteRouter`], arbitration RNG draws,
//! fault-injection choice points, ledgers, and traces — are *bit
//! identical* to the single-threaded dense path at every thread count.
//!
//! The pool is built on [`std::thread::scope`] only (the workspace forbids
//! `unsafe` and carries no thread-pool dependency). One pool is spawned
//! per run, not per phase: workers block on a task channel between
//! phases, so the per-phase cost is two channel hops per worker.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Condvar, Mutex};
use std::thread;

/// How many host threads a run may use for the intra-phase compute stage.
///
/// The default is [`Parallelism::Off`]: every existing entry point keeps
/// running the single-threaded dense path unless a caller opts in. `Auto`
/// defers to the `PARBOUNDS_THREADS` environment variable (the same knob
/// the bench layer's `--threads` flag sets) and falls back to
/// [`std::thread::available_parallelism`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded execution (the default; identical to PR 4's dense
    /// path, no pool is ever spawned).
    #[default]
    Off,
    /// Use `PARBOUNDS_THREADS` if set, otherwise the host's available
    /// parallelism.
    Auto,
    /// Use exactly this many worker threads (clamped to at least 1 and to
    /// the number of simulated processors).
    Fixed(usize),
}

impl Parallelism {
    /// Resolves the number of worker threads for a run over `num_procs`
    /// simulated processors. Always at least 1; never more than
    /// `num_procs` (extra workers would own empty pid ranges).
    pub fn workers(&self, num_procs: usize) -> usize {
        let requested = match self {
            Parallelism::Off => 1,
            Parallelism::Fixed(k) => (*k).max(1),
            Parallelism::Auto => auto_threads(),
        };
        requested.min(num_procs.max(1))
    }
}

/// `Auto` resolution: `PARBOUNDS_THREADS` env var, then host parallelism.
fn auto_threads() -> usize {
    if let Ok(v) = std::env::var("PARBOUNDS_THREADS") {
        if let Ok(k) = v.trim().parse::<usize>() {
            if k >= 1 {
                return k;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `0..n` into `shards` contiguous ranges; the first `n % shards`
/// ranges get one extra element. Ranges may be empty when `shards > n`
/// (oversubscription), but their concatenation is always exactly `0..n`
/// in order — which is what keeps shard merges pid-ordered.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1);
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut lo = 0usize;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push(lo..lo + len);
        lo += len;
    }
    debug_assert_eq!(lo, n);
    out
}

/// A running SPMD pool: `workers` scoped threads, each with its own task
/// and result channel. Created by [`with_pool`]; lives for one run.
pub struct ShardPool<T, R> {
    task_txs: Vec<Sender<T>>,
    result_rxs: Vec<Receiver<R>>,
}

impl<T: Send, R: Send> ShardPool<T, R> {
    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.task_txs.len()
    }

    /// Runs one round: sends `tasks[w]` to worker `w`, then consumes
    /// results **in worker order** (`consume(0, ..)`, `consume(1, ..)`,
    /// ...). Consuming worker 0's output overlaps with later workers
    /// still computing, and the in-order merge is what keeps the apply
    /// stage's request streams bit-identical to sequential execution.
    pub fn run_round(&self, tasks: Vec<T>, mut consume: impl FnMut(usize, R)) {
        let n = tasks.len();
        assert!(n <= self.workers(), "more tasks than pool workers");
        for (w, task) in tasks.into_iter().enumerate() {
            self.task_txs[w]
                .send(task)
                .expect("parallel worker thread terminated unexpectedly");
        }
        for (w, rx) in self.result_rxs.iter().enumerate().take(n) {
            match rx.recv() {
                Ok(out) => consume(w, out),
                Err(_) => panic!("parallel worker thread terminated unexpectedly"),
            }
        }
    }
}

/// Spawns a pool of `workers` scoped threads, runs `body` against it, and
/// joins the pool before returning. Worker `w` runs `work(w, task)` for
/// every task sent to it and ships the result back; `work` only needs
/// `Sync` because every thread shares one reference to it.
///
/// Panics in `work` propagate: the worker's channels close, the next
/// `run_round` send/recv fails, and [`std::thread::scope`] resurfaces the
/// original worker panic on join.
pub fn with_pool<T, R, O>(
    workers: usize,
    work: impl Fn(usize, T) -> R + Sync,
    body: impl FnOnce(&ShardPool<T, R>) -> O,
) -> O
where
    T: Send,
    R: Send,
{
    let workers = workers.max(1);
    thread::scope(|scope| {
        let mut task_txs = Vec::with_capacity(workers);
        let mut result_rxs = Vec::with_capacity(workers);
        let work = &work;
        for w in 0..workers {
            let (task_tx, task_rx) = mpsc::channel::<T>();
            let (result_tx, result_rx) = mpsc::channel::<R>();
            task_txs.push(task_tx);
            result_rxs.push(result_rx);
            scope.spawn(move || {
                while let Ok(task) = task_rx.recv() {
                    if result_tx.send(work(w, task)).is_err() {
                        break;
                    }
                }
            });
        }
        let pool = ShardPool {
            task_txs,
            result_rxs,
        };
        body(&pool)
        // Dropping the pool closes the task channels; workers drain and
        // exit; the scope joins them before `with_pool` returns.
    })
}

/// Shared state of a [`StealPool`]: one queue every worker drains.
struct StealState<T, R> {
    tasks: VecDeque<(usize, T)>,
    results: Vec<(usize, R)>,
    shutdown: bool,
    dead_workers: usize,
}

/// A work-stealing pool: `workers` scoped threads draining one shared
/// task queue, so a skewed round (one shard much heavier than the rest)
/// keeps every core busy — idle workers steal the remaining tasks
/// instead of waiting at the barrier. Created by [`with_steal_pool`].
///
/// Unlike [`ShardPool`], rounds may carry *more* tasks than workers
/// (oversubscription is the point: finer tasks give the stealer
/// something to steal), and task→worker assignment is nondeterministic.
/// Determinism is instead restored at the barrier: [`StealPool::run_round`]
/// reassembles results by task index, so callers observe the same
/// `Vec<R>` regardless of which worker ran which task.
pub struct StealPool<'env, T, R> {
    state: &'env Mutex<StealState<T, R>>,
    cv: &'env Condvar,
    workers: usize,
}

impl<T: Send, R: Send> StealPool<'_, T, R> {
    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one round: enqueues every task, lets the workers race to
    /// drain the queue, and blocks until all results are back. The
    /// returned vector is indexed by task position (`out[i]` is the
    /// result of `tasks[i]`) — bit-identical across runs and thread
    /// counts even though the task→worker mapping is racy.
    pub fn run_round(&self, tasks: Vec<T>) -> Vec<R> {
        let n = tasks.len();
        let mut st = self.state.lock().expect("steal pool lock poisoned");
        debug_assert!(st.tasks.is_empty() && st.results.is_empty());
        for pair in tasks.into_iter().enumerate() {
            st.tasks.push_back(pair);
        }
        self.cv.notify_all();
        while st.results.len() < n {
            if st.dead_workers > 0 {
                panic!("parallel worker thread terminated unexpectedly");
            }
            st = self.cv.wait(st).expect("steal pool lock poisoned");
        }
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in st.results.drain(..) {
            out[i] = Some(r);
        }
        drop(st);
        out.into_iter()
            .map(|r| r.expect("steal pool produced one result per task"))
            .collect()
    }
}

/// Sets `shutdown` and wakes the workers when the pool scope unwinds —
/// on the normal exit path *and* when `body` (or `run_round`) panics, so
/// the scope join never hangs on workers parked at the condvar.
struct StealShutdown<'a, T, R> {
    state: &'a Mutex<StealState<T, R>>,
    cv: &'a Condvar,
}

impl<T, R> Drop for StealShutdown<'_, T, R> {
    fn drop(&mut self) {
        match self.state.lock() {
            Ok(mut st) => st.shutdown = true,
            Err(poisoned) => poisoned.into_inner().shutdown = true,
        }
        self.cv.notify_all();
    }
}

/// Worker-side guard: if the worker unwinds (a panic inside `work`),
/// bump `dead_workers` and wake the round coordinator so `run_round`
/// panics instead of waiting forever for a result that will never come.
struct StealObituary<'a, T, R> {
    state: &'a Mutex<StealState<T, R>>,
    cv: &'a Condvar,
}

impl<T, R> Drop for StealObituary<'_, T, R> {
    fn drop(&mut self) {
        if thread::panicking() {
            if let Ok(mut st) = self.state.lock() {
                st.dead_workers += 1;
            }
            self.cv.notify_all();
        }
    }
}

/// Spawns a work-stealing pool of `workers` scoped threads, runs `body`
/// against it, and joins the pool before returning. Every worker runs
/// `work(w, task)` for whichever tasks it wins from the shared queue.
///
/// Panics in `work` propagate: the dying worker registers itself, the
/// blocked `run_round` panics in turn, and [`std::thread::scope`]
/// resurfaces the original worker panic on join.
pub fn with_steal_pool<T, R, O>(
    workers: usize,
    work: impl Fn(usize, T) -> R + Sync,
    body: impl FnOnce(&StealPool<'_, T, R>) -> O,
) -> O
where
    T: Send,
    R: Send,
{
    let workers = workers.max(1);
    let state: Mutex<StealState<T, R>> = Mutex::new(StealState {
        tasks: VecDeque::new(),
        results: Vec::new(),
        shutdown: false,
        dead_workers: 0,
    });
    let cv = Condvar::new();
    thread::scope(|scope| {
        let (state, cv, work) = (&state, &cv, &work);
        for w in 0..workers {
            scope.spawn(move || {
                let _obituary = StealObituary { state, cv };
                loop {
                    let (idx, task) = {
                        let mut st = state.lock().expect("steal pool lock poisoned");
                        loop {
                            if let Some(pair) = st.tasks.pop_front() {
                                break pair;
                            }
                            if st.shutdown {
                                return;
                            }
                            st = cv.wait(st).expect("steal pool lock poisoned");
                        }
                    };
                    let result = work(w, task);
                    let mut st = state.lock().expect("steal pool lock poisoned");
                    st.results.push((idx, result));
                    cv.notify_all();
                }
            });
        }
        let pool = StealPool { state, cv, workers };
        let _shutdown = StealShutdown { state, cv };
        body(&pool)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_default_is_off() {
        assert_eq!(Parallelism::default(), Parallelism::Off);
        assert_eq!(Parallelism::Off.workers(1024), 1);
    }

    #[test]
    fn fixed_workers_clamp_to_procs_and_one() {
        assert_eq!(Parallelism::Fixed(4).workers(1024), 4);
        assert_eq!(Parallelism::Fixed(0).workers(1024), 1);
        assert_eq!(Parallelism::Fixed(16).workers(3), 3);
        assert_eq!(Parallelism::Fixed(16).workers(0), 1);
    }

    #[test]
    fn shard_ranges_cover_exactly_in_order() {
        for n in [0usize, 1, 2, 7, 64, 65] {
            for shards in 1..=9 {
                let ranges = shard_ranges(n, shards);
                assert_eq!(ranges.len(), shards);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
                let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (max, min) = (lens.iter().max().unwrap(), lens.iter().min().unwrap());
                assert!(max - min <= 1, "uneven shards: {lens:?}");
            }
        }
    }

    #[test]
    fn pool_rounds_preserve_worker_order() {
        let seen = with_pool(
            4,
            |w, task: usize| (w, task * 2),
            |pool| {
                let mut all = Vec::new();
                for round in 0..3usize {
                    let tasks: Vec<usize> = (0..4).map(|w| round * 10 + w).collect();
                    pool.run_round(tasks, |w, out| all.push((w, out)));
                }
                all
            },
        );
        for round in 0..3usize {
            for w in 0..4usize {
                assert_eq!(seen[round * 4 + w], (w, (w, (round * 10 + w) * 2)));
            }
        }
    }

    #[test]
    fn pool_allows_partial_rounds() {
        with_pool(
            4,
            |_w, task: usize| task + 1,
            |pool| {
                let mut got = Vec::new();
                pool.run_round(vec![7, 8], |w, out| got.push((w, out)));
                assert_eq!(got, vec![(0, 8), (1, 9)]);
            },
        );
    }

    #[test]
    fn steal_pool_reassembles_by_task_index() {
        let out = with_steal_pool(
            3,
            |_w, task: usize| task * task,
            |pool| {
                assert_eq!(pool.workers(), 3);
                let mut all = Vec::new();
                for round in 0..4usize {
                    // Oversubscribed rounds: 11 tasks over 3 workers.
                    let tasks: Vec<usize> = (0..11).map(|i| round * 100 + i).collect();
                    all.push(pool.run_round(tasks));
                }
                all
            },
        );
        for (round, results) in out.iter().enumerate() {
            let want: Vec<usize> = (0..11).map(|i| (round * 100 + i).pow(2)).collect();
            assert_eq!(results, &want, "round {round} out of order");
        }
    }

    #[test]
    fn steal_pool_balances_skewed_rounds() {
        // One heavy task plus many light ones: the round completes and the
        // heavy result lands at its task index regardless of which worker
        // picked it up.
        let results = with_steal_pool(
            4,
            |_w, weight: u64| {
                let mut acc = 0u64;
                for i in 0..weight * 1000 {
                    acc = acc.wrapping_add(i ^ weight);
                }
                acc
            },
            |pool| {
                let mut tasks = vec![200u64];
                tasks.extend(std::iter::repeat(1u64).take(15));
                pool.run_round(tasks)
            },
        );
        assert_eq!(results.len(), 16);
        let serial: Vec<u64> = {
            let work = |weight: u64| {
                let mut acc = 0u64;
                for i in 0..weight * 1000 {
                    acc = acc.wrapping_add(i ^ weight);
                }
                acc
            };
            let mut tasks = vec![200u64];
            tasks.extend(std::iter::repeat(1u64).take(15));
            tasks.into_iter().map(work).collect()
        };
        assert_eq!(results, serial);
    }

    #[test]
    fn steal_pool_handles_empty_rounds() {
        with_steal_pool(
            2,
            |_w, task: usize| task,
            |pool| {
                assert!(pool.run_round(Vec::new()).is_empty());
                assert_eq!(pool.run_round(vec![5]), vec![5]);
            },
        );
    }

    #[test]
    #[should_panic(expected = "parallel worker thread terminated unexpectedly")]
    fn steal_pool_propagates_worker_panics() {
        with_steal_pool(
            2,
            |_w, task: usize| {
                if task == 3 {
                    panic!("boom");
                }
                task
            },
            |pool| {
                pool.run_round(vec![1, 2, 3, 4, 5, 6, 7, 8]);
            },
        );
    }
}
