//! Cooperative cancellation and per-request deadlines for simulator runs.
//!
//! The bulk-synchronous engines only couple processors at phase barriers,
//! which makes the barrier the natural cancellation checkpoint: a
//! [`CancelToken`] is checked once per phase/superstep, *before* the
//! phase's effects are applied, so a cancelled run never leaves partial
//! shared-memory state behind — the run either completes a phase in full
//! or stops cleanly with [`ModelError::DeadlineExceeded`].
//!
//! Tokens are attached to machines with `with_cancel` (on
//! [`crate::QsmMachine`], [`crate::GsmMachine`] and [`crate::BspMachine`]);
//! the IR batch executors and the static analyzer accept the same token,
//! so a serving layer can bound *every* way of answering a request with
//! one deadline. Three trip conditions are supported, all observed at the
//! next phase boundary:
//!
//! * an explicit [`CancelToken::cancel`] call from any thread,
//! * a wall-clock deadline ([`CancelToken::with_deadline`]),
//! * a deterministic phase trip ([`CancelToken::tripping_at_phase`]) used
//!   by tests and the chaos harness to cancel at an exact, reproducible
//!   point with no timing dependence.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{ModelError, Result};

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    phase_trip: Option<usize>,
}

/// A cloneable cancellation handle shared between a requester and a run.
///
/// Cloning is cheap (an [`Arc`] bump) and every clone observes the same
/// state: cancelling one clone cancels them all. The default token never
/// trips, so attaching it is free for callers that only want the plumbing.
///
/// ```
/// use parbounds_models::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(token.check(0).is_ok());
/// token.cancel();
/// assert!(token.check(3).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never trips unless [`cancel`](Self::cancel) is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that trips once `budget` wall-clock time has elapsed
    /// (measured from now), in addition to explicit cancellation.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
                phase_trip: None,
            }),
        }
    }

    /// A token that trips deterministically when a run reaches global
    /// phase `phase` (i.e. `check(p)` fails for every `p >= phase`).
    /// Timing-independent by construction — the chaos harness and the
    /// cancellation proptest use this to cut runs at exact phases.
    pub fn tripping_at_phase(phase: usize) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                phase_trip: Some(phase),
            }),
        }
    }

    /// Requests cancellation; every clone of this token starts failing
    /// [`check`](Self::check) at its next phase boundary.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Has cancellation been requested (explicitly or by deadline)?
    /// Deterministic phase trips are not reflected here — they depend on
    /// the phase number only [`check`](Self::check) sees.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The wall-clock time remaining until the deadline, if one is set.
    /// `Some(Duration::ZERO)` once the deadline has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The phase-boundary checkpoint: returns
    /// [`ModelError::DeadlineExceeded`] if the token has tripped, tagging
    /// the error with `phase` (the phase that was *about* to run).
    pub fn check(&self, phase: usize) -> Result<()> {
        let tripped = self.is_cancelled() || self.inner.phase_trip.is_some_and(|t| phase >= t);
        if tripped {
            Err(ModelError::DeadlineExceeded { phase })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_trips() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.remaining().is_none());
        for phase in [0usize, 1, 1 << 20] {
            assert!(t.check(phase).is_ok());
        }
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(clone.check(0).is_ok());
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(
            clone.check(7),
            Err(ModelError::DeadlineExceeded { phase: 7 })
        );
    }

    #[test]
    fn elapsed_deadline_trips() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        assert!(t.check(0).is_err());

        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.remaining().unwrap() > Duration::from_secs(3000));
        assert!(far.check(0).is_ok());
    }

    #[test]
    fn phase_trip_is_deterministic() {
        let t = CancelToken::tripping_at_phase(3);
        assert!(!t.is_cancelled(), "phase trips are not wall-clock state");
        assert!(t.check(0).is_ok());
        assert!(t.check(2).is_ok());
        assert_eq!(t.check(3), Err(ModelError::DeadlineExceeded { phase: 3 }));
        assert_eq!(t.check(9), Err(ModelError::DeadlineExceeded { phase: 9 }));
    }
}
