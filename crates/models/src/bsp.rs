//! The Bulk-Synchronous Parallel (BSP) model of Valiant (Section 2.1.3).
//!
//! `p` processor/memory components communicate by point-to-point messages.
//! A computation is a sequence of supersteps; messages sent in a superstep
//! arrive before the next superstep starts. With `w` the maximum local work,
//! `h` the maximum number of messages sent or received by any component
//! (the superstep routes an `h`-relation), the superstep costs
//! `max(w, g·h, L)`. The paper assumes `L ≥ g` throughout, and so does this
//! machine. Input is partitioned uniformly: component `i` is assigned either
//! `⌈n/p⌉` or `⌊n/p⌋` inputs.

use crate::cancel::CancelToken;
use crate::cost::{CostLedger, PhaseCost};
use crate::error::{ModelError, Result};
use crate::exec::{ExecOptions, Routing};
use crate::faults::{FaultInjector, FaultLog, FaultPlan};
use crate::par::{shard_ranges, with_pool, Parallelism};
use crate::shared::{Status, Word};

/// A point-to-point message. `tag` lets algorithms multiplex message kinds
/// or carry addresses; `value` is the payload word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msg {
    /// Sending component.
    pub src: usize,
    /// Algorithm-chosen tag.
    pub tag: Word,
    /// Payload.
    pub value: Word,
}

/// Per-component view of one superstep.
#[derive(Debug)]
pub struct Superstep<'a> {
    step: usize,
    inbox: &'a [Msg],
    pub(crate) outbox: Vec<(usize, Msg)>,
    pub(crate) ops: u64,
}

impl<'a> Superstep<'a> {
    fn new(step: usize, inbox: &'a [Msg]) -> Self {
        Superstep {
            step,
            inbox,
            outbox: Vec::new(),
            ops: 0,
        }
    }

    /// Like [`Superstep::new`] but around a recycled (empty) outbox buffer,
    /// so steady-state supersteps of the fast path do no allocation.
    fn with_buffer(step: usize, inbox: &'a [Msg], outbox: Vec<(usize, Msg)>) -> Self {
        debug_assert!(outbox.is_empty());
        Superstep {
            step,
            inbox,
            outbox,
            ops: 0,
        }
    }

    /// Index of the current superstep (0-based).
    pub fn step(&self) -> usize {
        self.step
    }

    /// Messages that arrived from the previous superstep, sorted by
    /// `(src, tag)` for determinism (the BSP delivers in arbitrary order;
    /// algorithms must not rely on arrival order, and the deterministic
    /// sort makes runs reproducible).
    pub fn inbox(&self) -> &[Msg] {
        self.inbox
    }

    /// Send a message to component `dest`, arriving next superstep.
    pub fn send(&mut self, dest: usize, tag: Word, value: Word) {
        self.outbox.push((
            dest,
            Msg {
                src: usize::MAX,
                tag,
                value,
            },
        ));
    }

    /// Charge `k` units of local computation (`w_i`). Sends and receives
    /// are charged one op each automatically.
    pub fn local_ops(&mut self, k: u64) {
        self.ops += k;
    }
}

/// A BSP program: per-component state initialized from the component's
/// input partition, advanced one superstep at a time.
pub trait BspProgram {
    /// Per-component private state.
    type Proc;

    /// Create component `pid`'s state from its slice of the input.
    fn create(&self, pid: usize, local_input: &[Word]) -> Self::Proc;

    /// Execute one superstep for component `pid`.
    fn superstep(&self, pid: usize, state: &mut Self::Proc, ctx: &mut Superstep<'_>) -> Status;
}

/// A BSP program defined by closures.
pub struct BspFnProgram<S, I, F>
where
    I: Fn(usize, &[Word]) -> S,
    F: Fn(usize, &mut S, &mut Superstep<'_>) -> Status,
{
    init: I,
    step: F,
}

impl<S, I, F> BspFnProgram<S, I, F>
where
    I: Fn(usize, &[Word]) -> S,
    F: Fn(usize, &mut S, &mut Superstep<'_>) -> Status,
{
    /// Builds a closure-backed BSP program.
    pub fn new(init: I, step: F) -> Self {
        BspFnProgram { init, step }
    }
}

impl<S, I, F> BspProgram for BspFnProgram<S, I, F>
where
    I: Fn(usize, &[Word]) -> S,
    F: Fn(usize, &mut S, &mut Superstep<'_>) -> Status,
{
    type Proc = S;

    fn create(&self, pid: usize, local_input: &[Word]) -> S {
        (self.init)(pid, local_input)
    }

    fn superstep(&self, pid: usize, state: &mut S, ctx: &mut Superstep<'_>) -> Status {
        (self.step)(pid, state, ctx)
    }
}

/// Full record of what every component sent and received per superstep.
///
/// Populated by [`BspMachine::run_traced`] or by any run of a machine built
/// [`BspMachine::with_tracing`]; consumed by the `parbounds-analyze` lint
/// pass (e.g. to find sends addressed to components that have already
/// finished and can never receive the delivery).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BspTrace {
    /// One entry per superstep, in execution order. At most
    /// [`ExecOptions::trace_phase_cap`] supersteps are retained.
    pub steps: Vec<BspStepTrace>,
    /// Number of supersteps the run actually executed.
    pub total_steps: usize,
    /// True if the run executed more supersteps than the trace retained.
    pub truncated: bool,
}

/// One superstep of a [`BspTrace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BspStepTrace {
    /// `sent[pid]` = the `(dest, msg)` pairs component `pid` sent this
    /// superstep (with `msg.src` stamped, before fault injection).
    pub sent: Vec<Vec<(usize, Msg)>>,
    /// `received[pid]` = the inbox component `pid` consumed this superstep
    /// (sorted by `(src, tag)`).
    pub received: Vec<Vec<Msg>>,
    /// `executed[pid]` is true if the component ran this superstep (false
    /// once it is done, or while an injected stall delays it).
    pub executed: Vec<bool>,
    /// `finished[pid]` is true if the component returned [`Status::Done`]
    /// this superstep — later deliveries to it are silently lost.
    pub finished: Vec<bool>,
}

/// Outcome of a BSP run.
#[derive(Debug)]
pub struct BspRunResult<S> {
    /// Final per-component states (the distributed "output memory").
    pub states: Vec<S>,
    /// Per-superstep cost records.
    pub ledger: CostLedger,
    /// What the fault injector did, if the machine carried a [`FaultPlan`].
    pub faults: Option<FaultLog>,
    /// Full message trace, if the machine was built
    /// [`BspMachine::with_tracing`] (or the run used
    /// [`BspMachine::run_traced`]). `None` on untraced runs.
    pub trace: Option<BspTrace>,
}

impl<S> BspRunResult<S> {
    /// Total BSP time.
    pub fn time(&self) -> u64 {
        self.ledger.total_time()
    }

    /// Number of supersteps executed.
    pub fn supersteps(&self) -> usize {
        self.ledger.num_phases()
    }
}

/// The BSP machine: `p` components, bandwidth gap `g`, latency `L ≥ g`.
#[derive(Debug, Clone)]
pub struct BspMachine {
    p: usize,
    g: u64,
    l: u64,
    max_steps: usize,
    faults: Option<FaultPlan>,
    cancel: Option<CancelToken>,
    opts: ExecOptions,
}

impl BspMachine {
    /// A BSP(p, g, L). Fails if `p = 0` or `L < g` (the paper assumes
    /// `L ≥ g` throughout).
    pub fn new(p: usize, g: u64, l: u64) -> Result<Self> {
        if p == 0 {
            return Err(ModelError::BadConfig(
                "BSP needs at least one component".into(),
            ));
        }
        let g = g.max(1);
        if l < g {
            return Err(ModelError::BadConfig(format!(
                "BSP requires L >= g (got L={l}, g={g})"
            )));
        }
        Ok(BspMachine {
            p,
            g,
            l,
            max_steps: 1 << 20,
            faults: None,
            cancel: None,
            opts: ExecOptions::default(),
        })
    }

    /// Sets the runaway-protection superstep limit.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// The runaway-protection superstep limit.
    pub fn max_steps(&self) -> usize {
        self.max_steps
    }

    /// Attaches a [`FaultPlan`]: message drops/duplications, component
    /// stalls/crashes and budget guards apply to every subsequent run,
    /// which reports a [`FaultLog`] in [`BspRunResult::faults`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Detaches any fault plan (used to obtain fault-free baselines).
    pub fn without_faults(mut self) -> Self {
        self.faults = None;
        self
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Attaches a [`CancelToken`]: every subsequent run checks it at each
    /// superstep boundary and stops with [`ModelError::DeadlineExceeded`]
    /// once it trips, before the superstep's effects are applied.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Superstep-boundary cancellation checkpoint (no-op without a token).
    fn check_cancel(&self, step: usize) -> Result<()> {
        match &self.cancel {
            Some(token) => token.check(step),
            None => Ok(()),
        }
    }

    /// Makes every subsequent [`BspMachine::run`] record a full
    /// [`BspTrace`] into [`BspRunResult::trace`] (for algorithm entry
    /// points that call `run` internally, e.g. the analyzer's lint pass).
    pub fn with_tracing(mut self) -> Self {
        self.opts.record_trace = true;
        self
    }

    /// Replaces the execution options wholesale.
    pub fn with_options(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Selects the execution strategy ([`Routing::Dense`] = the pooled
    /// fast path, default).
    pub fn with_routing(mut self, routing: Routing) -> Self {
        self.opts.routing = routing;
        self
    }

    /// Executes through the original per-superstep-allocating reference
    /// path.
    pub fn with_reference_routing(self) -> Self {
        self.with_routing(Routing::Reference)
    }

    /// Sets the maximum number of supersteps a recorded trace retains.
    pub fn with_trace_cap(mut self, cap: usize) -> Self {
        self.opts.trace_phase_cap = cap;
        self
    }

    /// Sets the host-thread budget for the intra-superstep compute stage
    /// ([`Parallelism::Off`] by default); results are bit-identical at
    /// every setting. See [`crate::QsmMachine::with_parallelism`].
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.opts.parallelism = parallelism;
        self
    }

    /// The execution options currently in force.
    pub fn options(&self) -> ExecOptions {
        self.opts
    }

    /// Number of components.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Bandwidth gap `g`.
    pub fn g(&self) -> u64 {
        self.g
    }

    /// Latency / synchronization parameter `L`.
    pub fn l(&self) -> u64 {
        self.l
    }

    /// Superstep cost `max(w, g·h, L)`.
    pub fn superstep_cost(&self, w: u64, h: u64) -> u64 {
        w.max(self.g * h).max(self.l)
    }

    /// Partitions `input` uniformly: component `i` gets a contiguous slice
    /// of size `⌈n/p⌉` or `⌊n/p⌋` (the first `n mod p` components get the
    /// larger share).
    pub fn partition<'a>(&self, input: &'a [Word]) -> Vec<&'a [Word]> {
        let n = input.len();
        let base = n / self.p;
        let extra = n % self.p;
        let mut out = Vec::with_capacity(self.p);
        let mut at = 0;
        for i in 0..self.p {
            let len = base + usize::from(i < extra);
            out.push(&input[at..at + len]);
            at += len;
        }
        out
    }

    /// Runs `program` on `input` partitioned across the components.
    ///
    /// `P: Sync` and `P::Proc: Send` admit the intra-superstep parallel
    /// executor; both bounds are vacuous for ordinary programs.
    pub fn run<P>(&self, program: &P, input: &[Word]) -> Result<BspRunResult<P::Proc>>
    where
        P: BspProgram + Sync,
        P::Proc: Send,
    {
        self.execute(program, input, self.opts.record_trace)
    }

    /// Runs `program` and records a full [`BspTrace`].
    pub fn run_traced<P>(
        &self,
        program: &P,
        input: &[Word],
    ) -> Result<(BspRunResult<P::Proc>, BspTrace)>
    where
        P: BspProgram + Sync,
        P::Proc: Send,
    {
        let mut result = self.execute(program, input, true)?;
        let trace = result.trace.take().unwrap_or_default();
        Ok((result, trace))
    }

    fn execute<P>(
        &self,
        program: &P,
        input: &[Word],
        want_trace: bool,
    ) -> Result<BspRunResult<P::Proc>>
    where
        P: BspProgram + Sync,
        P::Proc: Send,
    {
        match self.opts.routing {
            Routing::Dense => {
                let workers = self.opts.parallelism.workers(self.p);
                if workers > 1 && self.faults.is_none() {
                    self.execute_pooled_par(program, input, want_trace, workers)
                } else {
                    self.execute_pooled(program, input, want_trace)
                }
            }
            Routing::Reference => self.execute_reference(program, input, want_trace),
        }
    }

    /// The original execution path, kept as the executable specification
    /// the pooled fast path is differentially tested against.
    fn execute_reference<P: BspProgram>(
        &self,
        program: &P,
        input: &[Word],
        want_trace: bool,
    ) -> Result<BspRunResult<P::Proc>> {
        let cap = self.opts.trace_phase_cap;
        let mut trace = want_trace.then(BspTrace::default);
        let parts = self.partition(input);
        let mut states: Vec<P::Proc> = parts
            .iter()
            .enumerate()
            .map(|(pid, sl)| program.create(pid, sl))
            .collect();
        let mut active = vec![true; self.p];
        let mut inboxes: Vec<Vec<Msg>> = vec![Vec::new(); self.p];
        let mut ledger = CostLedger::new();
        let mut injector = self.faults.as_ref().map(FaultInjector::new);
        let step_limit = injector
            .as_ref()
            .map_or(self.max_steps, |i| i.effective_phase_limit(self.max_steps));
        if let Some(inj) = injector.as_mut() {
            let workers = self.opts.parallelism.workers(self.p);
            if workers > 1 {
                inj.note(crate::qsm::parallel_fallback_notice(workers));
            }
        }
        // Each component's own superstep counter: advances only when it
        // actually executes, so an injected stall is a pure delay from the
        // program's point of view. Without faults this equals the global
        // superstep number.
        let mut local_step: Vec<usize> = vec![0; self.p];

        let mut step_no = 0usize;
        while active.iter().any(|&a| a) {
            if step_no >= step_limit {
                return Err(ModelError::PhaseLimitExceeded { limit: step_limit });
            }
            self.check_cancel(step_no)?;
            let mut next_inboxes: Vec<Vec<Msg>> = vec![Vec::new(); self.p];
            let mut w: u64 = 0;
            let mut max_sent: u64 = 0;
            let mut received: Vec<u64> = vec![0; self.p];
            let mut stalled: Vec<usize> = Vec::new();
            let mut step_trace =
                trace
                    .as_ref()
                    .filter(|t| t.steps.len() < cap)
                    .map(|_| BspStepTrace {
                        sent: vec![Vec::new(); self.p],
                        received: vec![Vec::new(); self.p],
                        executed: vec![false; self.p],
                        finished: vec![false; self.p],
                    });

            for pid in 0..self.p {
                if !active[pid] {
                    continue;
                }
                if let Some(inj) = injector.as_mut() {
                    if inj.crash_at(pid, step_no) {
                        return Err(ModelError::FaultAborted {
                            phase: step_no,
                            reason: format!("component {pid} crashed"),
                        });
                    }
                    if inj.stall_at(pid, step_no) {
                        // Skip the superstep; the inbox is retained and
                        // merged with next superstep's arrivals.
                        stalled.push(pid);
                        continue;
                    }
                }
                let inbox = std::mem::take(&mut inboxes[pid]);
                let mut ctx = Superstep::new(local_step[pid], &inbox);
                let status = program.superstep(pid, &mut states[pid], &mut ctx);
                local_step[pid] += 1;

                let sent = ctx.outbox.len() as u64;
                let recv = inbox.len() as u64;
                w = w.max(ctx.ops + sent + recv);
                max_sent = max_sent.max(sent);
                if let Some(st) = step_trace.as_mut() {
                    st.executed[pid] = true;
                    st.received[pid] = inbox.clone();
                }

                for (dest, mut msg) in ctx.outbox {
                    if dest >= self.p {
                        return Err(ModelError::BadProcessor {
                            pid: dest,
                            num_procs: self.p,
                        });
                    }
                    msg.src = pid;
                    if let Some(st) = step_trace.as_mut() {
                        st.sent[pid].push((dest, msg));
                    }
                    // Per-message faults: a drop delivers zero copies, a
                    // duplication two. `sent` above counts every attempt;
                    // `received` counts what actually arrives.
                    let copies = match injector.as_mut() {
                        Some(inj) => {
                            if inj.drop_message() {
                                0
                            } else if inj.duplicate_message() {
                                2
                            } else {
                                1
                            }
                        }
                        None => 1,
                    };
                    for _ in 0..copies {
                        received[dest] += 1;
                        next_inboxes[dest].push(msg);
                    }
                }
                if status == Status::Done {
                    active[pid] = false;
                    if let Some(st) = step_trace.as_mut() {
                        st.finished[pid] = true;
                    }
                }
            }

            // Stalled components keep their undelivered inbox alongside the
            // new arrivals (the sort below merges them deterministically).
            for pid in stalled {
                let retained = std::mem::take(&mut inboxes[pid]);
                next_inboxes[pid].splice(0..0, retained);
            }
            for ib in next_inboxes.iter_mut() {
                ib.sort_unstable_by_key(|m| (m.src, m.tag));
            }

            let h = max_sent.max(received.iter().copied().max().unwrap_or(0));
            let cost = self.superstep_cost(w, h);
            ledger.push(PhaseCost {
                m_op: w,
                m_rw: h.max(1),
                kappa: 1,
                cost,
            });
            if let Some(inj) = injector.as_ref() {
                inj.check_cost(ledger.total_time())?;
            }
            if let Some(t) = trace.as_mut() {
                t.total_steps += 1;
                match step_trace {
                    Some(st) => t.steps.push(st),
                    None => t.truncated = true,
                }
            }
            inboxes = next_inboxes;
            step_no += 1;
        }

        Ok(BspRunResult {
            states,
            ledger,
            faults: injector.map(FaultInjector::into_log),
            trace,
        })
    }

    /// The pooled fast path: inbox double-buffering and outbox arena reuse
    /// make steady-state supersteps allocation-free. Observationally
    /// identical to [`BspMachine::execute_reference`].
    fn execute_pooled<P: BspProgram>(
        &self,
        program: &P,
        input: &[Word],
        want_trace: bool,
    ) -> Result<BspRunResult<P::Proc>> {
        let cap = self.opts.trace_phase_cap;
        let mut trace = want_trace.then(BspTrace::default);
        let parts = self.partition(input);
        let mut states: Vec<P::Proc> = parts
            .iter()
            .enumerate()
            .map(|(pid, sl)| program.create(pid, sl))
            .collect();
        let mut active = vec![true; self.p];
        let mut inboxes: Vec<Vec<Msg>> = vec![Vec::new(); self.p];
        // Double buffer for next-superstep deliveries: swapped with
        // `inboxes` at the end of each step so capacities are recycled.
        let mut next_inboxes: Vec<Vec<Msg>> = vec![Vec::new(); self.p];
        let mut ledger = CostLedger::new();
        let mut injector = self.faults.as_ref().map(FaultInjector::new);
        let step_limit = injector
            .as_ref()
            .map_or(self.max_steps, |i| i.effective_phase_limit(self.max_steps));
        if let Some(inj) = injector.as_mut() {
            let workers = self.opts.parallelism.workers(self.p);
            if workers > 1 {
                inj.note(crate::qsm::parallel_fallback_notice(workers));
            }
        }
        let mut local_step: Vec<usize> = vec![0; self.p];

        // Per-run scratch, allocated once and reused across supersteps.
        let mut received: Vec<u64> = vec![0; self.p];
        let mut stalled: Vec<usize> = Vec::new();
        let mut outbox_buf: Vec<(usize, Msg)> = Vec::new();

        let mut step_no = 0usize;
        while active.iter().any(|&a| a) {
            if step_no >= step_limit {
                return Err(ModelError::PhaseLimitExceeded { limit: step_limit });
            }
            self.check_cancel(step_no)?;
            for ib in next_inboxes.iter_mut() {
                ib.clear();
            }
            received.fill(0);
            stalled.clear();
            let mut w: u64 = 0;
            let mut max_sent: u64 = 0;
            let mut step_trace =
                trace
                    .as_ref()
                    .filter(|t| t.steps.len() < cap)
                    .map(|_| BspStepTrace {
                        sent: vec![Vec::new(); self.p],
                        received: vec![Vec::new(); self.p],
                        executed: vec![false; self.p],
                        finished: vec![false; self.p],
                    });

            for pid in 0..self.p {
                if !active[pid] {
                    continue;
                }
                if let Some(inj) = injector.as_mut() {
                    if inj.crash_at(pid, step_no) {
                        return Err(ModelError::FaultAborted {
                            phase: step_no,
                            reason: format!("component {pid} crashed"),
                        });
                    }
                    if inj.stall_at(pid, step_no) {
                        stalled.push(pid);
                        continue;
                    }
                }
                let inbox = std::mem::take(&mut inboxes[pid]);
                let mut ctx = Superstep::with_buffer(
                    local_step[pid],
                    &inbox,
                    std::mem::take(&mut outbox_buf),
                );
                let status = program.superstep(pid, &mut states[pid], &mut ctx);
                local_step[pid] += 1;

                let sent = ctx.outbox.len() as u64;
                let recv = inbox.len() as u64;
                w = w.max(ctx.ops + sent + recv);
                max_sent = max_sent.max(sent);
                if let Some(st) = step_trace.as_mut() {
                    st.executed[pid] = true;
                    st.received[pid] = inbox.clone();
                }

                let mut outbox = ctx.outbox;
                for (dest, mut msg) in outbox.drain(..) {
                    if dest >= self.p {
                        return Err(ModelError::BadProcessor {
                            pid: dest,
                            num_procs: self.p,
                        });
                    }
                    msg.src = pid;
                    if let Some(st) = step_trace.as_mut() {
                        st.sent[pid].push((dest, msg));
                    }
                    let copies = match injector.as_mut() {
                        Some(inj) => {
                            if inj.drop_message() {
                                0
                            } else if inj.duplicate_message() {
                                2
                            } else {
                                1
                            }
                        }
                        None => 1,
                    };
                    for _ in 0..copies {
                        received[dest] += 1;
                        next_inboxes[dest].push(msg);
                    }
                }
                outbox_buf = outbox;
                if status == Status::Done {
                    active[pid] = false;
                    if let Some(st) = step_trace.as_mut() {
                        st.finished[pid] = true;
                    }
                }
                // Recycle the consumed inbox: after the end-of-step swap it
                // becomes a delivery buffer for a later superstep.
                let mut ib = inbox;
                ib.clear();
                inboxes[pid] = ib;
            }

            for &pid in &stalled {
                let retained = std::mem::take(&mut inboxes[pid]);
                next_inboxes[pid].splice(0..0, retained);
            }
            for ib in next_inboxes.iter_mut() {
                ib.sort_unstable_by_key(|m| (m.src, m.tag));
            }

            let h = max_sent.max(received.iter().copied().max().unwrap_or(0));
            let cost = self.superstep_cost(w, h);
            ledger.push(PhaseCost {
                m_op: w,
                m_rw: h.max(1),
                kappa: 1,
                cost,
            });
            if let Some(inj) = injector.as_ref() {
                inj.check_cost(ledger.total_time())?;
            }
            if let Some(t) = trace.as_mut() {
                t.total_steps += 1;
                match step_trace {
                    Some(st) => t.steps.push(st),
                    None => t.truncated = true,
                }
            }
            std::mem::swap(&mut inboxes, &mut next_inboxes);
            step_no += 1;
        }

        Ok(BspRunResult {
            states,
            ledger,
            faults: injector.map(FaultInjector::into_log),
            trace,
        })
    }

    /// The parallel pooled path: each superstep's compute stage runs on
    /// `workers` scoped threads over contiguous component chunks; shard
    /// outputs merge back in component order, so message routing order,
    /// destination validation (and its error), inbox sorting, ledgers and
    /// traces are bit-identical to [`BspMachine::execute_pooled`] at any
    /// thread count. Only fault-free runs take this path.
    fn execute_pooled_par<P>(
        &self,
        program: &P,
        input: &[Word],
        want_trace: bool,
        workers: usize,
    ) -> Result<BspRunResult<P::Proc>>
    where
        P: BspProgram + Sync,
        P::Proc: Send,
    {
        let cap = self.opts.trace_phase_cap;
        let mut trace = want_trace.then(BspTrace::default);
        let parts = self.partition(input);
        let all_states: Vec<P::Proc> = parts
            .iter()
            .enumerate()
            .map(|(pid, sl)| program.create(pid, sl))
            .collect();
        let mut active = vec![true; self.p];
        let mut inboxes: Vec<Vec<Msg>> = vec![Vec::new(); self.p];
        let mut next_inboxes: Vec<Vec<Msg>> = vec![Vec::new(); self.p];
        let mut ledger = CostLedger::new();
        let step_limit = self.max_steps;

        let mut received: Vec<u64> = vec![0; self.p];

        let mut state_iter = all_states.into_iter();
        let mut shards: Vec<Option<BspShard<P::Proc>>> = shard_ranges(self.p, workers)
            .into_iter()
            .map(|r| {
                Some(BspShard {
                    base: r.start,
                    step_no: 0,
                    record: false,
                    active: vec![true; r.len()],
                    states: state_iter.by_ref().take(r.len()).collect(),
                    inboxes: vec![Vec::new(); r.len()],
                    sent: Vec::new(),
                    received_trace: Vec::new(),
                    outbox_buf: Vec::new(),
                    w: 0,
                    max_sent: 0,
                })
            })
            .collect();

        let work = |_w: usize, mut shard: BspShard<P::Proc>| {
            shard.sent.clear();
            shard.received_trace.clear();
            shard.w = 0;
            shard.max_sent = 0;
            for i in 0..shard.states.len() {
                if !shard.active[i] {
                    continue;
                }
                let pid = shard.base + i;
                let inbox = std::mem::take(&mut shard.inboxes[i]);
                let mut ctx = Superstep::with_buffer(
                    shard.step_no,
                    &inbox,
                    std::mem::take(&mut shard.outbox_buf),
                );
                let status = program.superstep(pid, &mut shard.states[i], &mut ctx);

                let sent = ctx.outbox.len() as u64;
                let recv = inbox.len() as u64;
                shard.w = shard.w.max(ctx.ops + sent + recv);
                shard.max_sent = shard.max_sent.max(sent);
                if shard.record {
                    shard.received_trace.push((pid, inbox.clone()));
                }
                let mut outbox = ctx.outbox;
                for (dest, mut msg) in outbox.drain(..) {
                    // Destination validation happens at merge time on the
                    // main thread so the error matches the sequential path.
                    msg.src = pid;
                    shard.sent.push((dest, msg));
                }
                shard.outbox_buf = outbox;
                if status == Status::Done {
                    shard.active[i] = false;
                }
                let mut ib = inbox;
                ib.clear();
                shard.inboxes[i] = ib;
            }
            shard
        };

        with_pool(workers, work, move |pool| {
            let mut step_no = 0usize;
            while active.iter().any(|&a| a) {
                if step_no >= step_limit {
                    return Err(ModelError::PhaseLimitExceeded { limit: step_limit });
                }
                self.check_cancel(step_no)?;
                for ib in next_inboxes.iter_mut() {
                    ib.clear();
                }
                received.fill(0);
                let mut w: u64 = 0;
                let mut max_sent: u64 = 0;
                let mut step_trace =
                    trace
                        .as_ref()
                        .filter(|t| t.steps.len() < cap)
                        .map(|_| BspStepTrace {
                            sent: vec![Vec::new(); self.p],
                            received: vec![Vec::new(); self.p],
                            executed: vec![false; self.p],
                            finished: vec![false; self.p],
                        });

                // Compute stage: dispatch shards, merge in component order.
                let record = step_trace.is_some();
                let mut tasks = Vec::with_capacity(shards.len());
                for slot in shards.iter_mut() {
                    let mut shard = slot.take().expect("shard not in flight");
                    shard.step_no = step_no;
                    shard.record = record;
                    for i in 0..shard.active.len() {
                        let pid = shard.base + i;
                        shard.active[i] = active[pid];
                        shard.inboxes[i] = std::mem::take(&mut inboxes[pid]);
                    }
                    tasks.push(shard);
                }
                let mut err: Option<ModelError> = None;
                pool.run_round(tasks, |wk, mut shard| {
                    if err.is_none() {
                        w = w.max(shard.w);
                        max_sent = max_sent.max(shard.max_sent);
                        for &(dest, msg) in &shard.sent {
                            if dest >= self.p {
                                err = Some(ModelError::BadProcessor {
                                    pid: dest,
                                    num_procs: self.p,
                                });
                                break;
                            }
                            if let Some(st) = step_trace.as_mut() {
                                st.sent[msg.src].push((dest, msg));
                            }
                            received[dest] += 1;
                            next_inboxes[dest].push(msg);
                        }
                        if err.is_none() {
                            for (pid, inbox) in shard.received_trace.drain(..) {
                                if let Some(st) = step_trace.as_mut() {
                                    st.received[pid] = inbox;
                                }
                            }
                            for i in 0..shard.active.len() {
                                let pid = shard.base + i;
                                if active[pid] {
                                    if let Some(st) = step_trace.as_mut() {
                                        st.executed[pid] = true;
                                    }
                                    if !shard.active[i] {
                                        active[pid] = false;
                                        if let Some(st) = step_trace.as_mut() {
                                            st.finished[pid] = true;
                                        }
                                    }
                                }
                                inboxes[pid] = std::mem::take(&mut shard.inboxes[i]);
                            }
                        }
                    }
                    shards[wk] = Some(shard);
                });
                if let Some(e) = err {
                    return Err(e);
                }

                // Barrier stage: identical to the sequential pooled path
                // (no stalled components — this path runs fault-free).
                for ib in next_inboxes.iter_mut() {
                    ib.sort_unstable_by_key(|m| (m.src, m.tag));
                }

                let h = max_sent.max(received.iter().copied().max().unwrap_or(0));
                let cost = self.superstep_cost(w, h);
                ledger.push(PhaseCost {
                    m_op: w,
                    m_rw: h.max(1),
                    kappa: 1,
                    cost,
                });
                if let Some(t) = trace.as_mut() {
                    t.total_steps += 1;
                    match step_trace {
                        Some(st) => t.steps.push(st),
                        None => t.truncated = true,
                    }
                }
                std::mem::swap(&mut inboxes, &mut next_inboxes);
                step_no += 1;
            }

            let mut states = Vec::with_capacity(self.p);
            for slot in shards.iter_mut() {
                states.extend(slot.take().expect("shard not in flight").states);
            }
            Ok(BspRunResult {
                states,
                ledger,
                faults: None,
                trace,
            })
        })
    }
}

/// One worker's slice of the BSP machine in the parallel pooled path (see
/// `QsmShard` in the QSM engine — same shape, message-passing payloads).
struct BspShard<S> {
    base: usize,
    step_no: usize,
    /// Whether this superstep's trace is being recorded (drives the
    /// worker-side inbox clone for `BspStepTrace::received`).
    record: bool,
    active: Vec<bool>,
    states: Vec<S>,
    inboxes: Vec<Vec<Msg>>,
    /// Sends emitted this superstep, (dest, src-stamped msg), in component
    /// + send order. Destinations are validated at merge time.
    sent: Vec<(usize, Msg)>,
    received_trace: Vec<(usize, Vec<Msg>)>,
    outbox_buf: Vec<(usize, Msg)>,
    w: u64,
    max_sent: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_l_less_than_g() {
        assert!(BspMachine::new(4, 8, 2).is_err());
        assert!(BspMachine::new(0, 1, 1).is_err());
        assert!(BspMachine::new(4, 2, 8).is_ok());
    }

    #[test]
    fn superstep_cost_matches_definition() {
        let m = BspMachine::new(4, 2, 10).unwrap();
        assert_eq!(m.superstep_cost(3, 1), 10); // L dominates
        assert_eq!(m.superstep_cost(3, 50), 100); // g*h dominates
        assert_eq!(m.superstep_cost(500, 50), 500); // w dominates
    }

    #[test]
    fn partition_is_uniform_ceil_floor() {
        let m = BspMachine::new(4, 1, 1).unwrap();
        let input: Vec<Word> = (0..10).collect();
        let parts = m.partition(&input);
        let sizes: Vec<usize> = parts.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        let flat: Vec<Word> = parts.concat();
        assert_eq!(flat, input);
    }

    #[test]
    fn partition_handles_fewer_inputs_than_procs() {
        let m = BspMachine::new(8, 1, 1).unwrap();
        let input: Vec<Word> = vec![1, 2, 3];
        let sizes: Vec<usize> = m.partition(&input).iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![1, 1, 1, 0, 0, 0, 0, 0]);
    }

    /// Sum reduction to component 0 via direct sends.
    #[test]
    fn message_passing_sum() {
        let prog = BspFnProgram::new(
            |_, local: &[Word]| (local.iter().sum::<Word>(), 0i64),
            |pid, st: &mut (Word, Word), ctx: &mut Superstep<'_>| match ctx.step() {
                0 => {
                    if pid != 0 {
                        ctx.send(0, 0, st.0);
                        Status::Done
                    } else {
                        Status::Active
                    }
                }
                _ => {
                    st.1 = st.0 + ctx.inbox().iter().map(|m| m.value).sum::<Word>();
                    Status::Done
                }
            },
        );
        let m = BspMachine::new(4, 2, 5).unwrap();
        let input: Vec<Word> = (1..=12).collect();
        let res = m.run(&prog, &input).unwrap();
        assert_eq!(res.states[0].1, 78);
        // Superstep 0: each non-root sends 1 message, root receives 3:
        // h = 3, w small -> cost = max(w, 2*3, 5) = 6. Superstep 1: only
        // local work at root; cost = L = 5.
        assert_eq!(res.ledger.phases()[0].cost, 6);
        assert_eq!(res.ledger.phases()[1].cost, 5);
        assert_eq!(res.time(), 11);
    }

    #[test]
    fn inbox_is_sorted_by_src_then_tag() {
        let prog = BspFnProgram::new(
            |_, _: &[Word]| Vec::<(usize, Word)>::new(),
            |pid, seen: &mut Vec<(usize, Word)>, ctx: &mut Superstep<'_>| match ctx.step() {
                0 => {
                    if pid > 0 {
                        ctx.send(0, (10 - pid) as Word, pid as Word);
                        Status::Done
                    } else {
                        Status::Active
                    }
                }
                _ => {
                    seen.extend(ctx.inbox().iter().map(|m| (m.src, m.value)));
                    Status::Done
                }
            },
        );
        let m = BspMachine::new(4, 1, 1).unwrap();
        let res = m.run(&prog, &[]).unwrap();
        assert_eq!(res.states[0], vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn bad_destination_is_rejected() {
        let prog = BspFnProgram::new(
            |_, _: &[Word]| (),
            |_, _, ctx: &mut Superstep<'_>| {
                ctx.send(99, 0, 0);
                Status::Done
            },
        );
        let m = BspMachine::new(4, 1, 1).unwrap();
        assert!(matches!(
            m.run(&prog, &[]),
            Err(ModelError::BadProcessor { pid: 99, .. })
        ));
    }

    #[test]
    fn every_superstep_costs_at_least_l() {
        let prog = BspFnProgram::new(
            |_, _: &[Word]| (),
            |_, _, ctx: &mut Superstep<'_>| {
                if ctx.step() < 3 {
                    Status::Active
                } else {
                    Status::Done
                }
            },
        );
        let m = BspMachine::new(2, 2, 7).unwrap();
        let res = m.run(&prog, &[]).unwrap();
        assert_eq!(res.supersteps(), 4);
        assert_eq!(res.time(), 28);
    }

    #[test]
    fn trace_records_sends_receipts_and_completion() {
        let prog = BspFnProgram::new(
            |_, _: &[Word]| (),
            |pid, _, ctx: &mut Superstep<'_>| match ctx.step() {
                0 => {
                    if pid == 1 {
                        ctx.send(0, 7, 42);
                        Status::Done
                    } else {
                        Status::Active
                    }
                }
                _ => Status::Done,
            },
        );
        let m = BspMachine::new(2, 1, 1).unwrap();
        assert!(m.run(&prog, &[]).unwrap().trace.is_none());
        let (_, trace) = m.run_traced(&prog, &[]).unwrap();
        assert_eq!(trace.steps.len(), 2);
        let msg = Msg {
            src: 1,
            tag: 7,
            value: 42,
        };
        assert_eq!(trace.steps[0].sent[1], vec![(0, msg)]);
        assert_eq!(trace.steps[0].finished, vec![false, true]);
        assert_eq!(trace.steps[1].received[0], vec![msg]);
        assert_eq!(trace.steps[1].executed, vec![true, false]);
        let traced = m.clone().with_tracing().run(&prog, &[]).unwrap();
        assert_eq!(traced.trace.unwrap().steps.len(), 2);
    }

    #[test]
    fn runaway_program_hits_step_limit() {
        let prog = BspFnProgram::new(
            |_, _: &[Word]| (),
            |_, _, _: &mut Superstep<'_>| Status::Active,
        );
        let m = BspMachine::new(2, 1, 1).unwrap().with_max_steps(5);
        assert!(matches!(
            m.run(&prog, &[]),
            Err(ModelError::PhaseLimitExceeded { limit: 5 })
        ));
    }
}
