//! Work accounting and the Section 2.3 laws connecting *linear work* and
//! *rounds*.
//!
//! The paper defines: a `p`-processor QSM/s-QSM algorithm performs linear
//! work if its processor-time product is `O(g·n)` (on a GSM, `O(μn/λ)`);
//! and observes two executable laws: (i) any linear-work algorithm must
//! compute in rounds, and (ii) an `r`-round computation performs at most
//! `O(r·g·n)` work (on a BSP, `O(r·(g·n + L·p))`). These functions evaluate
//! both directions against concrete [`CostLedger`]s, and the test suites
//! apply them to every rounds-respecting algorithm in the repository.

use crate::cost::{round_budget_bsp, round_budget_qsm, CostLedger};

/// Work of the execution on `p` processors, `p·T`.
pub fn work(ledger: &CostLedger, p: u64) -> u64 {
    ledger.work(p)
}

/// Is the execution linear-work on a QSM/s-QSM: `p·T ≤ slack·g·n`?
pub fn is_linear_work_qsm(ledger: &CostLedger, p: u64, n: u64, g: u64, slack: u64) -> bool {
    ledger.work(p) <= slack * g * n
}

/// Section 2.3, direction (i): **linear work ⇒ computes in rounds**.
/// If `p·T ≤ c·g·n` then every phase (costing at most `T`) fits the round
/// budget `c·g·n/p`. This function checks the implication on a concrete
/// ledger: it returns `true` unless the ledger is linear-work (at `slack`)
/// *and* some phase overruns the implied budget — which the law says is
/// impossible, so a `false` here would witness an accounting bug.
pub fn linear_work_implies_rounds(ledger: &CostLedger, p: u64, n: u64, g: u64, slack: u64) -> bool {
    if !is_linear_work_qsm(ledger, p, n, g, slack) {
        return true; // implication vacuous
    }
    let budget = round_budget_qsm(n, p, g, slack);
    ledger.is_round_respecting(budget)
}

/// Section 2.3, direction (ii): an `r`-round computation performs at most
/// `slack·r·g·n` work on a QSM/s-QSM. Checks the inequality for the
/// ledger's realized round count at the given budget; `None` if the ledger
/// does not compute in rounds at that budget.
pub fn rounds_work_bound_qsm(
    ledger: &CostLedger,
    p: u64,
    n: u64,
    g: u64,
    slack: u64,
) -> Option<bool> {
    let budget = round_budget_qsm(n, p, g, slack);
    let r = ledger.rounds(budget)? as u64;
    Some(ledger.work(p) <= slack * r * g * n.max(1))
}

/// BSP variant of direction (ii): `r` rounds ⇒ work ≤ `slack·r·(g·n + L·p)`.
pub fn rounds_work_bound_bsp(
    ledger: &CostLedger,
    p: u64,
    n: u64,
    g: u64,
    l: u64,
    slack: u64,
) -> Option<bool> {
    let budget = round_budget_bsp(n, p, g, l, slack);
    let r = ledger.rounds(budget)? as u64;
    Some(ledger.work(p) <= slack * r * (g * n.max(1) + l * p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PhaseCost;

    fn ledger_of(costs: &[u64]) -> CostLedger {
        let mut l = CostLedger::new();
        for &c in costs {
            l.push(PhaseCost {
                m_op: 0,
                m_rw: 1,
                kappa: 1,
                cost: c,
            });
        }
        l
    }

    #[test]
    fn linear_work_detection() {
        // p = 8, T = 24 -> work 192; g*n = 2*128 = 256.
        let l = ledger_of(&[8, 8, 8]);
        assert!(is_linear_work_qsm(&l, 8, 128, 2, 1));
        assert!(!is_linear_work_qsm(&l, 16, 128, 2, 1));
        assert!(is_linear_work_qsm(&l, 16, 128, 2, 2));
    }

    #[test]
    fn linear_work_implies_rounds_law() {
        // A linear-work ledger: every phase must fit c·g·n/p.
        // p=4, n=64, g=1, slack=1: work cap 64, budget 16.
        let ok = ledger_of(&[16, 16, 16, 16]); // work 256 > 64: vacuous
        assert!(linear_work_implies_rounds(&ok, 4, 64, 1, 1));
        let tight = ledger_of(&[8, 8]); // work 64 = cap; phases 8 <= 16 ✓
        assert!(linear_work_implies_rounds(&tight, 4, 64, 1, 1));
        // A ledger violating the law can only arise from a bookkeeping bug:
        // work 64 (cap) but one phase of 60 > 16 would need the OTHER phase
        // at 4 — total time 64 with p=1… construct p=1, n=64: budget 64;
        // even a 60-cost phase fits. The law is an arithmetic identity, so
        // only *inconsistent* ledgers can fail; simulate one:
        let weird = ledger_of(&[60, 4]);
        assert!(linear_work_implies_rounds(&weird, 1, 64, 1, 1));
    }

    #[test]
    fn rounds_bound_work_law() {
        // 3 rounds at budget 16 with p = 4, n = 64, g = 1:
        // work <= 1·3·1·64 = 192; realized work = 4·(10+12+16) = 152 ✓.
        let l = ledger_of(&[10, 12, 16]);
        assert_eq!(rounds_work_bound_qsm(&l, 4, 64, 1, 1), Some(true));
        // Not round-respecting at slack 1 if a phase overruns.
        let l = ledger_of(&[10, 40]);
        assert_eq!(rounds_work_bound_qsm(&l, 4, 64, 1, 1), None);
    }

    #[test]
    fn bsp_rounds_work_bound_includes_latency_term() {
        // p = 8, n = 64, g = 1, L = 16, slack 1: budget = 64/8 + 16 = 24.
        let l = ledger_of(&[24, 24]);
        // work = 8·48 = 384 <= 2·(64 + 128) = 384 ✓ (exactly at the bound).
        assert_eq!(rounds_work_bound_bsp(&l, 8, 64, 1, 16, 1), Some(true));
    }
}
