//! Fault injection and execution hardening for the model simulators.
//!
//! The paper's upper bounds are statements about *expected* behaviour under
//! the models' nondeterminism — most importantly the QSM's arbitrary-write
//! rule, under which a correct algorithm must produce the right answer for
//! **every** choice of concurrent-write winners, not just the ones a seeded
//! RNG happens to pick. A [`FaultPlan`] makes that nondeterminism (and a
//! family of execution faults layered on top) an explicit, reproducible
//! machine parameter:
//!
//! * **Winner policies** ([`WinnerPolicy`]) replace the default seeded
//!   arbitration of concurrent writes with adversarial (first/last writer,
//!   min/max value) or *scripted* choices. Scripted winners plus the choice
//!   points recorded in the [`FaultLog`] allow exhaustive enumeration of
//!   every arbitration outcome on small instances (see [`advance_script`]).
//! * **Message faults** (BSP only): each point-to-point message is
//!   independently dropped with probability `drop_prob` and duplicated with
//!   probability `dup_prob`.
//! * **Processor faults**: a processor can be *stalled* at a global phase
//!   (it skips the phase; its pending deliveries and inbox are retained and
//!   it resumes at its own next local phase) or *crashed* (the engine
//!   aborts the run with [`ModelError::FaultAborted`] — a crashed
//!   shared-state computation is never reported as an `Ok` result).
//! * **Budget guards**: a cost budget (total model time) and a phase budget
//!   turn runaway degraded executions into typed errors
//!   ([`ModelError::CostBudgetExceeded`], [`ModelError::PhaseLimitExceeded`])
//!   instead of hangs.
//!
//! Plans are attached to machines with `with_faults` (on
//! [`crate::QsmMachine`], [`crate::BspMachine`] and [`crate::GsmMachine`]),
//! so *any* program — every Section 8 algorithm unchanged — runs under the
//! plan; the engines report what was injected in the `faults` field of
//! their run results.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use std::collections::HashSet;

use crate::error::{ModelError, Result};
use crate::shared::{Addr, Word};

/// Cap on recorded write-arbitration choice points (enough for exhaustive
/// enumeration on small instances without unbounded logs on big ones).
pub const MAX_LOGGED_CHOICES: usize = 1 << 16;

/// How concurrent writes to one cell are arbitrated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WinnerPolicy {
    /// Uniform random winner from the plan's seeded RNG (the default; this
    /// is also what a machine without a fault plan does with its own seed).
    SeededRandom,
    /// The lowest-pid writer wins (writers are considered in pid order).
    FirstWriter,
    /// The highest-pid writer wins.
    LastWriter,
    /// The smallest written value wins.
    MinValue,
    /// The largest written value wins.
    MaxValue,
    /// Choice `i` of the run takes index `script[i] % writers` among the
    /// cell's writers in pid order (missing digits read as 0). Combined
    /// with the radices recorded in [`FaultLog::write_choices`] this
    /// enumerates the full arbitration space — see [`advance_script`].
    Scripted(Vec<usize>),
}

/// A reproducible description of the faults to inject into one execution.
///
/// Built with a fluent API:
///
/// ```
/// use parbounds_models::{FaultPlan, WinnerPolicy};
///
/// let plan = FaultPlan::new(42)
///     .with_winner(WinnerPolicy::MinValue)
///     .with_drop_prob(0.2)
///     .with_stall(3, 5)
///     .with_cost_budget(1_000_000);
/// assert_eq!(plan.seed(), 42);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    winner: WinnerPolicy,
    drop_prob: f64,
    dup_prob: f64,
    crashes: Vec<(usize, usize)>,
    stalls: Vec<(usize, usize)>,
    cost_budget: Option<u64>,
    phase_budget: Option<usize>,
}

impl FaultPlan {
    /// A fault-free plan (seeded-random winners, no faults, no budgets).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            winner: WinnerPolicy::SeededRandom,
            drop_prob: 0.0,
            dup_prob: 0.0,
            crashes: Vec::new(),
            stalls: Vec::new(),
            cost_budget: None,
            phase_budget: None,
        }
    }

    /// Replaces the RNG seed (used by retry-with-reseed wrappers).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the concurrent-write arbitration policy.
    pub fn with_winner(mut self, winner: WinnerPolicy) -> Self {
        self.winner = winner;
        self
    }

    /// Sets the per-message drop probability (BSP only). Panics unless
    /// `0 ≤ p ≤ 1`.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability {p} outside [0, 1]"
        );
        self.drop_prob = p;
        self
    }

    /// Sets the per-message duplication probability (BSP only). Panics
    /// unless `0 ≤ p ≤ 1`.
    pub fn with_dup_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "dup probability {p} outside [0, 1]"
        );
        self.dup_prob = p;
        self
    }

    /// Crashes processor `pid` at global phase/superstep `phase`: the engine
    /// aborts with [`ModelError::FaultAborted`] when the phase is reached.
    pub fn with_crash(mut self, pid: usize, phase: usize) -> Self {
        self.crashes.push((pid, phase));
        self
    }

    /// Stalls processor `pid` at global phase/superstep `phase`: it skips
    /// the phase (deliveries retained) and resumes afterwards.
    pub fn with_stall(mut self, pid: usize, phase: usize) -> Self {
        self.stalls.push((pid, phase));
        self
    }

    /// Aborts the run with [`ModelError::CostBudgetExceeded`] once total
    /// model time exceeds `budget`.
    pub fn with_cost_budget(mut self, budget: u64) -> Self {
        self.cost_budget = Some(budget);
        self
    }

    /// Caps the number of phases/supersteps (tightens the machine's own
    /// `max_phases`; overruns give [`ModelError::PhaseLimitExceeded`]).
    pub fn with_phase_budget(mut self, budget: usize) -> Self {
        self.phase_budget = Some(budget);
        self
    }

    /// The plan's RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The winner policy.
    pub fn winner(&self) -> &WinnerPolicy {
        &self.winner
    }

    /// Per-message drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Per-message duplication probability.
    pub fn dup_prob(&self) -> f64 {
        self.dup_prob
    }

    /// Scheduled crashes as `(pid, phase)` pairs.
    pub fn crashes(&self) -> &[(usize, usize)] {
        &self.crashes
    }

    /// Scheduled stalls as `(pid, phase)` pairs.
    pub fn stalls(&self) -> &[(usize, usize)] {
        &self.stalls
    }

    /// The cost budget, if any.
    pub fn cost_budget(&self) -> Option<u64> {
        self.cost_budget
    }

    /// The phase budget, if any.
    pub fn phase_budget(&self) -> Option<usize> {
        self.phase_budget
    }

    /// Does this plan inject anything that can change the *result* of a run
    /// (as opposed to only bounding it)? Winner policies count: under the
    /// arbitrary-write rule a correct program must tolerate every winner,
    /// so harnesses verify outputs whenever this is true.
    pub fn perturbs_execution(&self) -> bool {
        self.winner != WinnerPolicy::SeededRandom
            || self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || !self.crashes.is_empty()
            || !self.stalls.is_empty()
    }
}

/// One recorded concurrent-write arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoicePoint {
    /// Global phase of the arbitration.
    pub phase: usize,
    /// The contended cell.
    pub addr: Addr,
    /// Number of concurrent writers (the radix of this choice).
    pub writers: usize,
    /// Index of the winner among the writers in pid order.
    pub chosen: usize,
}

/// What an execution's fault injector actually did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Messages dropped (BSP).
    pub dropped: u64,
    /// Messages duplicated (BSP).
    pub duplicated: u64,
    /// Stall faults applied.
    pub stalls_applied: u64,
    /// Concurrent-write arbitrations, in deterministic (phase, address)
    /// order — the coordinate system for [`WinnerPolicy::Scripted`].
    pub write_choices: Vec<ChoicePoint>,
    /// True if more than [`MAX_LOGGED_CHOICES`] arbitrations occurred and
    /// the log was truncated (exhaustive enumeration is then impossible).
    pub choices_truncated: bool,
    /// Human-readable notices about how the *host* executed the faulted
    /// run (e.g. requested intra-phase parallelism being disabled because
    /// fault-plan runs execute sequentially). Notices describe the
    /// execution strategy, not injected faults, so differential suites
    /// compare logs with [`FaultLog::sans_notices`].
    pub notices: Vec<String>,
}

impl FaultLog {
    /// The radix (writer count) of every recorded choice point, for
    /// [`advance_script`].
    pub fn choice_radices(&self) -> Vec<usize> {
        self.write_choices.iter().map(|c| c.writers).collect()
    }

    /// Total injected perturbations (a scalar for degradation tables).
    pub fn events(&self) -> u64 {
        self.dropped + self.duplicated + self.stalls_applied
    }

    /// A copy of the log with [`notices`](Self::notices) cleared. Injected
    /// faults must be bit-identical across execution strategies (dense vs.
    /// reference, sequential vs. requested-parallel); notices intentionally
    /// differ by strategy, so equivalence suites compare this view.
    pub fn sans_notices(&self) -> FaultLog {
        FaultLog {
            notices: Vec::new(),
            ..self.clone()
        }
    }
}

/// Per-run fault state: the plan, its RNG, the script cursor and the log.
///
/// The engines create one injector per execution; algorithm code never
/// touches this type directly.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: ChaCha8Rng,
    cursor: usize,
    log: FaultLog,
    crash_set: HashSet<(usize, usize)>,
    stall_set: HashSet<(usize, usize)>,
}

impl FaultInjector {
    /// Builds the injector for one execution of `plan`.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            rng: ChaCha8Rng::seed_from_u64(plan.seed),
            cursor: 0,
            log: FaultLog::default(),
            crash_set: plan.crashes.iter().copied().collect(),
            stall_set: plan.stalls.iter().copied().collect(),
            plan: plan.clone(),
        }
    }

    /// Is processor `pid` scheduled to crash at global phase `phase`?
    pub fn crash_at(&self, pid: usize, phase: usize) -> bool {
        self.crash_set.contains(&(pid, phase))
    }

    /// Applies (and logs) a stall of `pid` at `phase` if one is scheduled.
    pub fn stall_at(&mut self, pid: usize, phase: usize) -> bool {
        let hit = self.stall_set.contains(&(pid, phase));
        if hit {
            self.log.stalls_applied += 1;
        }
        hit
    }

    /// Decides (and logs) whether the next message is dropped.
    pub fn drop_message(&mut self) -> bool {
        let hit = self.plan.drop_prob > 0.0 && self.rng.gen_bool(self.plan.drop_prob);
        if hit {
            self.log.dropped += 1;
        }
        hit
    }

    /// Decides (and logs) whether the next message is duplicated.
    pub fn duplicate_message(&mut self) -> bool {
        let hit = self.plan.dup_prob > 0.0 && self.rng.gen_bool(self.plan.dup_prob);
        if hit {
            self.log.duplicated += 1;
        }
        hit
    }

    /// Arbitrates one cell's concurrent writes under the plan's policy.
    /// `values` holds the written values in pid order and must be
    /// non-empty; the winning value is returned and the choice logged.
    pub fn pick_winner(&mut self, phase: usize, addr: Addr, values: &[Word]) -> Word {
        debug_assert!(!values.is_empty());
        let idx = match &self.plan.winner {
            WinnerPolicy::SeededRandom => self.rng.gen_range(0..values.len()),
            WinnerPolicy::FirstWriter => 0,
            WinnerPolicy::LastWriter => values.len() - 1,
            WinnerPolicy::MinValue => {
                let mut best = 0;
                for (i, &v) in values.iter().enumerate() {
                    if v < values[best] {
                        best = i;
                    }
                }
                best
            }
            WinnerPolicy::MaxValue => {
                let mut best = 0;
                for (i, &v) in values.iter().enumerate() {
                    if v > values[best] {
                        best = i;
                    }
                }
                best
            }
            WinnerPolicy::Scripted(script) => {
                let digit = script.get(self.cursor).copied().unwrap_or(0);
                digit % values.len()
            }
        };
        self.cursor += 1;
        if self.log.write_choices.len() < MAX_LOGGED_CHOICES {
            self.log.write_choices.push(ChoicePoint {
                phase,
                addr,
                writers: values.len(),
                chosen: idx,
            });
        } else {
            self.log.choices_truncated = true;
        }
        values[idx]
    }

    /// Enforces the plan's cost budget against the running total.
    pub fn check_cost(&self, total: u64) -> Result<()> {
        match self.plan.cost_budget {
            Some(budget) if total > budget => Err(ModelError::CostBudgetExceeded {
                budget,
                cost: total,
            }),
            _ => Ok(()),
        }
    }

    /// The effective phase limit: the machine's own limit tightened by the
    /// plan's phase budget.
    pub fn effective_phase_limit(&self, machine_limit: usize) -> usize {
        self.plan
            .phase_budget
            .map_or(machine_limit, |b| b.min(machine_limit))
    }

    /// Records a one-line host-execution notice in the log (see
    /// [`FaultLog::notices`]).
    pub fn note(&mut self, msg: impl Into<String>) {
        self.log.notices.push(msg.into());
    }

    /// Consumes the injector, yielding its log.
    pub fn into_log(self) -> FaultLog {
        self.log
    }
}

/// Advances a [`WinnerPolicy::Scripted`] digit vector to the next point of
/// the arbitration space, odometer style. `radices[i]` is the writer count
/// of choice `i` as recorded by the *previous* run's
/// [`FaultLog::choice_radices`]; returns `false` once the space is
/// exhausted.
///
/// Exhaustively checking a program against the arbitrary-write rule is a
/// loop: run with `Scripted(script)`, read back the radices, and advance:
///
/// ```
/// use parbounds_models::faults::advance_script;
///
/// let mut script = Vec::new();
/// let mut seen = Vec::new();
/// loop {
///     // ... run with WinnerPolicy::Scripted(script.clone()), check output,
///     // and read the radices from the run's FaultLog; here a fixed shape:
///     let radices = vec![2, 3];
///     seen.push(script.clone());
///     if !advance_script(&mut script, &radices) {
///         break;
///     }
/// }
/// assert_eq!(seen.len(), 6); // every (i, j) in 2 x 3
/// ```
pub fn advance_script(script: &mut Vec<usize>, radices: &[usize]) -> bool {
    script.resize(radices.len(), 0);
    for i in (0..radices.len()).rev() {
        script[i] += 1;
        if script[i] < radices[i].max(1) {
            return true;
        }
        script[i] = 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_round_trips() {
        let plan = FaultPlan::new(7)
            .with_winner(WinnerPolicy::LastWriter)
            .with_drop_prob(0.25)
            .with_dup_prob(0.1)
            .with_crash(2, 9)
            .with_stall(0, 1)
            .with_cost_budget(500)
            .with_phase_budget(64);
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.winner(), &WinnerPolicy::LastWriter);
        assert_eq!(plan.drop_prob(), 0.25);
        assert_eq!(plan.dup_prob(), 0.1);
        assert_eq!(plan.crashes(), &[(2, 9)]);
        assert_eq!(plan.stalls(), &[(0, 1)]);
        assert_eq!(plan.cost_budget(), Some(500));
        assert_eq!(plan.phase_budget(), Some(64));
        assert!(plan.perturbs_execution());
        assert!(!FaultPlan::new(7).perturbs_execution());
        assert!(!FaultPlan::new(7).with_cost_budget(5).perturbs_execution());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn plan_rejects_bad_probability() {
        let _ = FaultPlan::new(0).with_drop_prob(1.5);
    }

    #[test]
    fn winner_policies_pick_the_documented_index() {
        let vals = [30, 10, 20];
        let pick = |w: WinnerPolicy| {
            let mut inj = FaultInjector::new(&FaultPlan::new(1).with_winner(w));
            inj.pick_winner(0, 0, &vals)
        };
        assert_eq!(pick(WinnerPolicy::FirstWriter), 30);
        assert_eq!(pick(WinnerPolicy::LastWriter), 20);
        assert_eq!(pick(WinnerPolicy::MinValue), 10);
        assert_eq!(pick(WinnerPolicy::MaxValue), 30);
        assert_eq!(pick(WinnerPolicy::Scripted(vec![1])), 10);
        assert_eq!(pick(WinnerPolicy::Scripted(vec![5])), 20); // 5 % 3
        assert_eq!(pick(WinnerPolicy::Scripted(vec![])), 30); // missing digit = 0
    }

    #[test]
    fn seeded_random_winner_is_deterministic_and_logged() {
        let plan = FaultPlan::new(99);
        let run = || {
            let mut inj = FaultInjector::new(&plan);
            let a = inj.pick_winner(0, 4, &[1, 2, 3, 4]);
            let b = inj.pick_winner(1, 9, &[5, 6]);
            (a, b, inj.into_log())
        };
        let (a1, b1, log1) = run();
        let (a2, b2, log2) = run();
        assert_eq!((a1, b1), (a2, b2));
        assert_eq!(log1, log2);
        assert_eq!(log1.write_choices.len(), 2);
        assert_eq!(log1.write_choices[0].writers, 4);
        assert_eq!(log1.choice_radices(), vec![4, 2]);
    }

    #[test]
    fn message_fault_rates_are_roughly_honoured() {
        let mut inj = FaultInjector::new(&FaultPlan::new(3).with_drop_prob(0.5));
        let drops = (0..2000).filter(|_| inj.drop_message()).count();
        assert!((800..1200).contains(&drops), "drops {drops}");
        let log = inj.into_log();
        assert_eq!(log.dropped as usize, drops);
        assert_eq!(log.duplicated, 0);

        let mut none = FaultInjector::new(&FaultPlan::new(3));
        assert!((0..100).all(|_| !none.drop_message() && !none.duplicate_message()));
    }

    #[test]
    fn budgets_and_schedules_are_enforced() {
        let plan = FaultPlan::new(0)
            .with_cost_budget(10)
            .with_crash(1, 2)
            .with_stall(0, 3);
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.check_cost(10).is_ok());
        assert_eq!(
            inj.check_cost(11),
            Err(ModelError::CostBudgetExceeded {
                budget: 10,
                cost: 11
            })
        );
        assert!(inj.crash_at(1, 2));
        assert!(!inj.crash_at(1, 3));
        assert!(inj.stall_at(0, 3));
        assert!(!inj.stall_at(0, 4));
        assert_eq!(inj.effective_phase_limit(100), 100);
        let tight = FaultInjector::new(&FaultPlan::new(0).with_phase_budget(5));
        assert_eq!(tight.effective_phase_limit(100), 5);
        assert_eq!(inj.into_log().stalls_applied, 1);
    }

    #[test]
    fn advance_script_enumerates_the_product() {
        let radices = [2usize, 1, 3];
        let mut script = Vec::new();
        let mut seen = vec![];
        loop {
            seen.push(script.clone());
            if !advance_script(&mut script, &radices) {
                break;
            }
        }
        // Radices (2, 1, 3) enumerate a product space of 6 scripts, the
        // first being the empty script (all digits default 0).
        assert_eq!(seen.len(), 6);
        let mut dedup: Vec<Vec<usize>> = seen
            .iter()
            .map(|s| {
                let mut v = s.clone();
                v.resize(3, 0);
                v
            })
            .collect();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 6);
    }

    #[test]
    fn notices_record_and_strip() {
        let mut inj = FaultInjector::new(&FaultPlan::new(1));
        inj.note("parallelism disabled");
        inj.pick_winner(0, 0, &[1, 2]);
        let log = inj.into_log();
        assert_eq!(log.notices, vec!["parallelism disabled".to_string()]);
        let stripped = log.sans_notices();
        assert!(stripped.notices.is_empty());
        assert_eq!(stripped.write_choices, log.write_choices);
        assert_ne!(stripped, log);
    }

    #[test]
    fn choice_log_truncates_at_the_cap() {
        let mut inj = FaultInjector::new(&FaultPlan::new(1));
        for i in 0..MAX_LOGGED_CHOICES + 10 {
            inj.pick_winner(i, 0, &[1, 2]);
        }
        let log = inj.into_log();
        assert_eq!(log.write_choices.len(), MAX_LOGGED_CHOICES);
        assert!(log.choices_truncated);
    }
}
