//! Program abstraction shared by the queuing shared-memory machines
//! (QSM, s-QSM and the QRQW PRAM special case).
//!
//! A [`Program`] describes the behaviour of every processor of a
//! bulk-synchronous machine. Execution proceeds in *phases*: in each phase
//! the engine calls [`Program::phase`] once for every still-active
//! processor; the processor inspects the values *delivered* for the reads it
//! issued in the previous phase, and issues new read/write/local-op requests
//! through the [`PhaseEnv`]. This encoding makes the paper's rule that "the
//! value returned by a shared-memory read can only be used in a subsequent
//! phase" (Section 2.1) impossible to violate by construction.

/// The machine word. Shared-memory cells of the QSM/s-QSM/BSP hold one word.
pub type Word = i64;

/// A shared-memory address.
pub type Addr = usize;

/// What a processor reports at the end of its phase callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The processor wants to participate in further phases.
    Active,
    /// The processor is finished and will not be called again. Reads it
    /// issued in its final phase are discarded.
    Done,
}

/// Per-processor view of one phase: delivered reads in, requests out.
#[derive(Debug)]
pub struct PhaseEnv<'a> {
    phase: usize,
    delivered: &'a [(Addr, Word)],
    pub(crate) reads: Vec<Addr>,
    pub(crate) writes: Vec<(Addr, Word)>,
    pub(crate) ops: u64,
}

impl<'a> PhaseEnv<'a> {
    /// Builds a phase view directly. Normally only the machines do this,
    /// but it is public so *emulators* (e.g. running a QSM program on a
    /// BSP, `parbounds-algo::emulation`) can drive [`Program`]s themselves.
    pub fn new(phase: usize, delivered: &'a [(Addr, Word)]) -> Self {
        PhaseEnv {
            phase,
            delivered,
            reads: Vec::new(),
            writes: Vec::new(),
            ops: 0,
        }
    }

    /// Builds a phase view around caller-provided (typically recycled)
    /// request buffers, so steady-state phases of the dense fast path do no
    /// allocation. The buffers must be empty.
    pub(crate) fn with_buffers(
        phase: usize,
        delivered: &'a [(Addr, Word)],
        reads: Vec<Addr>,
        writes: Vec<(Addr, Word)>,
    ) -> Self {
        debug_assert!(reads.is_empty() && writes.is_empty());
        PhaseEnv {
            phase,
            delivered,
            reads,
            writes,
            ops: 0,
        }
    }

    /// Dismantles the view into `(reads, writes, local_ops)` — the
    /// counterpart of [`PhaseEnv::new`] for external engines.
    pub fn into_requests(self) -> (Vec<Addr>, Vec<(Addr, Word)>, u64) {
        (self.reads, self.writes, self.ops)
    }

    /// Index of the current phase (0-based).
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// The `(address, value)` pairs for the reads this processor issued in
    /// the *previous* phase, in request order.
    pub fn delivered(&self) -> &[(Addr, Word)] {
        self.delivered
    }

    /// Value delivered for `addr`, if this processor read it last phase.
    ///
    /// **First delivery wins**: if the address was read more than once in
    /// the previous phase the engine delivers one `(addr, value)` pair per
    /// request, all carrying the same committed value, and this accessor
    /// returns the *first* of them. Use [`PhaseEnv::values`] to see every
    /// delivery (e.g. to count duplicate requests).
    pub fn value(&self, addr: Addr) -> Option<Word> {
        self.delivered
            .iter()
            .find(|(a, _)| *a == addr)
            .map(|&(_, v)| v)
    }

    /// Every value delivered for `addr`, in request order — one entry per
    /// read request the processor issued for that address last phase.
    /// Empty if the address was not read. [`PhaseEnv::value`] returns only
    /// the first of these ("first delivery wins").
    pub fn values(&self, addr: Addr) -> Vec<Word> {
        self.delivered
            .iter()
            .filter(|(a, _)| *a == addr)
            .map(|&(_, v)| v)
            .collect()
    }

    /// Issue a shared-memory read; the value arrives next phase.
    pub fn read(&mut self, addr: Addr) {
        self.reads.push(addr);
    }

    /// Issue a shared-memory write, effective at the end of this phase. If
    /// several processors write the same cell, an arbitrary one succeeds
    /// (the engine picks the winner with its seeded RNG).
    pub fn write(&mut self, addr: Addr, value: Word) {
        self.writes.push((addr, value));
    }

    /// Charge `k` units of local computation (`c_i` in the paper). Issuing
    /// reads and writes is charged automatically on top of this.
    pub fn local_ops(&mut self, k: u64) {
        self.ops += k;
    }
}

/// A bulk-synchronous shared-memory program.
///
/// Implementations are *pure descriptions*: the same program value can be
/// executed on a QSM, an s-QSM or a QRQW PRAM and will incur different time
/// costs but identical behaviour.
pub trait Program {
    /// Per-processor private state.
    type Proc;

    /// Number of processors this program uses.
    fn num_procs(&self) -> usize;

    /// Create processor `pid`'s initial private state.
    fn create(&self, pid: usize) -> Self::Proc;

    /// Execute one phase for processor `pid`.
    fn phase(&self, pid: usize, state: &mut Self::Proc, env: &mut PhaseEnv<'_>) -> Status;
}

/// Dense shared memory with default value 0, grown on demand.
///
/// Equality compares the backing cells (hence the touched extent) and the
/// limit; the fast-path differential tests use it to assert bit-identical
/// committed memory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    cells: Vec<Word>,
    limit: usize,
}

impl Memory {
    /// Creates a memory allowing addresses below `limit`.
    pub fn with_limit(limit: usize) -> Self {
        Memory {
            cells: Vec::new(),
            limit,
        }
    }

    /// Highest-addressed cell ever touched, plus one.
    pub fn extent(&self) -> usize {
        self.cells.len()
    }

    /// Address limit (cells at or beyond this address are rejected).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Reads a cell (untouched cells read as 0).
    pub fn get(&self, addr: Addr) -> Word {
        self.cells.get(addr).copied().unwrap_or(0)
    }

    /// Writes a cell, growing the backing store as needed.
    pub fn set(&mut self, addr: Addr, value: Word) -> crate::error::Result<()> {
        if addr >= self.limit {
            return Err(crate::error::ModelError::MemoryLimitExceeded {
                addr,
                limit: self.limit,
            });
        }
        if addr >= self.cells.len() {
            self.cells.resize(addr + 1, 0);
        }
        self.cells[addr] = value;
        Ok(())
    }

    /// Bulk-initializes `values` starting at `base`.
    ///
    /// The load is *atomic with respect to failure*: the whole range
    /// `base..base + values.len()` is validated against the address limit
    /// up front, so a rejected load leaves the memory exactly as it was
    /// (no partially-written prefix).
    pub fn load(&mut self, base: Addr, values: &[Word]) -> crate::error::Result<()> {
        if let Some(last) = values.len().checked_sub(1) {
            let last_addr = base.saturating_add(last);
            if last_addr >= self.limit {
                return Err(crate::error::ModelError::MemoryLimitExceeded {
                    addr: base.max(self.limit),
                    limit: self.limit,
                });
            }
        }
        for (i, &v) in values.iter().enumerate() {
            self.set(base + i, v)?;
        }
        Ok(())
    }

    /// Copies out `len` consecutive words starting at `base`.
    pub fn slice(&self, base: Addr, len: usize) -> Vec<Word> {
        (base..base + len).map(|a| self.get(a)).collect()
    }
}

/// A program defined by closures — convenient for tests and small demos.
///
/// `FnProgram::new(p, init, step)` builds a program over `p` processors
/// whose state is produced by `init(pid)` and whose phases run `step`.
pub struct FnProgram<S, I, F>
where
    I: Fn(usize) -> S,
    F: Fn(usize, &mut S, &mut PhaseEnv<'_>) -> Status,
{
    num_procs: usize,
    init: I,
    step: F,
}

impl<S, I, F> FnProgram<S, I, F>
where
    I: Fn(usize) -> S,
    F: Fn(usize, &mut S, &mut PhaseEnv<'_>) -> Status,
{
    /// Builds a closure-backed program over `num_procs` processors.
    pub fn new(num_procs: usize, init: I, step: F) -> Self {
        FnProgram {
            num_procs,
            init,
            step,
        }
    }
}

impl<S, I, F> Program for FnProgram<S, I, F>
where
    I: Fn(usize) -> S,
    F: Fn(usize, &mut S, &mut PhaseEnv<'_>) -> Status,
{
    type Proc = S;

    fn num_procs(&self) -> usize {
        self.num_procs
    }

    fn create(&self, pid: usize) -> S {
        (self.init)(pid)
    }

    fn phase(&self, pid: usize, state: &mut S, env: &mut PhaseEnv<'_>) -> Status {
        (self.step)(pid, state, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_env_records_requests() {
        let delivered = [(3usize, 7i64), (5, -1)];
        let mut env = PhaseEnv::new(2, &delivered);
        assert_eq!(env.phase(), 2);
        assert_eq!(env.value(3), Some(7));
        assert_eq!(env.value(5), Some(-1));
        assert_eq!(env.value(4), None);
        env.read(10);
        env.read(11);
        env.write(12, 99);
        env.local_ops(5);
        env.local_ops(2);
        assert_eq!(env.reads, vec![10, 11]);
        assert_eq!(env.writes, vec![(12, 99)]);
        assert_eq!(env.ops, 7);
    }

    #[test]
    fn duplicate_reads_deliver_first_value() {
        let delivered = [(3usize, 7i64), (3, 8)];
        let env = PhaseEnv::new(0, &delivered);
        // First delivery wins, even when later deliveries disagree (only
        // possible for hand-built views; the engines deliver the single
        // committed value for every duplicate request).
        assert_eq!(env.value(3), Some(7));
        assert_eq!(env.values(3), vec![7, 8]);
    }

    #[test]
    fn values_returns_all_deliveries_in_request_order() {
        let delivered = [(3usize, 7i64), (5, -1), (3, 7), (3, 7)];
        let env = PhaseEnv::new(0, &delivered);
        assert_eq!(env.values(3), vec![7, 7, 7]);
        assert_eq!(env.values(5), vec![-1]);
        assert!(env.values(4).is_empty());
    }

    #[test]
    fn memory_defaults_to_zero_and_grows() {
        let mut m = Memory::with_limit(100);
        assert_eq!(m.get(42), 0);
        assert_eq!(m.extent(), 0);
        m.set(10, 5).unwrap();
        assert_eq!(m.get(10), 5);
        assert_eq!(m.extent(), 11);
        assert_eq!(m.slice(9, 3), vec![0, 5, 0]);
    }

    #[test]
    fn memory_enforces_limit() {
        let mut m = Memory::with_limit(8);
        assert!(m.set(7, 1).is_ok());
        assert!(m.set(8, 1).is_err());
    }

    #[test]
    fn memory_load_is_contiguous() {
        let mut m = Memory::with_limit(100);
        m.load(4, &[1, 2, 3]).unwrap();
        assert_eq!(m.slice(4, 3), vec![1, 2, 3]);
    }

    #[test]
    fn memory_load_is_atomic_on_failure() {
        let mut m = Memory::with_limit(8);
        m.set(5, 42).unwrap();
        // The tail of this load is out of range; nothing may be written.
        let err = m.load(6, &[1, 2, 3]).unwrap_err();
        assert!(matches!(
            err,
            crate::error::ModelError::MemoryLimitExceeded { limit: 8, .. }
        ));
        assert_eq!(m.slice(0, 8), vec![0, 0, 0, 0, 0, 42, 0, 0]);
        assert_eq!(m.extent(), 6);
        // Entirely out-of-range loads fail too; empty loads never do.
        assert!(m.load(9, &[1]).is_err());
        assert!(m.load(1000, &[]).is_ok());
        assert_eq!(m.extent(), 6);
    }

    #[test]
    fn fn_program_dispatches_closures() {
        let prog = FnProgram::new(
            3,
            |pid| pid as Word,
            |_pid, st, env: &mut PhaseEnv<'_>| {
                env.write(0, *st);
                Status::Done
            },
        );
        assert_eq!(prog.num_procs(), 3);
        let mut s = prog.create(2);
        assert_eq!(s, 2);
        let mut env = PhaseEnv::new(0, &[]);
        assert_eq!(prog.phase(2, &mut s, &mut env), Status::Done);
        assert_eq!(env.writes, vec![(0, 2)]);
    }
}
