//! The Generalized Shared Memory (GSM) lower-bound model (Section 2.2).
//!
//! The GSM is *stronger* than the QSM, s-QSM and BSP: cells hold arbitrary
//! amounts of information, and concurrent writes merge **all** information
//! from all writers into the cell ("strong queuing"). Lower bounds proved on
//! the GSM therefore translate to the weaker models via Claim 2.1 (see
//! `parbounds-tables::mapping`).
//!
//! Parameters: `alpha` (reads/writes a big-step can absorb per processor),
//! `beta` (contention a big-step can absorb per cell) and `gamma` (inputs
//! initially packed per cell). With `μ = max{α,β}` and `λ = min{α,β}`, a
//! phase with maximum per-processor request count `m_rw` and maximum
//! contention `κ` takes `b = max(⌈m_rw/α⌉, ⌈κ/β⌉)` big-steps and costs
//! `μ·b` time.

use std::collections::HashMap;

use crate::cancel::CancelToken;
use crate::cost::{CostLedger, PhaseCost};
use crate::error::{ModelError, Result};
use crate::exec::{ContentionTable, ExecOptions, Routing};
use crate::faults::{FaultInjector, FaultLog, FaultPlan};
use crate::par::{shard_ranges, with_pool, Parallelism};
use crate::shared::{Addr, Status, Word};

/// Contents of a GSM cell: the multiset of all information ever written,
/// in commit order (writes within a phase are merged in processor order,
/// which the strong-queuing rule permits — *all* information arrives).
pub type CellContent = Vec<Word>;

/// Per-processor view of one GSM phase.
#[derive(Debug)]
pub struct GsmEnv<'a> {
    phase: usize,
    delivered: &'a [(Addr, CellContent)],
    pub(crate) reads: Vec<Addr>,
    pub(crate) writes: Vec<(Addr, Word)>,
}

impl<'a> GsmEnv<'a> {
    fn new(phase: usize, delivered: &'a [(Addr, CellContent)]) -> Self {
        GsmEnv {
            phase,
            delivered,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Like [`GsmEnv::new`] but around recycled (empty) request buffers, so
    /// steady-state phases of the dense fast path do no allocation.
    fn with_buffers(
        phase: usize,
        delivered: &'a [(Addr, CellContent)],
        reads: Vec<Addr>,
        writes: Vec<(Addr, Word)>,
    ) -> Self {
        debug_assert!(reads.is_empty() && writes.is_empty());
        GsmEnv {
            phase,
            delivered,
            reads,
            writes,
        }
    }

    /// Index of the current phase (0-based).
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Cell contents delivered for the reads issued last phase.
    pub fn delivered(&self) -> &[(Addr, CellContent)] {
        self.delivered
    }

    /// Contents delivered for `addr`, if read last phase.
    pub fn contents(&self, addr: Addr) -> Option<&[Word]> {
        self.delivered
            .iter()
            .find(|(a, _)| *a == addr)
            .map(|(_, c)| c.as_slice())
    }

    /// Issue a read of an entire cell; contents arrive next phase.
    pub fn read(&mut self, addr: Addr) {
        self.reads.push(addr);
    }

    /// Write `value` into `addr`. All concurrent writes merge (strong
    /// queuing): the information is *added* to the cell.
    pub fn write(&mut self, addr: Addr, value: Word) {
        self.writes.push((addr, value));
    }
}

/// A bulk-synchronous GSM program.
pub trait GsmProgram {
    /// Per-processor private state.
    type Proc;

    /// Number of processors.
    fn num_procs(&self) -> usize;

    /// Create processor `pid`'s initial state.
    fn create(&self, pid: usize) -> Self::Proc;

    /// Execute one phase for processor `pid`.
    fn phase(&self, pid: usize, state: &mut Self::Proc, env: &mut GsmEnv<'_>) -> Status;
}

/// A GSM program defined by closures.
pub struct GsmFnProgram<S, I, F>
where
    I: Fn(usize) -> S,
    F: Fn(usize, &mut S, &mut GsmEnv<'_>) -> Status,
{
    num_procs: usize,
    init: I,
    step: F,
}

impl<S, I, F> GsmFnProgram<S, I, F>
where
    I: Fn(usize) -> S,
    F: Fn(usize, &mut S, &mut GsmEnv<'_>) -> Status,
{
    /// Builds a closure-backed GSM program.
    pub fn new(num_procs: usize, init: I, step: F) -> Self {
        GsmFnProgram {
            num_procs,
            init,
            step,
        }
    }
}

impl<S, I, F> GsmProgram for GsmFnProgram<S, I, F>
where
    I: Fn(usize) -> S,
    F: Fn(usize, &mut S, &mut GsmEnv<'_>) -> Status,
{
    type Proc = S;

    fn num_procs(&self) -> usize {
        self.num_procs
    }

    fn create(&self, pid: usize) -> S {
        (self.init)(pid)
    }

    fn phase(&self, pid: usize, state: &mut S, env: &mut GsmEnv<'_>) -> Status {
        (self.step)(pid, state, env)
    }
}

/// GSM shared memory: every cell accumulates all information written to it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GsmMemory {
    cells: HashMap<Addr, CellContent>,
}

impl GsmMemory {
    /// Contents of `addr` (empty slice if never written).
    pub fn get(&self, addr: Addr) -> &[Word] {
        self.cells.get(&addr).map(|c| c.as_slice()).unwrap_or(&[])
    }

    /// Appends `value` to the cell.
    pub fn push(&mut self, addr: Addr, value: Word) {
        self.cells.entry(addr).or_default().push(value);
    }

    /// All touched cells.
    pub fn cells(&self) -> impl Iterator<Item = (Addr, &[Word])> {
        self.cells.iter().map(|(&a, c)| (a, c.as_slice()))
    }
}

/// Full GSM execution trace: `Trace(v, t, f)` material for the adversary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GsmTrace {
    /// `phases[t].reads[pid]` = (cell, contents-at-read) pairs. At most
    /// [`ExecOptions::trace_phase_cap`] phases are retained.
    pub phases: Vec<GsmPhaseTrace>,
    /// Number of phases the run actually executed.
    pub total_phases: usize,
    /// True if the run executed more phases than the trace retained.
    pub truncated: bool,
}

/// One phase of a [`GsmTrace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GsmPhaseTrace {
    /// Per-processor reads, with the contents observed.
    pub reads: Vec<Vec<(Addr, CellContent)>>,
    /// Per-processor writes.
    pub writes: Vec<Vec<(Addr, Word)>>,
    /// Big-steps this phase took.
    pub big_steps: u64,
    /// `finished[pid]` is true if processor `pid` returned [`Status::Done`]
    /// in this phase — reads it issued here are discarded by the engine.
    pub finished: Vec<bool>,
}

/// Outcome of a GSM run.
#[derive(Debug)]
pub struct GsmRunResult {
    /// Final memory (accumulated cell contents).
    pub memory: GsmMemory,
    /// Per-phase costs (in GSM time units, `μ` per big-step).
    pub ledger: CostLedger,
    /// What the fault injector did, if the machine carried a [`FaultPlan`].
    pub faults: Option<FaultLog>,
    /// Full execution trace, if the machine was built
    /// [`GsmMachine::with_tracing`] (or the run used
    /// [`GsmMachine::run_traced`]). `None` on untraced runs.
    pub trace: Option<GsmTrace>,
}

impl GsmRunResult {
    /// Total GSM time.
    pub fn time(&self) -> u64 {
        self.ledger.total_time()
    }

    /// Total number of big-steps across all phases.
    pub fn big_steps(&self, mu: u64) -> u64 {
        self.ledger.total_time() / mu.max(1)
    }
}

/// The GSM machine.
#[derive(Debug, Clone)]
pub struct GsmMachine {
    alpha: u64,
    beta: u64,
    gamma: u64,
    max_phases: usize,
    faults: Option<FaultPlan>,
    cancel: Option<CancelToken>,
    opts: ExecOptions,
}

impl GsmMachine {
    /// A GSM(α, β, γ).
    pub fn new(alpha: u64, beta: u64, gamma: u64) -> Self {
        GsmMachine {
            alpha: alpha.max(1),
            beta: beta.max(1),
            gamma: gamma.max(1),
            max_phases: 1 << 20,
            faults: None,
            cancel: None,
            opts: ExecOptions::default(),
        }
    }

    /// Sets the runaway-protection phase limit.
    pub fn with_max_phases(mut self, max_phases: usize) -> Self {
        self.max_phases = max_phases;
        self
    }

    /// The runaway-protection phase limit.
    pub fn max_phases(&self) -> usize {
        self.max_phases
    }

    /// Attaches a [`FaultPlan`]. The GSM's strong-queuing cells merge all
    /// writes, so winner policies do not apply, and there are no messages
    /// to drop or duplicate; stalls, crashes and the cost/phase budget
    /// guards are injected, and a [`FaultLog`] is reported in
    /// [`GsmRunResult::faults`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Detaches any fault plan (used to obtain fault-free baselines).
    pub fn without_faults(mut self) -> Self {
        self.faults = None;
        self
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Attaches a [`CancelToken`]: every subsequent run checks it at each
    /// phase boundary and stops with [`ModelError::DeadlineExceeded`] once
    /// it trips, before the phase's effects are applied.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Phase-boundary cancellation checkpoint (no-op without a token).
    fn check_cancel(&self, phase: usize) -> Result<()> {
        match &self.cancel {
            Some(token) => token.check(phase),
            None => Ok(()),
        }
    }

    /// Makes every subsequent [`GsmMachine::run`] record a full
    /// [`GsmTrace`] into [`GsmRunResult::trace`] (for algorithm entry
    /// points that call `run` internally, e.g. the analyzer's lint pass).
    pub fn with_tracing(mut self) -> Self {
        self.opts.record_trace = true;
        self
    }

    /// Replaces the execution options wholesale.
    pub fn with_options(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Selects the request-routing strategy (dense fast path by default).
    pub fn with_routing(mut self, routing: Routing) -> Self {
        self.opts.routing = routing;
        self
    }

    /// Routes requests through the original map-based reference path.
    pub fn with_reference_routing(self) -> Self {
        self.with_routing(Routing::Reference)
    }

    /// Sets the maximum number of phases a recorded trace retains.
    pub fn with_trace_cap(mut self, cap: usize) -> Self {
        self.opts.trace_phase_cap = cap;
        self
    }

    /// Sets the host-thread budget for the intra-phase compute stage
    /// ([`Parallelism::Off`] by default); results are bit-identical at
    /// every setting. See [`crate::QsmMachine::with_parallelism`].
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.opts.parallelism = parallelism;
        self
    }

    /// The execution options currently in force.
    pub fn options(&self) -> ExecOptions {
        self.opts
    }

    /// `μ = max{α, β}` — the duration of one big-step.
    pub fn mu(&self) -> u64 {
        self.alpha.max(self.beta)
    }

    /// `λ = min{α, β}`.
    pub fn lambda(&self) -> u64 {
        self.alpha.min(self.beta)
    }

    /// The α parameter (reads/writes absorbed per processor per big-step).
    pub fn alpha(&self) -> u64 {
        self.alpha
    }

    /// The β parameter (contention absorbed per cell per big-step).
    pub fn beta(&self) -> u64 {
        self.beta
    }

    /// The γ parameter (inputs initially packed per cell).
    pub fn gamma(&self) -> u64 {
        self.gamma
    }

    /// Big-steps of a phase: `max(⌈m_rw/α⌉, ⌈κ/β⌉)`, at least 1.
    pub fn big_steps(&self, m_rw: u64, kappa: u64) -> u64 {
        (m_rw.div_ceil(self.alpha))
            .max(kappa.div_ceil(self.beta))
            .max(1)
    }

    /// Time cost of a phase with the given measurements: `μ · big_steps`.
    pub fn phase_cost(&self, m_rw: u64, kappa: u64) -> u64 {
        self.mu() * self.big_steps(m_rw, kappa)
    }

    /// Packs `input` into the initial memory, γ inputs per cell starting at
    /// address 0 (the paper's initial placement: each cell holds information
    /// about up to γ inputs, disjoint across cells).
    pub fn initial_memory(&self, input: &[Word]) -> GsmMemory {
        let mut mem = GsmMemory::default();
        for (i, &v) in input.iter().enumerate() {
            mem.push((i / self.gamma as usize) as Addr, v);
        }
        mem
    }

    /// Number of input cells used for an `n`-word input: `⌈n/γ⌉`.
    pub fn input_cells(&self, n: usize) -> usize {
        n.div_ceil(self.gamma as usize)
    }

    /// Runs `program` with `input` packed γ-per-cell from address 0.
    ///
    /// `P: Sync` and `P::Proc: Send` admit the intra-phase parallel
    /// executor; both bounds are vacuous for ordinary programs.
    pub fn run<P>(&self, program: &P, input: &[Word]) -> Result<GsmRunResult>
    where
        P: GsmProgram + Sync,
        P::Proc: Send,
    {
        self.execute(program, input, self.opts.record_trace)
    }

    /// Runs `program` and records a full [`GsmTrace`].
    pub fn run_traced<P>(&self, program: &P, input: &[Word]) -> Result<(GsmRunResult, GsmTrace)>
    where
        P: GsmProgram + Sync,
        P::Proc: Send,
    {
        let mut result = self.execute(program, input, true)?;
        let trace = result.trace.take().unwrap_or_default();
        Ok((result, trace))
    }

    fn execute<P>(&self, program: &P, input: &[Word], want_trace: bool) -> Result<GsmRunResult>
    where
        P: GsmProgram + Sync,
        P::Proc: Send,
    {
        match self.opts.routing {
            Routing::Dense => {
                let workers = self.opts.parallelism.workers(program.num_procs());
                if workers > 1 && self.faults.is_none() {
                    self.execute_dense_par(program, input, want_trace, workers)
                } else {
                    self.execute_dense(program, input, want_trace)
                }
            }
            Routing::Reference => self.execute_reference(program, input, want_trace),
        }
    }

    /// The original map-based execution path, kept as the executable
    /// specification the dense fast path is differentially tested against.
    fn execute_reference<P: GsmProgram>(
        &self,
        program: &P,
        input: &[Word],
        want_trace: bool,
    ) -> Result<GsmRunResult> {
        let cap = self.opts.trace_phase_cap;
        let mut trace = want_trace.then(GsmTrace::default);
        let n_procs = program.num_procs();
        if n_procs == 0 {
            return Err(ModelError::BadConfig(
                "program declares zero processors".into(),
            ));
        }
        let mut memory = self.initial_memory(input);
        let mut ledger = CostLedger::new();

        let mut states: Vec<P::Proc> = (0..n_procs).map(|pid| program.create(pid)).collect();
        let mut active = vec![true; n_procs];
        let mut pending: Vec<Vec<(Addr, CellContent)>> = vec![Vec::new(); n_procs];
        let mut injector = self.faults.as_ref().map(FaultInjector::new);
        let phase_limit = injector.as_ref().map_or(self.max_phases, |i| {
            i.effective_phase_limit(self.max_phases)
        });
        if let Some(inj) = injector.as_mut() {
            let workers = self.opts.parallelism.workers(n_procs);
            if workers > 1 {
                inj.note(crate::qsm::parallel_fallback_notice(workers));
            }
        }
        // Per-processor phase counters so an injected stall is a pure delay.
        let mut local_phase: Vec<usize> = vec![0; n_procs];

        let mut read_count: HashMap<Addr, u64> = HashMap::new();
        let mut write_count: HashMap<Addr, u64> = HashMap::new();

        let mut phase_no = 0usize;
        while active.iter().any(|&a| a) {
            if phase_no >= phase_limit {
                return Err(ModelError::PhaseLimitExceeded { limit: phase_limit });
            }
            self.check_cancel(phase_no)?;
            read_count.clear();
            write_count.clear();

            let mut m_rw: u64 = 0;
            let mut any_access = false;
            let mut new_reads: Vec<(usize, Addr)> = Vec::new();
            let mut new_writes: Vec<(usize, Addr, Word)> = Vec::new();
            let mut phase_trace =
                trace
                    .as_ref()
                    .filter(|t| t.phases.len() < cap)
                    .map(|_| GsmPhaseTrace {
                        reads: vec![Vec::new(); n_procs],
                        writes: vec![Vec::new(); n_procs],
                        big_steps: 0,
                        finished: vec![false; n_procs],
                    });

            for pid in 0..n_procs {
                if !active[pid] {
                    continue;
                }
                if let Some(inj) = injector.as_mut() {
                    if inj.crash_at(pid, phase_no) {
                        return Err(ModelError::FaultAborted {
                            phase: phase_no,
                            reason: format!("processor {pid} crashed"),
                        });
                    }
                    if inj.stall_at(pid, phase_no) {
                        continue;
                    }
                }
                let delivered = std::mem::take(&mut pending[pid]);
                let mut env = GsmEnv::new(local_phase[pid], &delivered);
                let status = program.phase(pid, &mut states[pid], &mut env);
                local_phase[pid] += 1;

                let r_i = env.reads.len() as u64;
                let w_i = env.writes.len() as u64;
                m_rw = m_rw.max(r_i.max(w_i));
                any_access |= r_i + w_i > 0;

                for &addr in &env.reads {
                    *read_count.entry(addr).or_insert(0) += 1;
                    new_reads.push((pid, addr));
                }
                for &(addr, value) in &env.writes {
                    *write_count.entry(addr).or_insert(0) += 1;
                    new_writes.push((pid, addr, value));
                }
                if status == Status::Done {
                    active[pid] = false;
                    if let Some(pt) = phase_trace.as_mut() {
                        pt.finished[pid] = true;
                    }
                }
            }

            // Model rule: a cell may be read or written in a phase, not
            // both. Checked over the writes in request order so the
            // reported conflict cell is deterministic.
            for &(_, addr, _) in &new_writes {
                if read_count.contains_key(&addr) {
                    return Err(ModelError::ReadWriteConflict {
                        addr,
                        phase: phase_no,
                    });
                }
            }

            // Value reads against pre-write contents.
            for &(pid, addr) in &new_reads {
                let contents: CellContent = memory.get(addr).to_vec();
                if let Some(pt) = phase_trace.as_mut() {
                    pt.reads[pid].push((addr, contents.clone()));
                }
                if active[pid] {
                    pending[pid].push((addr, contents));
                }
            }
            // Strong queuing: all written information merges into the cell.
            for &(pid, addr, value) in &new_writes {
                memory.push(addr, value);
                if let Some(pt) = phase_trace.as_mut() {
                    pt.writes[pid].push((addr, value));
                }
            }

            let kappa = if any_access {
                read_count
                    .values()
                    .chain(write_count.values())
                    .copied()
                    .max()
                    .unwrap_or(1)
            } else {
                1
            };
            let b = self.big_steps(m_rw.max(1), kappa);
            let cost = self.mu() * b;
            ledger.push(PhaseCost {
                m_op: 0,
                m_rw: m_rw.max(1),
                kappa,
                cost,
            });
            if let Some(inj) = injector.as_ref() {
                inj.check_cost(ledger.total_time())?;
            }
            if let Some(t) = trace.as_mut() {
                t.total_phases += 1;
                match phase_trace {
                    Some(mut pt) => {
                        pt.big_steps = b;
                        t.phases.push(pt);
                    }
                    None => t.truncated = true,
                }
            }
            phase_no += 1;
        }

        Ok(GsmRunResult {
            memory,
            ledger,
            faults: injector.map(FaultInjector::into_log),
            trace,
        })
    }

    /// The dense fast path: epoch-stamped contention tables and
    /// arena-pooled request buffers. Observationally identical to
    /// [`GsmMachine::execute_reference`].
    fn execute_dense<P: GsmProgram>(
        &self,
        program: &P,
        input: &[Word],
        want_trace: bool,
    ) -> Result<GsmRunResult> {
        let cap = self.opts.trace_phase_cap;
        let mut trace = want_trace.then(GsmTrace::default);
        let n_procs = program.num_procs();
        if n_procs == 0 {
            return Err(ModelError::BadConfig(
                "program declares zero processors".into(),
            ));
        }
        let mut memory = self.initial_memory(input);
        let mut ledger = CostLedger::new();

        let mut states: Vec<P::Proc> = (0..n_procs).map(|pid| program.create(pid)).collect();
        let mut active = vec![true; n_procs];
        let mut pending: Vec<Vec<(Addr, CellContent)>> = vec![Vec::new(); n_procs];
        let mut injector = self.faults.as_ref().map(FaultInjector::new);
        let phase_limit = injector.as_ref().map_or(self.max_phases, |i| {
            i.effective_phase_limit(self.max_phases)
        });
        if let Some(inj) = injector.as_mut() {
            let workers = self.opts.parallelism.workers(n_procs);
            if workers > 1 {
                inj.note(crate::qsm::parallel_fallback_notice(workers));
            }
        }
        let mut local_phase: Vec<usize> = vec![0; n_procs];

        // Per-run scratch, allocated once and reused across phases.
        let mut read_table = ContentionTable::default();
        let mut write_table = ContentionTable::default();
        let mut new_reads: Vec<(usize, Addr)> = Vec::new();
        let mut new_writes: Vec<(usize, Addr, Word)> = Vec::new();
        let mut read_buf: Vec<Addr> = Vec::new();
        let mut write_buf: Vec<(Addr, Word)> = Vec::new();

        let mut phase_no = 0usize;
        while active.iter().any(|&a| a) {
            if phase_no >= phase_limit {
                return Err(ModelError::PhaseLimitExceeded { limit: phase_limit });
            }
            self.check_cancel(phase_no)?;
            read_table.begin_phase();
            write_table.begin_phase();
            new_reads.clear();
            new_writes.clear();

            let mut m_rw: u64 = 0;
            let mut any_access = false;
            let mut phase_trace =
                trace
                    .as_ref()
                    .filter(|t| t.phases.len() < cap)
                    .map(|_| GsmPhaseTrace {
                        reads: vec![Vec::new(); n_procs],
                        writes: vec![Vec::new(); n_procs],
                        big_steps: 0,
                        finished: vec![false; n_procs],
                    });

            for pid in 0..n_procs {
                if !active[pid] {
                    continue;
                }
                if let Some(inj) = injector.as_mut() {
                    if inj.crash_at(pid, phase_no) {
                        return Err(ModelError::FaultAborted {
                            phase: phase_no,
                            reason: format!("processor {pid} crashed"),
                        });
                    }
                    if inj.stall_at(pid, phase_no) {
                        continue;
                    }
                }
                let delivered = std::mem::take(&mut pending[pid]);
                let mut env = GsmEnv::with_buffers(
                    local_phase[pid],
                    &delivered,
                    std::mem::take(&mut read_buf),
                    std::mem::take(&mut write_buf),
                );
                let status = program.phase(pid, &mut states[pid], &mut env);
                local_phase[pid] += 1;

                let r_i = env.reads.len() as u64;
                let w_i = env.writes.len() as u64;
                m_rw = m_rw.max(r_i.max(w_i));
                any_access |= r_i + w_i > 0;

                for &addr in &env.reads {
                    read_table.incr(addr);
                    new_reads.push((pid, addr));
                }
                for &(addr, value) in &env.writes {
                    write_table.incr(addr);
                    new_writes.push((pid, addr, value));
                }
                if status == Status::Done {
                    active[pid] = false;
                    if let Some(pt) = phase_trace.as_mut() {
                        pt.finished[pid] = true;
                    }
                }
                // Recycle every buffer touched this phase.
                let (mut r_vec, mut w_vec) = (env.reads, env.writes);
                r_vec.clear();
                w_vec.clear();
                read_buf = r_vec;
                write_buf = w_vec;
                let mut d = delivered;
                d.clear();
                pending[pid] = d;
            }

            for &(_, addr, _) in &new_writes {
                if read_table.contains(addr) {
                    return Err(ModelError::ReadWriteConflict {
                        addr,
                        phase: phase_no,
                    });
                }
            }

            // Value reads against pre-write contents.
            for &(pid, addr) in &new_reads {
                let contents: CellContent = memory.get(addr).to_vec();
                if let Some(pt) = phase_trace.as_mut() {
                    pt.reads[pid].push((addr, contents.clone()));
                }
                if active[pid] {
                    pending[pid].push((addr, contents));
                }
            }
            // Strong queuing: all written information merges into the cell.
            for &(pid, addr, value) in &new_writes {
                memory.push(addr, value);
                if let Some(pt) = phase_trace.as_mut() {
                    pt.writes[pid].push((addr, value));
                }
            }

            let kappa = if any_access {
                read_table
                    .max_contention()
                    .max(write_table.max_contention())
            } else {
                1
            };
            let b = self.big_steps(m_rw.max(1), kappa);
            let cost = self.mu() * b;
            ledger.push(PhaseCost {
                m_op: 0,
                m_rw: m_rw.max(1),
                kappa,
                cost,
            });
            if let Some(inj) = injector.as_ref() {
                inj.check_cost(ledger.total_time())?;
            }
            if let Some(t) = trace.as_mut() {
                t.total_phases += 1;
                match phase_trace {
                    Some(mut pt) => {
                        pt.big_steps = b;
                        t.phases.push(pt);
                    }
                    None => t.truncated = true,
                }
            }
            phase_no += 1;
        }

        Ok(GsmRunResult {
            memory,
            ledger,
            faults: injector.map(FaultInjector::into_log),
            trace,
        })
    }

    /// The parallel dense path: the compute stage of each phase runs on
    /// `workers` scoped threads over contiguous pid chunks, and shard
    /// outputs are merged back in pid order before the sequential apply
    /// stage (conflict check in request order, reads valued against
    /// pre-write contents, strong-queuing merge in request order) runs
    /// unchanged — so committed cell contents, ledgers, traces and errors
    /// are bit-identical to [`GsmMachine::execute_dense`] at any thread
    /// count. Only fault-free runs take this path.
    fn execute_dense_par<P>(
        &self,
        program: &P,
        input: &[Word],
        want_trace: bool,
        workers: usize,
    ) -> Result<GsmRunResult>
    where
        P: GsmProgram + Sync,
        P::Proc: Send,
    {
        let cap = self.opts.trace_phase_cap;
        let mut trace = want_trace.then(GsmTrace::default);
        let n_procs = program.num_procs();
        if n_procs == 0 {
            return Err(ModelError::BadConfig(
                "program declares zero processors".into(),
            ));
        }
        let mut memory = self.initial_memory(input);
        let mut ledger = CostLedger::new();

        let mut active = vec![true; n_procs];
        let mut pending: Vec<Vec<(Addr, CellContent)>> = vec![Vec::new(); n_procs];
        let phase_limit = self.max_phases;

        let mut read_table = ContentionTable::default();
        let mut write_table = ContentionTable::default();
        let mut new_reads: Vec<(usize, Addr)> = Vec::new();
        let mut new_writes: Vec<(usize, Addr, Word)> = Vec::new();

        let mut shards: Vec<Option<GsmShard<P::Proc>>> = shard_ranges(n_procs, workers)
            .into_iter()
            .map(|r| {
                Some(GsmShard {
                    base: r.start,
                    phase_no: 0,
                    active: vec![true; r.len()],
                    states: r.clone().map(|pid| program.create(pid)).collect(),
                    delivered: vec![Vec::new(); r.len()],
                    reads: Vec::new(),
                    writes: Vec::new(),
                    read_buf: Vec::new(),
                    write_buf: Vec::new(),
                    m_rw: 0,
                    any_access: false,
                })
            })
            .collect();

        let work = |_w: usize, mut shard: GsmShard<P::Proc>| {
            shard.reads.clear();
            shard.writes.clear();
            shard.m_rw = 0;
            shard.any_access = false;
            for i in 0..shard.states.len() {
                if !shard.active[i] {
                    continue;
                }
                let pid = shard.base + i;
                let delivered = std::mem::take(&mut shard.delivered[i]);
                let mut env = GsmEnv::with_buffers(
                    shard.phase_no,
                    &delivered,
                    std::mem::take(&mut shard.read_buf),
                    std::mem::take(&mut shard.write_buf),
                );
                let status = program.phase(pid, &mut shard.states[i], &mut env);

                let r_i = env.reads.len() as u64;
                let w_i = env.writes.len() as u64;
                shard.m_rw = shard.m_rw.max(r_i.max(w_i));
                shard.any_access |= r_i + w_i > 0;
                for &addr in &env.reads {
                    shard.reads.push((pid, addr));
                }
                for &(addr, value) in &env.writes {
                    shard.writes.push((pid, addr, value));
                }
                if status == Status::Done {
                    shard.active[i] = false;
                }
                let (mut r_vec, mut w_vec) = (env.reads, env.writes);
                r_vec.clear();
                w_vec.clear();
                shard.read_buf = r_vec;
                shard.write_buf = w_vec;
                let mut d = delivered;
                d.clear();
                shard.delivered[i] = d;
            }
            shard
        };

        with_pool(workers, work, move |pool| {
            let mut phase_no = 0usize;
            while active.iter().any(|&a| a) {
                if phase_no >= phase_limit {
                    return Err(ModelError::PhaseLimitExceeded { limit: phase_limit });
                }
                self.check_cancel(phase_no)?;
                read_table.begin_phase();
                write_table.begin_phase();
                new_reads.clear();
                new_writes.clear();

                let mut m_rw: u64 = 0;
                let mut any_access = false;
                let mut phase_trace =
                    trace
                        .as_ref()
                        .filter(|t| t.phases.len() < cap)
                        .map(|_| GsmPhaseTrace {
                            reads: vec![Vec::new(); n_procs],
                            writes: vec![Vec::new(); n_procs],
                            big_steps: 0,
                            finished: vec![false; n_procs],
                        });

                // Compute stage: dispatch shards, merge in pid order.
                let mut tasks = Vec::with_capacity(shards.len());
                for slot in shards.iter_mut() {
                    let mut shard = slot.take().expect("shard not in flight");
                    shard.phase_no = phase_no;
                    for i in 0..shard.active.len() {
                        let pid = shard.base + i;
                        shard.active[i] = active[pid];
                        shard.delivered[i] = std::mem::take(&mut pending[pid]);
                    }
                    tasks.push(shard);
                }
                pool.run_round(tasks, |w, mut shard| {
                    m_rw = m_rw.max(shard.m_rw);
                    any_access |= shard.any_access;
                    for &(pid, addr) in &shard.reads {
                        read_table.incr(addr);
                        new_reads.push((pid, addr));
                    }
                    for &(pid, addr, value) in &shard.writes {
                        write_table.incr(addr);
                        new_writes.push((pid, addr, value));
                    }
                    for i in 0..shard.active.len() {
                        let pid = shard.base + i;
                        if active[pid] && !shard.active[i] {
                            active[pid] = false;
                            if let Some(pt) = phase_trace.as_mut() {
                                pt.finished[pid] = true;
                            }
                        }
                        pending[pid] = std::mem::take(&mut shard.delivered[i]);
                    }
                    shards[w] = Some(shard);
                });

                // Apply stage: identical to the sequential dense path.
                for &(_, addr, _) in &new_writes {
                    if read_table.contains(addr) {
                        return Err(ModelError::ReadWriteConflict {
                            addr,
                            phase: phase_no,
                        });
                    }
                }

                for &(pid, addr) in &new_reads {
                    let contents: CellContent = memory.get(addr).to_vec();
                    if let Some(pt) = phase_trace.as_mut() {
                        pt.reads[pid].push((addr, contents.clone()));
                    }
                    if active[pid] {
                        pending[pid].push((addr, contents));
                    }
                }
                for &(pid, addr, value) in &new_writes {
                    memory.push(addr, value);
                    if let Some(pt) = phase_trace.as_mut() {
                        pt.writes[pid].push((addr, value));
                    }
                }

                let kappa = if any_access {
                    read_table
                        .max_contention()
                        .max(write_table.max_contention())
                } else {
                    1
                };
                let b = self.big_steps(m_rw.max(1), kappa);
                let cost = self.mu() * b;
                ledger.push(PhaseCost {
                    m_op: 0,
                    m_rw: m_rw.max(1),
                    kappa,
                    cost,
                });
                if let Some(t) = trace.as_mut() {
                    t.total_phases += 1;
                    match phase_trace {
                        Some(mut pt) => {
                            pt.big_steps = b;
                            t.phases.push(pt);
                        }
                        None => t.truncated = true,
                    }
                }
                phase_no += 1;
            }

            Ok(GsmRunResult {
                memory,
                ledger,
                faults: None,
                trace,
            })
        })
    }
}

/// One worker's slice of the GSM in the parallel dense path (see
/// `QsmShard` in the QSM engine — same shape, GSM delivery payloads).
struct GsmShard<S> {
    base: usize,
    phase_no: usize,
    active: Vec<bool>,
    states: Vec<S>,
    delivered: Vec<Vec<(Addr, CellContent)>>,
    reads: Vec<(usize, Addr)>,
    writes: Vec<(usize, Addr, Word)>,
    read_buf: Vec<Addr>,
    write_buf: Vec<(Addr, Word)>,
    m_rw: u64,
    any_access: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_step_formula_matches_definition() {
        let m = GsmMachine::new(2, 4, 1);
        assert_eq!(m.mu(), 4);
        assert_eq!(m.lambda(), 2);
        // m_rw = 5 -> ceil(5/2) = 3; kappa = 9 -> ceil(9/4) = 3 -> b = 3.
        assert_eq!(m.big_steps(5, 9), 3);
        // kappa dominates: kappa = 13 -> ceil(13/4) = 4.
        assert_eq!(m.big_steps(5, 13), 4);
        assert_eq!(m.phase_cost(5, 13), 16);
        // Minimum one big-step.
        assert_eq!(m.big_steps(0, 0), 1);
    }

    #[test]
    fn gamma_packs_inputs_per_cell() {
        let m = GsmMachine::new(1, 1, 3);
        let mem = m.initial_memory(&[10, 11, 12, 13, 14, 15, 16]);
        assert_eq!(mem.get(0), &[10, 11, 12]);
        assert_eq!(mem.get(1), &[13, 14, 15]);
        assert_eq!(mem.get(2), &[16]);
        assert_eq!(m.input_cells(7), 3);
    }

    #[test]
    fn strong_queuing_merges_all_writers() {
        let n = 8;
        let prog = GsmFnProgram::new(
            n,
            |_| (),
            |pid, _, env: &mut GsmEnv<'_>| {
                env.write(50, pid as Word);
                Status::Done
            },
        );
        let m = GsmMachine::new(1, 1, 1);
        let res = m.run(&prog, &[]).unwrap();
        let mut contents = res.memory.get(50).to_vec();
        contents.sort_unstable();
        assert_eq!(contents, (0..n as Word).collect::<Vec<_>>());
        // One phase, contention 8, alpha = beta = 1: 8 big-steps of cost 1.
        assert_eq!(res.time(), 8);
    }

    #[test]
    fn beta_absorbs_contention() {
        let n = 8;
        let mk = || {
            GsmFnProgram::new(
                n,
                |_| (),
                |pid, _, env: &mut GsmEnv<'_>| {
                    env.write(0, pid as Word);
                    Status::Done
                },
            )
        };
        // beta = 4: 8 writers absorbed in ceil(8/4) = 2 big-steps of mu = 4.
        let res = GsmMachine::new(1, 4, 1).run(&mk(), &[]).unwrap();
        assert_eq!(res.time(), 8);
        // beta = 8: one big-step.
        let res = GsmMachine::new(1, 8, 1).run(&mk(), &[]).unwrap();
        assert_eq!(res.time(), 8); // mu = 8, 1 big-step
        assert_eq!(res.ledger.num_phases(), 1);
    }

    #[test]
    fn reads_see_accumulated_contents() {
        // Phase 0: three writers write to cell 5. Phase 1: reader reads it
        // and must see all three values plus the preloaded input.
        let prog = GsmFnProgram::new(
            4,
            |_| (),
            |pid, _, env: &mut GsmEnv<'_>| {
                if pid < 3 {
                    if env.phase() == 0 {
                        env.write(5, 100 + pid as Word);
                    }
                    return Status::Done;
                }
                match env.phase() {
                    0 => Status::Active,
                    1 => {
                        env.read(5);
                        Status::Active
                    }
                    _ => {
                        let seen = env.contents(5).unwrap();
                        env.write(6, seen.iter().sum());
                        Status::Done
                    }
                }
            },
        );
        let res = GsmMachine::new(1, 1, 1).run(&prog, &[]).unwrap();
        assert_eq!(res.memory.get(6), &[303]);
    }

    #[test]
    fn initial_cell_contents_are_readable() {
        let prog = GsmFnProgram::new(
            1,
            |_| (),
            |_, _, env: &mut GsmEnv<'_>| match env.phase() {
                0 => {
                    env.read(0);
                    Status::Active
                }
                _ => {
                    let s: Word = env.contents(0).unwrap().iter().sum();
                    env.write(9, s);
                    Status::Done
                }
            },
        );
        let m = GsmMachine::new(1, 1, 4);
        let res = m.run(&prog, &[1, 2, 3, 4]).unwrap();
        assert_eq!(res.memory.get(9), &[10]);
    }

    #[test]
    fn gsm_rejects_read_write_conflict() {
        let prog = GsmFnProgram::new(
            2,
            |_| (),
            |pid, _, env: &mut GsmEnv<'_>| {
                if pid == 0 {
                    env.read(1);
                } else {
                    env.write(1, 1);
                }
                Status::Done
            },
        );
        let err = GsmMachine::new(1, 1, 1).run(&prog, &[]).unwrap_err();
        assert!(matches!(err, ModelError::ReadWriteConflict { addr: 1, .. }));
    }

    #[test]
    fn trace_captures_big_steps_and_contents() {
        let prog = GsmFnProgram::new(
            2,
            |_| (),
            |pid, _, env: &mut GsmEnv<'_>| match env.phase() {
                0 => {
                    env.write(3, pid as Word);
                    Status::Active
                }
                1 => {
                    env.read(3);
                    Status::Active
                }
                _ => Status::Done,
            },
        );
        let m = GsmMachine::new(1, 1, 1);
        let (_, trace) = m.run_traced(&prog, &[]).unwrap();
        assert_eq!(trace.phases.len(), 3);
        assert_eq!(trace.phases[0].big_steps, 2); // contention 2, beta 1
        assert_eq!(trace.phases[0].writes[0], vec![(3, 0)]);
        // Both readers observe both written values.
        let seen = &trace.phases[1].reads[0][0].1;
        assert_eq!(seen.len(), 2);
        assert_eq!(trace.phases[1].finished, vec![false, false]);
        assert_eq!(trace.phases[2].finished, vec![true, true]);
    }

    #[test]
    fn with_tracing_populates_run_result_trace() {
        let mk = || {
            GsmFnProgram::new(
                1,
                |_| (),
                |_, _, env: &mut GsmEnv<'_>| {
                    env.write(2, 1);
                    Status::Done
                },
            )
        };
        let m = GsmMachine::new(1, 1, 1);
        assert!(m.run(&mk(), &[]).unwrap().trace.is_none());
        let res = m.with_tracing().run(&mk(), &[]).unwrap();
        let trace = res.trace.expect("tracing machine records a trace");
        assert_eq!(trace.phases.len(), 1);
        assert_eq!(trace.phases[0].writes[0], vec![(2, 1)]);
        assert_eq!(trace.phases[0].finished, vec![true]);
    }
}
