//! The Queuing Shared Memory machine (QSM) and its variants.
//!
//! One engine executes four model flavours that differ only in the cost
//! charged per phase (Section 2.1 of the paper):
//!
//! * **QSM(g)** — phase cost `max(m_op, g·m_rw, κ)`;
//! * **s-QSM(g)** — phase cost `max(m_op, g·m_rw, g·κ)` (a gap at memory as
//!   well as at processors);
//! * **QSM with unit-time concurrent reads** — as QSM, but contention from
//!   *reads* is charged 1 (used by Theorem 3.1 and the "with concur. reads"
//!   row of Table 1; write contention still queues).
//!
//! The **QRQW PRAM** of Gibbons–Matias–Ramachandran is the QSM with `g = 1`
//! ([`QsmMachine::qrqw`]).

use std::collections::{BTreeMap, HashMap};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::cancel::CancelToken;
use crate::cost::{CostLedger, PhaseCost};
use crate::error::{ModelError, Result};
use crate::exec::{ContentionTable, ExecOptions, Routing, WriteRouter};
use crate::faults::{FaultInjector, FaultLog, FaultPlan};
use crate::par::{shard_ranges, with_pool, Parallelism};
use crate::shared::{Addr, Memory, PhaseEnv, Program, Status, Word};

/// One-line [`FaultLog`] notice emitted when a run requested intra-phase
/// parallelism but carries a fault plan: fault-plan runs always execute
/// sequentially (bit-identical to [`Parallelism::Fixed`]`(1)`). Shared by
/// the QSM, GSM and BSP engines so differential suites see one string.
pub(crate) fn parallel_fallback_notice(workers: usize) -> String {
    format!(
        "requested {workers}-way intra-phase parallelism disabled: \
         fault-plan runs execute sequentially (bit-identical to Fixed(1))"
    )
}

/// Which cost rule the machine charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QsmFlavor {
    /// Plain QSM: `max(m_op, g·m_rw, κ)`.
    Qsm,
    /// s-QSM: `max(m_op, g·m_rw, g·κ)`.
    SQsm,
    /// QSM where concurrent *reads* cost unit time; only write contention
    /// enters κ.
    QsmUnitConcurrentReads,
    /// QSM(g, d) (Ramachandran; Claim 2.2): separate gap `d` for processing
    /// each access at memory — `max(m_op, g·m_rw, d·κ)`. `QsmGd(1)` is the
    /// QSM; `QsmGd(g)` is the s-QSM.
    QsmGd(u64),
}

/// The outcome of running a program: final memory plus the cost ledger.
#[derive(Debug)]
pub struct RunResult {
    /// Shared memory at termination.
    pub memory: Memory,
    /// Per-phase cost records.
    pub ledger: CostLedger,
    /// What the fault injector did, if the machine carried a [`FaultPlan`].
    pub faults: Option<FaultLog>,
    /// Full execution trace, if the machine was built
    /// [`QsmMachine::with_tracing`] (or the run used
    /// [`QsmMachine::run_traced`]). `None` on untraced runs.
    pub trace: Option<ExecTrace>,
}

impl RunResult {
    /// Total model time of the execution.
    pub fn time(&self) -> u64 {
        self.ledger.total_time()
    }

    /// Number of phases executed.
    pub fn phases(&self) -> usize {
        self.ledger.num_phases()
    }
}

/// Full record of what every processor read and wrote in each phase.
///
/// Populated by [`QsmMachine::run_traced`] or by any run of a machine built
/// [`QsmMachine::with_tracing`]; used by the lower-bound machinery to
/// compute `Trace`, `Know` and `Aff` sets by exhaustive enumeration on
/// small machines (Section 5.1 of the paper), and by the
/// `parbounds-analyze` lint pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecTrace {
    /// `phases[t].reads[pid]` = the `(addr, value)` pairs processor `pid`
    /// read in phase `t`; `phases[t].writes[pid]` = the `(addr, value)`
    /// pairs it attempted to write (before arbitration). At most
    /// [`ExecOptions::trace_phase_cap`] phases are retained.
    pub phases: Vec<PhaseTrace>,
    /// Number of phases the run actually executed. Equals `phases.len()`
    /// unless the trace was truncated at the phase cap.
    pub total_phases: usize,
    /// True if the run executed more phases than the trace retained
    /// (`total_phases > phases.len()`); consumers must not treat a
    /// truncated trace as the whole execution.
    pub truncated: bool,
}

/// One phase of an [`ExecTrace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTrace {
    /// Reads per processor, in request order.
    pub reads: Vec<Vec<(Addr, Word)>>,
    /// Attempted writes per processor, in request order.
    pub writes: Vec<Vec<(Addr, Word)>>,
    /// The writes that actually landed (cell, winning value).
    pub committed: Vec<(Addr, Word)>,
    /// `finished[pid]` is true if processor `pid` returned [`Status::Done`]
    /// in this phase — reads it issued here are discarded by the engine.
    pub finished: Vec<bool>,
}

/// A QSM-family machine: a cost rule plus execution policies.
#[derive(Debug, Clone)]
pub struct QsmMachine {
    g: u64,
    flavor: QsmFlavor,
    seed: u64,
    max_phases: usize,
    mem_limit: usize,
    faults: Option<FaultPlan>,
    cancel: Option<CancelToken>,
    opts: ExecOptions,
}

impl QsmMachine {
    /// A QSM with gap parameter `g`.
    pub fn qsm(g: u64) -> Self {
        Self::with_flavor(g, QsmFlavor::Qsm)
    }

    /// An s-QSM with gap parameter `g`.
    pub fn sqsm(g: u64) -> Self {
        Self::with_flavor(g, QsmFlavor::SQsm)
    }

    /// The QRQW PRAM: a QSM with `g = 1`.
    pub fn qrqw() -> Self {
        Self::with_flavor(1, QsmFlavor::Qsm)
    }

    /// A QSM in which concurrent reads take unit time (Theorem 3.1 variant).
    pub fn qsm_unit_cr(g: u64) -> Self {
        Self::with_flavor(g, QsmFlavor::QsmUnitConcurrentReads)
    }

    /// A QSM(g, d): gap `g` at processors, gap `d` at memory (Claim 2.2).
    pub fn qsm_gd(g: u64, d: u64) -> Self {
        Self::with_flavor(g, QsmFlavor::QsmGd(d.max(1)))
    }

    fn with_flavor(g: u64, flavor: QsmFlavor) -> Self {
        QsmMachine {
            g: g.max(1),
            flavor,
            seed: 0x5eed_cafe,
            max_phases: 1 << 20,
            mem_limit: 1 << 34,
            faults: None,
            cancel: None,
            opts: ExecOptions::default(),
        }
    }

    /// Sets the RNG seed used for arbitrary-write arbitration.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the runaway-protection phase limit.
    pub fn with_max_phases(mut self, max_phases: usize) -> Self {
        self.max_phases = max_phases;
        self
    }

    /// Sets the shared-memory address limit.
    pub fn with_mem_limit(mut self, mem_limit: usize) -> Self {
        self.mem_limit = mem_limit;
        self
    }

    /// Attaches a [`FaultPlan`]: every subsequent run injects the plan's
    /// faults and reports a [`FaultLog`] in [`RunResult::faults`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Detaches any fault plan (used to obtain fault-free baselines).
    pub fn without_faults(mut self) -> Self {
        self.faults = None;
        self
    }

    /// Attaches a [`CancelToken`]: every subsequent run checks it at each
    /// phase boundary and stops with [`ModelError::DeadlineExceeded`] once
    /// it trips, before the phase's effects are applied.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Phase-boundary cancellation checkpoint (no-op without a token).
    fn check_cancel(&self, phase: usize) -> Result<()> {
        match &self.cancel {
            Some(token) => token.check(phase),
            None => Ok(()),
        }
    }

    /// Makes every subsequent [`QsmMachine::run`] record an [`ExecTrace`]
    /// into [`RunResult::trace`] (bounded by the trace phase cap). This
    /// exposes traces for algorithm entry points that call `run` internally
    /// (the analyzer's lint pass relies on it) without changing their
    /// signatures.
    pub fn with_tracing(mut self) -> Self {
        self.opts.record_trace = true;
        self
    }

    /// Replaces the execution options wholesale.
    pub fn with_options(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Selects the request-routing strategy (dense fast path by default).
    pub fn with_routing(mut self, routing: Routing) -> Self {
        self.opts.routing = routing;
        self
    }

    /// Routes requests through the original map-based reference path
    /// (shorthand for [`QsmMachine::with_routing`] with
    /// [`Routing::Reference`]); used by the differential suite and the
    /// hot-path benchmarks.
    pub fn with_reference_routing(self) -> Self {
        self.with_routing(Routing::Reference)
    }

    /// Sets the maximum number of phases a recorded trace retains.
    pub fn with_trace_cap(mut self, cap: usize) -> Self {
        self.opts.trace_phase_cap = cap;
        self
    }

    /// Sets the host-thread budget for the intra-phase compute stage
    /// ([`Parallelism::Off`] by default). Results are bit-identical at
    /// every setting; only wall-clock changes. Parallelism applies to the
    /// dense routing path on fault-free runs — reference routing and
    /// fault-plan runs always execute sequentially.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.opts.parallelism = parallelism;
        self
    }

    /// The execution options currently in force.
    pub fn options(&self) -> ExecOptions {
        self.opts
    }

    /// The RNG seed used for arbitrary-write arbitration.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared-memory address limit.
    pub fn mem_limit(&self) -> usize {
        self.mem_limit
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The runaway-protection phase limit.
    pub fn max_phases(&self) -> usize {
        self.max_phases
    }

    /// The gap parameter `g`.
    pub fn g(&self) -> u64 {
        self.g
    }

    /// The cost flavour of this machine.
    pub fn flavor(&self) -> QsmFlavor {
        self.flavor
    }

    /// Phase cost under this machine's rule (Section 2.1).
    pub fn phase_cost(&self, m_op: u64, m_rw: u64, kappa: u64) -> u64 {
        let m_rw = m_rw.max(1);
        let kappa = kappa.max(1);
        match self.flavor {
            QsmFlavor::Qsm | QsmFlavor::QsmUnitConcurrentReads => {
                m_op.max(self.g * m_rw).max(kappa)
            }
            QsmFlavor::SQsm => m_op.max(self.g * m_rw).max(self.g * kappa),
            QsmFlavor::QsmGd(d) => m_op.max(self.g * m_rw).max(d * kappa),
        }
    }

    /// Runs `program` on memory pre-initialized with `input` at address 0.
    ///
    /// `P: Sync` and `P::Proc: Send` admit the intra-phase parallel
    /// executor (see [`QsmMachine::with_parallelism`]); both bounds are
    /// vacuous for ordinary programs (shared immutable program, per-pid
    /// state moved between phases).
    pub fn run<P>(&self, program: &P, input: &[Word]) -> Result<RunResult>
    where
        P: Program + Sync,
        P::Proc: Send,
    {
        self.execute(program, input, self.opts.record_trace)
    }

    /// Runs `program` and additionally records a full [`ExecTrace`].
    pub fn run_traced<P>(&self, program: &P, input: &[Word]) -> Result<(RunResult, ExecTrace)>
    where
        P: Program + Sync,
        P::Proc: Send,
    {
        let mut result = self.execute(program, input, true)?;
        let trace = result.trace.take().unwrap_or_default();
        Ok((result, trace))
    }

    fn execute<P>(&self, program: &P, input: &[Word], want_trace: bool) -> Result<RunResult>
    where
        P: Program + Sync,
        P::Proc: Send,
    {
        match self.opts.routing {
            Routing::Dense => {
                let workers = self.opts.parallelism.workers(program.num_procs());
                if workers > 1 && self.faults.is_none() {
                    self.execute_dense_par(program, input, want_trace, workers)
                } else {
                    self.execute_dense(program, input, want_trace)
                }
            }
            Routing::Reference => self.execute_reference(program, input, want_trace),
        }
    }

    /// The original map-based execution path, kept as the executable
    /// specification the dense fast path is differentially tested against.
    fn execute_reference<P: Program>(
        &self,
        program: &P,
        input: &[Word],
        want_trace: bool,
    ) -> Result<RunResult> {
        let mut trace = want_trace.then(ExecTrace::default);
        let cap = self.opts.trace_phase_cap;
        let n_procs = program.num_procs();
        if n_procs == 0 {
            return Err(ModelError::BadConfig(
                "program declares zero processors".into(),
            ));
        }
        let mut memory = Memory::with_limit(self.mem_limit);
        memory.load(0, input)?;

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut ledger = CostLedger::new();
        let mut injector = self.faults.as_ref().map(FaultInjector::new);
        let phase_limit = injector.as_ref().map_or(self.max_phases, |i| {
            i.effective_phase_limit(self.max_phases)
        });
        if let Some(inj) = injector.as_mut() {
            let workers = self.opts.parallelism.workers(n_procs);
            if workers > 1 {
                inj.note(parallel_fallback_notice(workers));
            }
        }

        let mut states: Vec<P::Proc> = (0..n_procs).map(|pid| program.create(pid)).collect();
        let mut active: Vec<bool> = vec![true; n_procs];
        // Reads issued last phase, valued, awaiting delivery: per-pid.
        let mut pending: Vec<Vec<(Addr, Word)>> = vec![Vec::new(); n_procs];
        // Each processor's own phase counter: advances only when it actually
        // executes, so an injected stall is a pure delay from the program's
        // point of view. Without faults this equals the global phase number.
        let mut local_phase: Vec<usize> = vec![0; n_procs];

        // Reused per-phase scratch.
        let mut read_count: HashMap<Addr, u64> = HashMap::new();
        // Attempted writes per cell, writers in pid order; a BTreeMap so
        // arbitration happens in deterministic sorted-address order (the
        // coordinate system scripted winner policies rely on).
        let mut writes_by_addr: BTreeMap<Addr, Vec<Word>> = BTreeMap::new();

        let mut phase_no = 0usize;
        while active.iter().any(|&a| a) {
            if phase_no >= phase_limit {
                return Err(ModelError::PhaseLimitExceeded { limit: phase_limit });
            }
            self.check_cancel(phase_no)?;
            read_count.clear();
            writes_by_addr.clear();

            let mut m_op: u64 = 0;
            let mut m_rw: u64 = 0;
            let mut any_access = false;
            let mut phase_trace =
                trace
                    .as_ref()
                    .filter(|t| t.phases.len() < cap)
                    .map(|_| PhaseTrace {
                        reads: vec![Vec::new(); n_procs],
                        writes: vec![Vec::new(); n_procs],
                        committed: Vec::new(),
                        finished: vec![false; n_procs],
                    });

            // New read requests (valued at end of phase loop, delivered next
            // phase). Collected as (pid, addr) to avoid per-proc Vec churn.
            let mut new_reads: Vec<(usize, Addr)> = Vec::new();

            for pid in 0..n_procs {
                if !active[pid] {
                    continue;
                }
                if let Some(inj) = injector.as_mut() {
                    if inj.crash_at(pid, phase_no) {
                        return Err(ModelError::FaultAborted {
                            phase: phase_no,
                            reason: format!("processor {pid} crashed"),
                        });
                    }
                    if inj.stall_at(pid, phase_no) {
                        // Skip the phase; deliveries stay pending and the
                        // processor resumes at its own next local phase.
                        continue;
                    }
                }
                let delivered = std::mem::take(&mut pending[pid]);
                let mut env = PhaseEnv::new(local_phase[pid], &delivered);
                let status = program.phase(pid, &mut states[pid], &mut env);
                local_phase[pid] += 1;

                let r_i = env.reads.len() as u64;
                let w_i = env.writes.len() as u64;
                // A processor is charged its explicit local ops plus one op
                // per request it issues.
                let c_i = env.ops + r_i + w_i;
                m_op = m_op.max(c_i);
                m_rw = m_rw.max(r_i.max(w_i));
                any_access |= r_i + w_i > 0;

                for &addr in &env.reads {
                    *read_count.entry(addr).or_insert(0) += 1;
                    new_reads.push((pid, addr));
                }
                for &(addr, value) in &env.writes {
                    writes_by_addr.entry(addr).or_default().push(value);
                    if let Some(pt) = phase_trace.as_mut() {
                        pt.writes[pid].push((addr, value));
                    }
                }
                if status == Status::Done {
                    active[pid] = false;
                    if let Some(pt) = phase_trace.as_mut() {
                        pt.finished[pid] = true;
                    }
                }
            }

            // Model rule: a cell may be read or written in a phase, not
            // both. Checked in sorted written-address order so the reported
            // conflict cell is deterministic.
            for (&addr, _) in writes_by_addr.iter() {
                if read_count.contains_key(&addr) {
                    return Err(ModelError::ReadWriteConflict {
                        addr,
                        phase: phase_no,
                    });
                }
            }

            // Value the reads against pre-write memory, then commit writes
            // in sorted-address order, arbitrating each cell's concurrent
            // writers (arbitrary-write rule).
            for &(pid, addr) in &new_reads {
                let v = memory.get(addr);
                if active[pid] {
                    pending[pid].push((addr, v));
                }
                if let Some(pt) = phase_trace.as_mut() {
                    pt.reads[pid].push((addr, v));
                }
            }
            for (&addr, values) in writes_by_addr.iter() {
                let value = match injector.as_mut() {
                    Some(inj) => inj.pick_winner(phase_no, addr, values),
                    None if values.len() == 1 => values[0],
                    None => values[rng.gen_range(0..values.len())],
                };
                memory.set(addr, value)?;
                if let Some(pt) = phase_trace.as_mut() {
                    pt.committed.push((addr, value));
                }
            }

            let write_contention = writes_by_addr
                .values()
                .map(|v| v.len() as u64)
                .max()
                .unwrap_or(1);
            let kappa = if any_access {
                read_count
                    .values()
                    .copied()
                    .max()
                    .unwrap_or(1)
                    .max(write_contention)
            } else {
                1
            };
            let kappa = match self.flavor {
                // Unit-time concurrent reads: only write contention queues.
                QsmFlavor::QsmUnitConcurrentReads => write_contention,
                _ => kappa,
            };

            let cost = self.phase_cost(m_op, m_rw, kappa);
            ledger.push(PhaseCost {
                m_op,
                m_rw: m_rw.max(1),
                kappa,
                cost,
            });
            if let Some(inj) = injector.as_ref() {
                inj.check_cost(ledger.total_time())?;
            }
            if let Some(t) = trace.as_mut() {
                t.total_phases += 1;
                match phase_trace {
                    Some(pt) => t.phases.push(pt),
                    None => t.truncated = true,
                }
            }
            phase_no += 1;
        }

        Ok(RunResult {
            memory,
            ledger,
            faults: injector.map(FaultInjector::into_log),
            trace,
        })
    }

    /// The dense fast path: epoch-stamped address-indexed routing tables and
    /// arena-pooled request buffers. Observationally identical to
    /// [`QsmMachine::execute_reference`] — same ledger, same RNG and
    /// fault-injector consumption order, same committed memory, same errors.
    fn execute_dense<P: Program>(
        &self,
        program: &P,
        input: &[Word],
        want_trace: bool,
    ) -> Result<RunResult> {
        let mut trace = want_trace.then(ExecTrace::default);
        let cap = self.opts.trace_phase_cap;
        let n_procs = program.num_procs();
        if n_procs == 0 {
            return Err(ModelError::BadConfig(
                "program declares zero processors".into(),
            ));
        }
        let mut memory = Memory::with_limit(self.mem_limit);
        memory.load(0, input)?;

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut ledger = CostLedger::new();
        let mut injector = self.faults.as_ref().map(FaultInjector::new);
        let phase_limit = injector.as_ref().map_or(self.max_phases, |i| {
            i.effective_phase_limit(self.max_phases)
        });
        if let Some(inj) = injector.as_mut() {
            let workers = self.opts.parallelism.workers(n_procs);
            if workers > 1 {
                inj.note(parallel_fallback_notice(workers));
            }
        }

        let mut states: Vec<P::Proc> = (0..n_procs).map(|pid| program.create(pid)).collect();
        let mut active: Vec<bool> = vec![true; n_procs];
        let mut pending: Vec<Vec<(Addr, Word)>> = vec![Vec::new(); n_procs];
        let mut local_phase: Vec<usize> = vec![0; n_procs];

        // Per-run scratch, allocated once and reused across phases.
        let mut read_table = ContentionTable::default();
        let mut writes = WriteRouter::default();
        let mut new_reads: Vec<(usize, Addr)> = Vec::new();
        // Arena-recycled PhaseEnv request buffers: steady-state phases
        // allocate nothing.
        let mut read_buf: Vec<Addr> = Vec::new();
        let mut write_buf: Vec<(Addr, Word)> = Vec::new();

        let mut phase_no = 0usize;
        while active.iter().any(|&a| a) {
            if phase_no >= phase_limit {
                return Err(ModelError::PhaseLimitExceeded { limit: phase_limit });
            }
            self.check_cancel(phase_no)?;
            read_table.begin_phase();
            writes.begin_phase();
            new_reads.clear();

            let mut m_op: u64 = 0;
            let mut m_rw: u64 = 0;
            let mut any_access = false;
            let mut phase_trace =
                trace
                    .as_ref()
                    .filter(|t| t.phases.len() < cap)
                    .map(|_| PhaseTrace {
                        reads: vec![Vec::new(); n_procs],
                        writes: vec![Vec::new(); n_procs],
                        committed: Vec::new(),
                        finished: vec![false; n_procs],
                    });

            for pid in 0..n_procs {
                if !active[pid] {
                    continue;
                }
                if let Some(inj) = injector.as_mut() {
                    if inj.crash_at(pid, phase_no) {
                        return Err(ModelError::FaultAborted {
                            phase: phase_no,
                            reason: format!("processor {pid} crashed"),
                        });
                    }
                    if inj.stall_at(pid, phase_no) {
                        continue;
                    }
                }
                let delivered = std::mem::take(&mut pending[pid]);
                let mut env = PhaseEnv::with_buffers(
                    local_phase[pid],
                    &delivered,
                    std::mem::take(&mut read_buf),
                    std::mem::take(&mut write_buf),
                );
                let status = program.phase(pid, &mut states[pid], &mut env);
                local_phase[pid] += 1;

                let (r_vec, w_vec, ops) = env.into_requests();
                let r_i = r_vec.len() as u64;
                let w_i = w_vec.len() as u64;
                let c_i = ops + r_i + w_i;
                m_op = m_op.max(c_i);
                m_rw = m_rw.max(r_i.max(w_i));
                any_access |= r_i + w_i > 0;

                for &addr in &r_vec {
                    read_table.incr(addr);
                    new_reads.push((pid, addr));
                }
                for &(addr, value) in &w_vec {
                    writes.push(addr, value);
                    if let Some(pt) = phase_trace.as_mut() {
                        pt.writes[pid].push((addr, value));
                    }
                }
                if status == Status::Done {
                    active[pid] = false;
                    if let Some(pt) = phase_trace.as_mut() {
                        pt.finished[pid] = true;
                    }
                }
                // Recycle every buffer touched this phase.
                read_buf = r_vec;
                read_buf.clear();
                write_buf = w_vec;
                write_buf.clear();
                let mut d = delivered;
                d.clear();
                pending[pid] = d;
            }

            // Counting-sort the writes into sorted-address groups, then
            // apply the same checks/commits as the reference path.
            writes.route();
            for &addr in writes.sorted_addrs() {
                if read_table.contains(addr) {
                    return Err(ModelError::ReadWriteConflict {
                        addr,
                        phase: phase_no,
                    });
                }
            }

            for &(pid, addr) in &new_reads {
                let v = memory.get(addr);
                if active[pid] {
                    pending[pid].push((addr, v));
                }
                if let Some(pt) = phase_trace.as_mut() {
                    pt.reads[pid].push((addr, v));
                }
            }
            for (addr, values) in writes.groups() {
                let value = match injector.as_mut() {
                    Some(inj) => inj.pick_winner(phase_no, addr, values),
                    None if values.len() == 1 => values[0],
                    None => values[rng.gen_range(0..values.len())],
                };
                memory.set(addr, value)?;
                if let Some(pt) = phase_trace.as_mut() {
                    pt.committed.push((addr, value));
                }
            }

            let write_contention = writes.max_contention();
            let kappa = if any_access {
                read_table.max_contention().max(write_contention)
            } else {
                1
            };
            let kappa = match self.flavor {
                QsmFlavor::QsmUnitConcurrentReads => write_contention,
                _ => kappa,
            };

            let cost = self.phase_cost(m_op, m_rw, kappa);
            ledger.push(PhaseCost {
                m_op,
                m_rw: m_rw.max(1),
                kappa,
                cost,
            });
            if let Some(inj) = injector.as_ref() {
                inj.check_cost(ledger.total_time())?;
            }
            if let Some(t) = trace.as_mut() {
                t.total_phases += 1;
                match phase_trace {
                    Some(pt) => t.phases.push(pt),
                    None => t.truncated = true,
                }
            }
            phase_no += 1;
        }

        Ok(RunResult {
            memory,
            ledger,
            faults: injector.map(FaultInjector::into_log),
            trace,
        })
    }

    /// The parallel dense path: the compute stage of each phase is sharded
    /// across `workers` scoped threads (contiguous pid chunks), and shard
    /// outputs are merged back **in pid order** before the sequential apply
    /// stage runs unchanged. Because the compute stage never touches shared
    /// memory (reads are valued at the barrier against pre-write memory and
    /// delivered next phase), workers are pure functions of (delivered
    /// values, per-pid state) — so the request streams fed to the routing
    /// tables, the arbitration RNG draws, the ledger, the trace, and every
    /// error are bit-identical to [`QsmMachine::execute_dense`] at any
    /// thread count. Only fault-free runs take this path.
    fn execute_dense_par<P>(
        &self,
        program: &P,
        input: &[Word],
        want_trace: bool,
        workers: usize,
    ) -> Result<RunResult>
    where
        P: Program + Sync,
        P::Proc: Send,
    {
        let mut trace = want_trace.then(ExecTrace::default);
        let cap = self.opts.trace_phase_cap;
        let n_procs = program.num_procs();
        if n_procs == 0 {
            return Err(ModelError::BadConfig(
                "program declares zero processors".into(),
            ));
        }
        let mut memory = Memory::with_limit(self.mem_limit);
        memory.load(0, input)?;

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut ledger = CostLedger::new();
        let phase_limit = self.max_phases;

        let mut active: Vec<bool> = vec![true; n_procs];
        let mut pending: Vec<Vec<(Addr, Word)>> = vec![Vec::new(); n_procs];

        let mut read_table = ContentionTable::default();
        let mut writes = WriteRouter::default();
        let mut new_reads: Vec<(usize, Addr)> = Vec::new();

        // One shard bundle per worker, round-tripped through the pool each
        // phase so its arenas (request buffers, per-pid delivery vectors)
        // are recycled exactly like the sequential path's.
        let mut shards: Vec<Option<QsmShard<P::Proc>>> = shard_ranges(n_procs, workers)
            .into_iter()
            .map(|r| {
                Some(QsmShard {
                    base: r.start,
                    phase_no: 0,
                    active: vec![true; r.len()],
                    states: r.clone().map(|pid| program.create(pid)).collect(),
                    delivered: vec![Vec::new(); r.len()],
                    reads: Vec::new(),
                    writes: Vec::new(),
                    read_buf: Vec::new(),
                    write_buf: Vec::new(),
                    m_op: 0,
                    m_rw: 0,
                    any_access: false,
                })
            })
            .collect();

        let work = |_w: usize, mut shard: QsmShard<P::Proc>| {
            shard.reads.clear();
            shard.writes.clear();
            shard.m_op = 0;
            shard.m_rw = 0;
            shard.any_access = false;
            for i in 0..shard.states.len() {
                if !shard.active[i] {
                    continue;
                }
                let pid = shard.base + i;
                let delivered = std::mem::take(&mut shard.delivered[i]);
                let mut env = PhaseEnv::with_buffers(
                    shard.phase_no,
                    &delivered,
                    std::mem::take(&mut shard.read_buf),
                    std::mem::take(&mut shard.write_buf),
                );
                let status = program.phase(pid, &mut shard.states[i], &mut env);

                let (r_vec, w_vec, ops) = env.into_requests();
                let r_i = r_vec.len() as u64;
                let w_i = w_vec.len() as u64;
                shard.m_op = shard.m_op.max(ops + r_i + w_i);
                shard.m_rw = shard.m_rw.max(r_i.max(w_i));
                shard.any_access |= r_i + w_i > 0;
                for &addr in &r_vec {
                    shard.reads.push((pid, addr));
                }
                for &(addr, value) in &w_vec {
                    shard.writes.push((pid, addr, value));
                }
                if status == Status::Done {
                    shard.active[i] = false;
                }
                shard.read_buf = r_vec;
                shard.read_buf.clear();
                shard.write_buf = w_vec;
                shard.write_buf.clear();
                let mut d = delivered;
                d.clear();
                shard.delivered[i] = d;
            }
            shard
        };

        with_pool(workers, work, move |pool| {
            let mut phase_no = 0usize;
            while active.iter().any(|&a| a) {
                if phase_no >= phase_limit {
                    return Err(ModelError::PhaseLimitExceeded { limit: phase_limit });
                }
                self.check_cancel(phase_no)?;
                read_table.begin_phase();
                writes.begin_phase();
                new_reads.clear();

                let mut m_op: u64 = 0;
                let mut m_rw: u64 = 0;
                let mut any_access = false;
                let mut phase_trace =
                    trace
                        .as_ref()
                        .filter(|t| t.phases.len() < cap)
                        .map(|_| PhaseTrace {
                            reads: vec![Vec::new(); n_procs],
                            writes: vec![Vec::new(); n_procs],
                            committed: Vec::new(),
                            finished: vec![false; n_procs],
                        });

                // Compute stage: dispatch every shard, then merge outputs in
                // worker (= pid) order so the request streams below are
                // byte-for-byte those of the sequential loop.
                let mut tasks = Vec::with_capacity(shards.len());
                for slot in shards.iter_mut() {
                    let mut shard = slot.take().expect("shard not in flight");
                    shard.phase_no = phase_no;
                    for i in 0..shard.active.len() {
                        let pid = shard.base + i;
                        shard.active[i] = active[pid];
                        shard.delivered[i] = std::mem::take(&mut pending[pid]);
                    }
                    tasks.push(shard);
                }
                pool.run_round(tasks, |w, mut shard| {
                    m_op = m_op.max(shard.m_op);
                    m_rw = m_rw.max(shard.m_rw);
                    any_access |= shard.any_access;
                    for &(pid, addr) in &shard.reads {
                        read_table.incr(addr);
                        new_reads.push((pid, addr));
                    }
                    for &(pid, addr, value) in &shard.writes {
                        writes.push(addr, value);
                        if let Some(pt) = phase_trace.as_mut() {
                            pt.writes[pid].push((addr, value));
                        }
                    }
                    for i in 0..shard.active.len() {
                        let pid = shard.base + i;
                        if active[pid] && !shard.active[i] {
                            active[pid] = false;
                            if let Some(pt) = phase_trace.as_mut() {
                                pt.finished[pid] = true;
                            }
                        }
                        pending[pid] = std::mem::take(&mut shard.delivered[i]);
                    }
                    shards[w] = Some(shard);
                });

                // Apply stage: identical to the sequential dense path.
                writes.route();
                for &addr in writes.sorted_addrs() {
                    if read_table.contains(addr) {
                        return Err(ModelError::ReadWriteConflict {
                            addr,
                            phase: phase_no,
                        });
                    }
                }

                for &(pid, addr) in &new_reads {
                    let v = memory.get(addr);
                    if active[pid] {
                        pending[pid].push((addr, v));
                    }
                    if let Some(pt) = phase_trace.as_mut() {
                        pt.reads[pid].push((addr, v));
                    }
                }
                for (addr, values) in writes.groups() {
                    let value = if values.len() == 1 {
                        values[0]
                    } else {
                        values[rng.gen_range(0..values.len())]
                    };
                    memory.set(addr, value)?;
                    if let Some(pt) = phase_trace.as_mut() {
                        pt.committed.push((addr, value));
                    }
                }

                let write_contention = writes.max_contention();
                let kappa = if any_access {
                    read_table.max_contention().max(write_contention)
                } else {
                    1
                };
                let kappa = match self.flavor {
                    QsmFlavor::QsmUnitConcurrentReads => write_contention,
                    _ => kappa,
                };

                let cost = self.phase_cost(m_op, m_rw, kappa);
                ledger.push(PhaseCost {
                    m_op,
                    m_rw: m_rw.max(1),
                    kappa,
                    cost,
                });
                if let Some(t) = trace.as_mut() {
                    t.total_phases += 1;
                    match phase_trace {
                        Some(pt) => t.phases.push(pt),
                        None => t.truncated = true,
                    }
                }
                phase_no += 1;
            }

            Ok(RunResult {
                memory,
                ledger,
                faults: None,
                trace,
            })
        })
    }
}

/// One worker's slice of the simulated machine in the parallel dense path:
/// a contiguous pid chunk's states plus the arenas its requests are emitted
/// into. Round-trips between the main thread and its worker every phase.
struct QsmShard<S> {
    /// First global pid of the chunk.
    base: usize,
    /// Global phase number (equals every active pid's local phase: the
    /// parallel path runs fault-free, so no processor ever stalls).
    phase_no: usize,
    /// Per-pid activity, refreshed from the main thread before dispatch;
    /// the worker clears entries that return [`Status::Done`].
    active: Vec<bool>,
    /// Per-pid program states (owned by the shard for the whole run).
    states: Vec<S>,
    /// Per-pid delivery buffers, moved in from `pending` and back.
    delivered: Vec<Vec<(Addr, Word)>>,
    /// Read requests emitted this phase, (global pid, addr), pid-major.
    reads: Vec<(usize, Addr)>,
    /// Write requests emitted this phase, (global pid, addr, value).
    writes: Vec<(usize, Addr, Word)>,
    /// Recycled [`PhaseEnv`] request arenas (worker-local).
    read_buf: Vec<Addr>,
    /// Recycled [`PhaseEnv`] write arena (worker-local).
    write_buf: Vec<(Addr, Word)>,
    /// Shard-local max of per-processor op counts.
    m_op: u64,
    /// Shard-local max of per-processor request counts.
    m_rw: u64,
    /// Whether any pid in the shard issued a request this phase.
    any_access: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::FnProgram;

    /// n writers all write their pid+1 to cell 100; one of them must win.
    #[test]
    fn arbitrary_write_picks_some_writer() {
        let n = 16;
        let prog = FnProgram::new(
            n,
            |_| (),
            |pid, _, env: &mut PhaseEnv<'_>| {
                env.write(100, pid as Word + 1);
                Status::Done
            },
        );
        let m = QsmMachine::qsm(2);
        let res = m.run(&prog, &[]).unwrap();
        let v = res.memory.get(100);
        assert!(
            (1..=n as Word).contains(&v),
            "winner {v} not a writer value"
        );
        // Contention n, one write each: cost = max(1, g*1, n) = n.
        assert_eq!(res.ledger.phases()[0].kappa, n as u64);
        assert_eq!(res.time(), n as u64);
    }

    #[test]
    fn arbitration_is_deterministic_for_a_seed() {
        let n = 64;
        let mk = || {
            FnProgram::new(
                n,
                |_| (),
                |pid, _, env: &mut PhaseEnv<'_>| {
                    env.write(0, pid as Word);
                    Status::Done
                },
            )
        };
        let a = QsmMachine::qsm(1).with_seed(7).run(&mk(), &[]).unwrap();
        let b = QsmMachine::qsm(1).with_seed(7).run(&mk(), &[]).unwrap();
        assert_eq!(a.memory.get(0), b.memory.get(0));
    }

    #[test]
    fn reads_deliver_next_phase_with_pre_write_values() {
        // Phase 0: proc 0 reads cell 0 (holding 5) and proc 1 writes 9 to
        // cell 1. Phase 1: proc 0 reads cell 1 and must see 9; its earlier
        // read of cell 0 must have seen 5.
        let prog = FnProgram::new(
            2,
            |_| Vec::<Word>::new(),
            |pid, seen: &mut Vec<Word>, env: &mut PhaseEnv<'_>| {
                if pid == 1 {
                    if env.phase() == 0 {
                        env.write(1, 9);
                    }
                    return Status::Done;
                }
                match env.phase() {
                    0 => {
                        env.read(0);
                        Status::Active
                    }
                    1 => {
                        seen.push(env.value(0).unwrap());
                        env.read(1);
                        Status::Active
                    }
                    _ => {
                        seen.push(env.value(1).unwrap());
                        env.write(2, seen[0] * 100 + seen[1]);
                        Status::Done
                    }
                }
            },
        );
        let res = QsmMachine::qsm(1).run(&prog, &[5]).unwrap();
        assert_eq!(res.memory.get(2), 509);
    }

    #[test]
    fn read_write_conflict_is_rejected() {
        let prog = FnProgram::new(
            2,
            |_| (),
            |pid, _, env: &mut PhaseEnv<'_>| {
                if pid == 0 {
                    env.read(3);
                } else {
                    env.write(3, 1);
                }
                Status::Done
            },
        );
        let err = QsmMachine::qsm(1).run(&prog, &[]).unwrap_err();
        assert_eq!(err, ModelError::ReadWriteConflict { addr: 3, phase: 0 });
    }

    #[test]
    fn qsm_cost_rule_matches_definition() {
        let m = QsmMachine::qsm(4);
        // max(m_op, g*m_rw, kappa)
        assert_eq!(m.phase_cost(3, 2, 5), 8);
        assert_eq!(m.phase_cost(30, 2, 5), 30);
        assert_eq!(m.phase_cost(3, 2, 50), 50);
        // Floors: m_rw and kappa are at least 1.
        assert_eq!(m.phase_cost(0, 0, 0), 4);
    }

    #[test]
    fn sqsm_cost_rule_charges_gap_at_memory() {
        let m = QsmMachine::sqsm(4);
        // max(m_op, g*m_rw, g*kappa)
        assert_eq!(m.phase_cost(3, 2, 5), 20);
        assert_eq!(m.phase_cost(3, 6, 5), 24);
        assert_eq!(m.phase_cost(100, 2, 5), 100);
    }

    #[test]
    fn qrqw_is_qsm_with_unit_gap() {
        let m = QsmMachine::qrqw();
        assert_eq!(m.g(), 1);
        assert_eq!(m.phase_cost(1, 7, 3), 7);
    }

    #[test]
    fn qsm_gd_interpolates_between_qsm_and_sqsm() {
        let g = 8;
        // d = 1 degenerates to the QSM rule.
        assert_eq!(
            QsmMachine::qsm_gd(g, 1).phase_cost(3, 2, 50),
            QsmMachine::qsm(g).phase_cost(3, 2, 50)
        );
        // d = g degenerates to the s-QSM rule.
        assert_eq!(
            QsmMachine::qsm_gd(g, g).phase_cost(3, 2, 50),
            QsmMachine::sqsm(g).phase_cost(3, 2, 50)
        );
        // Intermediate d: max(m_op, g·m_rw, d·κ).
        let m = QsmMachine::qsm_gd(8, 3);
        assert_eq!(m.phase_cost(1, 2, 50), 150);
        assert_eq!(m.phase_cost(1, 25, 2), 200);
    }

    #[test]
    fn unit_concurrent_reads_do_not_queue() {
        // 8 processors all read cell 0 in one phase.
        let mk = || {
            FnProgram::new(
                8,
                |_| (),
                |_, _, env: &mut PhaseEnv<'_>| {
                    if env.phase() == 0 {
                        env.read(0);
                        Status::Active
                    } else {
                        Status::Done
                    }
                },
            )
        };
        let plain = QsmMachine::qsm(2).run(&mk(), &[1]).unwrap();
        let unit = QsmMachine::qsm_unit_cr(2).run(&mk(), &[1]).unwrap();
        // Plain QSM: kappa = 8 so phase 0 costs max(1, 2, 8) = 8.
        assert_eq!(plain.ledger.phases()[0].cost, 8);
        // Unit-CR QSM: read contention free, cost = max(1, 2, 1) = 2.
        assert_eq!(unit.ledger.phases()[0].cost, 2);
    }

    #[test]
    fn write_contention_still_queues_under_unit_cr() {
        let prog = FnProgram::new(
            8,
            |_| (),
            |_, _, env: &mut PhaseEnv<'_>| {
                env.write(0, 1);
                Status::Done
            },
        );
        let res = QsmMachine::qsm_unit_cr(2).run(&prog, &[]).unwrap();
        assert_eq!(res.ledger.phases()[0].cost, 8);
    }

    #[test]
    fn phase_limit_catches_runaway_programs() {
        let prog = FnProgram::new(1, |_| (), |_, _, _: &mut PhaseEnv<'_>| Status::Active);
        let err = QsmMachine::qsm(1)
            .with_max_phases(10)
            .run(&prog, &[])
            .unwrap_err();
        assert_eq!(err, ModelError::PhaseLimitExceeded { limit: 10 });
    }

    #[test]
    fn trace_records_reads_writes_and_commits() {
        let prog = FnProgram::new(
            2,
            |_| (),
            |pid, _, env: &mut PhaseEnv<'_>| match env.phase() {
                0 => {
                    env.read(pid);
                    Status::Active
                }
                _ => {
                    env.write(10, env.delivered()[0].1);
                    Status::Done
                }
            },
        );
        let (res, trace) = QsmMachine::qsm(1).run_traced(&prog, &[7, 8]).unwrap();
        assert_eq!(trace.phases.len(), 2);
        assert_eq!(trace.phases[0].reads[0], vec![(0, 7)]);
        assert_eq!(trace.phases[0].reads[1], vec![(1, 8)]);
        assert_eq!(trace.phases[1].writes[0], vec![(10, 7)]);
        assert_eq!(trace.phases[1].writes[1], vec![(10, 8)]);
        assert_eq!(trace.phases[1].committed.len(), 1);
        assert_eq!(trace.phases[0].finished, vec![false, false]);
        assert_eq!(trace.phases[1].finished, vec![true, true]);
        let winner = res.memory.get(10);
        assert!(winner == 7 || winner == 8);
    }

    #[test]
    fn with_tracing_populates_run_result_trace() {
        let mk = || {
            FnProgram::new(
                2,
                |_| (),
                |pid, _, env: &mut PhaseEnv<'_>| {
                    env.write(pid, 1);
                    Status::Done
                },
            )
        };
        let plain = QsmMachine::qsm(1).run(&mk(), &[]).unwrap();
        assert!(plain.trace.is_none());
        let traced = QsmMachine::qsm(1).with_tracing().run(&mk(), &[]).unwrap();
        let trace = traced.trace.expect("tracing machine records a trace");
        assert_eq!(trace.phases.len(), 1);
        assert_eq!(trace.phases[0].writes[1], vec![(1, 1)]);
        assert_eq!(trace.phases[0].finished, vec![true, true]);
    }

    #[test]
    fn idle_phase_of_active_processor_charges_minimum() {
        // One processor that does nothing for a phase then stops: each phase
        // costs max(0, g*1, 1) = g.
        let prog = FnProgram::new(
            1,
            |_| (),
            |_, _, env: &mut PhaseEnv<'_>| {
                if env.phase() == 0 {
                    Status::Active
                } else {
                    Status::Done
                }
            },
        );
        let res = QsmMachine::qsm(3).run(&prog, &[]).unwrap();
        assert_eq!(res.time(), 6);
    }

    #[test]
    fn zero_processor_program_is_rejected() {
        let prog = FnProgram::new(0, |_| (), |_, _, _: &mut PhaseEnv<'_>| Status::Done);
        assert!(matches!(
            QsmMachine::qsm(1).run(&prog, &[]),
            Err(ModelError::BadConfig(_))
        ));
    }
}
