//! Execution-hardening regression tests: every engine ships with a finite
//! default phase limit, and a program that never terminates comes back as
//! a typed [`ModelError::PhaseLimitExceeded`] on all four models — never a
//! hang, never a panic.

use parbounds_models::{
    BspFnProgram, BspMachine, FaultPlan, FnProgram, GsmFnProgram, GsmMachine, ModelError,
    QsmMachine, Status, Word,
};

/// The default limit shared by all engines.
const DEFAULT_LIMIT: usize = 1 << 20;

#[test]
fn default_phase_limits_are_finite_on_all_four_engines() {
    assert_eq!(QsmMachine::qsm(4).max_phases(), DEFAULT_LIMIT);
    assert_eq!(QsmMachine::sqsm(4).max_phases(), DEFAULT_LIMIT);
    assert_eq!(BspMachine::new(4, 2, 4).unwrap().max_steps(), DEFAULT_LIMIT);
    assert_eq!(GsmMachine::new(2, 2, 4).max_phases(), DEFAULT_LIMIT);
}

/// A shared-memory program that spins forever.
fn spinning_qsm() -> impl parbounds_models::Program<Proc = ()> {
    FnProgram::new(2, |_pid| (), |_pid, _s: &mut (), _env| Status::Active)
}

#[test]
fn infinite_loop_on_qsm_returns_phase_limit_exceeded() {
    let err = QsmMachine::qsm(4)
        .with_max_phases(64)
        .run(&spinning_qsm(), &[])
        .unwrap_err();
    assert!(
        matches!(err, ModelError::PhaseLimitExceeded { limit: 64 }),
        "{err:?}"
    );
}

#[test]
fn infinite_loop_on_sqsm_returns_phase_limit_exceeded() {
    let err = QsmMachine::sqsm(4)
        .with_max_phases(64)
        .run(&spinning_qsm(), &[])
        .unwrap_err();
    assert!(
        matches!(err, ModelError::PhaseLimitExceeded { limit: 64 }),
        "{err:?}"
    );
}

#[test]
fn infinite_loop_on_bsp_returns_phase_limit_exceeded() {
    let prog = BspFnProgram::new(
        |_pid, _local: &[Word]| (),
        |_pid, _s: &mut (), _ctx| Status::Active,
    );
    let machine = BspMachine::new(4, 2, 4).unwrap().with_max_steps(64);
    let err = machine.run(&prog, &[1, 2, 3, 4]).unwrap_err();
    assert!(
        matches!(err, ModelError::PhaseLimitExceeded { limit: 64 }),
        "{err:?}"
    );
}

#[test]
fn infinite_loop_on_gsm_returns_phase_limit_exceeded() {
    let prog = GsmFnProgram::new(2, |_pid| (), |_pid, _s: &mut (), _env| Status::Active);
    let err = GsmMachine::new(2, 2, 4)
        .with_max_phases(64)
        .run(&prog, &[])
        .unwrap_err();
    assert!(
        matches!(err, ModelError::PhaseLimitExceeded { limit: 64 }),
        "{err:?}"
    );
}

#[test]
fn fault_plan_phase_budget_tightens_the_machine_limit() {
    // A plan budget below the machine limit wins …
    let machine = QsmMachine::qsm(4)
        .with_max_phases(64)
        .with_faults(FaultPlan::new(1).with_phase_budget(8));
    let err = machine.run(&spinning_qsm(), &[]).unwrap_err();
    assert!(
        matches!(err, ModelError::PhaseLimitExceeded { limit: 8 }),
        "{err:?}"
    );

    // … and a looser plan budget never loosens the machine limit.
    let machine = QsmMachine::qsm(4)
        .with_max_phases(64)
        .with_faults(FaultPlan::new(1).with_phase_budget(1 << 19));
    let err = machine.run(&spinning_qsm(), &[]).unwrap_err();
    assert!(
        matches!(err, ModelError::PhaseLimitExceeded { limit: 64 }),
        "{err:?}"
    );
}
