//! BSP-specific properties: message conservation (every sent message is
//! delivered exactly once, to the right component, with payload intact)
//! and h-relation accounting, over randomly generated traffic patterns.

use proptest::prelude::*;

use parbounds_models::{BspFnProgram, BspMachine, Status, Superstep, Word};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random one-superstep traffic: every message arrives exactly once at
    /// its destination with its payload, and h is the true max of
    /// sent/received.
    #[test]
    fn messages_are_conserved(p in 1usize..12,
                              traffic in prop::collection::vec((0usize..12, -100i64..100), 0..60)) {
        let traffic: Vec<(usize, Word)> =
            traffic.into_iter().map(|(d, v)| (d % p.max(1), v)).collect();
        let traffic2 = traffic.clone();
        let prog = BspFnProgram::new(
            |_, _: &[Word]| Vec::<(usize, Word, Word)>::new(),
            move |pid, received: &mut Vec<(usize, Word, Word)>, ctx: &mut Superstep<'_>| {
                match ctx.step() {
                    0 => {
                        // Component 0 originates all traffic, tagged by index.
                        if pid == 0 {
                            for (i, &(dest, v)) in traffic2.iter().enumerate() {
                                ctx.send(dest, i as Word, v);
                            }
                        }
                        Status::Active
                    }
                    _ => {
                        received.extend(ctx.inbox().iter().map(|m| (m.src, m.tag, m.value)));
                        Status::Done
                    }
                }
            },
        );
        let m = BspMachine::new(p, 1, 1).unwrap();
        let res = m.run(&prog, &[]).unwrap();
        // Reassemble: every index appears exactly once at its destination.
        let mut seen = vec![false; traffic.len()];
        for (pid, st) in res.states.iter().enumerate() {
            for &(src, tag, value) in st {
                prop_assert_eq!(src, 0);
                let i = tag as usize;
                prop_assert!(!seen[i], "message {} delivered twice", i);
                seen[i] = true;
                prop_assert_eq!(traffic[i].0, pid, "wrong destination");
                prop_assert_eq!(traffic[i].1, value, "payload corrupted");
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "message lost");
        // h accounting: superstep 0's h = max(total sent by 0, max received).
        let mut recv_counts = vec![0u64; p];
        for &(d, _) in &traffic {
            recv_counts[d] += 1;
        }
        let h_expect = (traffic.len() as u64).max(recv_counts.iter().copied().max().unwrap_or(0)).max(1);
        prop_assert_eq!(res.ledger.phases()[0].m_rw, h_expect);
    }

    /// Superstep costs are at least L and exactly max(w, g·h, L).
    #[test]
    fn superstep_cost_formula(p in 1usize..8, g in 1u64..8, l_extra in 0u64..32,
                              fanout in 0usize..10) {
        let l = g + l_extra;
        let prog = BspFnProgram::new(
            |_, _: &[Word]| (),
            move |pid, _, ctx: &mut Superstep<'_>| {
                if ctx.step() == 0 && pid == 0 {
                    for i in 0..fanout {
                        ctx.send(i % p, 7, 7);
                    }
                    Status::Active
                } else {
                    Status::Done
                }
            },
        );
        let m = BspMachine::new(p, g, l).unwrap();
        let res = m.run(&prog, &[]).unwrap();
        for ph in res.ledger.phases() {
            prop_assert!(ph.cost >= l);
            prop_assert_eq!(ph.cost, ph.m_op.max(g * ph.m_rw).max(l));
        }
    }
}
