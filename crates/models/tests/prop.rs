//! Property-based tests of the machine invariants: cost-formula algebra,
//! ledger accounting, write-arbitration soundness, BSP partitioning and
//! the GSM strong-queuing law, on randomly generated programs.

use proptest::prelude::*;

use parbounds_models::{
    round_budget_bsp, round_budget_qsm, BspMachine, FnProgram, GsmFnProgram, GsmMachine, PhaseEnv,
    QsmMachine, Status, Word,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// QSM phase cost is monotone in all three arguments and respects the
    /// max-of-three form.
    #[test]
    fn qsm_cost_is_monotone_max(g in 1u64..64, m_op in 0u64..1000, m_rw in 0u64..1000,
                                kappa in 0u64..1000) {
        let m = QsmMachine::qsm(g);
        let c = m.phase_cost(m_op, m_rw, kappa);
        prop_assert!(c >= m_op);
        prop_assert!(c >= g * m_rw.max(1));
        prop_assert!(c >= kappa.max(1));
        prop_assert_eq!(c, m_op.max(g * m_rw.max(1)).max(kappa.max(1)));
        prop_assert!(m.phase_cost(m_op + 1, m_rw, kappa) >= c);
        prop_assert!(m.phase_cost(m_op, m_rw + 1, kappa) >= c);
        prop_assert!(m.phase_cost(m_op, m_rw, kappa + 1) >= c);
    }

    /// s-QSM dominates QSM pointwise (same g).
    #[test]
    fn sqsm_dominates_qsm(g in 1u64..64, m_op in 0u64..500, m_rw in 0u64..500,
                          kappa in 0u64..500) {
        prop_assert!(
            QsmMachine::sqsm(g).phase_cost(m_op, m_rw, kappa)
                >= QsmMachine::qsm(g).phase_cost(m_op, m_rw, kappa)
        );
    }

    /// GSM big-step accounting: μ·b with b = max(⌈m_rw/α⌉, ⌈κ/β⌉) ≥ 1.
    #[test]
    fn gsm_cost_formula(alpha in 1u64..16, beta in 1u64..16, m_rw in 0u64..500,
                        kappa in 0u64..500) {
        let m = GsmMachine::new(alpha, beta, 1);
        let b = m.big_steps(m_rw, kappa);
        prop_assert!(b >= 1);
        prop_assert!(b * alpha >= m_rw || b == kappa.div_ceil(beta).max(1));
        prop_assert_eq!(m.phase_cost(m_rw, kappa), m.mu() * b);
    }

    /// Round budgets scale linearly in slack and are antitone in p.
    #[test]
    fn round_budgets_scale(n in 1u64..1_000_000, p in 1u64..4096, g in 1u64..32,
                           l in 1u64..256) {
        let b1 = round_budget_qsm(n, p, g, 1);
        prop_assert_eq!(round_budget_qsm(n, p, g, 3), 3 * b1);
        if p > 1 {
            prop_assert!(round_budget_qsm(n, p, g, 1) <= round_budget_qsm(n, p - 1, g, 1));
        }
        prop_assert!(round_budget_bsp(n, p, g, l, 1) >= l);
    }

    /// Arbitrary-write arbitration always commits a value that some
    /// processor wrote, for any writer set and any seed.
    #[test]
    fn arbitration_picks_a_writer(num in 1usize..40, seed in any::<u64>()) {
        let prog = FnProgram::new(
            num,
            |_| (),
            |pid, _, env: &mut PhaseEnv<'_>| {
                env.write(5, 1000 + pid as Word);
                Status::Done
            },
        );
        let res = QsmMachine::qsm(2).with_seed(seed).run(&prog, &[]).unwrap();
        let v = res.memory.get(5);
        prop_assert!((1000..1000 + num as Word).contains(&v));
        prop_assert_eq!(res.ledger.phases()[0].kappa, num as u64);
    }

    /// The same program on the same seed is bit-identical (determinism),
    /// and on a different seed still costs the same (cost is seed-free).
    #[test]
    fn determinism_and_seed_free_costs(num in 2usize..20, s1 in any::<u64>(), s2 in any::<u64>()) {
        let mk = || FnProgram::new(
            num,
            |_| (),
            |pid, _, env: &mut PhaseEnv<'_>| {
                env.write(pid % 3, pid as Word);
                Status::Done
            },
        );
        let a = QsmMachine::qsm(3).with_seed(s1).run(&mk(), &[]).unwrap();
        let b = QsmMachine::qsm(3).with_seed(s1).run(&mk(), &[]).unwrap();
        let c = QsmMachine::qsm(3).with_seed(s2).run(&mk(), &[]).unwrap();
        prop_assert_eq!(a.memory.get(0), b.memory.get(0));
        prop_assert_eq!(a.time(), c.time());
    }

    /// BSP partition: uniform ceil/floor, order-preserving, covering.
    #[test]
    fn bsp_partition_properties(n in 0usize..500, p in 1usize..64) {
        let m = BspMachine::new(p, 1, 1).unwrap();
        let input: Vec<Word> = (0..n as Word).collect();
        let parts = m.partition(&input);
        prop_assert_eq!(parts.len(), p);
        prop_assert_eq!(parts.concat(), input.clone());
        let (lo, hi) = (n / p, n.div_ceil(p));
        for part in &parts {
            prop_assert!(part.len() == lo || part.len() == hi);
        }
    }

    /// GSM strong queuing: every written word arrives, regardless of
    /// contention pattern.
    #[test]
    fn strong_queuing_loses_nothing(writers in 1usize..30, cells in 1usize..5) {
        let prog = GsmFnProgram::new(
            writers,
            |_| (),
            move |pid, _, env: &mut parbounds_models::GsmEnv<'_>| {
                env.write(pid % cells, pid as Word);
                Status::Done
            },
        );
        let res = GsmMachine::new(1, 1, 1).run(&prog, &[]).unwrap();
        let total: usize = (0..cells).map(|c| res.memory.get(c).len()).sum();
        prop_assert_eq!(total, writers);
    }

    /// BSP superstep cost: max(w, g·h, L) with L as the floor.
    #[test]
    fn bsp_superstep_cost(g in 1u64..16, l_extra in 0u64..64, w in 0u64..500, h in 0u64..500) {
        let l = g + l_extra;
        let m = BspMachine::new(2, g, l).unwrap();
        let c = m.superstep_cost(w, h);
        prop_assert!(c >= l);
        prop_assert_eq!(c, w.max(g * h).max(l));
    }

    /// Total ledger time equals the sum of phase costs for arbitrary
    /// multi-phase programs.
    #[test]
    fn ledger_sums_phases(phases in 1usize..10, g in 1u64..8) {
        let prog = FnProgram::new(
            2,
            |_| (),
            move |pid, _, env: &mut PhaseEnv<'_>| {
                env.write(100 + env.phase() * 2 + pid, 1);
                if env.phase() + 1 < phases { Status::Active } else { Status::Done }
            },
        );
        let res = QsmMachine::qsm(g).run(&prog, &[]).unwrap();
        prop_assert_eq!(res.phases(), phases);
        let sum: u64 = res.ledger.phases().iter().map(|p| p.cost).sum();
        prop_assert_eq!(res.time(), sum);
        prop_assert_eq!(res.time(), phases as u64 * g); // 1 write/phase, no contention
    }
}
