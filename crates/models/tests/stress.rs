//! Differential stress tests: randomly generated bulk-synchronous programs
//! executed on the machines and checked against an independent sequential
//! reference interpreter. Write-contention is avoided *by construction*
//! (each processor owns a disjoint write range), which makes the semantics
//! fully deterministic and the comparison exact; the GSM variant allows
//! contention and checks the strong-queuing multiset law instead.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use parbounds_models::{
    FnProgram, GsmEnv, GsmFnProgram, GsmMachine, PhaseEnv, QsmMachine, Status, Word,
};

/// A random *oblivious* program script: per processor, per phase, a list of
/// reads (any address) and writes (own range only), with values derived
/// from phase/pid so the reference can recompute them.
#[derive(Clone)]
struct Script {
    procs: usize,
    phases: usize,
    /// `reads[pid][phase]` — addresses.
    reads: Vec<Vec<Vec<usize>>>,
    /// `writes[pid][phase]` — (addr, value).
    writes: Vec<Vec<Vec<(usize, Word)>>>,
}

fn gen_script(seed: u64, procs: usize, phases: usize, span: usize) -> Script {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let own = |pid: usize| span + pid * 4; // 4 private cells per proc
    let mut reads = vec![vec![Vec::new(); phases]; procs];
    let mut writes = vec![vec![Vec::new(); phases]; procs];
    for t in 0..phases {
        // Writes first (disjoint ranges per proc: no write-write races) …
        let mut written = std::collections::HashSet::new();
        for (pid, w) in writes.iter_mut().enumerate() {
            for _ in 0..rng.gen_range(0..3) {
                let addr = own(pid) + rng.gen_range(0..4);
                let value = (pid * 1000 + t * 10 + rng.gen_range(0..10)) as Word;
                // One write per cell per phase: duplicate writes would pit
                // the engine's seeded arbitration against the reference's
                // last-write-wins.
                if written.insert(addr) {
                    w[t].push((addr, value));
                }
            }
        }
        // … then reads, avoiding this phase's write set (the model forbids
        // reading and writing one cell in the same phase).
        for r in reads.iter_mut() {
            for _ in 0..rng.gen_range(0..3) {
                let addr = rng.gen_range(0..span + procs * 4);
                if !written.contains(&addr) {
                    r[t].push(addr);
                }
            }
        }
    }
    Script {
        procs,
        phases,
        reads,
        writes,
    }
}

/// Reference interpreter: phase-by-phase, reads see start-of-phase memory,
/// writes land at end of phase (no contention by construction). Returns
/// (final memory, per-pid delivered histories).
#[allow(clippy::needless_range_loop)] // pid indexes parallel script/delivered arrays
fn reference(script: &Script, input: &[Word], extent: usize) -> (Vec<Word>, Vec<Vec<Vec<Word>>>) {
    let mut mem = vec![0 as Word; extent];
    mem[..input.len()].copy_from_slice(input);
    let mut delivered = vec![Vec::new(); script.procs];
    for t in 0..script.phases {
        let snapshot = mem.clone();
        for pid in 0..script.procs {
            delivered[pid].push(
                script.reads[pid][t]
                    .iter()
                    .map(|&a| snapshot[a])
                    .collect::<Vec<_>>(),
            );
            for &(a, v) in &script.writes[pid][t] {
                mem[a] = v;
            }
        }
    }
    (mem, delivered)
}

fn run_script_on_qsm(
    machine: &QsmMachine,
    script: &Script,
    input: &[Word],
) -> (parbounds_models::RunResult, Vec<Vec<Vec<Word>>>) {
    use std::sync::Mutex;
    let observed: Mutex<Vec<Vec<Vec<Word>>>> = Mutex::new(vec![Vec::new(); script.procs]);
    let prog = FnProgram::new(
        script.procs,
        |_| (),
        |pid, _, env: &mut PhaseEnv<'_>| {
            let t = env.phase();
            if t > 0 {
                observed.lock().unwrap()[pid]
                    .push(env.delivered().iter().map(|&(_, v)| v).collect());
            }
            if t >= script.phases {
                return Status::Done;
            }
            for &a in &script.reads[pid][t] {
                env.read(a);
            }
            for &(a, v) in &script.writes[pid][t] {
                env.write(a, v);
            }
            Status::Active
        },
    );
    let run = machine.run(&prog, input).unwrap();
    (run, observed.into_inner().unwrap())
}

#[test]
fn qsm_matches_reference_interpreter_on_random_programs() {
    for seed in 0..25u64 {
        let span = 8;
        let script = gen_script(seed, 6, 5, span);
        let input: Vec<Word> = (0..span as Word).map(|i| 100 + i).collect();
        let extent = span + script.procs * 4;
        let (expect_mem, expect_delivered) = reference(&script, &input, extent);
        for machine in [QsmMachine::qsm(3), QsmMachine::sqsm(2), QsmMachine::qrqw()] {
            let (run, observed) = run_script_on_qsm(&machine, &script, &input);
            for (a, &v) in expect_mem.iter().enumerate() {
                assert_eq!(run.memory.get(a), v, "seed {seed}: cell {a}");
            }
            // Delivered histories match (the engine delivers one phase
            // later, so compare shifted).
            for pid in 0..script.procs {
                for t in 0..script.phases {
                    assert_eq!(
                        observed[pid][t], expect_delivered[pid][t],
                        "seed {seed} pid {pid} phase {t}"
                    );
                }
            }
        }
    }
}

#[test]
fn qsm_phase_costs_match_script_shape() {
    // Independent cost recomputation from the script: per phase,
    // m_rw = max over procs of max(|reads|, |writes|); κ = max per-cell
    // access count; cost = flavor formula. (No read/write conflicts occur
    // because write ranges are private.)
    for seed in 0..10u64 {
        let span = 8;
        let script = gen_script(seed ^ 0xabc, 5, 4, span);
        let input = vec![0; span];
        let g = 3;
        let machine = QsmMachine::qsm(g);
        let (run, _) = run_script_on_qsm(&machine, &script, &input);
        for t in 0..script.phases {
            let m_rw = (0..script.procs)
                .map(|p| script.reads[p][t].len().max(script.writes[p][t].len()) as u64)
                .max()
                .unwrap_or(0);
            let mut counts = std::collections::HashMap::new();
            for p in 0..script.procs {
                for &a in &script.reads[p][t] {
                    *counts.entry(a).or_insert(0u64) += 1;
                }
                for &(a, _) in &script.writes[p][t] {
                    *counts.entry(a).or_insert(0u64) += 1;
                }
            }
            let kappa = counts.values().copied().max().unwrap_or(1);
            // m_op: the engine auto-charges reads+writes per proc.
            let m_op = (0..script.procs)
                .map(|p| (script.reads[p][t].len() + script.writes[p][t].len()) as u64)
                .max()
                .unwrap_or(0);
            let expect = machine.phase_cost(m_op, m_rw, kappa);
            assert_eq!(run.ledger.phases()[t].cost, expect, "seed {seed} phase {t}");
        }
    }
}

#[test]
fn gsm_strong_queuing_matches_multiset_reference() {
    for seed in 0..20u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let procs = 6;
        let phases = 4;
        let cells = 5;
        // Random write-only scripts with contention allowed.
        let script: Vec<Vec<Vec<(usize, Word)>>> = (0..procs)
            .map(|pid| {
                (0..phases)
                    .map(|t| {
                        (0..rng.gen_range(0..3))
                            .map(|j| (rng.gen_range(0..cells), (pid * 100 + t * 10 + j) as Word))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let script2 = script.clone();
        let prog = GsmFnProgram::new(
            procs,
            |_| (),
            move |pid, _, env: &mut GsmEnv<'_>| {
                let t = env.phase();
                if t >= phases {
                    return Status::Done;
                }
                for &(a, v) in &script2[pid][t] {
                    env.write(a, v);
                }
                Status::Active
            },
        );
        let m = GsmMachine::new(2, 3, 1);
        let res = m.run(&prog, &[]).unwrap();
        // Strong queuing: every cell holds exactly the multiset of values
        // written to it, regardless of contention.
        for c in 0..cells {
            let mut got = res.memory.get(c).to_vec();
            got.sort_unstable();
            let mut expect: Vec<Word> = script
                .iter()
                .flat_map(|per_proc| per_proc.iter().flatten())
                .filter(|&&(a, _)| a == c)
                .map(|&(_, v)| v)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "seed {seed} cell {c}");
        }
    }
}
