//! Differential proof that the dense fast paths are the reference semantics.
//!
//! Every machine runs each program twice — once with [`Routing::Dense`]
//! (the default) and once with [`Routing::Reference`] (the original
//! map-based engines) — and the full run records must match bit for bit:
//! committed memory, per-phase [`parbounds_models::CostLedger`]s,
//! execution traces (including truncation metadata), and, under a seeded
//! [`FaultPlan`], the [`parbounds_models::FaultLog`]. Programs come from
//! the Section 8 algorithm families in `parbounds-algo` plus
//! property-generated random request schedules, so arbitration (RNG and
//! scripted), conflict errors, and stall/crash interleavings are all
//! pinned.

use proptest::prelude::*;

use parbounds_algo::broadcast::broadcast;
use parbounds_algo::bsp_algos::{bsp_broadcast, bsp_prefix_sums, bsp_reduce, bsp_sort_odd_even};
use parbounds_algo::gsm_algos::{gsm_parity, gsm_tree_reduce};
use parbounds_algo::lac::lac_dart;
use parbounds_algo::or_tree::or_write_tree;
use parbounds_algo::parity::parity_pattern_helper;
use parbounds_algo::prefix::prefix_in_rounds;
use parbounds_algo::reduce::tree_reduce;
use parbounds_algo::util::ReduceOp;
use parbounds_models::{
    BspMachine, FaultPlan, FnProgram, GsmMachine, Parallelism, QsmMachine, Routing, Status, Word,
};

fn bits(n: usize, stride: usize) -> Vec<Word> {
    (0..n).map(|i| Word::from(i % stride == 0)).collect()
}

/// Runs `f` on the dense and the reference variant of `machine` and asserts
/// the outcomes are identical (both the success records and the errors).
fn qsm_equiv<T>(
    machine: QsmMachine,
    label: &str,
    f: impl Fn(&QsmMachine) -> parbounds_models::Result<T>,
    run_of: impl Fn(&T) -> &parbounds_models::RunResult,
) {
    let dense = f(&machine.clone().with_routing(Routing::Dense));
    let reference = f(&machine.with_reference_routing());
    match (&dense, &reference) {
        (Ok(d), Ok(r)) => {
            let (d, r) = (run_of(d), run_of(r));
            assert_eq!(d.ledger, r.ledger, "{label}: ledger");
            assert_eq!(d.memory, r.memory, "{label}: memory");
            assert_eq!(d.faults, r.faults, "{label}: fault log");
            assert_eq!(d.trace, r.trace, "{label}: trace");
        }
        (Err(de), Err(re)) => {
            assert_eq!(format!("{de}"), format!("{re}"), "{label}: error");
        }
        _ => panic!("{label}: divergent outcomes (dense vs reference)"),
    }
}

/// Thread counts every parallel sweep exercises: 1 (a pool that must match
/// the poolless path), 2 and 4 (real sharding), 7 (odd, uneven shards —
/// and oversubscription once a machine has fewer processors).
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 7];

/// Runs `f` on the sequential dense machine and on the parallel dense path
/// at every [`THREAD_SWEEP`] count, asserting full run-record equality
/// (ledger, memory, fault log, trace — or identical errors).
fn qsm_par_equiv<T>(
    machine: QsmMachine,
    label: &str,
    f: impl Fn(&QsmMachine) -> parbounds_models::Result<T>,
    run_of: impl Fn(&T) -> &parbounds_models::RunResult,
) {
    let sequential = f(&machine);
    for threads in THREAD_SWEEP {
        let par = f(&machine
            .clone()
            .with_parallelism(Parallelism::Fixed(threads)));
        match (&sequential, &par) {
            (Ok(s), Ok(p)) => {
                let (s, p) = (run_of(s), run_of(p));
                assert_eq!(s.ledger, p.ledger, "{label} threads={threads}: ledger");
                assert_eq!(s.memory, p.memory, "{label} threads={threads}: memory");
                // Injected faults must match bit for bit; host-execution
                // notices intentionally differ (a requested-parallel run
                // records its sequential fallback, the baseline does not).
                assert_eq!(
                    s.faults.as_ref().map(|f| f.sans_notices()),
                    p.faults.as_ref().map(|f| f.sans_notices()),
                    "{label} threads={threads}: fault log"
                );
                assert_eq!(s.trace, p.trace, "{label} threads={threads}: trace");
            }
            (Err(se), Err(pe)) => {
                assert_eq!(
                    format!("{se}"),
                    format!("{pe}"),
                    "{label} threads={threads}: error"
                );
            }
            _ => panic!("{label} threads={threads}: divergent outcomes (sequential vs parallel)"),
        }
    }
}

#[test]
fn qsm_families_parallel_matches_sequential() {
    for flavor in [
        QsmMachine::qsm(3),
        QsmMachine::sqsm(2),
        QsmMachine::qsm_unit_cr(3),
    ] {
        for n in [1usize, 9, 64] {
            let input = bits(n, 3);
            qsm_par_equiv(
                flavor.clone().with_tracing(),
                &format!("par or_write_tree n={n}"),
                move |m| or_write_tree(m, &input, 2),
                |o| &o.run,
            );
        }
    }
    for (n, p) in [(8usize, 2usize), (31, 7), (64, 7)] {
        let input: Vec<Word> = (0..n as Word).collect();
        qsm_par_equiv(
            QsmMachine::qsm(2).with_tracing(),
            &format!("par prefix n={n} p={p}"),
            move |m| prefix_in_rounds(m, &input, p, ReduceOp::Sum),
            |o| &o.run,
        );
    }
    // Dart throwing: the parallel merge must feed the arbitration RNG the
    // exact request order the sequential loop would.
    for n in [8usize, 32] {
        let input: Vec<Word> = (0..n).map(|i| Word::from(i % 3 != 0)).collect();
        qsm_par_equiv(
            QsmMachine::qsm(2),
            &format!("par lac_dart n={n}"),
            move |m| lac_dart(m, &input, 2 * n, 0xfeed),
            |o| &o.run,
        );
    }
}

#[test]
fn auto_parallelism_matches_sequential() {
    // `Parallelism::Auto` resolves through PARBOUNDS_THREADS and then host
    // parallelism — the knob ci.sh sweeps (=1 and =4). Whatever it
    // resolves to, the run record must not move.
    for n in [9usize, 64] {
        let input = bits(n, 3);
        let machine = QsmMachine::qsm(3).with_tracing();
        let sequential = or_write_tree(&machine, &input, 2).unwrap();
        let auto = or_write_tree(
            &machine.clone().with_parallelism(Parallelism::Auto),
            &input,
            2,
        )
        .unwrap();
        assert_eq!(sequential.run.ledger, auto.run.ledger, "auto n={n}: ledger");
        assert_eq!(sequential.run.memory, auto.run.memory, "auto n={n}: memory");
        assert_eq!(sequential.run.trace, auto.run.trace, "auto n={n}: trace");
        assert_eq!(sequential.value, auto.value, "auto n={n}: value");
    }
    let bsp_input: Vec<Word> = (0..40).collect();
    let machine = BspMachine::new(7, 2, 8).unwrap();
    let sequential = bsp_reduce(&machine, &bsp_input, 2, ReduceOp::Sum).unwrap();
    let auto = bsp_reduce(
        &machine.clone().with_parallelism(Parallelism::Auto),
        &bsp_input,
        2,
        ReduceOp::Sum,
    )
    .unwrap();
    assert_eq!(sequential.ledger, auto.ledger, "auto bsp: ledger");
    assert_eq!(sequential.value, auto.value, "auto bsp: value");
}

#[test]
fn qsm_fault_plans_parallel_falls_back_identically() {
    // Fault-plan runs take the sequential path even when parallelism is
    // requested; the whole record (including the FaultLog) must not move.
    let input = bits(64, 2);
    for plan in [
        FaultPlan::new(11).with_stall(0, 1).with_stall(3, 2),
        FaultPlan::new(13).with_phase_budget(2),
    ] {
        let input = input.clone();
        qsm_par_equiv(
            QsmMachine::qsm(3).with_faults(plan).with_tracing(),
            "par or_write_tree under faults",
            move |m| or_write_tree(m, &input, 2),
            |o| &o.run,
        );
    }
}

/// Regression test for the PR 5 edge case where a fault-plan run that
/// requests intra-phase parallelism silently fell back to sequential
/// execution: the fallback must be bit-identical to `Fixed(1)` (same
/// ledger, memory, trace and injected faults), and the run must now say so
/// with a one-line [`parbounds_models::FaultLog`] notice instead of
/// staying silent.
#[test]
fn qsm_fault_fallback_is_noted_and_identical_to_one_thread() {
    let input = bits(64, 2);
    let plan = FaultPlan::new(11).with_stall(0, 1).with_stall(3, 2);
    let machine = QsmMachine::qsm(3).with_faults(plan).with_tracing();

    let one = or_write_tree(
        &machine.clone().with_parallelism(Parallelism::Fixed(1)),
        &input,
        2,
    )
    .unwrap();
    let four = or_write_tree(&machine.with_parallelism(Parallelism::Fixed(4)), &input, 2).unwrap();

    // Bit-identical execution record.
    assert_eq!(one.run.ledger, four.run.ledger);
    assert_eq!(one.run.memory, four.run.memory);
    assert_eq!(one.run.trace, four.run.trace);
    let (one_log, four_log) = (one.run.faults.unwrap(), four.run.faults.unwrap());
    assert_eq!(one_log.sans_notices(), four_log.sans_notices());

    // Fixed(1) requests no host parallelism, so nothing to disclose; the
    // Fixed(4) fallback must announce itself in exactly one notice.
    assert!(one_log.notices.is_empty(), "{:?}", one_log.notices);
    assert_eq!(four_log.notices.len(), 1, "{:?}", four_log.notices);
    assert!(
        four_log.notices[0].contains("4-way intra-phase parallelism disabled"),
        "{:?}",
        four_log.notices
    );
    assert!(four_log.notices[0].contains("bit-identical to Fixed(1)"));
}

#[test]
fn gsm_trees_parallel_match_sequential() {
    for (alpha, beta, gamma) in [(1u64, 1u64, 1u64), (4, 2, 8)] {
        for n in [1usize, 16, 70] {
            let input = bits(n, 2);
            let machine = GsmMachine::new(alpha, beta, gamma).with_tracing();
            let seq = gsm_tree_reduce(&machine, &input, 3, ReduceOp::Sum).unwrap();
            for threads in THREAD_SWEEP {
                let par = machine
                    .clone()
                    .with_parallelism(Parallelism::Fixed(threads));
                let got = gsm_tree_reduce(&par, &input, 3, ReduceOp::Sum).unwrap();
                assert_eq!(got.value, seq.value, "GSM value n={n} threads={threads}");
                assert_eq!(got.run.ledger, seq.run.ledger, "GSM ledger");
                assert_eq!(got.run.memory, seq.run.memory, "GSM memory");
                assert_eq!(got.run.trace, seq.run.trace, "GSM trace");
                let gp = gsm_parity(&par, &input).unwrap();
                let gs = gsm_parity(&machine, &input).unwrap();
                assert_eq!(gp.value, gs.value);
                assert_eq!(gp.run.ledger, gs.run.ledger);
            }
        }
    }
}

#[test]
fn bsp_families_parallel_match_sequential() {
    for p in [1usize, 4, 7, 13] {
        let machine = BspMachine::new(p, 2, 8).unwrap().with_tracing();
        let input: Vec<Word> = (0..23).collect();
        let seq = bsp_reduce(&machine, &input, 2, ReduceOp::Sum).unwrap();
        let seq_sort = bsp_sort_odd_even(&machine, &input).unwrap();
        for threads in THREAD_SWEEP {
            let par = machine
                .clone()
                .with_parallelism(Parallelism::Fixed(threads));
            let got = bsp_reduce(&par, &input, 2, ReduceOp::Sum).unwrap();
            assert_eq!(got.value, seq.value, "bsp_reduce p={p} threads={threads}");
            assert_eq!(got.ledger, seq.ledger);
            assert_eq!(got.trace, seq.trace);
            let got = bsp_sort_odd_even(&par, &input).unwrap();
            assert_eq!(got.concat(), seq_sort.concat(), "bsp_sort p={p}");
            assert_eq!(got.ledger, seq_sort.ledger);
        }
    }
}

#[test]
fn bsp_bad_destination_parallel_matches_sequential_error() {
    let prog = parbounds_models::BspFnProgram::new(
        |_, _: &[Word]| (),
        |pid, _, ctx: &mut parbounds_models::Superstep<'_>| {
            if pid == 2 {
                ctx.send(99, 0, 0);
            }
            Status::Done
        },
    );
    let machine = BspMachine::new(4, 1, 1).unwrap();
    let seq = machine.run(&prog, &[]).unwrap_err();
    for threads in THREAD_SWEEP {
        let par = machine
            .clone()
            .with_parallelism(Parallelism::Fixed(threads));
        let got = par.run(&prog, &[]).unwrap_err();
        assert_eq!(format!("{got}"), format!("{seq}"), "threads={threads}");
    }
}

#[test]
fn or_write_tree_dense_matches_reference() {
    for flavor in [
        QsmMachine::qsm(3),
        QsmMachine::sqsm(3),
        QsmMachine::qsm_unit_cr(3),
    ] {
        for n in [1usize, 2, 9, 33, 128] {
            for k in [2usize, 4] {
                let input = bits(n, 3);
                qsm_equiv(
                    flavor.clone().with_tracing(),
                    &format!("or_write_tree n={n} k={k}"),
                    move |m| or_write_tree(m, &input, k),
                    |o| &o.run,
                );
            }
        }
    }
}

#[test]
fn read_trees_dense_matches_reference() {
    for op in [ReduceOp::Sum, ReduceOp::Or, ReduceOp::Xor, ReduceOp::Max] {
        for n in [1usize, 5, 27, 100] {
            let input: Vec<Word> = (0..n as Word).map(|x| 2 * x - 9).collect();
            qsm_equiv(
                QsmMachine::sqsm(2).with_tracing(),
                &format!("tree_reduce {op:?} n={n}"),
                move |m| tree_reduce(m, &input, 3, op),
                |o| &o.run,
            );
        }
    }
}

#[test]
fn prefix_and_broadcast_dense_match_reference() {
    for n in [1usize, 8, 31, 64] {
        let input: Vec<Word> = (0..n as Word).collect();
        for p in [1usize, 2, 7] {
            if p > n {
                continue;
            }
            let input = input.clone();
            qsm_equiv(
                QsmMachine::qsm(2).with_tracing(),
                &format!("prefix n={n} p={p}"),
                move |m| prefix_in_rounds(m, &input, p, ReduceOp::Sum),
                |o| &o.run,
            );
        }
        qsm_equiv(
            QsmMachine::sqsm(4).with_tracing(),
            &format!("broadcast n={n}"),
            move |m| broadcast(m, 77, n, 4),
            |o| &o.run,
        );
    }
}

#[test]
fn parity_helper_dense_matches_reference() {
    for n in [4usize, 16, 64] {
        let input = bits(n, 2);
        qsm_equiv(
            QsmMachine::qsm(8).with_tracing(),
            &format!("parity_pattern_helper n={n}"),
            move |m| parity_pattern_helper(m, &input, 4),
            |o| &o.run,
        );
    }
}

#[test]
fn lac_dart_dense_matches_reference() {
    // Dart throwing stresses multi-writer arbitration: many processors
    // contend for the same destination cells, so the machine RNG stream is
    // consumed heavily and any reordering in the fast path would surface.
    for n in [8usize, 32] {
        let input: Vec<Word> = (0..n).map(|i| Word::from(i % 3 != 0)).collect();
        for seed in [7u64, 0xfeed] {
            let input = input.clone();
            qsm_equiv(
                QsmMachine::qsm(2),
                &format!("lac_dart n={n} seed={seed}"),
                move |m| lac_dart(m, &input, 2 * n, seed),
                |o| &o.run,
            );
        }
    }
}

#[test]
fn qsm_fault_plans_dense_matches_reference() {
    // Stalls perturb delivery timing; the scripted winner policy and the
    // injected phase budget must be consumed identically on both paths.
    let input = bits(64, 2);
    for plan in [
        FaultPlan::new(11).with_stall(0, 1).with_stall(3, 2),
        FaultPlan::new(12).with_crash(2, 3),
        FaultPlan::new(13).with_phase_budget(2),
    ] {
        let input = input.clone();
        qsm_equiv(
            QsmMachine::qsm(3).with_faults(plan).with_tracing(),
            "or_write_tree under faults",
            move |m| or_write_tree(m, &input, 2),
            |o| &o.run,
        );
    }
}

#[test]
fn gsm_trees_dense_match_reference() {
    for (alpha, beta, gamma) in [(1u64, 1u64, 1u64), (4, 2, 8), (2, 8, 4)] {
        for n in [1usize, 16, 70] {
            let input = bits(n, 2);
            let machine = GsmMachine::new(alpha, beta, gamma);
            let dense = gsm_tree_reduce(&machine.clone().with_tracing(), &input, 3, ReduceOp::Sum);
            let reference = gsm_tree_reduce(
                &machine.clone().with_tracing().with_reference_routing(),
                &input,
                3,
                ReduceOp::Sum,
            );
            let (d, r) = (dense.unwrap(), reference.unwrap());
            assert_eq!(d.value, r.value, "GSM value α={alpha} β={beta} n={n}");
            assert_eq!(d.run.ledger, r.run.ledger, "GSM ledger");
            assert_eq!(d.run.memory, r.run.memory, "GSM memory");
            assert_eq!(d.run.trace, r.run.trace, "GSM trace");
            assert_eq!(d.run.faults, r.run.faults, "GSM faults");
            let d = gsm_parity(&machine, &input).unwrap();
            let r = gsm_parity(&machine.clone().with_reference_routing(), &input).unwrap();
            assert_eq!(d.value, r.value);
            assert_eq!(d.run.ledger, r.run.ledger);
        }
    }
}

#[test]
fn bsp_families_pooled_match_reference() {
    for p in [1usize, 4, 7] {
        let machine = BspMachine::new(p, 2, 8).unwrap();
        let input: Vec<Word> = (0..23).collect();

        let d = bsp_reduce(&machine.clone().with_tracing(), &input, 2, ReduceOp::Sum).unwrap();
        let r = bsp_reduce(
            &machine.clone().with_tracing().with_reference_routing(),
            &input,
            2,
            ReduceOp::Sum,
        )
        .unwrap();
        assert_eq!(d.value, r.value, "bsp_reduce p={p}");
        assert_eq!(d.ledger, r.ledger);
        assert_eq!(d.trace, r.trace);

        let d = bsp_prefix_sums(&machine, &input, 2).unwrap();
        let r = bsp_prefix_sums(&machine.clone().with_reference_routing(), &input, 2).unwrap();
        assert_eq!(d.concat(), r.concat(), "bsp_prefix p={p}");
        assert_eq!(d.ledger, r.ledger);

        let input: Vec<Word> = (0..17).rev().collect();
        let d = bsp_sort_odd_even(&machine, &input).unwrap();
        let r = bsp_sort_odd_even(&machine.clone().with_reference_routing(), &input).unwrap();
        assert_eq!(d.concat(), r.concat(), "bsp_sort p={p}");
        assert_eq!(d.ledger, r.ledger);

        let d = bsp_broadcast(&machine, 99).unwrap();
        let r = bsp_broadcast(&machine.clone().with_reference_routing(), 99).unwrap();
        assert_eq!(d, r, "bsp_broadcast p={p}");
    }
}

#[test]
fn bsp_fault_plans_pooled_match_reference() {
    let machine = BspMachine::new(6, 2, 4).unwrap();
    let input: Vec<Word> = (0..30).collect();
    for plan in [
        FaultPlan::new(21).with_drop_prob(0.2),
        FaultPlan::new(22).with_dup_prob(0.3),
        FaultPlan::new(23).with_stall(1, 0).with_stall(4, 1),
    ] {
        let d = bsp_reduce(
            &machine.clone().with_faults(plan.clone()),
            &input,
            2,
            ReduceOp::Sum,
        );
        let r = bsp_reduce(
            &machine.clone().with_faults(plan).with_reference_routing(),
            &input,
            2,
            ReduceOp::Sum,
        );
        match (&d, &r) {
            (Ok(d), Ok(r)) => {
                assert_eq!(d.value, r.value);
                assert_eq!(d.ledger, r.ledger);
            }
            (Err(de), Err(re)) => assert_eq!(format!("{de}"), format!("{re}")),
            _ => panic!("divergent BSP fault outcomes"),
        }
    }
}

/// A data-driven random schedule: request descriptors `(pid, phase, addr,
/// write)` are replayed verbatim, so a generated schedule can contain
/// arbitrary contention — including same-phase read/write conflicts, whose
/// error both paths must report identically.
fn random_schedule(
    n_procs: usize,
    n_phases: usize,
    reqs: Vec<(usize, usize, usize, bool)>,
) -> impl parbounds_models::Program<Proc = Word> {
    FnProgram::new(
        n_procs,
        |_pid| 0 as Word,
        move |pid, acc, env| {
            let t = env.phase();
            for &(rp, rt, addr, write) in &reqs {
                if rp % n_procs == pid && rt % n_phases == t {
                    if write {
                        env.write(addr, (pid + t) as Word);
                    } else {
                        env.read(addr);
                    }
                }
            }
            *acc += env.delivered().iter().map(|&(_, v)| v).sum::<Word>();
            if t + 1 >= n_phases {
                Status::Done
            } else {
                Status::Active
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random request schedules: dense and reference paths agree on the
    /// full run record — or fail with the same error.
    #[test]
    fn random_schedules_dense_matches_reference(
        n_procs in 1usize..9,
        n_phases in 1usize..5,
        g in 1u64..6,
        reqs in proptest::collection::vec(
            (0usize..16, 0usize..4, 0usize..24, any::<bool>()), 0..48),
    ) {
        let prog = random_schedule(n_procs, n_phases, reqs);
        let input: Vec<Word> = (0..8).collect();
        for machine in [
            QsmMachine::qsm(g).with_tracing(),
            QsmMachine::sqsm(g),
            QsmMachine::qsm_unit_cr(g).with_trace_cap(2).with_tracing(),
        ] {
            let dense = machine.clone().with_routing(Routing::Dense).run(&prog, &input);
            let reference = machine.with_reference_routing().run(&prog, &input);
            match (&dense, &reference) {
                (Ok(d), Ok(r)) => {
                    prop_assert_eq!(&d.ledger, &r.ledger);
                    prop_assert_eq!(&d.memory, &r.memory);
                    prop_assert_eq!(&d.trace, &r.trace);
                }
                (Err(de), Err(re)) => {
                    prop_assert_eq!(format!("{de}"), format!("{re}"));
                }
                _ => prop_assert!(false, "divergent outcomes"),
            }
        }
    }

    /// Random request schedules at a random thread count in 1..=8 (with
    /// n_procs < 9, this includes oversubscription): the parallel dense
    /// path's full observable state — memory, ledger, fault log (always
    /// `None` here), trace when enabled — equals the single-threaded dense
    /// path, and errors match message for message.
    #[test]
    fn random_schedules_parallel_matches_sequential(
        n_procs in 1usize..9,
        n_phases in 1usize..5,
        g in 1u64..6,
        threads in 1usize..=8,
        reqs in proptest::collection::vec(
            (0usize..16, 0usize..4, 0usize..24, any::<bool>()), 0..48),
    ) {
        let prog = random_schedule(n_procs, n_phases, reqs);
        let input: Vec<Word> = (0..8).collect();
        for machine in [
            QsmMachine::qsm(g).with_tracing(),
            QsmMachine::sqsm(g),
            QsmMachine::qsm_unit_cr(g).with_trace_cap(2).with_tracing(),
        ] {
            let sequential = machine.clone().run(&prog, &input);
            let parallel = machine
                .with_parallelism(Parallelism::Fixed(threads))
                .run(&prog, &input);
            match (&sequential, &parallel) {
                (Ok(s), Ok(p)) => {
                    prop_assert_eq!(&s.ledger, &p.ledger);
                    prop_assert_eq!(&s.memory, &p.memory);
                    prop_assert_eq!(&s.faults, &p.faults);
                    prop_assert_eq!(&s.trace, &p.trace);
                }
                (Err(se), Err(pe)) => {
                    prop_assert_eq!(format!("{se}"), format!("{pe}"));
                }
                _ => prop_assert!(false, "divergent outcomes (threads={})", threads),
            }
        }
    }
}
