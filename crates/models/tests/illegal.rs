//! Failure injection: programs that violate the model rules must be
//! rejected with the right error — never silently reinterpreted — on every
//! engine. The paper's bounds quantify over *legal* programs, so the
//! simulators' rejection behaviour is part of their correctness contract.

use parbounds_models::{
    BspFnProgram, BspMachine, FnProgram, GsmEnv, GsmFnProgram, GsmMachine, ModelError, PhaseEnv,
    QsmMachine, Status, Superstep, Word,
};

#[test]
fn qsm_rejects_read_write_conflicts_in_every_flavor() {
    let mk = || {
        FnProgram::new(
            2,
            |_| (),
            |pid, _, env: &mut PhaseEnv<'_>| {
                if pid == 0 {
                    env.read(42);
                } else {
                    env.write(42, 1);
                }
                Status::Done
            },
        )
    };
    for machine in [
        QsmMachine::qsm(2),
        QsmMachine::sqsm(2),
        QsmMachine::qrqw(),
        QsmMachine::qsm_unit_cr(2),
        QsmMachine::qsm_gd(8, 3),
    ] {
        let err = machine.run(&mk(), &[]).unwrap_err();
        assert!(
            matches!(err, ModelError::ReadWriteConflict { addr: 42, phase: 0 }),
            "{err}"
        );
    }
}

#[test]
fn same_processor_self_conflict_is_also_rejected() {
    // Even a single processor may not read and write one cell in a phase.
    let prog = FnProgram::new(
        1,
        |_| (),
        |_, _, env: &mut PhaseEnv<'_>| {
            env.read(7);
            env.write(7, 1);
            Status::Done
        },
    );
    assert!(matches!(
        QsmMachine::qsm(1).run(&prog, &[]),
        Err(ModelError::ReadWriteConflict { addr: 7, .. })
    ));
}

#[test]
fn conflicts_in_later_phases_report_the_phase() {
    let prog = FnProgram::new(
        2,
        |_| (),
        |pid, _, env: &mut PhaseEnv<'_>| match env.phase() {
            0 => Status::Active,
            1 => Status::Active,
            _ => {
                if pid == 0 {
                    env.read(5);
                } else {
                    env.write(5, 9);
                }
                Status::Done
            }
        },
    );
    assert!(matches!(
        QsmMachine::qsm(1).run(&prog, &[]),
        Err(ModelError::ReadWriteConflict { addr: 5, phase: 2 })
    ));
}

#[test]
fn gsm_rejects_conflicts_and_bsp_rejects_bad_destinations() {
    let gsm_prog = GsmFnProgram::new(
        2,
        |_| (),
        |pid, _, env: &mut GsmEnv<'_>| {
            if pid == 0 {
                env.read(3);
            } else {
                env.write(3, 1);
            }
            Status::Done
        },
    );
    assert!(matches!(
        GsmMachine::new(1, 1, 1).run(&gsm_prog, &[]),
        Err(ModelError::ReadWriteConflict { addr: 3, .. })
    ));

    let bsp_prog = BspFnProgram::new(
        |_, _: &[Word]| (),
        |_, _, ctx: &mut Superstep<'_>| {
            ctx.send(1_000_000, 0, 0);
            Status::Done
        },
    );
    assert!(matches!(
        BspMachine::new(4, 1, 2).unwrap().run(&bsp_prog, &[]),
        Err(ModelError::BadProcessor {
            pid: 1_000_000,
            num_procs: 4
        })
    ));
}

#[test]
fn runaway_programs_hit_phase_limits_everywhere() {
    let qsm = FnProgram::new(1, |_| (), |_, _, _: &mut PhaseEnv<'_>| Status::Active);
    assert!(matches!(
        QsmMachine::qsm(1).with_max_phases(7).run(&qsm, &[]),
        Err(ModelError::PhaseLimitExceeded { limit: 7 })
    ));
    let gsm = GsmFnProgram::new(1, |_| (), |_, _, _: &mut GsmEnv<'_>| Status::Active);
    assert!(matches!(
        GsmMachine::new(1, 1, 1).with_max_phases(7).run(&gsm, &[]),
        Err(ModelError::PhaseLimitExceeded { limit: 7 })
    ));
    let bsp = BspFnProgram::new(
        |_, _: &[Word]| (),
        |_, _, _: &mut Superstep<'_>| Status::Active,
    );
    assert!(matches!(
        BspMachine::new(2, 1, 1)
            .unwrap()
            .with_max_steps(7)
            .run(&bsp, &[]),
        Err(ModelError::PhaseLimitExceeded { limit: 7 })
    ));
}

#[test]
fn memory_limit_is_enforced() {
    let prog = FnProgram::new(
        1,
        |_| (),
        |_, _, env: &mut PhaseEnv<'_>| {
            env.write(1 << 20, 1);
            Status::Done
        },
    );
    let err = QsmMachine::qsm(1)
        .with_mem_limit(1 << 10)
        .run(&prog, &[])
        .unwrap_err();
    assert!(matches!(err, ModelError::MemoryLimitExceeded { .. }));
}

#[test]
fn bad_configs_are_rejected_up_front() {
    assert!(matches!(
        BspMachine::new(0, 1, 1),
        Err(ModelError::BadConfig(_))
    ));
    assert!(matches!(
        BspMachine::new(4, 8, 2),
        Err(ModelError::BadConfig(_))
    )); // L < g
    let empty = FnProgram::new(0, |_| (), |_, _, _: &mut PhaseEnv<'_>| Status::Done);
    assert!(matches!(
        QsmMachine::qsm(1).run(&empty, &[]),
        Err(ModelError::BadConfig(_))
    ));
    let empty_gsm = GsmFnProgram::new(0, |_| (), |_, _, _: &mut GsmEnv<'_>| Status::Done);
    assert!(matches!(
        GsmMachine::new(1, 1, 1).run(&empty_gsm, &[]),
        Err(ModelError::BadConfig(_))
    ));
}

#[test]
fn errors_do_not_corrupt_the_machine_value() {
    // A machine is a value; a failed run must not poison later runs.
    let machine = QsmMachine::qsm(2);
    let bad = FnProgram::new(
        2,
        |_| (),
        |pid, _, env: &mut PhaseEnv<'_>| {
            if pid == 0 {
                env.read(1);
            } else {
                env.write(1, 1);
            }
            Status::Done
        },
    );
    assert!(machine.run(&bad, &[]).is_err());
    let good = FnProgram::new(
        1,
        |_| (),
        |_, _, env: &mut PhaseEnv<'_>| {
            env.write(0, 5);
            Status::Done
        },
    );
    let res = machine.run(&good, &[]).unwrap();
    assert_eq!(res.memory.get(0), 5);
}
