//! Property-based tests of algorithm correctness against sequential
//! oracles, on random inputs, sizes, fan-ins and machine parameters.

use proptest::prelude::*;

use parbounds_algo::util::ReduceOp;
use parbounds_algo::{
    balance, bsp_algos, lac, list_rank, or_tree, padded_sort, parity, prefix, reduce, rounds,
    workloads,
};
use parbounds_models::{BspMachine, QsmMachine, Word};

fn arb_bits(max_n: usize) -> impl Strategy<Value = Vec<Word>> {
    prop::collection::vec(0i64..=1, 1..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every parity implementation equals the oracle, on every machine.
    #[test]
    fn parity_algorithms_agree_with_oracle(bits in arb_bits(300), k in 2usize..6, g in 1u64..16) {
        let expected = bits.iter().sum::<Word>() % 2;
        let qsm = QsmMachine::qsm(g);
        prop_assert_eq!(reduce::parity_read_tree(&qsm, &bits, k)?.value, expected);
        prop_assert_eq!(parity::parity_pattern_helper(&qsm, &bits, k.min(4))?.value, expected);
        let sqsm = QsmMachine::sqsm(g);
        prop_assert_eq!(reduce::parity_read_tree(&sqsm, &bits, 2)?.value, expected);
    }

    /// OR trees equal the oracle for both write- and read-combining.
    #[test]
    fn or_algorithms_agree_with_oracle(bits in arb_bits(300), k in 2usize..9, g in 1u64..16) {
        let expected = Word::from(bits.iter().any(|&b| b != 0));
        let m = QsmMachine::qsm(g);
        prop_assert_eq!(or_tree::or_write_tree(&m, &bits, k)?.value, expected);
        prop_assert_eq!(reduce::or_read_tree(&m, &bits, k)?.value, expected);
    }

    /// Prefix sums equal the sequential scan for every op and p.
    #[test]
    fn prefix_equals_sequential_scan(input in prop::collection::vec(-50i64..50, 1..200),
                                     p_sel in 0usize..5) {
        let n = input.len();
        let p = [1, 2, 3, n.div_ceil(2), n][p_sel].clamp(1, n);
        let m = QsmMachine::qsm(2);
        let out = prefix::prefix_in_rounds(&m, &input, p, ReduceOp::Sum)?;
        let mut acc = 0;
        let expect: Vec<Word> = input.iter().map(|&v| { acc += v; acc }).collect();
        prop_assert_eq!(out.values, expect);
    }

    /// Dart LAC places every item exactly once, for arbitrary item layouts
    /// and seeds, on QSM and s-QSM.
    #[test]
    fn lac_dart_is_exact(n in 8usize..300, frac in 2usize..8, seed in any::<u64>()) {
        let h = (n / frac).max(1);
        let items = workloads::sparse_items(n, h, seed);
        for m in [QsmMachine::qsm(2), QsmMachine::sqsm(4)] {
            let out = lac::lac_dart(&m, &items, h, seed ^ 0xfeed)?;
            prop_assert!(out.verify(&items));
        }
    }

    /// Prefix compaction is exact, ordered, and rounds-respecting.
    #[test]
    fn lac_prefix_is_exact_and_in_rounds(n in 8usize..300, h_frac in 2usize..6,
                                         p_shift in 0usize..4, seed in any::<u64>()) {
        let h = (n / h_frac).max(1);
        let items = workloads::sparse_items(n, h, seed);
        let p = (n >> p_shift).max(1);
        let g = 2;
        let m = QsmMachine::qsm(g);
        let out = lac::lac_prefix(&m, &items, p)?;
        prop_assert!(out.verify(&items));
        let budget = parbounds_models::round_budget_qsm(n as u64, p as u64, g, 2);
        prop_assert!(out.run.ledger.is_round_respecting(budget));
    }

    /// Load balancing delivers every object with load ≤ ⌈h/n⌉.
    #[test]
    fn load_balance_is_exact(counts in prop::collection::vec(0i64..6, 2..60),
                             p_sel in 0usize..3) {
        let n = counts.len();
        let p = [1, 2, n][p_sel].clamp(1, n);
        let m = QsmMachine::qsm(2);
        let out = balance::load_balance(&m, &counts, p)?;
        prop_assert!(out.verify(&counts));
    }

    /// Padded sort returns a sorted permutation (NULL-padded) of any
    /// uniform input.
    #[test]
    fn padded_sort_sorts(n in 4usize..300, seed in any::<u64>()) {
        let values = workloads::uniform_values(n, seed);
        let m = QsmMachine::qsm(2);
        let out = padded_sort::padded_sort_default(&m, &values, seed ^ 7)?;
        prop_assert!(out.verify(&values));
    }

    /// List ranking equals the sequential suffix fold for Sum and Xor.
    #[test]
    fn list_rank_equals_sequential(n in 1usize..150, seed in any::<u64>()) {
        let (succ, head) = workloads::random_list(n, seed);
        let weights: Vec<Word> = (0..n as Word).map(|i| (i * 7 + 3) % 11).collect();
        let m = QsmMachine::qsm(2);
        let out = list_rank::list_rank(&m, &succ, &weights, ReduceOp::Sum)?;
        // Walk the list to build the expected suffix sums.
        let mut order = vec![head];
        while succ[*order.last().unwrap()] != n as Word {
            order.push(succ[*order.last().unwrap()] as usize);
        }
        let mut expect = vec![0; n];
        let mut acc = 0;
        for &i in order.iter().rev() {
            acc += weights[i];
            expect[i] = acc;
        }
        prop_assert_eq!(out.values, expect);
    }

    /// BSP reductions equal the fold for every op, p, and ragged n.
    #[test]
    fn bsp_reduce_equals_fold(input in prop::collection::vec(-100i64..100, 1..300),
                              p in 1usize..17, k in 2usize..6) {
        let m = BspMachine::new(p, 2, 8).unwrap();
        for op in [ReduceOp::Sum, ReduceOp::Max] {
            let expect = op.fold(&input);
            prop_assert_eq!(bsp_algos::bsp_reduce(&m, &input, k, op)?.value, expect);
        }
    }

    /// Both BSP sorters sort arbitrary data.
    #[test]
    fn bsp_sorters_sort(input in prop::collection::vec(0i64..1000, 1..200), p in 1usize..9) {
        let m = BspMachine::new(p, 2, 8).unwrap();
        prop_assert!(bsp_algos::bsp_sort_odd_even(&m, &input)?.verify(&input));
        prop_assert!(bsp_algos::bsp_sort_sample(&m, &input, 4)?.verify(&input));
    }

    /// BSP LAC places every item exactly once.
    #[test]
    fn bsp_lac_is_exact(n in 16usize..300, frac in 2usize..8, p in 1usize..9,
                        seed in any::<u64>()) {
        let h = (n / frac).max(1);
        let items = workloads::sparse_items(n, h, seed);
        let m = BspMachine::new(p, 2, 8).unwrap();
        let out = bsp_algos::bsp_lac_dart(&m, &items, h, seed ^ 3)?;
        prop_assert!(out.verify(&items));
    }

    /// Rounds-respecting reductions return the right value and respect the
    /// budget for all (n, p).
    #[test]
    fn rounds_reductions_are_correct(bits in arb_bits(400), p_shift in 0usize..5) {
        let n = bits.len();
        let p = (n >> p_shift).max(1);
        let g = 2;
        let m = QsmMachine::qsm(g);
        let budget = parbounds_models::round_budget_qsm(n as u64, p as u64, g, 2);
        let expected_or = Word::from(bits.iter().any(|&b| b != 0));
        let out = rounds::or_in_rounds_qsm(&m, &bits, p)?;
        prop_assert_eq!(out.value, expected_or);
        prop_assert!(out.run.ledger.is_round_respecting(budget));
        let out = rounds::reduce_in_rounds(&m, &bits, p, ReduceOp::Xor)?;
        prop_assert_eq!(out.value, bits.iter().sum::<Word>() % 2);
        prop_assert!(out.run.ledger.is_round_respecting(budget));
    }

    /// Tree-reduce measured cost equals its closed form for all (n, k, g).
    #[test]
    fn tree_reduce_cost_is_closed_form(n in 1usize..200, k in 2usize..9, g in 1u64..16) {
        let input: Vec<Word> = (0..n as Word).collect();
        let m = QsmMachine::qsm(g);
        let out = reduce::tree_reduce(&m, &input, k, ReduceOp::Sum)?;
        prop_assert_eq!(out.run.time(), reduce::tree_reduce_cost(n, k, g));
        prop_assert_eq!(out.value, (n as Word) * (n as Word - 1) / 2);
    }
}
