//! Property tests for the fault-injection layer: arbitrary seeded
//! [`FaultPlan`]s thrown at the Section 8 algorithms must never panic —
//! every execution ends in a verified-correct answer or a typed
//! [`ModelError`] — and the write-combining OR tree must be correct under
//! *every* concurrent-write arbitration, enumerated exhaustively at small
//! `n` with the [`WinnerPolicy::Scripted`] odometer.

use parbounds_algo::bsp_algos::{bsp_lac_dart_resilient, bsp_or, bsp_parity};
use parbounds_algo::lac::{lac_dart, lac_dart_retry};
use parbounds_algo::or_tree::or_write_tree;
use parbounds_algo::parity::parity_pattern_helper;
use parbounds_algo::workloads;
use parbounds_models::faults::advance_script;
use parbounds_models::{BspMachine, FaultPlan, QsmMachine, WinnerPolicy, Word};
use proptest::prelude::*;

/// Strategy for an arbitrary bounded fault plan. Probabilities stay below
/// 0.3 and schedules small so degraded runs stay fast; phase budgets are
/// always attached so a livelocked tree surfaces as a typed error quickly.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0usize..6,
        0.0f64..0.3,
        0.0f64..0.2,
        prop::collection::vec((0usize..8, 0usize..8), 0..4),
        prop::option::of((0usize..8, 0usize..8)),
        prop::option::of(100u64..100_000),
    )
        .prop_map(|(seed, winner, drop, dup, stalls, crash, cost_budget)| {
            let winner = match winner {
                0 => WinnerPolicy::SeededRandom,
                1 => WinnerPolicy::FirstWriter,
                2 => WinnerPolicy::LastWriter,
                3 => WinnerPolicy::MinValue,
                4 => WinnerPolicy::MaxValue,
                _ => WinnerPolicy::Scripted(vec![0, 1, 2]),
            };
            let mut plan = FaultPlan::new(seed)
                .with_winner(winner)
                .with_drop_prob(drop)
                .with_dup_prob(dup)
                .with_phase_budget(400);
            for (pid, phase) in stalls {
                plan = plan.with_stall(pid, phase);
            }
            if let Some((pid, phase)) = crash {
                plan = plan.with_crash(pid, phase);
            }
            if let Some(b) = cost_budget {
                plan = plan.with_cost_budget(b);
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// QSM trees under arbitrary plans: no panic, and a plan that does not
    /// perturb execution must still produce the right answer.
    #[test]
    fn qsm_trees_never_panic_under_arbitrary_plans(
        plan in arb_plan(),
        n in 4usize..32,
        input_seed in 0u64..1000,
    ) {
        let bits = workloads::random_bits(n, input_seed);
        let machine = QsmMachine::qsm(4).with_faults(plan.clone());
        if let Ok(out) = or_write_tree(&machine, &bits, 4) {
            let expect = Word::from(bits.iter().any(|&b| b != 0));
            if !plan.perturbs_execution() {
                prop_assert_eq!(out.value, expect);
            }
        }
        if let Ok(out) = parity_pattern_helper(&machine, &bits, 3) {
            if !plan.perturbs_execution() {
                prop_assert_eq!(out.value, bits.iter().sum::<Word>() & 1);
            }
        }
    }

    /// The dart LAC under arbitrary plans: a raw run may fail or degrade,
    /// but the Las Vegas retry wrapper never returns an unverified success.
    #[test]
    fn lac_never_panics_and_retry_never_lies(
        plan in arb_plan(),
        input_seed in 0u64..1000,
    ) {
        let n = 24;
        let h = 6;
        let items = workloads::sparse_items(n, h, input_seed);
        let machine = QsmMachine::qsm(4);
        let faulted = machine.clone().with_faults(plan.clone());
        // Raw run: any Ok/Err is fine, panics are not.
        let _ = lac_dart(&faulted, &items, h, input_seed);
        if let Ok(out) = lac_dart_retry(&machine, &items, h, input_seed, &plan, 3) {
            prop_assert!(out.outcome.verify(&items));
            prop_assert!(out.attempts >= 1 && out.attempts <= 3);
        }
    }

    /// BSP trees under arbitrary plans (message faults included): no
    /// panic, and the resilient LAC never returns an unverified placement.
    #[test]
    fn bsp_trees_never_panic_under_arbitrary_plans(
        plan in arb_plan(),
        p in 2usize..17,
        input_seed in 0u64..1000,
    ) {
        let bits = workloads::random_bits(p, input_seed);
        let machine = BspMachine::new(p, 2, 8).unwrap();
        let faulted = machine.clone().with_faults(plan.clone());
        if let Ok(out) = bsp_parity(&faulted, &bits) {
            if !plan.perturbs_execution() {
                prop_assert_eq!(out.value, bits.iter().sum::<Word>() & 1);
            }
        }
        let _ = bsp_or(&faulted, &bits);

        let h = (p / 2).max(1);
        let items = workloads::sparse_items(p, h, input_seed);
        if let Ok(out) = bsp_lac_dart_resilient(&machine, &items, h, input_seed, &plan, 3) {
            prop_assert!(out.result.verify(&items));
        }
    }
}

/// Exhaustively enumerates every concurrent-write arbitration of the OR
/// write tree at small `n` via the scripted-winner odometer: the paper's
/// arbitrary-write rule demands correctness for EVERY winner choice.
#[test]
fn or_tree_is_correct_under_every_write_arbitration() {
    let machine = QsmMachine::qsm(2);
    for bits in [
        vec![1, 1, 1, 1, 0, 1],
        vec![0, 1, 1, 0, 1, 0],
        vec![1, 0, 0, 0, 0, 0],
        vec![0, 0, 0, 0, 0, 0],
    ] {
        let expect = Word::from(bits.iter().any(|&b| b != 0));
        let mut script: Vec<usize> = Vec::new();
        let mut arbitrations = 0u64;
        loop {
            let plan = FaultPlan::new(0).with_winner(WinnerPolicy::Scripted(script.clone()));
            let out = or_write_tree(&machine.clone().with_faults(plan), &bits, 2).unwrap();
            assert_eq!(
                out.value, expect,
                "OR tree wrong on {bits:?} under arbitration {script:?}"
            );
            arbitrations += 1;
            let log = out.run.faults.expect("faulted run must carry a log");
            assert!(!log.choices_truncated);
            if !advance_script(&mut script, &log.choice_radices()) {
                break;
            }
        }
        let ones = bits.iter().filter(|&&b| b != 0).count();
        if ones >= 2 {
            assert!(arbitrations > 1, "expected contention on {bits:?}");
        }
    }
}
