//! The paper's problem reductions, made executable.
//!
//! * **Parity → list ranking / sorting** (Section 3, closing remark): the
//!   size-preserving reductions that transfer every Parity lower bound of
//!   Table 1 to list ranking and sorting. [`parity_via_list_ranking`] ranks
//!   the chain `i → i+1` under XOR; [`parity_via_sorting_bsp`] sorts the bit
//!   vector and recovers the count of ones with one extra O(p)-relation
//!   superstep.
//! * **CLB → {Load Balancing, LAC, Padded Sort}** (Theorem 6.1): the three
//!   reductions used to push the Chromatic Load Balancing lower bound onto
//!   the problems of Section 6.2. Each function solves a [`ClbInstance`]
//!   by invoking the target problem's algorithm and post-processing its
//!   output into a CLB solution, which [`ClbInstance::verify_solution`]
//!   then checks.

use std::collections::HashMap;

use parbounds_models::{BspMachine, CostLedger, QsmMachine, Result, Status, Superstep, Word};

use crate::balance::load_balance;
use crate::bsp_algos::bsp_sort_odd_even;
use crate::lac::lac_dart;
use crate::list_rank::list_rank;
use crate::padded_sort::{padded_sort, PaddedSortParams};
use crate::util::ReduceOp;
use crate::workloads::{ClbInstance, FIXED_ONE};
use crate::Outcome;

/// Parity of `bits` computed *through list ranking*: rank the chain
/// `0 → 1 → … → n-1` with the bits as weights under XOR; the head's rank is
/// the parity. Size-preserving: the list has exactly `n` nodes.
pub fn parity_via_list_ranking(machine: &QsmMachine, bits: &[Word]) -> Result<Outcome> {
    assert!(!bits.is_empty());
    let n = bits.len();
    let succ: Vec<Word> = (1..=n as Word).collect();
    let ranked = list_rank(machine, &succ, bits, ReduceOp::Xor)?;
    Ok(Outcome {
        value: ranked.values[0],
        run: ranked.run,
    })
}

/// Parity of `bits` computed *through sorting* on a BSP: sort the bit
/// vector (any sorter works — here odd-even transposition), then one extra
/// superstep in which each component reports its local count of ones.
/// Returns the parity and the ledgers of both stages.
pub fn parity_via_sorting_bsp(
    machine: &BspMachine,
    bits: &[Word],
) -> Result<(Word, Vec<CostLedger>)> {
    let sorted = bsp_sort_odd_even(machine, bits)?;
    assert!(sorted.verify(bits), "sorter failed");

    struct CountProg;
    impl parbounds_models::BspProgram for CountProg {
        type Proc = Word;
        fn create(&self, _pid: usize, local: &[Word]) -> Word {
            local.iter().filter(|&&b| b != 0).count() as Word
        }
        fn superstep(&self, pid: usize, st: &mut Word, ctx: &mut Superstep<'_>) -> Status {
            match ctx.step() {
                0 => {
                    if pid != 0 {
                        ctx.send(0, 0, *st);
                        Status::Done
                    } else {
                        Status::Active
                    }
                }
                _ => {
                    *st = (*st + ctx.inbox().iter().map(|m| m.value).sum::<Word>()) % 2;
                    Status::Done
                }
            }
        }
    }
    let concat = sorted.concat();
    let res = machine.run(&CountProg, &concat)?;
    Ok((res.states[0] % 2, vec![sorted.ledger, res.ledger]))
}

/// A solution to a CLB instance: the chosen color plus each of its objects'
/// destination group (objects enumerated group-major as in
/// [`ClbInstance::verify_solution`]).
#[derive(Debug)]
pub struct ClbSolution {
    /// The chosen color.
    pub color: u32,
    /// Destination group of each object of that color.
    pub dest: Vec<usize>,
    /// Total model time spent by the underlying solver.
    pub time: u64,
}

/// Solves CLB through **Load Balancing** (Theorem 6.1, first reduction):
/// the chosen color's groups each hold `4m` objects; balancing them across
/// the `n` source slots gives loads `≤ ⌈h/n⌉ ≤ m` whenever
/// `h = 4m·count ≤ n·m`, i.e. `count ≤ n/4` — which holds w.h.p. since
/// `E[count] = n/8m`.
pub fn clb_via_load_balance(
    machine: &QsmMachine,
    inst: &ClbInstance,
    p: usize,
    color: u32,
) -> Result<Option<ClbSolution>> {
    let count = inst.color_count(color);
    if 4 * count > inst.n {
        return Ok(None); // pathologically popular color; the reduction declines
    }
    let counts: Vec<Word> = inst
        .colors
        .iter()
        .map(|&c| if c == color { 4 * inst.m as Word } else { 0 })
        .collect();
    let balanced = load_balance(machine, &counts, p.min(inst.n))?;
    assert!(balanced.verify(&counts), "load balancer failed");

    // Map each object back to its mailbox row.
    let w = counts.iter().copied().max().unwrap_or(0) + 1;
    let mut row_of: HashMap<Word, usize> = HashMap::new();
    for (d, row) in balanced.mailbox.iter().enumerate() {
        for &obj in row {
            row_of.insert(obj, d);
        }
    }
    let mut dest = Vec::with_capacity(inst.object_count(color));
    for (src, &c) in inst.colors.iter().enumerate() {
        if c != color {
            continue;
        }
        for j in 0..4 * inst.m as Word {
            let obj = src as Word * w + j + 1;
            dest.push(*row_of.get(&obj).expect("object lost by balancer"));
        }
    }
    Ok(Some(ClbSolution {
        color,
        dest,
        time: balanced.total_time(),
    }))
}

/// Solves CLB through **LAC** (Theorem 6.1, second reduction): each group
/// of the chosen color is one *item*; compacting the items into an `O(h)`
/// array gives each a distinct slot `s`, which is mapped to the 4 disjoint
/// destination groups `4s..4s+4` (each receiving `m` of the group's `4m`
/// objects). Valid whenever `4·(destination array size) ≤ n`.
pub fn clb_via_lac(
    machine: &QsmMachine,
    inst: &ClbInstance,
    color: u32,
    seed: u64,
) -> Result<Option<ClbSolution>> {
    let count = inst.color_count(color);
    if count == 0 {
        return Ok(Some(ClbSolution {
            color,
            dest: Vec::new(),
            time: 0,
        }));
    }
    let items: Vec<Word> = inst
        .colors
        .iter()
        .map(|&c| Word::from(c == color))
        .collect();
    let out = lac_dart(machine, &items, count, seed)?;
    assert!(out.verify(&items), "LAC failed");
    if 4 * out.out_size > inst.n {
        return Ok(None); // array too large for the slot->groups embedding
    }
    // slot_of[group] for groups of the chosen color.
    let mut slot_of: HashMap<usize, usize> = HashMap::new();
    for (slot, &v) in out.dest().iter().enumerate() {
        if v != 0 {
            slot_of.insert((v - 1) as usize, slot);
        }
    }
    let mut dest = Vec::with_capacity(inst.object_count(color));
    for (g, &c) in inst.colors.iter().enumerate() {
        if c != color {
            continue;
        }
        let s = slot_of[&g];
        for j in 0..4 * inst.m {
            dest.push(4 * s + j / inst.m);
        }
    }
    Ok(Some(ClbSolution {
        color,
        dest,
        time: out.run.ledger.total_time(),
    }))
}

/// Solves CLB through **Padded Sort** (Theorem 6.1, third reduction): group
/// `i` with color `c` draws a value uniform in `(c/8m, (c+1)/8m]`; padded
/// sorting the `n` values places the chosen color's groups contiguously;
/// the `q`-th such group (in sorted order) maps to destination groups
/// `4q..4q+4`. Valid whenever `4·count ≤ n`.
pub fn clb_via_padded_sort(
    machine: &QsmMachine,
    inst: &ClbInstance,
    color: u32,
    seed: u64,
) -> Result<Option<ClbSolution>> {
    let count = inst.color_count(color);
    if 4 * count > inst.n {
        return Ok(None);
    }
    let palette = 8 * inst.m as i128;
    let mut r = crate::workloads::rng(seed);
    use rand::Rng;
    let values: Vec<Word> = inst
        .colors
        .iter()
        .map(|&c| {
            let lo = (c as i128 * FIXED_ONE as i128 / palette) as Word;
            let hi = ((c as i128 + 1) * FIXED_ONE as i128 / palette) as Word;
            r.gen_range(lo..hi.max(lo + 1))
        })
        .collect();
    let sorted = padded_sort(
        machine,
        &values,
        PaddedSortParams::for_n(inst.n, seed ^ 0xabcd),
    )?;
    if !sorted.verify(&values) {
        return Ok(None); // bucket overflow (n^{-Θ(1)} probability)
    }
    // Rank of each chosen-color group among chosen-color values. Values of
    // one color occupy one palette band, so their sorted rank order equals
    // their value order; ties broken by group index for determinism.
    let lo = (color as i128 * FIXED_ONE as i128 / palette) as Word;
    let hi = ((color as i128 + 1) * FIXED_ONE as i128 / palette) as Word;
    let mut chosen: Vec<(Word, usize)> = inst
        .colors
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == color)
        .map(|(g, _)| (values[g], g))
        .collect();
    chosen.sort_unstable();
    debug_assert!(chosen.iter().all(|&(v, _)| v >= lo && v < hi.max(lo + 1)));
    let mut rank_of: HashMap<usize, usize> = HashMap::new();
    for (q, &(_, g)) in chosen.iter().enumerate() {
        rank_of.insert(g, q);
    }
    let mut dest = Vec::with_capacity(inst.object_count(color));
    for (g, &c) in inst.colors.iter().enumerate() {
        if c != color {
            continue;
        }
        let q = rank_of[&g];
        for j in 0..4 * inst.m {
            dest.push(4 * q + j / inst.m);
        }
    }
    Ok(Some(ClbSolution {
        color,
        dest,
        time: sorted.total_time(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::random_bits;

    #[test]
    fn parity_through_list_ranking() {
        let m = QsmMachine::qsm(2);
        for n in [1usize, 5, 64, 200] {
            let bits = random_bits(n, n as u64);
            let expected = bits.iter().sum::<Word>() % 2;
            let out = parity_via_list_ranking(&m, &bits).unwrap();
            assert_eq!(out.value, expected, "n={n}");
        }
    }

    #[test]
    fn parity_through_sorting() {
        let m = BspMachine::new(4, 2, 8).unwrap();
        for n in [16usize, 63, 128] {
            let bits = random_bits(n, n as u64 + 1);
            let expected = bits.iter().sum::<Word>() % 2;
            let (parity, ledgers) = parity_via_sorting_bsp(&m, &bits).unwrap();
            assert_eq!(parity, expected, "n={n}");
            assert_eq!(ledgers.len(), 2);
            // The post-processing stage is O(1) supersteps.
            assert!(ledgers[1].num_phases() <= 2);
        }
    }

    #[test]
    fn clb_solved_through_load_balancing() {
        let m = QsmMachine::qsm(2);
        let inst = ClbInstance::generate(128, 4, 3);
        let color = 5;
        let sol = clb_via_load_balance(&m, &inst, 16, color).unwrap().unwrap();
        assert!(inst.verify_solution(sol.color, &sol.dest));
        assert_eq!(sol.dest.len(), inst.object_count(color));
    }

    #[test]
    fn clb_solved_through_lac() {
        let m = QsmMachine::qsm(2);
        // Need 4·(16h+32) <= n with h ~ n/8m: use m = 32, n = 2048.
        let inst = ClbInstance::generate(2048, 32, 4);
        let color = 1;
        let sol = clb_via_lac(&m, &inst, color, 7).unwrap();
        let sol = sol.expect("embedding should fit at this size");
        assert!(inst.verify_solution(sol.color, &sol.dest));
    }

    #[test]
    fn clb_solved_through_padded_sort() {
        let m = QsmMachine::qsm(2);
        let inst = ClbInstance::generate(512, 8, 5);
        let color = 3;
        let sol = clb_via_padded_sort(&m, &inst, color, 11).unwrap();
        let sol = sol.expect("4·count <= n should hold w.h.p.");
        assert!(inst.verify_solution(sol.color, &sol.dest));
    }

    #[test]
    fn clb_lac_declines_when_embedding_cannot_fit() {
        let m = QsmMachine::qsm(1);
        // Tiny instance: 16h + 32 times 4 certainly exceeds n = 16.
        let inst = ClbInstance::generate(16, 1, 2);
        let color = inst.colors[0];
        assert!(clb_via_lac(&m, &inst, color, 3).unwrap().is_none());
    }

    #[test]
    fn clb_empty_color_is_trivially_solved() {
        let m = QsmMachine::qsm(1);
        let mut inst = ClbInstance::generate(32, 2, 6);
        // Force color 9 to be absent.
        for c in inst.colors.iter_mut() {
            if *c == 9 {
                *c = 0;
            }
        }
        let sol = clb_via_lac(&m, &inst, 9, 1).unwrap().unwrap();
        assert!(sol.dest.is_empty());
        assert!(inst.verify_solution(9, &sol.dest));
    }
}

/// Parity computed *through sorting on the QSM*: sort the bit vector (via
/// [`crate::padded_sort::qsm_sort`]), then one processor binary-searches
/// the 0/1 boundary with `O(log n)` probes. Size-preserving: the sort
/// instance has exactly `n` keys. Bits are spread evenly within their half
/// of the value range (order-preserving), so bucket loads stay within 2×
/// the uniform case regardless of the bit mix.
pub fn parity_via_sorting_qsm(machine: &QsmMachine, bits: &[Word]) -> Result<(Word, u64)> {
    assert!(!bits.is_empty());
    let n = bits.len();
    let half = FIXED_ONE / 2;
    let values: Vec<Word> = bits
        .iter()
        .enumerate()
        .map(|(i, &b)| b * half + (i as i128 * half as i128 / n as i128) as Word)
        .collect();
    let (sorted, runs) = crate::padded_sort::qsm_sort(machine, &values, (n / 4).max(1), 0x50)?;
    // The count of ones = number of sorted entries above the midpoint; a
    // single processor finds the boundary by binary search (log n probes of
    // cost g each — additive O(g log n), within every Parity bound).
    let ones = n - sorted.partition_point(|&v| v < FIXED_ONE / 2);
    let time: u64 = runs.iter().map(|r| r.ledger.total_time()).sum::<u64>()
        + machine.g() * (n as f64).log2().ceil() as u64;
    Ok(((ones % 2) as Word, time))
}

#[cfg(test)]
mod qsm_sort_reduction_tests {
    use super::*;
    use crate::workloads::random_bits;

    #[test]
    fn parity_through_qsm_sorting() {
        let m = QsmMachine::qsm(2);
        for n in [16usize, 100, 512] {
            let bits = random_bits(n, n as u64 + 2);
            let expected = bits.iter().sum::<Word>() % 2;
            let (parity, time) = parity_via_sorting_qsm(&m, &bits).unwrap();
            assert_eq!(parity, expected, "n={n}");
            assert!(time > 0);
        }
    }
}
