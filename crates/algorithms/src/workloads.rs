//! Seeded workload generators for every experiment in the paper's tables:
//! random bit vectors (Parity/OR), sparse item arrays (LAC), uniform [0,1)
//! values (Padded Sort), random lists (list ranking), and Chromatic Load
//! Balancing instances (Section 6).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use parbounds_models::Word;

/// Fixed-point scale for "uniform [0,1)" values: a value `v` represents the
/// real `v / FIXED_ONE`.
pub const FIXED_ONE: Word = 1 << 30;

/// A seeded RNG for workload generation (ChaCha8 — fast, reproducible).
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// `n` independent fair bits.
pub fn random_bits(n: usize, seed: u64) -> Vec<Word> {
    let mut r = rng(seed);
    (0..n).map(|_| Word::from(r.gen::<bool>())).collect()
}

/// `n` bits, each one with probability `p_one` — the biased inputs the OR
/// adversary distributions `H_i` of Section 7 use.
pub fn biased_bits(n: usize, p_one: f64, seed: u64) -> Vec<Word> {
    let mut r = rng(seed);
    (0..n).map(|_| Word::from(r.gen_bool(p_one))).collect()
}

/// The all-zeros input (the hard case for OR).
pub fn zeros(n: usize) -> Vec<Word> {
    vec![0; n]
}

/// A sparse item array: `n` cells with exactly `h` non-zero entries (value
/// 1) at distinct random positions — a LAC instance.
pub fn sparse_items(n: usize, h: usize, seed: u64) -> Vec<Word> {
    assert!(h <= n, "cannot place {h} items in {n} cells");
    let mut r = rng(seed);
    let mut v = vec![0 as Word; n];
    let mut placed = 0;
    while placed < h {
        let i = r.gen_range(0..n);
        if v[i] == 0 {
            v[i] = 1;
            placed += 1;
        }
    }
    v
}

/// `n` values uniform on [0,1), as fixed-point words in `[0, FIXED_ONE)` —
/// the Padded Sort input distribution.
pub fn uniform_values(n: usize, seed: u64) -> Vec<Word> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..FIXED_ONE)).collect()
}

/// A random linked list over `n` nodes encoded as a successor array:
/// `succ[i]` is the index of node `i`'s successor, and the last node in
/// list order has `succ = n` (sentinel). Returns `(succ, head)`.
pub fn random_list(n: usize, seed: u64) -> (Vec<Word>, usize) {
    assert!(n > 0);
    let mut r = rng(seed);
    // Random permutation = list order.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = r.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut succ = vec![n as Word; n];
    for w in order.windows(2) {
        succ[w[0]] = w[1] as Word;
    }
    (succ, order[0])
}

/// A Chromatic Load Balancing instance (Section 6): `n` groups of `4m`
/// objects, each *group* uniformly assigned one of `8m` colors.
#[derive(Debug, Clone)]
pub struct ClbInstance {
    /// Number of groups.
    pub n: usize,
    /// The `m` parameter (group payload is `4m` objects; palette is `8m`).
    pub m: usize,
    /// `colors[i]` = color of group `i`, in `0..8m`.
    pub colors: Vec<u32>,
}

impl ClbInstance {
    /// Generates an instance.
    pub fn generate(n: usize, m: usize, seed: u64) -> Self {
        assert!(n > 0 && m >= 1);
        let mut r = rng(seed);
        let colors = (0..n).map(|_| r.gen_range(0..8 * m as u32)).collect();
        ClbInstance { n, m, colors }
    }

    /// Number of groups with the given color.
    pub fn color_count(&self, color: u32) -> usize {
        self.colors.iter().filter(|&&c| c == color).count()
    }

    /// Number of *objects* of the given color (`4m` per matching group).
    pub fn object_count(&self, color: u32) -> usize {
        self.color_count(color) * 4 * self.m
    }

    /// The input array as the paper lays it out: `n × 4m` cells, cell
    /// `(group, rank)` at index `group·4m + rank` holding the group's color
    /// (tagged implicitly by its position).
    pub fn to_cells(&self) -> Vec<Word> {
        let mut v = Vec::with_capacity(self.n * 4 * self.m);
        for &c in &self.colors {
            v.extend(std::iter::repeat_n(c as Word, 4 * self.m));
        }
        v
    }

    /// Checks a CLB *solution*: a chosen color plus an assignment of all
    /// objects of that color to `n` destination groups of capacity `m`.
    /// `dest[j]` = destination group of the `j`-th object of the chosen
    /// color (objects enumerated group-major).
    pub fn verify_solution(&self, color: u32, dest: &[usize]) -> bool {
        if dest.len() != self.object_count(color) {
            return false;
        }
        let mut load = vec![0usize; self.n];
        for &d in dest {
            if d >= self.n {
                return false;
            }
            load[d] += 1;
        }
        load.iter().all(|&l| l <= self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_bits_are_balanced_and_deterministic() {
        let a = random_bits(1000, 1);
        let b = random_bits(1000, 1);
        assert_eq!(a, b);
        let ones: Word = a.iter().sum();
        assert!((400..=600).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn biased_bits_hit_their_rate() {
        let v = biased_bits(4000, 0.1, 2);
        let ones: Word = v.iter().sum();
        assert!((250..=550).contains(&ones), "ones = {ones}");
        assert!(biased_bits(100, 0.0, 3).iter().all(|&b| b == 0));
        assert!(biased_bits(100, 1.0, 3).iter().all(|&b| b == 1));
    }

    #[test]
    fn sparse_items_place_exactly_h() {
        let v = sparse_items(500, 37, 4);
        assert_eq!(v.iter().filter(|&&x| x != 0).count(), 37);
    }

    #[test]
    fn uniform_values_in_range() {
        let v = uniform_values(1000, 5);
        assert!(v.iter().all(|&x| (0..FIXED_ONE).contains(&x)));
        let mean: i64 = v.iter().sum::<i64>() / 1000;
        let half = FIXED_ONE / 2;
        assert!(
            (mean - half).abs() < FIXED_ONE / 10,
            "mean {mean} vs {half}"
        );
    }

    #[test]
    fn random_list_is_a_single_chain() {
        let n = 64;
        let (succ, head) = random_list(n, 6);
        let mut seen = vec![false; n];
        let mut at = head;
        for _ in 0..n {
            assert!(!seen[at]);
            seen[at] = true;
            let nx = succ[at];
            if nx == n as Word {
                break;
            }
            at = nx as usize;
        }
        assert!(seen.iter().all(|&s| s), "list does not cover all nodes");
    }

    #[test]
    fn clb_instance_shape() {
        let inst = ClbInstance::generate(100, 2, 7);
        assert_eq!(inst.colors.len(), 100);
        assert!(inst.colors.iter().all(|&c| c < 16));
        assert_eq!(inst.to_cells().len(), 100 * 8);
        let total: usize = (0..16).map(|c| inst.color_count(c)).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn clb_verifier_accepts_balanced_and_rejects_overload() {
        let inst = ClbInstance::generate(50, 2, 8);
        let color = (0..16).max_by_key(|&c| inst.color_count(c)).unwrap();
        let k = inst.object_count(color);
        // Round-robin assignment is balanced iff k <= n*m (true w.h.p. for
        // this size; skip otherwise).
        if k <= 50 * 2 {
            let dest: Vec<usize> = (0..k).map(|j| j % 50).collect();
            assert!(inst.verify_solution(color, &dest));
        }
        // All-to-group-0 overloads when k > m.
        if k > 2 {
            let dest = vec![0usize; k];
            assert!(!inst.verify_solution(color, &dest));
        }
        // Wrong length rejected.
        assert!(!inst.verify_solution(color, &vec![0; k + 1]));
    }
}
