//! List ranking by pointer jumping — the canonical "related problem" the
//! paper's Parity lower bounds transfer to (Section 3, last paragraph):
//! there is a simple size-preserving reduction from Parity to list ranking
//! (see [`crate::reductions::parity_via_list_ranking`]), so every Parity
//! lower bound in Table 1 is also a list-ranking lower bound.
//!
//! The input list is a successor array (`succ[i] = n` marks the tail) plus
//! per-node weights; the output assigns each node the fold (under a chosen
//! operator) of the weights from itself to the tail. Pointer jumping runs
//! `⌈log₂ n⌉` iterations; because `succ_t` is injective on the live nodes
//! of a single chain, every read has contention 1 and the QSM cost is
//! `Θ(g·log n)` — which the transferred Parity lower bound says is within
//! `O(log log n · log g)` factors of optimal.

use parbounds_models::{Addr, PhaseEnv, Program, QsmMachine, Result, Status, Word};

use crate::util::{Layout, ReduceOp};
use crate::VecOutcome;

struct ListRankProgram {
    n: usize,
    op: ReduceOp,
    iters: usize,
    /// Per-iteration double buffers of (succ, acc) arrays; index `t` holds
    /// the state *entering* iteration `t`.
    succ_bufs: Vec<Addr>,
    acc_bufs: Vec<Addr>,
    out: Addr,
}

#[derive(Default)]
struct RankProc {
    succ: Word,
    acc: Word,
}

impl ListRankProgram {
    fn new(n: usize, op: ReduceOp, layout: &mut Layout) -> Self {
        assert!(n > 0, "empty list");
        let iters = (usize::BITS - (n - 1).leading_zeros()) as usize; // ceil(log2 n), 0 for n=1
                                                                      // Buffer `it` feeds iteration `it`'s reads; the final iteration
                                                                      // writes the output region directly, so no buffer `iters` exists.
        let mut succ_bufs = Vec::with_capacity(iters);
        let mut acc_bufs = Vec::with_capacity(iters);
        for _ in 0..iters {
            succ_bufs.push(layout.alloc(n));
            acc_bufs.push(layout.alloc(n));
        }
        let out = layout.alloc(n);
        ListRankProgram {
            n,
            op,
            iters,
            succ_bufs,
            acc_bufs,
            out,
        }
    }
}

impl Program for ListRankProgram {
    type Proc = RankProc;

    fn num_procs(&self) -> usize {
        self.n
    }

    fn create(&self, _pid: usize) -> RankProc {
        RankProc::default()
    }

    fn phase(&self, pid: usize, st: &mut RankProc, env: &mut PhaseEnv<'_>) -> Status {
        let t = env.phase();
        let sentinel = self.n as Word;
        // Phase 0: read own succ and weight from the input layout
        // (succ at [0,n), weights at [n,2n)).
        if t == 0 {
            env.read(pid);
            env.read(self.n + pid);
            return Status::Active;
        }
        // Phase 1: publish into iteration-0 buffers.
        if t == 1 {
            st.succ = env.delivered()[0].1;
            st.acc = env.delivered()[1].1;
            if self.iters == 0 {
                env.write(self.out + pid, st.acc);
                return Status::Done;
            }
            env.write(self.succ_bufs[0] + pid, st.succ);
            env.write(self.acc_bufs[0] + pid, st.acc);
            return Status::Active;
        }
        // Iteration it (0-based) = phases 2+3it, 3+3it, 4+3it:
        // read succ's pair, combine, publish into buffer it+1.
        let it = (t - 2) / 3;
        if it >= self.iters {
            unreachable!("processor survived past the last iteration");
        }
        match (t - 2) % 3 {
            0 => {
                if st.succ != sentinel {
                    env.read(self.succ_bufs[it] + st.succ as usize);
                    env.read(self.acc_bufs[it] + st.succ as usize);
                }
                Status::Active
            }
            1 => {
                if st.succ != sentinel {
                    let s2 = env.delivered()[0].1;
                    let a2 = env.delivered()[1].1;
                    st.acc = self.op.apply(st.acc, a2);
                    st.succ = s2;
                }
                if it + 1 == self.iters {
                    // Last iteration: `acc` is final, so write the output
                    // directly — publishing into a buffer nothing reads
                    // would cost 2n dead writes plus a spacer phase.
                    env.write(self.out + pid, st.acc);
                    return Status::Done;
                }
                env.write(self.succ_bufs[it + 1] + pid, st.succ);
                env.write(self.acc_bufs[it + 1] + pid, st.acc);
                Status::Active
            }
            _ => {
                // Spacer phase: ensures the next iteration's reads see the
                // fully published buffer (writes land at end of the phase
                // they were issued in, so this is bookkeeping simplicity,
                // not a correctness need; it keeps read/write sets of
                // consecutive iterations in distinct phases).
                Status::Active
            }
        }
    }
}

/// Ranks the list `succ` (tail marked with `succ = n`) with per-node
/// `weights`, returning `rank[i]` = fold under `op` of the weights of the
/// nodes from `i` to the tail inclusive.
/// ```
/// use parbounds_algo::{list_rank::list_rank, util::ReduceOp};
/// use parbounds_models::QsmMachine;
///
/// // The chain 0 -> 1 -> 2 (tail sentinel = 3) with unit weights.
/// let machine = QsmMachine::qsm(1);
/// let out = list_rank(&machine, &[1, 2, 3], &[1, 1, 1], ReduceOp::Sum).unwrap();
/// assert_eq!(out.values, vec![3, 2, 1]);
/// ```
pub fn list_rank(
    machine: &QsmMachine,
    succ: &[Word],
    weights: &[Word],
    op: ReduceOp,
) -> Result<VecOutcome> {
    assert_eq!(succ.len(), weights.len(), "succ and weights must align");
    let n = succ.len();
    assert!(n > 0, "empty list");
    let sentinel = n as Word;
    assert!(
        succ.iter().all(|&s| (0..=sentinel).contains(&s)),
        "successor out of range"
    );
    let mut input = succ.to_vec();
    input.extend_from_slice(weights);
    let mut layout = Layout::new(input.len());
    let prog = ListRankProgram::new(n, op, &mut layout);
    let out = prog.out;
    let run = machine.run(&prog, &input)?;
    let values = run.memory.slice(out, n);
    Ok(VecOutcome { values, run })
}

/// Classic list ranking: distance (in nodes, counting itself) to the tail.
pub fn list_rank_distance(machine: &QsmMachine, succ: &[Word]) -> Result<VecOutcome> {
    let weights = vec![1; succ.len()];
    list_rank(machine, succ, &weights, ReduceOp::Sum)
}

/// Declared cost envelope of pointer-jumping list ranking: `Θ(g·lg n)` QSM
/// time (Section 3, last paragraph — contention-1 reads, `⌈lg n⌉` rounds).
pub fn cost_contract() -> parbounds_models::CostContract {
    parbounds_models::CostContract::new("list-rank", "QSM", "Θ(g·lg n)", |p| p.g * p.lg_n())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::random_list;
    use parbounds_models::QsmMachine;

    fn expected_ranks(succ: &[Word], weights: &[Word], op: ReduceOp) -> Vec<Word> {
        let n = succ.len();
        let mut rank = vec![op.identity(); n];
        // Process nodes in reverse list order.
        let mut order = Vec::with_capacity(n);
        let mut indeg = vec![false; n];
        for &s in succ {
            if s != n as Word {
                indeg[s as usize] = true;
            }
        }
        let head = (0..n).find(|&i| !indeg[i]).unwrap();
        let mut at = head;
        loop {
            order.push(at);
            if succ[at] == n as Word {
                break;
            }
            at = succ[at] as usize;
        }
        for &i in order.iter().rev() {
            let tailward = if succ[i] == n as Word {
                op.identity()
            } else {
                rank[succ[i] as usize]
            };
            rank[i] = op.apply(weights[i], tailward);
        }
        rank
    }

    #[test]
    fn distance_ranks_on_identity_chain() {
        // succ[i] = i+1: rank[i] = n - i.
        let n = 9;
        let succ: Vec<Word> = (1..=n as Word).collect();
        let m = QsmMachine::qsm(2);
        let out = list_rank_distance(&m, &succ).unwrap();
        let expect: Vec<Word> = (0..n as Word).map(|i| n as Word - i).collect();
        assert_eq!(out.values, expect);
    }

    #[test]
    fn ranks_on_random_lists() {
        let m = QsmMachine::qsm(2);
        for n in [1usize, 2, 5, 16, 33, 128] {
            let (succ, _) = random_list(n, n as u64);
            let weights: Vec<Word> = (0..n as Word).map(|i| i % 7).collect();
            let out = list_rank(&m, &succ, &weights, ReduceOp::Sum).unwrap();
            assert_eq!(
                out.values,
                expected_ranks(&succ, &weights, ReduceOp::Sum),
                "n={n}"
            );
        }
    }

    #[test]
    fn xor_ranking_computes_suffix_parities() {
        let m = QsmMachine::qsm(1);
        let (succ, head) = random_list(64, 3);
        let weights = crate::workloads::random_bits(64, 9);
        let out = list_rank(&m, &succ, &weights, ReduceOp::Xor).unwrap();
        // The head's rank is the parity of all weights.
        let total: Word = weights.iter().sum::<Word>() % 2;
        assert_eq!(out.values[head], total);
    }

    #[test]
    fn contention_stays_one_on_a_chain() {
        let m = QsmMachine::qsm(2);
        let (succ, _) = random_list(256, 5);
        let out = list_rank_distance(&m, &succ).unwrap();
        assert_eq!(out.run.ledger.max_contention(), 1);
    }

    #[test]
    fn cost_is_theta_g_log_n() {
        // 3 phases per iteration, 2g per phase-with-traffic; assert the
        // total lies in [g·log n, 8·g·(log n + 2)].
        let n = 1 << 10;
        let g = 4u64;
        let m = QsmMachine::qsm(g);
        let (succ, _) = random_list(n, 8);
        let out = list_rank_distance(&m, &succ).unwrap();
        let logn = 10u64;
        assert!(out.run.time() >= g * logn);
        assert!(
            out.run.time() <= 8 * g * (logn + 2),
            "time {}",
            out.run.time()
        );
    }

    #[test]
    fn single_node_list() {
        let m = QsmMachine::qsm(1);
        let out = list_rank(&m, &[1], &[5], ReduceOp::Sum).unwrap();
        assert_eq!(out.values, vec![5]);
    }
}

// ---------------------------------------------------------------------------
// List ranking on the BSP (message-passing pointer jumping).
// ---------------------------------------------------------------------------

use parbounds_models::{BspMachine, CostLedger, Superstep};

/// Outcome of a BSP list ranking.
#[derive(Debug)]
pub struct BspRankOutcome {
    /// `ranks[i]` = fold of the weights from node `i` to the tail.
    pub ranks: Vec<Word>,
    /// Per-superstep ledger.
    pub ledger: CostLedger,
}

struct NodeState {
    succ: Word,
    acc: Word,
}

/// Message tags: queries carry the queried node in the tag (kind 0) and
/// the asking node in the value; answers carry the asking node in the tag
/// with separate kinds for the succ and acc halves.
const RANK_QUERY: Word = 0;
const RANK_ANS_SUCC: Word = 1;
const RANK_ANS_ACC: Word = 2;
const RANK_SHIFT: u32 = 40;

/// Ranks the list on a BSP: pointer jumping with one query/answer
/// superstep pair per iteration — `2·⌈log₂ n⌉ + O(1)` supersteps, each
/// routing an `O(n/p)`-relation (pointers stay injective along a chain, so
/// no component receives more than its hosted-node count in queries).
pub fn bsp_list_rank(
    machine: &BspMachine,
    succ: &[Word],
    weights: &[Word],
    op: ReduceOp,
) -> Result<BspRankOutcome> {
    assert_eq!(succ.len(), weights.len());
    let n = succ.len();
    assert!(n > 0, "empty list");
    let sentinel = n as Word;
    let p = machine.p();
    let per = n.div_ceil(p).max(1);
    let owner = move |node: usize| (node / per).min(p - 1);
    let iters = (usize::BITS - (n - 1).leading_zeros()) as usize;

    // Bootstrap node states from the original arrays (captured — the
    // distribution step is what the input partition would do; we charge it
    // through the first superstep's h-relation implicitly being local).
    let succ0 = succ.to_vec();
    let weights0 = weights.to_vec();

    struct S {
        base: usize,
        nodes: Vec<NodeState>,
    }
    let prog = parbounds_models::BspFnProgram::new(
        move |pid, _local: &[Word]| {
            let base = (pid * per).min(n);
            let end = ((pid + 1) * per).min(n);
            let nodes = (base..end)
                .map(|i| NodeState {
                    succ: succ0[i],
                    acc: weights0[i],
                })
                .collect();
            S { base, nodes }
        },
        move |_pid, st: &mut S, ctx: &mut Superstep<'_>| {
            let step = ctx.step();
            let it = step / 2;
            if step % 2 == 0 {
                // Fold in last iteration's answers first (including at the
                // terminal step, whose inbox holds the final answers).
                let mut succ_ans: std::collections::HashMap<usize, Word> = Default::default();
                let mut acc_ans: std::collections::HashMap<usize, Word> = Default::default();
                for m in ctx.inbox() {
                    let kind = m.tag >> RANK_SHIFT;
                    let node = (m.tag & ((1 << RANK_SHIFT) - 1)) as usize;
                    match kind {
                        RANK_ANS_SUCC => {
                            succ_ans.insert(node, m.value);
                        }
                        RANK_ANS_ACC => {
                            acc_ans.insert(node, m.value);
                        }
                        _ => unreachable!("queries arrive at odd supersteps"),
                    }
                }
                for (j, node) in st.nodes.iter_mut().enumerate() {
                    let gid = st.base + j;
                    if let (Some(&s2), Some(&a2)) = (succ_ans.get(&gid), acc_ans.get(&gid)) {
                        node.acc = match op {
                            ReduceOp::Sum => node.acc + a2,
                            _ => op.apply(node.acc, a2),
                        };
                        node.succ = s2;
                    }
                }
                ctx.local_ops(ctx.inbox().len() as u64);
                if it >= iters {
                    return Status::Done;
                }
                // Issue this iteration's queries.
                for (j, node) in st.nodes.iter().enumerate() {
                    if node.succ != sentinel {
                        let gid = st.base + j;
                        ctx.send(
                            owner(node.succ as usize),
                            (RANK_QUERY << RANK_SHIFT) | node.succ,
                            gid as Word,
                        );
                    }
                }
                Status::Active
            } else {
                if it >= iters {
                    return Status::Done;
                }
                // Answer queries about locally hosted nodes.
                let queries: Vec<(usize, usize)> = ctx
                    .inbox()
                    .iter()
                    .map(|m| {
                        debug_assert_eq!(m.tag >> RANK_SHIFT, RANK_QUERY);
                        (
                            ((m.tag & ((1 << RANK_SHIFT) - 1)) as usize),
                            m.value as usize,
                        )
                    })
                    .collect();
                ctx.local_ops(queries.len() as u64);
                for (node, asker) in queries {
                    let local = &st.nodes[node - st.base];
                    let dest = owner(asker);
                    ctx.send(
                        dest,
                        (RANK_ANS_SUCC << RANK_SHIFT) | asker as Word,
                        local.succ,
                    );
                    ctx.send(
                        dest,
                        (RANK_ANS_ACC << RANK_SHIFT) | asker as Word,
                        local.acc,
                    );
                }
                Status::Active
            }
        },
    );
    let res = machine.run(&prog, &[])?;
    let mut ranks = vec![0; n];
    for st in &res.states {
        for (j, node) in st.nodes.iter().enumerate() {
            ranks[st.base + j] = node.acc;
        }
    }
    Ok(BspRankOutcome {
        ranks,
        ledger: res.ledger,
    })
}

#[cfg(test)]
mod bsp_tests {
    use super::*;
    use crate::workloads::random_list;

    #[test]
    fn bsp_ranks_match_shared_memory_ranks() {
        for n in [1usize, 9, 64, 200] {
            for p in [1usize, 4, 8] {
                let (succ, _) = random_list(n, n as u64 * 3 + 1);
                let weights: Vec<Word> = (0..n as Word).map(|i| i % 5 + 1).collect();
                let shm = list_rank(
                    &parbounds_models::QsmMachine::qsm(1),
                    &succ,
                    &weights,
                    ReduceOp::Sum,
                )
                .unwrap();
                let bsp = BspMachine::new(p, 2, 8).unwrap();
                let out = bsp_list_rank(&bsp, &succ, &weights, ReduceOp::Sum).unwrap();
                assert_eq!(out.ranks, shm.values, "n={n} p={p}");
            }
        }
    }

    #[test]
    fn bsp_rank_supersteps_are_two_per_iteration() {
        let n = 256;
        let (succ, _) = random_list(n, 7);
        let weights = vec![1; n];
        let bsp = BspMachine::new(8, 2, 8).unwrap();
        let out = bsp_list_rank(&bsp, &succ, &weights, ReduceOp::Sum).unwrap();
        // ceil(log2 256) = 8 iterations, 2 supersteps each, +1 terminal.
        assert!(out.ledger.num_phases() <= 2 * 8 + 1);
    }

    #[test]
    fn bsp_rank_h_relation_stays_near_n_over_p() {
        // Chain pointers are injective: queries per component stay within
        // a small multiple of its hosted count.
        let n = 512;
        let p = 8;
        let (succ, _) = random_list(n, 11);
        let weights = vec![1; n];
        let bsp = BspMachine::new(p, 1, 4).unwrap();
        let out = bsp_list_rank(&bsp, &succ, &weights, ReduceOp::Sum).unwrap();
        let max_h = out.ledger.phases().iter().map(|ph| ph.m_rw).max().unwrap();
        assert!(max_h <= 4 * (n / p) as u64, "h = {max_h}");
    }
}
