//! Shared helpers: address-space layout, associative reduction operators,
//! and tree geometry used by the algorithm implementations.

use parbounds_models::{Addr, Word};

/// A bump allocator over the shared address space. Algorithms lay out their
/// input, scratch and output regions through one of these so regions never
/// collide.
#[derive(Debug, Clone)]
pub struct Layout {
    next: Addr,
}

impl Layout {
    /// Starts allocating at `base` (typically just past the input).
    pub fn new(base: Addr) -> Self {
        Layout { next: base }
    }

    /// Reserves `len` consecutive cells and returns the base address.
    pub fn alloc(&mut self, len: usize) -> Addr {
        let at = self.next;
        self.next += len;
        at
    }

    /// First unallocated address.
    pub fn high_water(&self) -> Addr {
        self.next
    }
}

/// An associative, commutative reduction operator over words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Integer addition.
    Sum,
    /// Boolean OR (any non-zero word counts as true).
    Or,
    /// XOR of the low bits — i.e. parity when inputs are bits.
    Xor,
    /// Maximum.
    Max,
}

impl ReduceOp {
    /// Identity element of the operator.
    pub fn identity(self) -> Word {
        match self {
            ReduceOp::Sum | ReduceOp::Or | ReduceOp::Xor => 0,
            ReduceOp::Max => Word::MIN,
        }
    }

    /// Applies the operator.
    pub fn apply(self, a: Word, b: Word) -> Word {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Or => Word::from(a != 0 || b != 0),
            ReduceOp::Xor => (a ^ b) & 1,
            ReduceOp::Max => a.max(b),
        }
    }

    /// Folds a slice.
    pub fn fold(self, items: &[Word]) -> Word {
        items
            .iter()
            .fold(self.identity(), |acc, &x| self.apply(acc, x))
    }
}

/// Geometry of a fan-in-`k` reduction tree over `n` leaves.
///
/// Level 0 is the leaves; level `l+1` has `ceil(width_l / k)` nodes. The
/// root is the single node of the last level.
#[derive(Debug, Clone)]
pub struct TreeShape {
    /// Number of leaves.
    pub n: usize,
    /// Fan-in.
    pub k: usize,
    /// `widths[l]` = number of nodes at level `l` (`widths[0] = n`).
    pub widths: Vec<usize>,
}

impl TreeShape {
    /// Computes the shape of a fan-in-`k` tree over `n` leaves.
    ///
    /// # Panics
    /// Panics if `n == 0` or `k < 2`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n > 0, "tree needs at least one leaf");
        assert!(k >= 2, "fan-in must be at least 2, got {k}");
        let mut widths = vec![n];
        let mut w = n;
        while w > 1 {
            w = w.div_ceil(k);
            widths.push(w);
        }
        TreeShape { n, k, widths }
    }

    /// Number of levels above the leaves (= tree depth).
    pub fn depth(&self) -> usize {
        self.widths.len() - 1
    }

    /// Number of children of node `node` at level `level` (levels ≥ 1).
    pub fn children_of(&self, level: usize, node: usize) -> usize {
        debug_assert!(level >= 1 && level < self.widths.len());
        let below = self.widths[level - 1];
        let start = node * self.k;
        debug_assert!(start < below);
        self.k.min(below - start)
    }

    /// Total internal nodes (levels 1..).
    pub fn internal_nodes(&self) -> usize {
        self.widths[1..].iter().sum()
    }
}

/// Integer `ceil(log_k(n))` for `n ≥ 1`, `k ≥ 2` — the depth of a fan-in-k
/// tree, used in cost assertions.
pub fn ceil_log(n: usize, k: usize) -> u32 {
    assert!(k >= 2);
    let mut levels = 0;
    let mut w = n.max(1);
    while w > 1 {
        w = w.div_ceil(k);
        levels += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_disjoint_and_monotone() {
        let mut l = Layout::new(100);
        let a = l.alloc(10);
        let b = l.alloc(5);
        let c = l.alloc(0);
        assert_eq!(a, 100);
        assert_eq!(b, 110);
        assert_eq!(c, 115);
        assert_eq!(l.high_water(), 115);
    }

    #[test]
    fn reduce_ops_behave() {
        assert_eq!(ReduceOp::Sum.fold(&[1, 2, 3]), 6);
        assert_eq!(ReduceOp::Or.fold(&[0, 0, 5]), 1);
        assert_eq!(ReduceOp::Or.fold(&[0, 0, 0]), 0);
        assert_eq!(ReduceOp::Xor.fold(&[1, 1, 1]), 1);
        assert_eq!(ReduceOp::Xor.fold(&[1, 1]), 0);
        assert_eq!(ReduceOp::Max.fold(&[-5, 3, 2]), 3);
        assert_eq!(ReduceOp::Max.apply(ReduceOp::Max.identity(), 7), 7);
    }

    #[test]
    fn tree_shape_widths() {
        let t = TreeShape::new(10, 3);
        assert_eq!(t.widths, vec![10, 4, 2, 1]);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.internal_nodes(), 7);
        // Children counts at level 1: 3, 3, 3, 1.
        assert_eq!(t.children_of(1, 0), 3);
        assert_eq!(t.children_of(1, 3), 1);
        // Level 2 over width 4: children 3 and 1.
        assert_eq!(t.children_of(2, 0), 3);
        assert_eq!(t.children_of(2, 1), 1);
    }

    #[test]
    fn single_leaf_tree_has_no_levels() {
        let t = TreeShape::new(1, 2);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.internal_nodes(), 0);
    }

    #[test]
    fn ceil_log_matches_tree_depth() {
        for n in 1..200 {
            for k in 2..6 {
                assert_eq!(ceil_log(n, k) as usize, TreeShape::new(n, k).depth());
            }
        }
        assert_eq!(ceil_log(8, 2), 3);
        assert_eq!(ceil_log(9, 2), 4);
        assert_eq!(ceil_log(1, 2), 0);
    }
}
